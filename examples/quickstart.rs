//! Quickstart: build an instance, run three schedulers, compare maximum
//! flow against a certified lower bound, and print a Gantt chart.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use flowtree::prelude::*;
use flowtree::sim::gantt;
use flowtree::workloads::trees;

fn main() {
    let m = 4;

    // A small stream of fork-heavy jobs: two quicksort recursion trees and
    // a sequential chain arriving over time.
    let mut rng = flowtree::workloads::rng(1);
    let instance = Instance::new(vec![
        JobSpec {
            graph: trees::random_quicksort_tree(48, 2, &mut rng),
            release: 0,
        },
        JobSpec { graph: flowtree::dag::builder::chain(8), release: 2 },
        JobSpec {
            graph: trees::random_quicksort_tree(48, 2, &mut rng),
            release: 4,
        },
    ]);
    println!(
        "instance: {} jobs, total work {}, max span {}",
        instance.num_jobs(),
        instance.total_work(),
        instance.max_span()
    );

    let lb = flowtree::opt::bounds::combined_lower_bound(&instance, m as u64);
    println!("certified lower bound on OPT max-flow (m = {m}): {lb}\n");

    let mut schedulers: Vec<Box<dyn OnlineScheduler>> = vec![
        Box::new(Fifo::arbitrary()),
        Box::new(Lpf::new()),
        Box::new(GuessDoubleA::paper()),
    ];
    for sched in schedulers.iter_mut() {
        let name = sched.name();
        let schedule = Engine::new(m)
            .with_max_horizon(1_000_000)
            .run(&instance, sched.as_mut())
            .expect("scheduler completes");
        schedule.verify(&instance).expect("feasible");
        let stats = &schedule.stats;
        println!(
            "{name:<28} max flow {:>3}  (ratio vs LB {:.2}), mean flow {:.1}, util {:.2}",
            stats.max_flow,
            stats.max_flow as f64 / lb as f64,
            stats.mean_flow,
            stats.utilization,
        );
        if name.starts_with("FIFO") {
            println!("\nFIFO packing (rows = processors, letters = jobs):");
            println!("{}", gantt::render_default(&instance, &schedule));
            println!("per-job timelines:");
            println!("{}", flowtree::sim::trace::render_timelines(&instance, &schedule));
        }
    }
}
