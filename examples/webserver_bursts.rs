//! A "web server" scenario: a steady trickle of parallel request-handler
//! jobs plus periodic bursts (cron-triggered batch work). Compares the
//! tail-latency (max flow) of FIFO, round-robin, and the paper's
//! guess-and-double Algorithm 𝒜 — the fairness story that motivates the
//! maximum-flow objective.
//!
//! ```sh
//! cargo run --release --example webserver_bursts
//! ```

use flowtree::core::baselines::RoundRobin;
use flowtree::prelude::*;
use flowtree::workloads::{arrivals, trees};

fn main() {
    let m = 16;
    let mut rng = flowtree::workloads::rng(2024);
    // Handlers: small fork-join-ish out-trees (fan out, fan back via
    // independent subtasks). Bursts: 12 jobs every 40 steps.
    let instance = arrivals::bursty_stream(
        0.4, // background load factor
        m,
        400,  // horizon
        40,   // burst period
        12,   // burst size
        24.0, // mean job work
        |r| trees::random_recursive_tree(24, r),
        &mut rng,
    );
    println!(
        "workload: {} jobs, total work {}, measured load {:.2}\n",
        instance.num_jobs(),
        instance.total_work(),
        arrivals::measured_load(&instance, m),
    );
    let lb = flowtree::opt::bounds::combined_lower_bound(&instance, m as u64);
    println!("certified lower bound on OPT max-flow: {lb}\n");
    println!(
        "{:<34} {:>9} {:>9} {:>10} {:>6}",
        "scheduler", "max flow", "mean", "p~ratio", "util"
    );

    let mut schedulers: Vec<Box<dyn OnlineScheduler>> = vec![
        Box::new(Fifo::arbitrary()),
        Box::new(Fifo::new(TieBreak::HighestHeight)),
        Box::new(RoundRobin),
        Box::new(GuessDoubleA::paper()),
    ];
    for sched in schedulers.iter_mut() {
        let name = sched.name();
        let s = Engine::new(m)
            .with_max_horizon(10_000_000)
            .run(&instance, sched.as_mut())
            .expect("completes");
        s.verify(&instance).expect("feasible");
        let stats = &s.stats;
        println!(
            "{:<34} {:>9} {:>9.1} {:>10.2} {:>6.2}",
            name,
            stats.max_flow,
            stats.mean_flow,
            stats.max_flow as f64 / lb as f64,
            stats.utilization,
        );
    }
    println!(
        "\nmax flow = worst tail latency across all requests; the paper's\n\
         objective optimizes exactly this fairness metric."
    );
}
