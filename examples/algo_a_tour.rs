//! A guided tour of Algorithm 𝒜's machinery on one job:
//!
//! 1. LPF on m/α processors and its head/rectangular-tail shape (Figure 2);
//! 2. the Most-Children replay staying busy under fluctuating grants
//!    (Lemma 5.5);
//! 3. the full algorithm on a semi-batched stream with a certified optimum
//!    (Theorem 5.6).
//!
//! ```sh
//! cargo run --release --example algo_a_tour
//! ```

use flowtree::core::lpf::{head_tail, lpf_levels, RectangleTail};
use flowtree::core::{AlgoA, McReplay};
use flowtree::dag::DepthProfile;
use flowtree::prelude::*;
use flowtree::workloads::batched::packed_chains;

fn main() {
    let (m, alpha) = (16usize, 4usize);
    let p = m / alpha;

    // --- 1. LPF shape -----------------------------------------------------
    let mut rng = flowtree::workloads::rng(5);
    let g = flowtree::workloads::trees::random_recursive_tree(300, &mut rng);
    let opt = DepthProfile::new(&g).opt_single_job(m as u64);
    let levels = lpf_levels(&g, p);
    let (head, tail) = head_tail(&levels, opt);
    let shape = RectangleTail::measure(&levels, opt, p);
    println!("LPF[m/α = {p}] of a {}-node tree; OPT[m = {m}] = {opt}", g.n());
    let widths: String = levels
        .iter()
        .map(|l| char::from_digit(l.len() as u32 % 10, 10).unwrap())
        .collect();
    println!("per-step widths: {widths}");
    println!(
        "head = {} steps, tail = {} steps (rectangle: {}), total {} ≤ α·OPT = {}\n",
        head.len(),
        tail.len(),
        shape.is_rectangle(),
        levels.len(),
        alpha as u64 * opt,
    );

    // --- 2. MC replay ------------------------------------------------------
    let mut mc = McReplay::new(&g, tail.to_vec());
    let mut step = 0usize;
    let mut log = String::new();
    while !mc.is_done() {
        step += 1;
        let grant = 1 + (step * 3) % p;
        let got = mc.next(grant).len();
        log.push_str(&format!("{got}/{grant} "));
        assert!(got == grant || mc.is_done(), "Lemma 5.5 violated");
    }
    println!("MC replay under sawtooth grants (scheduled/granted per step):");
    println!("{log}\n");

    // --- 3. Full Algorithm A on a certified stream -------------------------
    let t_opt = 8u64;
    let packed = packed_chains(m, t_opt, 4, 6, &mut rng);
    let mut algo = AlgoA::semi_batched(alpha, t_opt / 2);
    let s = Engine::new(m).run(&packed.instance, &mut algo).expect("A completes");
    s.verify(&packed.instance).expect("feasible");
    let stats = &s.stats;
    println!(
        "Algorithm A on 6 packed batches (OPT = {t_opt} exactly): max flow {}, ratio {:.2} (bound: 129)",
        stats.max_flow,
        stats.max_flow as f64 / t_opt as f64,
    );
}
