//! The Section 4 lower bound, live: watch FIFO's competitive ratio grow
//! with the machine size on the adaptive adversary, then see Algorithm 𝒜
//! handle the very same instances with a flat constant ratio.
//!
//! ```sh
//! cargo run --release --example adversary_duel
//! ```

use flowtree::core::AlgoA;
use flowtree::prelude::*;
use flowtree::workloads::adversary;

fn main() {
    println!("FIFO vs the adaptive adversary (Theorem 4.2)\n");
    println!(
        "{:>6} {:>12} {:>8} {:>10} {:>16}",
        "m", "FIFO flow", "OPT ≤", "ratio ≥", "lg m − lg lg m"
    );
    for m in [8usize, 16, 32, 64, 128, 256] {
        let out = adversary::duel(m, m, 60);
        println!(
            "{:>6} {:>12} {:>8} {:>10.3} {:>16.3}",
            m,
            out.max_flow,
            out.opt_upper,
            out.ratio(),
            adversary::predicted_ratio(m),
        );
    }

    println!("\nSame instances, Algorithm A (Theorem 5.6):\n");
    println!("{:>6} {:>10} {:>10}", "m", "A flow", "A ratio ≤");
    for m in [8usize, 16, 32] {
        let out = adversary::duel(m, m, 20);
        let inst = adversary::materialize(&out);
        let mut algo = AlgoA::with_batching(4, (m + 1) as u64);
        let s = Engine::new(m)
            .with_max_horizon(10_000_000)
            .run(&inst, &mut algo)
            .expect("A completes");
        s.verify(&inst).expect("feasible");
        let stats = &s.stats;
        println!(
            "{:>6} {:>10} {:>10.3}",
            m,
            stats.max_flow,
            stats.max_flow as f64 / out.opt_upper as f64,
        );
    }
    println!(
        "\nFIFO's ratio grows like log m; A's stays a small constant — the\n\
         paper's headline separation, reproduced."
    );
}
