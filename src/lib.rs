//! # flowtree
//!
//! A from-scratch Rust implementation of *Scheduling Out-Trees Online to
//! Optimize Maximum Flow* (Agrawal, Moseley, Newman, Pruhs — SPAA 2024):
//! online scheduling of dynamic-multithreaded jobs (DAGs of unit subjobs)
//! on `m` identical processors to minimize the **maximum flow time**,
//! without resource augmentation.
//!
//! ## What's inside
//!
//! * [`dag`] — the job model: out-trees/out-forests, series-parallel DAGs,
//!   depth profiles (`W(d)`), heights/spans.
//! * [`sim`] — the discrete-time simulator: [`sim::Engine`] drives any
//!   [`sim::OnlineScheduler`] and every schedule is re-checked by an
//!   independent feasibility verifier.
//! * [`core`] — the paper's algorithms: FIFO with pluggable intra-job
//!   tie-breaks, Longest Path First, the Most-Children replay, Algorithm 𝒜
//!   (129-competitive, semi-batched) and the guess-and-double wrapper
//!   (1548-competitive, fully online).
//! * [`opt`] — exact optima and certified lower bounds (Lemma 5.1,
//!   Corollary 5.4, branch-and-bound, Hu, Brucker–Garey–Johnson).
//! * [`workloads`] — generators, including the Section 4 adaptive adversary
//!   and certified known-OPT packed batched instances.
//! * [`analysis`] — the experiment harness reproducing every figure and
//!   theorem (E1–E17; see `DESIGN.md` / `EXPERIMENTS.md`).
//!
//! ## Quickstart
//!
//! ```
//! use flowtree::prelude::*;
//!
//! // Two quicksort-shaped jobs arriving over time on 4 processors.
//! let jobs = vec![
//!     JobSpec { graph: flowtree::dag::builder::quicksort_tree(64, 1, 2, 1), release: 0 },
//!     JobSpec { graph: flowtree::dag::builder::quicksort_tree(64, 1, 2, 1), release: 3 },
//! ];
//! let instance = Instance::new(jobs);
//!
//! let schedule = Engine::new(4)
//!     .run(&instance, &mut Fifo::arbitrary())
//!     .expect("FIFO always completes");
//! schedule.verify(&instance).expect("engine output is feasible");
//!
//! let stats = flowtree::sim::metrics::flow_stats(&instance, &schedule);
//! assert!(stats.max_flow >= instance.per_job_lower_bound(4));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use flowtree_analysis as analysis;
pub use flowtree_core as core;
pub use flowtree_dag as dag;
pub use flowtree_opt as opt;
pub use flowtree_sim as sim;
pub use flowtree_workloads as workloads;

/// The most common imports in one place.
pub mod prelude {
    pub use flowtree_core::{AlgoA, Fifo, GuessDoubleA, Lpf, McReplay, TieBreak};
    pub use flowtree_dag::{JobGraph, JobId, NodeId, Time};
    pub use flowtree_sim::{
        Clairvoyance, Engine, Instance, JobSpec, OnlineScheduler, Schedule, Selection, SimView,
    };
}
