//! Offline replacement for the `proptest` subset this workspace uses.
//!
//! Provides the [`proptest!`] macro, [`Strategy`](strategy::Strategy) with
//! `prop_map` / `prop_flat_map`, integer-range strategies, tuple strategies,
//! [`collection::vec`], [`sample::subsequence`], and
//! [`ProptestConfig`](test_runner::ProptestConfig). Each test runs its body
//! over `cases` deterministically generated inputs (seeded ChaCha8, seed
//! derived from the test name), panicking on the first failing case with the
//! case number printed. No shrinking — failures report the raw generated
//! values via the standard assert messages.

/// Test-runner types: deterministic RNG and per-test configuration.
pub mod test_runner {
    use rand::SeedableRng;

    /// Deterministic RNG handed to strategies during generation.
    pub struct TestRng(pub rand_chacha::ChaCha8Rng);

    impl TestRng {
        /// RNG seeded from a test-identifying string, so distinct tests
        /// explore distinct input streams but each run is reproducible.
        pub fn deterministic(name: &str) -> Self {
            let mut seed = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                seed ^= b as u64;
                seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng(rand_chacha::ChaCha8Rng::seed_from_u64(seed))
        }
    }

    /// Per-test configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Failure type for proptest bodies. Test bodies may `return Ok(())`
    /// early (real proptest closures return `Result`); assertions in this
    /// offline harness panic instead of constructing errors, so this type
    /// is never actually instantiated.
    #[derive(Debug)]
    pub struct TestCaseError;

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "test case failed")
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// A recipe for generating test values.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Generate a value, then generate from the strategy `f` builds
        /// from it (dependent generation).
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }

        /// Type-erase this strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Strategy returned by [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
        type Value = T::Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// Type-erased strategy.
    pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate(rng)
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(!self.is_empty(), "empty range strategy");
                    rng.0.gen_range(self.clone())
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(!self.is_empty(), "empty range strategy");
                    rng.0.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+);)*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A.0);
        (A.0, B.1);
        (A.0, B.1, C.2);
        (A.0, B.1, C.2, D.3);
        (A.0, B.1, C.2, D.3, E.4);
        (A.0, B.1, C.2, D.3, E.4, F.5);
    }

    /// Inclusive bounds on a generated collection's size.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        /// Minimum size, inclusive.
        pub min: usize,
        /// Maximum size, inclusive.
        pub max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(!r.is_empty(), "empty size range");
            SizeRange { min: r.start, max: r.end - 1 }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            assert!(!r.is_empty(), "empty size range");
            SizeRange { min: *r.start(), max: *r.end() }
        }
    }

    impl SizeRange {
        pub(crate) fn pick(&self, rng: &mut TestRng) -> usize {
            rng.0.gen_range(self.min..=self.max)
        }
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::{SizeRange, Strategy};
    use crate::test_runner::TestRng;

    /// Strategy for `Vec`s with element strategy `element` and a size drawn
    /// from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Sampling strategies over fixed item sets.
pub mod sample {
    use crate::strategy::{SizeRange, Strategy};
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Strategy yielding an order-preserving random subsequence of `items`
    /// with a length drawn from `size`.
    pub fn subsequence<T: Clone>(
        items: Vec<T>,
        size: impl Into<SizeRange>,
    ) -> SubsequenceStrategy<T> {
        let size = size.into();
        assert!(
            size.max <= items.len(),
            "subsequence size bound {} exceeds item count {}",
            size.max,
            items.len()
        );
        SubsequenceStrategy { items, size }
    }

    /// Strategy returned by [`subsequence`].
    pub struct SubsequenceStrategy<T> {
        items: Vec<T>,
        size: SizeRange,
    }

    impl<T: Clone> Strategy for SubsequenceStrategy<T> {
        type Value = Vec<T>;

        fn generate(&self, rng: &mut TestRng) -> Vec<T> {
            let k = self.size.pick(rng);
            // Partial Fisher-Yates over the index set, then restore order.
            let mut idx: Vec<usize> = (0..self.items.len()).collect();
            for i in 0..k {
                let j = rng.0.gen_range(i..idx.len());
                idx.swap(i, j);
            }
            let mut chosen = idx[..k].to_vec();
            chosen.sort_unstable();
            chosen.into_iter().map(|i| self.items[i].clone()).collect()
        }
    }
}

/// Common imports for property tests.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Define property tests: each `fn name(x in strategy, ...) { body }` becomes
/// a `#[test]` running `body` over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(($config); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config = $config;
            let mut rng = $crate::test_runner::TestRng::deterministic(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let run = || -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                };
                match std::panic::catch_unwind(std::panic::AssertUnwindSafe(run)) {
                    Ok(Ok(())) => {}
                    Ok(Err(e)) => panic!(
                        "proptest {}: case {case}/{} failed: {e}",
                        stringify!($name),
                        config.cases
                    ),
                    Err(payload) => {
                        eprintln!(
                            "proptest {}: failed at case {case}/{}",
                            stringify!($name),
                            config.cases
                        );
                        std::panic::resume_unwind(payload);
                    }
                }
            }
        }
    )*};
}

/// Property-test assertion (panics on failure, like `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Property-test equality assertion (panics on failure, like `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Property-test inequality assertion (panics on failure, like `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn ranges_respect_bounds(x in 3u32..10, y in 0usize..=4) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(y <= 4);
        }

        #[test]
        fn maps_and_tuples_compose(v in (0u64..5, 1u64..=3).prop_map(|(a, b)| a * b)) {
            prop_assert!(v <= 12);
        }
    }

    proptest! {
        #[test]
        fn flat_map_dependent_generation(pair in (1usize..6).prop_flat_map(|n| {
            crate::collection::vec(0u32..100, n..=n).prop_map(move |v| (n, v))
        })) {
            prop_assert_eq!(pair.0, pair.1.len());
        }
    }

    #[test]
    fn subsequence_preserves_order_and_size() {
        let mut rng = crate::test_runner::TestRng::deterministic("subseq");
        let items: Vec<u32> = (0..20).collect();
        let strat = crate::sample::subsequence(items, 0..=20);
        for _ in 0..50 {
            let sub = crate::strategy::Strategy::generate(&strat, &mut rng);
            assert!(sub.len() <= 20);
            assert!(sub.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let strat = crate::collection::vec(0u64..1000, 5..10);
        let a = {
            let mut rng = crate::test_runner::TestRng::deterministic("t");
            crate::strategy::Strategy::generate(&strat, &mut rng)
        };
        let b = {
            let mut rng = crate::test_runner::TestRng::deterministic("t");
            crate::strategy::Strategy::generate(&strat, &mut rng)
        };
        assert_eq!(a, b);
    }
}
