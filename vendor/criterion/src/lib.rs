//! Offline micro-benchmark harness exposing the `criterion` API subset the
//! workspace benches use: `Criterion::benchmark_group`, `bench_function`,
//! `bench_with_input`, `Throughput`, `BenchmarkId`, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement model: a short warm-up, then `sample_size` samples, each
//! timing a batch of iterations sized so one sample takes roughly
//! `time_per_sample`. Reports median / mean / max per-iteration time and
//! derived throughput on stdout. No statistics files, no HTML — just honest
//! wall-clock numbers suitable for A/B comparison on one machine.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier `function_name/parameter` for parameterized benches.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/param`.
    pub fn new(name: impl std::fmt::Display, param: impl std::fmt::Display) -> Self {
        BenchmarkId { id: format!("{name}/{param}") }
    }

    /// Parameter-only id (group name supplies the function part).
    pub fn from_parameter(param: impl std::fmt::Display) -> Self {
        BenchmarkId { id: param.to_string() }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.id)
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    /// Number of iterations the closure should be driven for this sample.
    iters: u64,
    /// Measured elapsed time for the sample, recorded by [`iter`](Self::iter).
    elapsed: Duration,
}

impl Bencher {
    /// Time `f`, called `iters` times back-to-back.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Top-level benchmark context.
pub struct Criterion {
    sample_size: usize,
    time_per_sample: Duration,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // Honour the substring filter cargo bench forwards (skipping its
        // own flags), so `cargo bench -- engine` works as with criterion.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion {
            sample_size: 10,
            time_per_sample: Duration::from_millis(25),
            filter,
        }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            c: self,
            name: name.into(),
            throughput: None,
            sample_size: None,
        }
    }

    /// Convenience: a single benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        self.benchmark_group("").bench_function(name, f);
        self
    }
}

/// A group of benchmarks sharing a name prefix and throughput annotation.
pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Annotate per-iteration throughput for subsequent benches.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Override the number of samples for subsequent benches.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(2));
        self
    }

    /// Override the target time per sample for subsequent benches.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.c.time_per_sample = t / 10;
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl std::fmt::Display,
        mut f: F,
    ) -> &mut Self {
        self.run(&id.to_string(), &mut |b| f(b));
        self
    }

    /// Run one benchmark parameterized by `input`.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.run(&id.to_string(), &mut |b| f(b, input));
        self
    }

    /// Finish the group (printing is per-bench; this is a no-op for
    /// criterion API compatibility).
    pub fn finish(&mut self) {}

    fn run(&mut self, id: &str, f: &mut dyn FnMut(&mut Bencher)) {
        let full = if self.name.is_empty() {
            id.to_string()
        } else {
            format!("{}/{}", self.name, id)
        };
        if let Some(filter) = &self.c.filter {
            if !full.contains(filter.as_str()) {
                return;
            }
        }

        // Calibrate: run single iterations until we know the rough cost.
        let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };
        f(&mut b);
        let once = b.elapsed.max(Duration::from_nanos(1));
        let iters_per_sample =
            (self.c.time_per_sample.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;

        let samples = self.sample_size.unwrap_or(self.c.sample_size);
        let mut per_iter: Vec<f64> = Vec::with_capacity(samples);
        for _ in 0..samples {
            let mut b = Bencher { iters: iters_per_sample, elapsed: Duration::ZERO };
            f(&mut b);
            per_iter.push(b.elapsed.as_secs_f64() / iters_per_sample as f64);
        }
        per_iter.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = per_iter[per_iter.len() / 2];
        let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
        let worst = *per_iter.last().unwrap();

        let mut line = format!(
            "{full:<40} time: [median {} mean {} max {}]",
            fmt_time(median),
            fmt_time(mean),
            fmt_time(worst)
        );
        if let Some(t) = self.throughput {
            let (count, unit) = match t {
                Throughput::Elements(n) => (n, "elem/s"),
                Throughput::Bytes(n) => (n, "B/s"),
            };
            line.push_str(&format!("  thrpt: {:.3e} {unit}", count as f64 / median));
        }
        println!("{line}");
    }
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.1} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

/// Collect benchmark functions into a single runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Entry point: run every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benches_run_and_print() {
        let mut c = Criterion {
            sample_size: 3,
            time_per_sample: Duration::from_micros(200),
            filter: None,
        };
        let mut group = c.benchmark_group("g");
        let mut runs = 0u64;
        group
            .throughput(Throughput::Elements(10))
            .sample_size(3)
            .bench_function("f", |b| {
                b.iter(|| {
                    runs += 1;
                    black_box(runs)
                })
            });
        group.finish();
        assert!(runs > 0);
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut c = Criterion {
            sample_size: 2,
            time_per_sample: Duration::from_micros(50),
            filter: Some("match-me".into()),
        };
        let mut ran = false;
        c.benchmark_group("other").bench_function("skip", |b| {
            b.iter(|| ran = true);
        });
        assert!(!ran);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("fifo", 8).to_string(), "fifo/8");
        assert_eq!(BenchmarkId::from_parameter(3).to_string(), "3");
    }
}
