//! Offline replacement for the `serde` subset this workspace uses.
//!
//! The crates-io registry is unreachable in the build environment, so the
//! workspace vendors a small value-tree serialization core under the same
//! crate name: [`Serialize`] / [`Deserialize`] convert to and from a JSON
//! data model ([`Value`]); `serde_json` (also vendored) prints and parses
//! that model. Proc-macro derives are unavailable offline, so types opt in
//! with the [`impl_serde_struct!`] / [`impl_serde_newtype!`] macros or a
//! manual impl.

/// The serialization data model: JSON's value tree.
///
/// Object keys keep insertion order (serialization output is deterministic
/// and field-ordered, which the golden-file tests rely on).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Non-negative integer.
    UInt(u64),
    /// Negative integer.
    Int(i64),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Integer view (accepts `UInt` and non-negative `Int`).
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::UInt(n) => Some(n),
            Value::Int(n) if n >= 0 => Some(n as u64),
            _ => None,
        }
    }

    /// Signed-integer view.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::UInt(n) => i64::try_from(n).ok(),
            Value::Int(n) => Some(n),
            _ => None,
        }
    }

    /// Numeric view.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::UInt(n) => Some(n as f64),
            Value::Int(n) => Some(n as f64),
            Value::Float(x) => Some(x),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Bool view.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// Array view.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Short type name for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::UInt(_) | Value::Int(_) => "integer",
            Value::Float(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Arbitrary error message (mirrors `serde::de::Error::custom`).
    pub fn custom(msg: impl std::fmt::Display) -> Self {
        Error { msg: msg.to_string() }
    }

    /// A required object field was absent.
    pub fn missing_field(name: &str) -> Self {
        Error::custom(format!("missing field `{name}`"))
    }

    /// A value had the wrong JSON type.
    pub fn type_mismatch(expected: &str, got: &Value) -> Self {
        Error::custom(format!("expected {expected}, got {}", got.kind()))
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for Error {}

/// Error namespace kept for `serde::de::Error::custom` call-site parity.
pub mod de {
    /// Re-export of the crate error type under its serde path.
    pub use crate::Error;
}

/// Convert a value into the serialization data model.
pub trait Serialize {
    /// The value-tree form of `self`.
    fn to_value(&self) -> Value;
}

/// Reconstruct a value from the serialization data model.
pub trait Deserialize: Sized {
    /// Parse from a value tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v.as_u64().ok_or_else(|| Error::type_mismatch("unsigned integer", v))?;
                <$t>::try_from(n).map_err(|_| Error::custom(format!("{n} out of range")))
            }
        }
    )*};
}

impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n >= 0 { Value::UInt(n as u64) } else { Value::Int(n) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v.as_i64().ok_or_else(|| Error::type_mismatch("integer", v))?;
                <$t>::try_from(n).map_err(|_| Error::custom(format!("{n} out of range")))
            }
        }
    )*};
}

impl_serde_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64().ok_or_else(|| Error::type_mismatch("number", v))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64().map(|x| x as f32).ok_or_else(|| Error::type_mismatch("number", v))
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_bool().ok_or_else(|| Error::type_mismatch("bool", v))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str().map(str::to_string).ok_or_else(|| Error::type_mismatch("string", v))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::type_mismatch("array", v))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

macro_rules! impl_serde_tuple {
    ($(($($t:ident . $idx:tt),+);)*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let items = v.as_array().ok_or_else(|| Error::type_mismatch("array", v))?;
                let expected = [$($idx),+].len();
                if items.len() != expected {
                    return Err(Error::custom(format!(
                        "expected array of {expected}, got {}", items.len()
                    )));
                }
                Ok(($($t::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}

impl_serde_tuple! {
    (A.0);
    (A.0, B.1);
    (A.0, B.1, C.2);
    (A.0, B.1, C.2, D.3);
}

/// Implement [`Serialize`]/[`Deserialize`] for a struct with named fields,
/// mapping it to a JSON object in declaration order. Offline stand-in for
/// `#[derive(Serialize, Deserialize)]`.
#[macro_export]
macro_rules! impl_serde_struct {
    ($ty:ident { $($field:ident),+ $(,)? }) => {
        impl $crate::Serialize for $ty {
            fn to_value(&self) -> $crate::Value {
                $crate::Value::Object(vec![
                    $((stringify!($field).to_string(), $crate::Serialize::to_value(&self.$field)),)+
                ])
            }
        }
        impl $crate::Deserialize for $ty {
            fn from_value(v: &$crate::Value) -> Result<Self, $crate::Error> {
                Ok($ty {
                    $($field: $crate::Deserialize::from_value(
                        v.get(stringify!($field))
                            .ok_or_else(|| $crate::Error::missing_field(stringify!($field)))?,
                    )?,)+
                })
            }
        }
    };
}

/// Implement [`Serialize`]/[`Deserialize`] for a single-field tuple struct,
/// mapping it transparently to its inner value (serde's newtype behavior).
#[macro_export]
macro_rules! impl_serde_newtype {
    ($ty:ident($inner:ty)) => {
        impl $crate::Serialize for $ty {
            fn to_value(&self) -> $crate::Value {
                $crate::Serialize::to_value(&self.0)
            }
        }
        impl $crate::Deserialize for $ty {
            fn from_value(v: &$crate::Value) -> Result<Self, $crate::Error> {
                <$inner as $crate::Deserialize>::from_value(v).map($ty)
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u32::from_value(&5u32.to_value()), Ok(5));
        assert_eq!(i64::from_value(&(-3i64).to_value()), Ok(-3));
        assert_eq!(bool::from_value(&true.to_value()), Ok(true));
        assert_eq!(String::from_value(&"hi".to_value()), Ok("hi".to_string()));
        let v: Vec<(u32, u32)> = vec![(1, 2), (3, 4)];
        assert_eq!(Vec::<(u32, u32)>::from_value(&v.to_value()), Ok(v));
    }

    #[test]
    fn option_null_roundtrip() {
        assert_eq!(Option::<u64>::from_value(&Value::Null), Ok(None));
        assert_eq!(Option::<u64>::from_value(&Value::UInt(7)), Ok(Some(7)));
        assert_eq!(None::<u64>.to_value(), Value::Null);
    }

    #[test]
    fn type_mismatch_is_error() {
        assert!(u32::from_value(&Value::Str("no".into())).is_err());
        assert!(Vec::<u8>::from_value(&Value::UInt(1)).is_err());
        assert!(u8::from_value(&Value::UInt(300)).is_err());
    }

    #[test]
    fn struct_macro_roundtrips() {
        #[derive(Debug, PartialEq)]
        struct P {
            x: u32,
            y: i64,
        }
        impl_serde_struct!(P { x, y });
        let p = P { x: 4, y: -9 };
        assert_eq!(P::from_value(&p.to_value()), Ok(P { x: 4, y: -9 }));
        assert!(P::from_value(&Value::Object(vec![("x".into(), Value::UInt(1))])).is_err());
    }

    #[test]
    fn newtype_macro_is_transparent() {
        #[derive(Debug, PartialEq)]
        struct Id(u32);
        impl_serde_newtype!(Id(u32));
        assert_eq!(Id(8).to_value(), Value::UInt(8));
        assert_eq!(Id::from_value(&Value::UInt(8)), Ok(Id(8)));
    }
}
