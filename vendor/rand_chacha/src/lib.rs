//! Offline ChaCha-based generator for the vendored `rand` API: a real
//! ChaCha8 core (IETF variant, 32-bit words, 8 rounds), seeded from 32
//! bytes of key material. Deterministic per seed; streams differ from the
//! upstream `rand_chacha` crate (nothing in the workspace depends on the
//! upstream streams).

use rand::{RngCore, SeedableRng};

/// ChaCha with 8 rounds — the fast, statistically strong generator used for
/// all seeded workloads in the workspace.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Key (words 4..12 of the state).
    key: [u32; 8],
    /// 64-bit block counter (words 12..14); words 14..16 are zero nonce.
    counter: u64,
    /// Current 16-word output block.
    block: [u32; 16],
    /// Next unread word in `block` (16 = exhausted).
    index: usize,
}

const CHACHA_CONST: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONST);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        // state[14..16] stay zero (nonce).
        let input = state;
        for _ in 0..4 {
            // Column round.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for i in 0..16 {
            self.block[i] = state[i].wrapping_add(input[i]);
        }
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let w = self.block[self.index];
        self.index += 1;
        w
    }
    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        (hi << 32) | lo
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (i, k) in key.iter_mut().enumerate() {
            *k = u32::from_le_bytes(seed[i * 4..i * 4 + 4].try_into().unwrap());
        }
        ChaCha8Rng { key, counter: 0, block: [0; 16], index: 16 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn output_looks_balanced() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let ones: u32 = (0..256).map(|_| rng.next_u64().count_ones()).sum();
        // 256 * 64 / 2 = 8192 expected set bits.
        assert!((7600..8800).contains(&ones), "bit balance off: {ones}");
    }

    #[test]
    fn clone_preserves_stream_position() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        for _ in 0..7 {
            rng.next_u32();
        }
        let mut fork = rng.clone();
        for _ in 0..50 {
            assert_eq!(rng.next_u64(), fork.next_u64());
        }
    }
}
