//! Offline drop-in replacement for the subset of `rand` 0.8 this workspace
//! uses. The crates-io registry is unreachable in the build environment, so
//! the workspace vendors the API surface it needs: [`RngCore`], [`Rng`]
//! (`gen_range`, `gen_bool`), [`SeedableRng`], and
//! [`distributions::WeightedIndex`].
//!
//! Determinism contract: generators are pure functions of their seed, so all
//! seeded workloads in the workspace are reproducible. The streams differ
//! from upstream `rand` (no golden values in the workspace depend on them).

pub mod distributions;

/// Low-level generator interface: a source of uniform random words.
pub trait RngCore {
    /// Next uniform 32-bit word.
    fn next_u32(&mut self) -> u32;
    /// Next uniform 64-bit word.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let w = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&w[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator constructible from a seed.
pub trait SeedableRng: Sized {
    /// Raw seed material (a fixed-size byte array in practice).
    type Seed: Default + AsMut<[u8]>;

    /// Construct from raw seed material.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64` by expanding it with SplitMix64 (matches the
    /// upstream convention of deriving full seeds from small ones).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        sm.fill_bytes(seed.as_mut());
        Self::from_seed(seed)
    }
}

/// SplitMix64: seed-expansion and test-quality generator.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// New generator with the given state.
    pub fn new(state: u64) -> Self {
        SplitMix64 { state }
    }
}

impl RngCore for SplitMix64 {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Types that can be sampled uniformly from a range. Implemented for the
/// primitive integers and `f64`.
pub trait SampleUniform: Sized {
    /// Uniform sample from `[low, high)`. `high > low` required.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Uniform sample from `[low, high]`. `high >= low` required.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high as i128 - low as i128) as u128;
                let v = uniform_u128_below(rng, span);
                (low as i128 + v as i128) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "gen_range: empty range");
                let span = (high as i128 - low as i128) as u128 + 1;
                if span == 0 {
                    // Full u128 span is impossible for <= 64-bit types; 0 here
                    // means the whole domain of a 64-bit type.
                    return rng.next_u64() as $t;
                }
                let v = uniform_u128_below(rng, span);
                (low as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "gen_range: empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        low + unit * (high - low)
    }
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        Self::sample_half_open(rng, low, f64::from_bits(high.to_bits() + 1))
    }
}

/// Unbiased uniform value in `[0, bound)` via rejection sampling.
fn uniform_u128_below<R: RngCore + ?Sized>(rng: &mut R, bound: u128) -> u128 {
    debug_assert!(bound > 0);
    if bound <= u64::MAX as u128 {
        let bound = bound as u64;
        let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
        loop {
            let v = rng.next_u64();
            if v <= zone {
                return (v % bound) as u128;
            }
        }
    } else {
        loop {
            let v = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
            if v < bound * (u128::MAX / bound) {
                return v % bound;
            }
        }
    }
}

/// Range forms accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw a uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (low, high) = self.into_inner();
        T::sample_inclusive(rng, low, high)
    }
}

/// High-level convenience methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range` (half-open or inclusive).
    fn gen_range<T, Rg>(&mut self, range: Rg) -> T
    where
        T: SampleUniform,
        Rg: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Bernoulli trial with success probability `p` (`0.0 <= p <= 1.0`).
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} out of range");
        if p >= 1.0 {
            return true;
        }
        ((self.next_u64() >> 11) as f64) < p * (1u64 << 53) as f64
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SplitMix64::new(42);
        for _ in 0..1000 {
            let a = rng.gen_range(3usize..10);
            assert!((3..10).contains(&a));
            let b = rng.gen_range(-5i64..6);
            assert!((-5..6).contains(&b));
            let c = rng.gen_range(0u64..=4);
            assert!(c <= 4);
            let d = rng.gen_range(0.0f64..1.0);
            assert!((0.0..1.0).contains(&d));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SplitMix64::new(7);
        assert!(rng.gen_bool(1.0));
        assert!(!rng.gen_bool(0.0));
        let heads = (0..4000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((1600..2400).contains(&heads), "suspicious bias: {heads}");
    }

    #[test]
    fn huge_range_does_not_panic() {
        let mut rng = SplitMix64::new(3);
        let _ = rng.gen_range(0..usize::MAX);
        let _ = rng.gen_range(0u64..=u64::MAX);
    }

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut r = SplitMix64::new(9);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = SplitMix64::new(9);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
    }
}
