//! The distribution subset used by the workspace: [`Distribution`] and
//! [`WeightedIndex`].

use crate::{Rng, RngCore, SampleUniform};

/// A sampling distribution over values of type `T`.
pub trait Distribution<T> {
    /// Draw one sample.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// Error constructing a [`WeightedIndex`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WeightedError {
    /// The weight list was empty.
    NoItem,
    /// A weight was negative or not finite.
    InvalidWeight,
    /// All weights were zero.
    AllWeightsZero,
}

impl std::fmt::Display for WeightedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WeightedError::NoItem => write!(f, "no weights provided"),
            WeightedError::InvalidWeight => write!(f, "invalid weight"),
            WeightedError::AllWeightsZero => write!(f, "all weights are zero"),
        }
    }
}

impl std::error::Error for WeightedError {}

/// Weight types accepted by [`WeightedIndex`].
pub trait Weight: Copy + PartialOrd {
    /// Additive identity.
    fn zero() -> Self;
    /// Checked-ish addition (plain addition; weights are validated finite).
    fn add(self, other: Self) -> Self;
    /// Is this a usable weight (finite, non-negative)?
    fn valid(self) -> bool;
}

macro_rules! impl_weight_int {
    ($($t:ty),*) => {$(
        impl Weight for $t {
            fn zero() -> Self { 0 }
            fn add(self, other: Self) -> Self { self + other }
            fn valid(self) -> bool { true }
        }
    )*};
}

impl_weight_int!(u8, u16, u32, u64, usize);

macro_rules! impl_weight_float {
    ($($t:ty),*) => {$(
        impl Weight for $t {
            fn zero() -> Self { 0.0 }
            fn add(self, other: Self) -> Self { self + other }
            fn valid(self) -> bool { self.is_finite() && self >= 0.0 }
        }
    )*};
}

impl_weight_float!(f32, f64);

/// Distribution over `0..n` with probability proportional to given weights.
#[derive(Debug, Clone)]
pub struct WeightedIndex<X: Weight> {
    cumulative: Vec<X>,
    total: X,
}

impl<X: Weight + SampleUniform> WeightedIndex<X> {
    /// Build from an iterator of weight references (e.g. a slice).
    ///
    /// The item type is pinned to `&X` (rather than real rand's
    /// `Borrow<X>`) so the weight type infers from slice call sites.
    pub fn new<'a, I>(weights: I) -> Result<Self, WeightedError>
    where
        X: 'a,
        I: IntoIterator<Item = &'a X>,
    {
        let mut cumulative = Vec::new();
        let mut total = X::zero();
        for &w in weights {
            if !w.valid() {
                return Err(WeightedError::InvalidWeight);
            }
            total = total.add(w);
            cumulative.push(total);
        }
        if cumulative.is_empty() {
            return Err(WeightedError::NoItem);
        }
        // `!(a > b)` rather than `a <= b`: NaN totals must also be rejected.
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        if !(total > X::zero()) {
            return Err(WeightedError::AllWeightsZero);
        }
        Ok(WeightedIndex { cumulative, total })
    }
}

impl<X: Weight + SampleUniform> Distribution<usize> for WeightedIndex<X> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
        let x = rng.gen_range(X::zero()..self.total);
        // First index whose cumulative weight exceeds x.
        match self.cumulative.binary_search_by(|c| match c.partial_cmp(&x) {
            Some(std::cmp::Ordering::Greater) => std::cmp::Ordering::Greater,
            _ => std::cmp::Ordering::Less,
        }) {
            Ok(i) | Err(i) => i.min(self.cumulative.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SplitMix64;

    #[test]
    fn weighted_index_respects_zero_weights() {
        let d = WeightedIndex::new(&[0.0f64, 1.0, 0.0]).unwrap();
        let mut rng = SplitMix64::new(1);
        for _ in 0..200 {
            assert_eq!(d.sample(&mut rng), 1);
        }
    }

    #[test]
    fn weighted_index_roughly_proportional() {
        let d = WeightedIndex::new(&[1.0f64, 3.0]).unwrap();
        let mut rng = SplitMix64::new(2);
        let ones = (0..4000).filter(|_| d.sample(&mut rng) == 1).count();
        assert!((2700..3300).contains(&ones), "got {ones}");
    }

    #[test]
    fn weighted_index_integer_weights() {
        let d = WeightedIndex::new(&[2u64, 2]).unwrap();
        let mut rng = SplitMix64::new(3);
        let mut seen = [false; 2];
        for _ in 0..100 {
            seen[d.sample(&mut rng)] = true;
        }
        assert!(seen[0] && seen[1]);
    }

    #[test]
    fn errors() {
        assert_eq!(WeightedIndex::<f64>::new(&[] as &[f64]).unwrap_err(), WeightedError::NoItem);
        assert_eq!(WeightedIndex::new(&[0.0f64]).unwrap_err(), WeightedError::AllWeightsZero);
        assert_eq!(WeightedIndex::new(&[-1.0f64]).unwrap_err(), WeightedError::InvalidWeight);
    }
}
