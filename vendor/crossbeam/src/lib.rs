//! Offline subset of `crossbeam` used by the workspace: multi-producer
//! multi-consumer [`channel`]s, implemented over `std::sync` primitives
//! (`Mutex` + `Condvar`). Semantics match the crossbeam subset the
//! workspace relies on: cloneable senders and receivers, and `recv`
//! returning `Err` once all senders are dropped and the queue is drained.

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};

    struct Inner<T> {
        queue: Mutex<State<T>>,
        ready: Condvar,
    }

    struct State<T> {
        items: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    /// Sending half of an unbounded MPMC channel.
    pub struct Sender<T> {
        inner: Arc<Inner<T>>,
    }

    /// Receiving half of an unbounded MPMC channel.
    pub struct Receiver<T> {
        inner: Arc<Inner<T>>,
    }

    /// `send` failed because every receiver was dropped; returns the value.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// `recv` failed because the channel is empty and every sender dropped.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "sending on a channel with no receivers")
        }
    }

    impl std::error::Error for RecvError {}
    impl<T: std::fmt::Debug> std::error::Error for SendError<T> {}

    /// Create an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            queue: Mutex::new(State { items: VecDeque::new(), senders: 1, receivers: 1 }),
            ready: Condvar::new(),
        });
        (Sender { inner: inner.clone() }, Receiver { inner })
    }

    impl<T> Sender<T> {
        /// Enqueue `value`; fails only if every receiver was dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut st = self.inner.queue.lock().unwrap();
            if st.receivers == 0 {
                return Err(SendError(value));
            }
            st.items.push_back(value);
            drop(st);
            self.inner.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Dequeue the next value, blocking while the channel is empty and
        /// any sender is alive.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.inner.queue.lock().unwrap();
            loop {
                if let Some(v) = st.items.pop_front() {
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self.inner.ready.wait(st).unwrap();
            }
        }

        /// Dequeue without blocking; `None` when empty (regardless of
        /// sender liveness).
        pub fn try_recv(&self) -> Option<T> {
            self.inner.queue.lock().unwrap().items.pop_front()
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.inner.queue.lock().unwrap().senders += 1;
            Sender { inner: self.inner.clone() }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.inner.queue.lock().unwrap().receivers += 1;
            Receiver { inner: self.inner.clone() }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.inner.queue.lock().unwrap();
            st.senders -= 1;
            if st.senders == 0 {
                drop(st);
                // Wake all receivers so they observe disconnection.
                self.inner.ready.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.inner.queue.lock().unwrap().receivers -= 1;
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fifo_order_single_thread() {
            let (tx, rx) = unbounded();
            for i in 0..10 {
                tx.send(i).unwrap();
            }
            drop(tx);
            let got: Vec<i32> = std::iter::from_fn(|| rx.recv().ok()).collect();
            assert_eq!(got, (0..10).collect::<Vec<_>>());
        }

        #[test]
        fn recv_errors_after_all_senders_drop() {
            let (tx, rx) = unbounded::<u8>();
            let tx2 = tx.clone();
            drop(tx);
            tx2.send(1).unwrap();
            drop(tx2);
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn send_errors_after_all_receivers_drop() {
            let (tx, rx) = unbounded::<u8>();
            drop(rx);
            assert_eq!(tx.send(9), Err(SendError(9)));
        }

        #[test]
        fn mpmc_across_threads_delivers_everything() {
            let (tx, rx) = unbounded::<usize>();
            let n = 1000;
            std::thread::scope(|s| {
                for w in 0..4 {
                    let tx = tx.clone();
                    s.spawn(move || {
                        for i in 0..n / 4 {
                            tx.send(w * (n / 4) + i).unwrap();
                        }
                    });
                }
                drop(tx);
                let mut seen = vec![false; n];
                let handles: Vec<_> = (0..3)
                    .map(|_| {
                        let rx = rx.clone();
                        s.spawn(move || {
                            let mut got = Vec::new();
                            while let Ok(v) = rx.recv() {
                                got.push(v);
                            }
                            got
                        })
                    })
                    .collect();
                while let Ok(v) = rx.recv() {
                    seen[v] = true;
                }
                for h in handles {
                    for v in h.join().unwrap() {
                        seen[v] = true;
                    }
                }
                assert!(seen.iter().all(|&b| b));
            });
        }
    }
}
