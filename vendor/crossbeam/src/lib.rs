//! Offline subset of `crossbeam` used by the workspace: multi-producer
//! multi-consumer [`channel`]s, implemented over `std::sync` primitives
//! (`Mutex` + `Condvar`). Semantics match the crossbeam subset the
//! workspace relies on: cloneable senders and receivers, `recv` returning
//! `Err` once all senders are dropped and the queue is drained, and
//! [`channel::bounded`] queues whose `send` blocks while full (the
//! backpressure primitive `flowtree-serve` builds on) with a non-blocking
//! [`channel::Sender::try_send`] escape hatch.

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};

    struct Inner<T> {
        queue: Mutex<State<T>>,
        ready: Condvar,
        /// Signalled when a slot frees up in a bounded channel.
        space: Condvar,
    }

    struct State<T> {
        items: VecDeque<T>,
        senders: usize,
        receivers: usize,
        /// `None` = unbounded; `Some(cap)` = at most `cap` queued items.
        cap: Option<usize>,
    }

    /// Sending half of an unbounded MPMC channel.
    pub struct Sender<T> {
        inner: Arc<Inner<T>>,
    }

    /// Receiving half of an unbounded MPMC channel.
    pub struct Receiver<T> {
        inner: Arc<Inner<T>>,
    }

    impl<T> std::fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> std::fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    /// `send` failed because every receiver was dropped; returns the value.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// `recv` failed because the channel is empty and every sender dropped.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// `try_send` failed; returns the value either way.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The (bounded) channel is at capacity.
        Full(T),
        /// Every receiver was dropped.
        Disconnected(T),
    }

    impl<T> TrySendError<T> {
        /// Recover the value that failed to send.
        pub fn into_inner(self) -> T {
            match self {
                TrySendError::Full(v) | TrySendError::Disconnected(v) => v,
            }
        }

        /// Was the failure a full queue (as opposed to disconnection)?
        pub fn is_full(&self) -> bool {
            matches!(self, TrySendError::Full(_))
        }
    }

    impl<T> std::fmt::Display for TrySendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TrySendError::Full(_) => write!(f, "sending on a full channel"),
                TrySendError::Disconnected(_) => {
                    write!(f, "sending on a channel with no receivers")
                }
            }
        }
    }

    impl<T: std::fmt::Debug> std::error::Error for TrySendError<T> {}

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "sending on a channel with no receivers")
        }
    }

    impl std::error::Error for RecvError {}
    impl<T: std::fmt::Debug> std::error::Error for SendError<T> {}

    fn with_cap<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            queue: Mutex::new(State { items: VecDeque::new(), senders: 1, receivers: 1, cap }),
            ready: Condvar::new(),
            space: Condvar::new(),
        });
        (Sender { inner: inner.clone() }, Receiver { inner })
    }

    /// Create an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_cap(None)
    }

    /// Create a bounded MPMC channel holding at most `cap` items
    /// (`cap >= 1`). `send` blocks while the queue is full; `try_send`
    /// returns [`TrySendError::Full`] instead.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        assert!(cap >= 1, "a bounded channel needs capacity for at least one item");
        with_cap(Some(cap))
    }

    impl<T> Sender<T> {
        /// Enqueue `value`, blocking while a bounded queue is at capacity;
        /// fails only if every receiver was dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut st = self.inner.queue.lock().unwrap();
            loop {
                if st.receivers == 0 {
                    return Err(SendError(value));
                }
                match st.cap {
                    Some(cap) if st.items.len() >= cap => {
                        st = self.inner.space.wait(st).unwrap();
                    }
                    _ => break,
                }
            }
            st.items.push_back(value);
            drop(st);
            self.inner.ready.notify_one();
            Ok(())
        }

        /// Enqueue without blocking: fails with [`TrySendError::Full`] when a
        /// bounded queue is at capacity (the caller applies its overload
        /// policy) or [`TrySendError::Disconnected`] when every receiver was
        /// dropped.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            let mut st = self.inner.queue.lock().unwrap();
            if st.receivers == 0 {
                return Err(TrySendError::Disconnected(value));
            }
            if let Some(cap) = st.cap {
                if st.items.len() >= cap {
                    return Err(TrySendError::Full(value));
                }
            }
            st.items.push_back(value);
            drop(st);
            self.inner.ready.notify_one();
            Ok(())
        }

        /// Number of items currently queued.
        pub fn len(&self) -> usize {
            self.inner.queue.lock().unwrap().items.len()
        }

        /// Is the queue currently empty?
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Receiver<T> {
        /// Dequeue the next value, blocking while the channel is empty and
        /// any sender is alive.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.inner.queue.lock().unwrap();
            loop {
                if let Some(v) = st.items.pop_front() {
                    drop(st);
                    self.inner.space.notify_one();
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self.inner.ready.wait(st).unwrap();
            }
        }

        /// Dequeue without blocking; `None` when empty (regardless of
        /// sender liveness).
        pub fn try_recv(&self) -> Option<T> {
            let v = self.inner.queue.lock().unwrap().items.pop_front();
            if v.is_some() {
                self.inner.space.notify_one();
            }
            v
        }

        /// Number of items currently queued.
        pub fn len(&self) -> usize {
            self.inner.queue.lock().unwrap().items.len()
        }

        /// Is the queue currently empty?
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.inner.queue.lock().unwrap().senders += 1;
            Sender { inner: self.inner.clone() }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.inner.queue.lock().unwrap().receivers += 1;
            Receiver { inner: self.inner.clone() }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.inner.queue.lock().unwrap();
            st.senders -= 1;
            if st.senders == 0 {
                drop(st);
                // Wake all receivers so they observe disconnection.
                self.inner.ready.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut st = self.inner.queue.lock().unwrap();
            st.receivers -= 1;
            if st.receivers == 0 {
                drop(st);
                // Wake blocked bounded senders so they observe disconnection.
                self.inner.space.notify_all();
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fifo_order_single_thread() {
            let (tx, rx) = unbounded();
            for i in 0..10 {
                tx.send(i).unwrap();
            }
            drop(tx);
            let got: Vec<i32> = std::iter::from_fn(|| rx.recv().ok()).collect();
            assert_eq!(got, (0..10).collect::<Vec<_>>());
        }

        #[test]
        fn recv_errors_after_all_senders_drop() {
            let (tx, rx) = unbounded::<u8>();
            let tx2 = tx.clone();
            drop(tx);
            tx2.send(1).unwrap();
            drop(tx2);
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn send_errors_after_all_receivers_drop() {
            let (tx, rx) = unbounded::<u8>();
            drop(rx);
            assert_eq!(tx.send(9), Err(SendError(9)));
        }

        #[test]
        fn bounded_try_send_reports_full_then_accepts_after_recv() {
            let (tx, rx) = bounded::<u8>(2);
            tx.try_send(1).unwrap();
            tx.try_send(2).unwrap();
            assert_eq!(tx.try_send(3), Err(TrySendError::Full(3)));
            assert!(tx.try_send(3).unwrap_err().is_full());
            assert_eq!(rx.recv(), Ok(1));
            tx.try_send(3).unwrap();
            assert_eq!(tx.len(), 2);
        }

        #[test]
        fn bounded_send_blocks_until_slot_frees() {
            let (tx, rx) = bounded::<u8>(1);
            tx.send(1).unwrap();
            std::thread::scope(|s| {
                let h = s.spawn(|| tx.send(2)); // blocks: queue full
                std::thread::sleep(std::time::Duration::from_millis(20));
                assert_eq!(rx.recv(), Ok(1));
                h.join().unwrap().unwrap();
                assert_eq!(rx.recv(), Ok(2));
            });
        }

        #[test]
        fn bounded_blocked_sender_unblocks_on_receiver_drop() {
            let (tx, rx) = bounded::<u8>(1);
            tx.send(1).unwrap();
            std::thread::scope(|s| {
                let h = s.spawn(|| tx.send(2));
                std::thread::sleep(std::time::Duration::from_millis(20));
                drop(rx);
                assert_eq!(h.join().unwrap(), Err(SendError(2)));
            });
        }

        #[test]
        fn try_send_disconnected_when_receivers_gone() {
            let (tx, rx) = bounded::<u8>(4);
            drop(rx);
            let err = tx.try_send(7).unwrap_err();
            assert!(!err.is_full());
            assert_eq!(err.into_inner(), 7);
        }

        #[test]
        fn mpmc_across_threads_delivers_everything() {
            let (tx, rx) = unbounded::<usize>();
            let n = 1000;
            std::thread::scope(|s| {
                for w in 0..4 {
                    let tx = tx.clone();
                    s.spawn(move || {
                        for i in 0..n / 4 {
                            tx.send(w * (n / 4) + i).unwrap();
                        }
                    });
                }
                drop(tx);
                let mut seen = vec![false; n];
                let handles: Vec<_> = (0..3)
                    .map(|_| {
                        let rx = rx.clone();
                        s.spawn(move || {
                            let mut got = Vec::new();
                            while let Ok(v) = rx.recv() {
                                got.push(v);
                            }
                            got
                        })
                    })
                    .collect();
                while let Ok(v) = rx.recv() {
                    seen[v] = true;
                }
                for h in handles {
                    for v in h.join().unwrap() {
                        seen[v] = true;
                    }
                }
                assert!(seen.iter().all(|&b| b));
            });
        }
    }
}
