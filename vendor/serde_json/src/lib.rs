//! Offline replacement for the `serde_json` subset this workspace uses:
//! [`to_string`], [`to_string_pretty`], and [`from_str`], driven by the
//! vendored `serde` value tree ([`Value`]).

pub use serde::Value;

use serde::{Deserialize, Serialize};

/// JSON serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error::new(e.to_string())
    }
}

/// Serialize `value` to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0)?;
    Ok(out)
}

/// Serialize `value` to an indented JSON string (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0)?;
    Ok(out)
}

/// Parse a JSON document into `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    Ok(T::from_value(&value)?)
}

// ---------------------------------------------------------------- printing

fn write_value(
    v: &Value,
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
) -> Result<(), Error> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::Float(x) => {
            if !x.is_finite() {
                return Err(Error::new("cannot serialize non-finite float"));
            }
            // `{}` prints integral floats without a fraction ("1"), which is
            // still a valid JSON number and parses back into Float via as_f64
            // consumers; shortest-roundtrip formatting preserves the value.
            out.push_str(&x.to_string());
        }
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(item, out, indent, depth + 1)?;
            }
            if !items.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push(']');
        }
        Value::Object(fields) => {
            out.push('{');
            for (i, (k, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, out, indent, depth + 1)?;
            }
            if !fields.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push('}');
        }
    }
    Ok(())
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ----------------------------------------------------------------- parsing

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error::new(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("invalid literal, expected `{lit}`")))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'u') => {
                            let cp = self.unicode_escape()?;
                            out.push(cp);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a &str, so byte
                    // boundaries are valid; find the char at this offset).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Parse the 4 hex digits after `\u` (cursor on the `u`), handling
    /// surrogate pairs.
    fn unicode_escape(&mut self) -> Result<char, Error> {
        self.pos += 1; // past 'u'
        let hi = self.hex4()?;
        if (0xD800..0xDC00).contains(&hi) {
            // High surrogate: require a following \uXXXX low surrogate.
            if self.bytes[self.pos..].starts_with(b"\\u") {
                self.pos += 2;
                let lo = self.hex4()?;
                if (0xDC00..0xE000).contains(&lo) {
                    let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                    return char::from_u32(cp).ok_or_else(|| self.err("invalid surrogate pair"));
                }
            }
            return Err(self.err("unpaired surrogate"));
        }
        char::from_u32(hi).ok_or_else(|| self.err("invalid unicode escape"))
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated unicode escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid unicode escape"))?;
        let n = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid unicode escape"))?;
        self.pos = end;
        Ok(n)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        if !self.peek().is_some_and(|b| b.is_ascii_digit()) {
            return Err(self.err("invalid number"));
        }
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            if !self.peek().is_some_and(|b| b.is_ascii_digit()) {
                return Err(self.err("invalid number"));
            }
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            if !self.peek().is_some_and(|b| b.is_ascii_digit()) {
                return Err(self.err("invalid number"));
            }
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !is_float {
            if let Some(stripped) = text.strip_prefix('-') {
                if let Ok(n) = stripped.parse::<u64>() {
                    if let Ok(neg) = i64::try_from(n).map(|v| -v) {
                        return Ok(Value::Int(neg));
                    }
                }
            } else if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::UInt(n));
            }
            // Integer out of u64/i64 range: fall through to float.
        }
        text.parse::<f64>().map(Value::Float).map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(to_string(&-7i32).unwrap(), "-7");
        assert_eq!(from_str::<i32>("-7").unwrap(), -7);
        assert_eq!(from_str::<f64>("2.5e1").unwrap(), 25.0);
        assert!(from_str::<bool>("true").unwrap());
        assert_eq!(from_str::<String>("\"a\\nb\"").unwrap(), "a\nb");
    }

    #[test]
    fn containers_roundtrip() {
        let v: Vec<(u32, u32)> = vec![(0, 1), (2, 3)];
        let s = to_string(&v).unwrap();
        assert_eq!(s, "[[0,1],[2,3]]");
        assert_eq!(from_str::<Vec<(u32, u32)>>(&s).unwrap(), v);
    }

    #[test]
    fn object_roundtrip_via_value() {
        let v = Value::Object(vec![
            ("n".to_string(), Value::UInt(3)),
            ("tag".to_string(), Value::Str("x\"y".to_string())),
        ]);
        let compact = {
            let mut out = String::new();
            super::write_value(&v, &mut out, None, 0).unwrap();
            out
        };
        assert_eq!(compact, "{\"n\":3,\"tag\":\"x\\\"y\"}");
        assert_eq!(super::parse_value(&compact).unwrap(), v);
    }

    #[test]
    fn pretty_output_is_indented_and_parses_back() {
        let v: Vec<u32> = vec![1, 2];
        let s = to_string_pretty(&v).unwrap();
        assert_eq!(s, "[\n  1,\n  2\n]");
        assert_eq!(from_str::<Vec<u32>>(&s).unwrap(), v);
    }

    #[test]
    fn malformed_inputs_error() {
        assert!(from_str::<u64>("").is_err());
        assert!(from_str::<u64>("12 34").is_err());
        assert!(from_str::<Vec<u64>>("[1,]").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
        assert!(from_str::<u64>("{\"a\":1").is_err());
        assert!(from_str::<u64>("nul").is_err());
    }

    #[test]
    fn unicode_escapes() {
        assert_eq!(from_str::<String>("\"\\u0041\"").unwrap(), "A");
        assert_eq!(from_str::<String>("\"\\ud83d\\ude00\"").unwrap(), "😀");
        assert!(from_str::<String>("\"\\ud83d\"").is_err());
    }
}
