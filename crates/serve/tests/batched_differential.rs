//! Differential property: the batched ingest path (coalesced
//! `AdmitBatch` deliveries plus stride-amortized watermark broadcasts) is
//! **bit for bit** the per-event path. Event-time watermarks only pace
//! simulation — they never change what a shard computes — and placement is
//! decided per job under the router lock in both paths, so for any stream,
//! shard count, routing mode, steal setting, batch bound, and stride, the
//! drained [`ShardResult`]s must be identical, hot-swaps included.
//!
//! Queue capacity is kept generous so backpressure staging never triggers:
//! staging timing is load-dependent (a per-event pool fills queues in a
//! different rhythm than a batched one), so it is exercised by the soak
//! tests in `differential.rs`, not by this equivalence property.

use flowtree_core::SchedulerSpec;
use flowtree_dag::{GraphBuilder, JobGraph, Time};
use flowtree_serve::{
    OverloadPolicy, ReplaySource, Routing, ServeConfig, ShardPool, ShardResult, StealConfig,
};
use flowtree_sim::{Instance, JobSpec};
use proptest::prelude::*;

/// Random out-tree via the recursive-attachment process.
fn arb_tree(max_n: usize) -> impl Strategy<Value = JobGraph> {
    (1..=max_n).prop_flat_map(|n| {
        proptest::collection::vec(0..usize::MAX, n.saturating_sub(1)).prop_map(move |cs| {
            let mut b = GraphBuilder::new(n);
            for (i, &c) in cs.iter().enumerate() {
                b.edge((c % (i + 1)) as u32, (i + 1) as u32);
            }
            b.build().unwrap()
        })
    })
}

/// A nondecreasing-release arrival stream (gaps 0..=3, so bursts that
/// coalesce into batches and spreads that force flushes both occur).
fn arb_stream(max_jobs: usize) -> impl Strategy<Value = Vec<JobSpec>> {
    proptest::collection::vec((arb_tree(8), 0u64..=3), 1..=max_jobs).prop_map(|items| {
        let mut release: Time = 0;
        items
            .into_iter()
            .map(|(graph, gap)| {
                release += gap;
                JobSpec { graph, release }
            })
            .collect()
    })
}

fn config(
    shards: usize,
    routing: Routing,
    steal: bool,
    ingest_batch: usize,
    stride: Time,
) -> ServeConfig {
    let spec = SchedulerSpec::from_name_with_half("fifo", 1).unwrap();
    let mut b = ServeConfig::builder(spec, 4)
        .shards(shards)
        .scenario("batched-diff")
        .routing(routing)
        .policy(OverloadPolicy::Block)
        // Generous: staging/backpressure never engages, so the only
        // difference between the two pools is batching + stride.
        .queue_cap(4096)
        .ingest_batch(ingest_batch)
        .watermark_stride(stride);
    if steal {
        b = b.steal(StealConfig::default());
    }
    b.build().expect("valid differential config")
}

/// Drive `jobs` through a pool; `batched` uses the coalescing source path,
/// otherwise every job is offered individually (the per-event reference,
/// equivalent to `ingest_batch = 1`, `stride = 0`). `swap_at` issues a
/// pool-wide LPF hot-swap before any arrival is offered.
fn run_pool(
    jobs: &[JobSpec],
    cfg: ServeConfig,
    batched: bool,
    swap_at: Option<Time>,
) -> Vec<ShardResult> {
    let pool = ShardPool::launch(cfg).expect("launch");
    if let Some(at) = swap_at {
        let lpf = SchedulerSpec::from_name_with_half("lpf", 1).unwrap();
        pool.swap(None, at, lpf).expect("swap accepted");
    }
    if batched {
        let mut src = ReplaySource::from_instance(&Instance::new(jobs.to_vec()));
        pool.run_source(&mut src).expect("stream");
    } else {
        for job in jobs {
            pool.offer(job.clone()).expect("offer");
        }
    }
    pool.drain().expect("drain")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn batched_ingest_is_bit_for_bit_the_per_event_path(
        jobs in arb_stream(40),
        shards_pick in 0usize..3,
        least_loaded in 0u8..2,
        steal_bit in 0u8..2,
        ingest_batch in 1usize..=48,
        stride in 0u64..=8,
        // 0 = no hot-swap; 1..=7 = pool-wide LPF swap at t = value - 1.
        swap_raw in 0u64..=7,
    ) {
        let shards = [1, 2, 4][shards_pick];
        let routing = if least_loaded == 1 { Routing::LeastLoaded } else { Routing::Hash };
        let steal = steal_bit == 1;
        let swap = swap_raw.checked_sub(1);
        let reference = run_pool(
            &jobs,
            config(shards, routing, steal, 1, 0),
            false,
            swap,
        );
        let batched = run_pool(
            &jobs,
            config(shards, routing, steal, ingest_batch, stride),
            true,
            swap,
        );
        prop_assert_eq!(reference.len(), batched.len());
        for (a, b) in reference.iter().zip(&batched) {
            prop_assert_eq!(a, b, "shard {} diverged under batching", a.shard);
        }
    }
}
