//! Telemetry integration tests: the metrics endpoint must be a pure
//! observer (bit-identical results with scraping on or off), sharded
//! latency histograms must merge losslessly, and the flight recorder must
//! agree with the authoritative control-plane ledgers (SwapEvents, the
//! steal ledger).

use flowtree_core::SchedulerSpec;
use flowtree_serve::{
    scrape_metrics, serve_metrics, AtomicHisto, FlightKind, ReplaySource, ServeConfig, ShardPool,
    StealConfig,
};
use flowtree_sim::LogHistogram;
use flowtree_workloads::mix::Scenario;
use proptest::prelude::*;

fn spec(name: &str) -> SchedulerSpec {
    SchedulerSpec::from_name_with_half(name, 1).expect("registry name parses")
}

/// Parse the trailing `x{count}` of a flight-event detail string.
fn detail_count(detail: &str) -> u64 {
    detail
        .rsplit('x')
        .next()
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("no xN suffix in {detail:?}"))
}

proptest! {
    /// Splitting a stream of samples across any number of per-shard
    /// histograms and merging the snapshots yields exactly the histogram
    /// of the whole stream — quantiles, mean, max, and count included.
    #[test]
    fn merged_shard_histograms_match_a_single_histogram(
        values in proptest::collection::vec(0u64..=1 << 40, 0..300),
        shards in 1usize..6,
    ) {
        let parts: Vec<AtomicHisto> = (0..shards).map(|_| AtomicHisto::new()).collect();
        let mut whole = LogHistogram::new();
        for (i, &v) in values.iter().enumerate() {
            parts[i % shards].record(v);
            whole.record(v);
        }
        let mut merged = LogHistogram::new();
        for p in &parts {
            merged.merge(&p.snapshot());
        }
        prop_assert_eq!(merged.count(), whole.count());
        prop_assert_eq!(merged.max(), whole.max());
        prop_assert_eq!(merged.mean(), whole.mean());
        prop_assert_eq!(merged.p50(), whole.p50());
        prop_assert_eq!(merged.p90(), whole.p90());
        prop_assert_eq!(merged.p99(), whole.p99());
    }
}

#[test]
fn metrics_endpoint_is_a_pure_observer_of_the_run() {
    // Same instance, same config; one pool additionally serves and is
    // scraped mid-run. Results must be bit-identical: the registry is
    // always on, so the endpoint only adds a reader.
    let inst = Scenario::service(40).instantiate(&mut flowtree_workloads::rng(17));
    let run = |with_endpoint: bool| {
        let cfg = ServeConfig::builder(spec("fifo"), 2)
            .shards(2)
            .scenario("service")
            .build()
            .expect("valid config");
        let pool = ShardPool::launch(cfg).expect("launch");
        let server = with_endpoint
            .then(|| serve_metrics("127.0.0.1:0", pool.handle()).expect("bind endpoint"));
        let mut src = ReplaySource::from_instance(&inst);
        pool.run_source(&mut src).expect("stream");
        if let Some(server) = &server {
            let body = scrape_metrics(&server.addr().to_string()).expect("scrape mid-run");
            assert!(body.contains("flowtree_ingest_offered_total 40"), "{body}");
            assert!(body.contains("flowtree_latency_us"), "{body}");
        }
        let results = pool.drain().expect("drain");
        if let Some(server) = server {
            server.shutdown();
        }
        results
    };
    let plain = run(false);
    let scraped = run(true);
    assert_eq!(plain.len(), scraped.len());
    for (a, b) in plain.iter().zip(&scraped) {
        assert_eq!(a.instance, b.instance, "shard {} instances diverge", a.shard);
        assert_eq!(a.report, b.report, "shard {} schedules diverge", a.shard);
        assert_eq!(a.summary, b.summary, "shard {} summaries diverge", a.shard);
    }
}

#[test]
fn metrics_snapshot_accounts_are_consistent_and_latencies_populate() {
    let inst = Scenario::service(30).instantiate(&mut flowtree_workloads::rng(5));
    let cfg = ServeConfig::builder(spec("fifo"), 2)
        .shards(2)
        .scenario("service")
        .build()
        .expect("valid config");
    let pool = ShardPool::launch(cfg).expect("launch");
    let handle = pool.handle();
    pool.run_source(&mut ReplaySource::from_instance(&inst)).expect("stream");
    pool.drain().expect("drain");

    let m = handle.metrics();
    assert_eq!(m.ingest.offered, 30);
    let staged: u64 = m.shards.iter().map(|s| s.staged as u64).sum();
    assert_eq!(m.ingest.delivered + m.ingest.dropped + staged, m.ingest.offered);
    assert_eq!(m.ingest.stolen_in, m.ingest.stolen_out);
    let merged = m.arrival_to_complete();
    assert_eq!(merged.count(), 30, "every job completion is latency-stamped");
    for t in &m.telemetry {
        assert_eq!(
            t.arrival_to_admit.count(),
            t.arrival_to_complete.count(),
            "shard {}: every admitted job completed",
            t.shard
        );
        assert!(t.lower_bound > 0, "shard {} lower bound never published", t.shard);
    }
    assert!(m.ratio().expect("drained pool has a ratio") >= 1.0);
    let text = m.render_prometheus();
    assert!(text.contains("flowtree_shard_flow_ratio"), "{text}");
    assert!(text.contains("quantile=\"0.99\""), "{text}");
}

#[test]
fn flight_recorder_swap_events_mirror_the_swap_ledger() {
    let inst = Scenario::service(20).instantiate(&mut flowtree_workloads::rng(9));
    let mid = inst.last_release() / 2;
    let cfg = ServeConfig::builder(spec("fifo"), 2)
        .shards(2)
        .scenario("swap")
        .build()
        .expect("valid config");
    let pool = ShardPool::launch(cfg).expect("launch");
    let handle = pool.handle();
    pool.swap(None, mid, spec("lpf")).expect("queue swap");
    pool.run_source(&mut ReplaySource::from_instance(&inst)).expect("stream");
    let results = pool.drain().expect("drain");

    let flight = handle.flight();
    for r in &results {
        let swaps: Vec<_> = flight
            .iter()
            .filter(|ev| ev.shard == r.shard && ev.kind == FlightKind::Swap)
            .collect();
        assert_eq!(swaps.len(), r.swaps.len(), "shard {} ring missed a swap", r.shard);
        for (ring, ledger) in swaps.iter().zip(&r.swaps) {
            assert_eq!(ring.t, ledger.t, "shard {} swap time diverges", r.shard);
            assert_eq!(
                ring.detail,
                format!("{}→{}", ledger.from, ledger.to),
                "shard {} swap detail diverges",
                r.shard
            );
        }
    }
    // Every shard also records its drain.
    for r in &results {
        assert!(
            flight.iter().any(|ev| ev.shard == r.shard && ev.kind == FlightKind::Drain),
            "shard {} never recorded its drain",
            r.shard
        );
    }
}

#[test]
fn flight_recorder_steal_events_balance_the_steal_ledger() {
    let scenario = Scenario::service(1);
    let mut src = flowtree_serve::GeneratorSource::new(&scenario, 4.0, 80, 23);
    let cfg = ServeConfig::builder(spec("fifo"), 2)
        .shards(3)
        .queue_cap(2)
        .scenario("steal")
        .steal(StealConfig { low_watermark: 0, high_watermark: 2 })
        .build()
        .expect("valid config");
    let pool = ShardPool::launch(cfg).expect("launch");
    let handle = pool.handle();
    pool.run_source(&mut src).expect("stream");
    let ingest = pool.ingest();
    pool.drain().expect("drain");

    let flight = handle.flight();
    let stolen_by_ring: u64 = flight
        .iter()
        .filter(|ev| ev.kind == FlightKind::Steal)
        .map(|ev| detail_count(&ev.detail))
        .sum();
    assert_eq!(stolen_by_ring, ingest.stolen_out, "steal ring diverges from the ledger");
    let donated_by_ring: u64 = flight
        .iter()
        .filter(|ev| ev.kind == FlightKind::Donate)
        .map(|ev| detail_count(&ev.detail))
        .sum();
    assert_eq!(donated_by_ring, ingest.stolen_in, "donate ring diverges from the ledger");
}
