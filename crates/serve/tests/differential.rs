//! Differential and soak tests for the sharded serve pipeline.
//!
//! The load-bearing guarantee: a one-shard pool replaying a recorded
//! instance is *bit for bit* the batch engine — same `RunReport`, same
//! certified `RunSummary` — and that still holds when the scheduler arrives
//! via a `--swap-at 0` control-plane hot-swap rather than the launch
//! config. The multi-shard tests then pin the operational properties:
//! overload with backpressure neither deadlocks nor loses jobs, work
//! stealing migrates jobs without losing or double-counting any, every
//! drained shard emits a valid, verified summary, and the persistent store
//! round-trips records that the trend renderer can consume.

use flowtree_analysis::summarize;
use flowtree_core::SchedulerSpec;
use flowtree_dag::builder::chain;
use flowtree_serve::{
    channel_source, GeneratorSource, OverloadPolicy, ReplaySource, ResultsStore, Routing,
    ServeConfig, ShardPool, StealConfig, StoreRecord,
};
use flowtree_sim::{Engine, JobSpec};
use flowtree_workloads::mix::Scenario;

fn spec(name: &str) -> SchedulerSpec {
    SchedulerSpec::from_name_with_half(name, 1).expect("registry name parses")
}

#[test]
fn one_shard_replay_is_bit_for_bit_identical_to_batch() {
    let scenario = Scenario::service(24);
    let inst = scenario.instantiate(&mut flowtree_workloads::rng(7));
    let m = 4;
    let fifo = spec("fifo");

    // Batch references: the monitored summary and a raw engine report.
    let batch_summary = summarize("service", &inst, m, fifo).expect("batch run");
    let mut sched = fifo.build();
    let batch_report = Engine::new(m)
        .with_max_horizon(100_000_000)
        .run(&inst, sched.as_mut())
        .expect("batch engine run");

    // Streamed: one shard consuming a replay of the same arrivals.
    let cfg = ServeConfig::builder(fifo, m).scenario("service").build().expect("valid config");
    let pool = ShardPool::launch(cfg).expect("launch");
    let mut src = ReplaySource::from_instance(&inst);
    assert_eq!(pool.run_source(&mut src).expect("stream"), 24);
    let results = pool.drain().expect("drain");
    assert_eq!(results.len(), 1);

    let streamed = &results[0];
    assert_eq!(streamed.instance, inst, "admissions materialize the replayed instance");
    assert_eq!(streamed.report, batch_report, "schedule, stats, and counters are identical");
    assert_eq!(streamed.summary, batch_summary, "certified summaries are identical");
    assert!(streamed.swaps.is_empty(), "no control-plane swaps were requested");
}

#[test]
fn swap_at_zero_is_bit_for_bit_identical_to_batch_under_the_new_scheduler() {
    // Launch under FIFO, hot-swap to LPF at t = 0 before any arrival: every
    // simulated step runs under LPF, so the run must be indistinguishable
    // from a batch LPF run — except for the recorded SwapEvent.
    let inst = Scenario::service(24).instantiate(&mut flowtree_workloads::rng(7));
    let m = 4;
    let lpf = spec("lpf");

    let batch_summary = summarize("service", &inst, m, lpf).expect("batch run");
    let mut sched = lpf.build();
    let batch_report = Engine::new(m)
        .with_max_horizon(100_000_000)
        .run(&inst, sched.as_mut())
        .expect("batch engine run");

    let cfg = ServeConfig::builder(spec("fifo"), m)
        .scenario("service")
        .build()
        .expect("valid config");
    let pool = ShardPool::launch(cfg).expect("launch");
    pool.swap(None, 0, lpf).expect("queue swap before arrivals");
    pool.run_source(&mut ReplaySource::from_instance(&inst)).expect("stream");
    let results = pool.drain().expect("drain");

    let streamed = &results[0];
    assert_eq!(streamed.instance, inst);
    assert_eq!(streamed.report, batch_report, "hot-swapped run diverges from batch LPF");
    assert_eq!(streamed.summary, batch_summary, "hot-swapped summary diverges from batch LPF");
    assert_eq!(streamed.swaps.len(), 1);
    let ev = &streamed.swaps[0];
    assert_eq!((ev.t, ev.from.as_str(), ev.to.as_str()), (0, "fifo", "lpf"));
}

#[test]
fn mid_stream_swap_accounts_for_every_job_and_stays_feasible() {
    let inst = Scenario::service(30).instantiate(&mut flowtree_workloads::rng(19));
    let mid = inst.last_release() / 2;
    let cfg = ServeConfig::builder(spec("fifo"), 2)
        .shards(2)
        .scenario("midswap")
        .build()
        .expect("valid config");
    let pool = ShardPool::launch(cfg).expect("launch");
    pool.swap(None, mid, spec("lpf")).expect("queue swap");
    let offered = pool.run_source(&mut ReplaySource::from_instance(&inst)).expect("stream");
    let ingest = pool.ingest();
    let results = pool.drain().expect("drain");

    let admitted: u64 = results.iter().map(|r| r.summary.jobs as u64).sum();
    assert_eq!(admitted, offered, "a mid-stream swap must not lose or duplicate jobs");
    assert_eq!(ingest.delivered + ingest.dropped, offered);
    for r in &results {
        assert_eq!(r.swaps.len(), 1, "shard {} missed its swap", r.shard);
        assert!(r.swaps[0].t >= mid, "swap applied early on shard {}", r.shard);
        assert_eq!(r.summary.scheduler, "lpf", "summary labels the final scheduler");
        assert!(r.summary.invariants_clean, "shard {}: {:?}", r.shard, r.summary.violations);
        r.report.verify(&r.instance).expect("feasible schedule across the swap");
    }
}

#[test]
fn stealing_pool_wide_books_balance_and_no_job_is_lost() {
    // Tiny queues + aggressive watermarks force staging and make migration
    // possible; the invariants must hold however the timing plays out.
    let scenario = Scenario::service(1);
    let mut src = GeneratorSource::new(&scenario, 4.0, 80, 23);
    let cfg = ServeConfig::builder(spec("fifo"), 2)
        .shards(3)
        .queue_cap(2)
        .scenario("steal")
        .steal(StealConfig { low_watermark: 0, high_watermark: 2 })
        .build()
        .expect("valid config");
    let pool = ShardPool::launch(cfg).expect("launch");
    let offered = pool.run_source(&mut src).expect("stream");
    assert_eq!(offered, 80);

    let snap = pool.snapshot();
    assert!(snap.accounting_balanced(), "mid-stream ledger: {:?}", snap.ingest);

    let ingest = pool.ingest();
    assert_eq!(ingest.stolen_in, ingest.stolen_out, "every stolen job lands exactly once");

    let results = pool.drain().expect("drain");
    let admitted: u64 = results.iter().map(|r| r.summary.jobs as u64).sum();
    assert_eq!(admitted, offered, "work stealing lost a job");
    for r in &results {
        assert_eq!(r.summary.jobs, r.instance.num_jobs());
        assert!(r.summary.invariants_clean, "shard {}: {:?}", r.shard, r.summary.violations);
        r.report.verify(&r.instance).expect("feasible shard schedule");
    }
}

#[test]
fn one_shard_replay_matches_batch_for_every_matrix_scheduler() {
    let inst = Scenario::analytics(10).instantiate(&mut flowtree_workloads::rng(13));
    let m = 4;
    for s in SchedulerSpec::matrix() {
        let batch = summarize("analytics", &inst, m, s).expect("batch run");
        let cfg = ServeConfig::builder(s, m).scenario("analytics").build().expect("valid config");
        let pool = ShardPool::launch(cfg).expect("launch");
        pool.run_source(&mut ReplaySource::from_instance(&inst)).expect("stream");
        let results = pool.drain().expect("drain");
        assert_eq!(results[0].summary, batch, "{} diverges from batch", s.name());
    }
}

#[test]
fn multi_shard_overload_backpressure_loses_nothing_and_conserves_work() {
    // queue_cap 2 with 60 arrivals over 3 shards forces real backpressure;
    // Block must neither deadlock nor drop.
    let scenario = Scenario::service(1);
    let mut src = GeneratorSource::new(&scenario, 2.0, 60, 11);
    let cfg = ServeConfig::builder(spec("fifo"), 2)
        .shards(3)
        .queue_cap(2)
        .scenario("overload")
        .routing(Routing::LeastLoaded)
        .build()
        .expect("valid config");
    let pool = ShardPool::launch(cfg).expect("launch");
    let offered = pool.run_source(&mut src).expect("stream");
    assert_eq!(offered, 60);

    let snap = pool.snapshot();
    assert_eq!(snap.ingest.offered, 60);
    assert_eq!(snap.ingest.delivered, 60);
    assert_eq!(snap.ingest.dropped, 0);

    let results = pool.drain().expect("drain");
    assert_eq!(results.len(), 3, "drain emits one result per shard");
    let total: usize = results.iter().map(|r| r.summary.jobs).sum();
    assert_eq!(total, 60, "no job lost under backpressure");
    for r in &results {
        assert_eq!(r.summary.jobs, r.instance.num_jobs());
        // FIFO is work-conserving; the per-shard streaming monitor must
        // agree (Lemma 5.5 on each shard's sub-instance).
        assert!(r.summary.invariants_clean, "shard {}: {:?}", r.shard, r.summary.violations);
        r.report.verify(&r.instance).expect("feasible shard schedule");
    }
}

#[test]
fn drop_newest_accounts_for_every_offered_job() {
    let scenario = Scenario::analytics(1);
    let mut src = GeneratorSource::new(&scenario, 4.0, 40, 3);
    let cfg = ServeConfig::builder(spec("fifo"), 2)
        .shards(2)
        .queue_cap(1)
        .policy(OverloadPolicy::DropNewest)
        .scenario("shed")
        .build()
        .expect("valid config");
    let pool = ShardPool::launch(cfg).expect("launch");
    let offered = pool.run_source(&mut src).expect("stream");
    let ingest = pool.ingest();
    let results = pool.drain().expect("drain");
    let admitted: u64 = results.iter().map(|r| r.summary.jobs as u64).sum();
    assert_eq!(ingest.delivered, admitted);
    assert_eq!(admitted + ingest.dropped, offered, "every offer is admitted or counted dropped");
    for r in &results {
        assert!(r.summary.invariants_clean);
    }
}

#[test]
fn redirect_policy_never_loses_jobs() {
    let scenario = Scenario::service(1);
    let mut src = GeneratorSource::new(&scenario, 3.0, 30, 5);
    let cfg = ServeConfig::builder(spec("fifo"), 2)
        .shards(2)
        .queue_cap(1)
        .policy(OverloadPolicy::Redirect)
        .scenario("redirect")
        .build()
        .expect("valid config");
    let pool = ShardPool::launch(cfg).expect("launch");
    let offered = pool.run_source(&mut src).expect("stream");
    let results = pool.drain().expect("drain");
    let admitted: u64 = results.iter().map(|r| r.summary.jobs as u64).sum();
    assert_eq!(admitted, offered, "redirect degrades to backpressure, never loss");
}

#[test]
fn channel_source_serves_an_external_producer_to_drain() {
    let (tx, mut src) = channel_source();
    let producer = std::thread::spawn(move || {
        for t in 0..10u64 {
            tx.send(JobSpec { graph: chain(3), release: t })
                .expect("pool outlives producer");
        }
        // Dropping the sender ends the stream.
    });
    let cfg = ServeConfig::builder(spec("fifo-lpf"), 2)
        .shards(2)
        .scenario("channel")
        .build()
        .expect("valid config");
    let pool = ShardPool::launch(cfg).expect("launch");
    let n = pool.run_source(&mut src).expect("stream");
    producer.join().expect("producer thread");
    assert_eq!(n, 10);
    let results = pool.drain().expect("drain");
    assert_eq!(results.iter().map(|r| r.summary.jobs).sum::<usize>(), 10);
}

#[test]
fn store_roundtrips_and_trend_renders_across_runs() {
    let dir = std::env::temp_dir().join(format!("flowtree-store-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = ResultsStore::open(&dir).expect("open store");

    let inst = Scenario::sort_farm(6).instantiate(&mut flowtree_workloads::rng(2));
    for name in ["fifo", "lpf"] {
        let summary = summarize("sort-farm", &inst, 4, spec(name)).expect("batch run");
        let record = StoreRecord {
            run_id: flowtree_serve::run_id("sort-farm", name, 4, 2),
            git: "test".to_string(),
            shard: 0,
            shards: 1,
            summary,
            swaps: Vec::new(),
        };
        let path = store.append(&record).expect("append");
        assert!(path.exists());
    }

    let records = store.load().expect("load store");
    assert_eq!(records.len(), 2);
    assert!(records.iter().any(|r| r.summary.scheduler == "fifo"));
    assert!(records.iter().any(|r| r.summary.scheduler == "lpf"));

    let tables = flowtree_serve::trend_tables(&records);
    assert_eq!(tables.len(), 1, "one (scenario, m) group");
    assert_eq!(tables[0].len(), 2, "one row per record");

    let md = flowtree_serve::render_trend(&records);
    assert!(md.contains("sort-farm") && md.contains("fifo") && md.contains("lpf"), "{md}");

    let plots = flowtree_serve::render_trend_plots(&records);
    assert!(plots.contains("ratio trend") && plots.contains("runs:"), "{plots}");
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

#[test]
fn serve_results_persist_and_reload_through_the_store() {
    // End to end: pool -> store -> load -> trend.
    let dir = std::env::temp_dir().join(format!("flowtree-serve-e2e-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = ResultsStore::open(&dir).expect("open store");

    let inst = Scenario::service(12).instantiate(&mut flowtree_workloads::rng(21));
    let cfg = ServeConfig::builder(spec("fifo"), 2)
        .shards(2)
        .scenario("service")
        .build()
        .expect("valid config");
    let pool = ShardPool::launch(cfg).expect("launch");
    pool.run_source(&mut ReplaySource::from_instance(&inst)).expect("stream");
    let results = pool.drain().expect("drain");
    let shards = results.len();
    for r in &results {
        let record = StoreRecord {
            run_id: flowtree_serve::run_id("service", "fifo", 2, 21),
            git: flowtree_serve::git_describe(),
            shard: r.shard,
            shards,
            summary: r.summary.clone(),
            swaps: r.swaps.clone(),
        };
        store.append(&record).expect("append");
    }
    let back = store.load().expect("reload");
    assert_eq!(back.len(), shards);
    for (record, r) in back.iter().zip(&results) {
        assert_eq!(record.summary, r.summary, "summary survives the JSONL roundtrip");
    }
    std::fs::remove_dir_all(&dir).expect("cleanup");
}
