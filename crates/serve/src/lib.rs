//! # flowtree-serve — sharded online simulation service
//!
//! Everything else in the workspace simulates a *known* [`Instance`]
//! (flowtree_sim::Instance) from `t = 0`; this crate runs the simulator as
//! a *service*: arrivals stream in asynchronously, get routed across a pool
//! of engine shards, and every drained shard persists its certified
//! [`RunSummary`](flowtree_analysis::RunSummary) into an append-only results
//! store that the CLI can trend across runs.
//!
//! The pieces, bottom-up:
//!
//! * [`source`] — where arrivals come from: replayed traces
//!   ([`ReplaySource`]), lazily sampled workload scenarios
//!   ([`GeneratorSource`]), or an external thread feeding a channel
//!   ([`ChannelSource`]).
//! * [`shard`] — one worker thread per shard driving a streaming
//!   [`Session`](flowtree_sim::Session) with the live monitor stack
//!   (`LowerBound` + `InvariantMonitor` + `RunHistograms`) attached as a
//!   probe tuple.
//! * [`pool`] — the [`ShardPool`] router: bounded queues, consistent-hash or
//!   least-loaded placement, and an explicit overload policy (block / drop /
//!   redirect). Correctness across shards rests on an **event-time
//!   watermark**: a shard simulates step `t` only once it knows no arrival
//!   with release `<= t` can still reach it, so a one-shard pool reproduces
//!   the batch engine's `RunReport` bit for bit (pinned by the differential
//!   tests). A **control plane** rides on the same channels
//!   ([`ShardCmd`](shard::ShardCmd)): runtime operations — offer, live
//!   scheduler hot-swap ([`PoolHandle::swap`]), synchronous quiesce,
//!   snapshots, drain requests — go through a cloneable [`PoolHandle`], and
//!   optional work stealing ([`StealConfig`]) migrates not-yet-admitted jobs
//!   from an overloaded shard's staged ingress to an idle one with exact
//!   accounting ([`IngestStats`]).
//! * [`telemetry`] — always-on observability for the pool: a lock-light
//!   metrics registry (per-shard atomic latency histograms for
//!   arrival→admit, admit→first-dispatch, and arrival→completion, plus
//!   live `max_flow`/lower-bound gauges), a Prometheus-style text
//!   exposition endpoint ([`serve_metrics`]) served over std TCP, and a
//!   bounded per-shard **flight recorder** of control-plane events
//!   (swap, steal, donate, watermark skip/retry, drop, redirect,
//!   quiesce, drain, panic) dumped as JSONL next to the results store.
//!   The shard probe stack is a 4-tuple: `LowerBound` +
//!   `InvariantMonitor` + `RunHistograms` + [`LatencyProbe`].
//! * [`store`] — append-only JSONL store of [`StoreRecord`]s (run id, git
//!   describe, shard, summary) under a directory like `results/store/`.
//! * [`trend`] — cross-run trend tables over store records (ratio,
//!   throughput, tail flow per scheduler × scenario).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod pool;
pub mod shard;
pub mod source;
pub mod store;
pub mod telemetry;
pub mod trend;

pub use pool::{
    IngestStats, OverloadPolicy, PoolHandle, PoolSnapshot, Routing, ServeConfig,
    ServeConfigBuilder, ServeError, ShardPool, StealConfig,
};
pub use shard::{Arrival, ShardResult, ShardSnapshot, SwapEvent};
pub use source::{channel_source, ArrivalSource, ChannelSource, GeneratorSource, ReplaySource};
pub use store::{
    gc_store, git_describe, load_records, ls_store, prune_history, run_id, GcFileReport, GcReport,
    LsFileReport, LsReport, PruneLimits, PruneReport, ResultsStore, StoreRecord, HISTORY_FILE,
    HISTORY_META_FILE,
};
pub use telemetry::{
    load_flight_jsonl, scrape_metrics, serve_metrics, serve_metrics_with, write_flight_jsonl,
    AtomicHisto, FlightEvent, FlightKind, FlightRecorder, LatencyProbe, MetricsExtra,
    MetricsServer, MetricsSnapshot, ScrapeError, ShardMetrics, ShardTelemetry, Telemetry,
};
pub use trend::{render_trend, render_trend_plots, trend_tables};
