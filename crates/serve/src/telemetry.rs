//! Live telemetry for the serve stack: a lock-light metrics registry,
//! wall-clock latency histograms, Prometheus-style text exposition over a
//! std-TCP endpoint, and a bounded control-plane flight recorder.
//!
//! The registry is **always on**: every pool owns one [`Telemetry`] and
//! every shard worker records into its own [`ShardTelemetry`] through
//! relaxed atomics ([`AtomicHisto`], gauge cells), so enabling the
//! exposition endpoint only adds a *reader* thread — it cannot perturb
//! routing, admission order, or simulation, which is what makes the
//! metrics-on/off differential test hold by construction.
//!
//! Three end-to-end wall-clock latencies are tracked per shard, all in
//! microseconds since the pool's epoch:
//!
//! * **arrival → admit** — router offer to session admission;
//! * **admit → first dispatch** — admission to the job's first subjob
//!   dispatch (recorded by [`LatencyProbe`], once per job);
//! * **arrival → completion** — router offer to the job's completion event.
//!
//! Control-plane happenings (scheduler swaps, steals/donations, watermark
//! skips and retries, overload drops and redirects, quiesces, drains,
//! worker panics) land in a bounded per-shard [`FlightRecorder`] ring as
//! structured [`FlightEvent`]s; the ring survives a worker panic (it lives
//! behind the pool's `Arc`), and the CLI dumps it as JSONL beside the
//! results store for `report --flight` to render.

use std::collections::VecDeque;
use std::io::{self, Read as _, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use flowtree_dag::{JobId, NodeId, Time};
use flowtree_sim::{LogHistogram, Probe};

use crate::pool::{IngestStats, PoolHandle};
use crate::shard::ShardSnapshot;

/// A lock-free log-bucketed histogram: the atomic twin of
/// [`LogHistogram`], with identical bucket boundaries
/// ([`LogHistogram::bucket_of`]). Writers [`record`](Self::record) through
/// relaxed atomics (a few uncontended fetch-adds per observation); readers
/// [`snapshot`](Self::snapshot) into a plain [`LogHistogram`] for
/// quantiles. Each field of a snapshot is individually exact; a snapshot
/// taken mid-record may skew `count` against `sum` by the records in
/// flight, which is the usual monitoring contract.
#[derive(Debug)]
pub struct AtomicHisto {
    counts: [AtomicU64; LogHistogram::NUM_BUCKETS],
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for AtomicHisto {
    fn default() -> Self {
        AtomicHisto {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

impl AtomicHisto {
    /// Fresh empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one observation (relaxed; never blocks).
    #[inline]
    pub fn record(&self, v: u64) {
        self.counts[LogHistogram::bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Materialize the current state as a [`LogHistogram`] (for quantiles,
    /// merging, and rendering).
    pub fn snapshot(&self) -> LogHistogram {
        let mut counts = [0u64; LogHistogram::NUM_BUCKETS];
        for (c, a) in counts.iter_mut().zip(&self.counts) {
            *c = a.load(Ordering::Relaxed);
        }
        LogHistogram::from_parts(
            &counts,
            self.sum.load(Ordering::Relaxed) as u128,
            self.max.load(Ordering::Relaxed),
        )
    }
}

/// What kind of control-plane event a [`FlightEvent`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlightKind {
    /// A scheduler hot-swap was applied on a shard.
    Swap,
    /// A shard admitted a batch of donated (stolen) jobs.
    Donate,
    /// The router migrated staged jobs from a victim to a thief.
    Steal,
    /// A watermark broadcast was skipped because the shard's queue was full.
    WmSkip,
    /// A previously skipped watermark value was successfully re-sent.
    WmRetry,
    /// An arrival was shed under the drop overload policy.
    Drop,
    /// An arrival was redirected away from its routed shard.
    Redirect,
    /// A shard settled at its watermark for a quiesce barrier.
    Quiesce,
    /// A shard received its drain order.
    Drain,
    /// A shard worker panicked (detail carries the error when known).
    Panic,
    /// A gateway client connection opened (detail carries the peer).
    ConnOpen,
    /// A gateway client connection closed (detail carries the peer).
    ConnClose,
    /// A gateway turned backpressure into a `Busy` reply instead of
    /// blocking a connection handler.
    Busy,
}

impl FlightKind {
    /// Stable wire name (used in JSONL dumps and `report --flight`).
    pub fn name(&self) -> &'static str {
        match self {
            FlightKind::Swap => "swap",
            FlightKind::Donate => "donate",
            FlightKind::Steal => "steal",
            FlightKind::WmSkip => "wm-skip",
            FlightKind::WmRetry => "wm-retry",
            FlightKind::Drop => "drop",
            FlightKind::Redirect => "redirect",
            FlightKind::Quiesce => "quiesce",
            FlightKind::Drain => "drain",
            FlightKind::Panic => "panic",
            FlightKind::ConnOpen => "conn-open",
            FlightKind::ConnClose => "conn-close",
            FlightKind::Busy => "busy",
        }
    }
}

impl std::fmt::Display for FlightKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for FlightKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        Ok(match s {
            "swap" => FlightKind::Swap,
            "donate" => FlightKind::Donate,
            "steal" => FlightKind::Steal,
            "wm-skip" => FlightKind::WmSkip,
            "wm-retry" => FlightKind::WmRetry,
            "drop" => FlightKind::Drop,
            "redirect" => FlightKind::Redirect,
            "quiesce" => FlightKind::Quiesce,
            "drain" => FlightKind::Drain,
            "panic" => FlightKind::Panic,
            "conn-open" => FlightKind::ConnOpen,
            "conn-close" => FlightKind::ConnClose,
            "busy" => FlightKind::Busy,
            other => return Err(format!("unknown flight event kind '{other}'")),
        })
    }
}

impl serde::Serialize for FlightKind {
    fn to_value(&self) -> serde::Value {
        serde::Value::Str(self.name().to_string())
    }
}

impl serde::Deserialize for FlightKind {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        v.as_str()
            .ok_or_else(|| serde::Error::custom("flight kind must be a string"))?
            .parse()
            .map_err(serde::Error::custom)
    }
}

/// One structured control-plane event in a shard's flight ring.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightEvent {
    /// Monotonic wall-clock timestamp: microseconds since the pool's epoch.
    pub us: u64,
    /// The shard the event concerns (for router-side events, the shard
    /// acted upon — the drop target, the steal victim, …).
    pub shard: usize,
    /// What happened.
    pub kind: FlightKind,
    /// The relevant *event* time (swap time, watermark value, release …);
    /// 0 when no event time applies.
    pub t: Time,
    /// Free-form context (`"fifo→lpf"`, `"2→0 x5"`, an error message …).
    pub detail: String,
}

serde::impl_serde_struct!(FlightEvent { us, shard, kind, t, detail });

/// A bounded ring of [`FlightEvent`]s. Control-plane events are rare (per
/// swap / steal round / overload incident, never per arrival or per step),
/// so a plain mutex around a `VecDeque` is cheap; when the ring is full the
/// oldest event is discarded and counted in [`dropped`](Self::dropped).
#[derive(Debug)]
pub struct FlightRecorder {
    cap: usize,
    inner: Mutex<FlightInner>,
}

#[derive(Debug, Default)]
struct FlightInner {
    buf: VecDeque<FlightEvent>,
    dropped: u64,
}

impl FlightRecorder {
    /// A ring holding at most `cap` events (`cap >= 1`).
    pub fn new(cap: usize) -> Self {
        assert!(cap >= 1, "a flight ring needs at least one slot");
        FlightRecorder { cap, inner: Mutex::new(FlightInner::default()) }
    }

    /// Append one event, evicting the oldest if the ring is full.
    pub fn record(&self, ev: FlightEvent) {
        let mut inner = self.inner.lock().expect("flight ring lock");
        if inner.buf.len() == self.cap {
            inner.buf.pop_front();
            inner.dropped += 1;
        }
        inner.buf.push_back(ev);
    }

    /// The ring's current contents, oldest first (the ring is not cleared).
    pub fn events(&self) -> Vec<FlightEvent> {
        self.inner.lock().expect("flight ring lock").buf.iter().cloned().collect()
    }

    /// Events currently held.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("flight ring lock").buf.len()
    }

    /// Is the ring empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().expect("flight ring lock").dropped
    }
}

/// One shard's always-on telemetry cell: latency histograms, live gauges,
/// and the flight ring. Lives behind an `Arc` shared by the worker, the
/// router, and every reader, so it survives a worker panic.
#[derive(Debug)]
pub struct ShardTelemetry {
    epoch: Instant,
    /// Wall-clock µs from router offer to session admission.
    pub arrival_to_admit: AtomicHisto,
    /// Wall-clock µs from admission to the job's first subjob dispatch.
    pub admit_to_first_dispatch: AtomicHisto,
    /// Wall-clock µs from router offer to the job's completion event.
    pub arrival_to_complete: AtomicHisto,
    violations: AtomicU64,
    max_flow: AtomicU64,
    lower_bound: AtomicU64,
    /// Bounded ring of control-plane events.
    pub flight: FlightRecorder,
}

impl ShardTelemetry {
    fn new(epoch: Instant, flight_cap: usize) -> Self {
        ShardTelemetry {
            epoch,
            arrival_to_admit: AtomicHisto::new(),
            admit_to_first_dispatch: AtomicHisto::new(),
            arrival_to_complete: AtomicHisto::new(),
            violations: AtomicU64::new(0),
            max_flow: AtomicU64::new(0),
            lower_bound: AtomicU64::new(0),
            flight: FlightRecorder::new(flight_cap),
        }
    }

    /// Microseconds since the pool's epoch (the flight-event clock).
    #[inline]
    pub fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    /// Publish the live theory gauges (worker side, once per simulation
    /// window): invariant-violation total, observed max flow, and the
    /// streaming Lemma 5.1 lower bound.
    pub fn set_gauges(&self, violations: u64, max_flow: u64, lower_bound: u64) {
        self.violations.store(violations, Ordering::Relaxed);
        self.max_flow.store(max_flow, Ordering::Relaxed);
        self.lower_bound.store(lower_bound, Ordering::Relaxed);
    }

    /// Materialize this shard's metrics for shard index `shard`.
    pub fn metrics(&self, shard: usize) -> ShardMetrics {
        ShardMetrics {
            shard,
            arrival_to_admit: self.arrival_to_admit.snapshot(),
            admit_to_first_dispatch: self.admit_to_first_dispatch.snapshot(),
            arrival_to_complete: self.arrival_to_complete.snapshot(),
            violations: self.violations.load(Ordering::Relaxed),
            max_flow: self.max_flow.load(Ordering::Relaxed),
            lower_bound: self.lower_bound.load(Ordering::Relaxed),
            flight_len: self.flight.len(),
            flight_dropped: self.flight.dropped(),
        }
    }
}

/// The pool-wide metrics registry: one [`ShardTelemetry`] per shard plus
/// the shared epoch all timestamps are measured from.
#[derive(Debug)]
pub struct Telemetry {
    epoch: Instant,
    shards: Vec<Arc<ShardTelemetry>>,
}

impl Telemetry {
    /// A registry for `shards` shards, each with a `flight_cap`-slot ring.
    pub fn new(shards: usize, flight_cap: usize) -> Self {
        let epoch = Instant::now();
        Telemetry {
            epoch,
            shards: (0..shards).map(|_| Arc::new(ShardTelemetry::new(epoch, flight_cap))).collect(),
        }
    }

    /// Shard `i`'s telemetry cell.
    pub fn shard(&self, i: usize) -> &Arc<ShardTelemetry> {
        &self.shards[i]
    }

    /// All shard cells, indexed by shard.
    pub fn shards(&self) -> &[Arc<ShardTelemetry>] {
        &self.shards
    }

    /// Microseconds since the registry was created.
    #[inline]
    pub fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    /// Every shard's flight events, merged and sorted by timestamp.
    pub fn flight_events(&self) -> Vec<FlightEvent> {
        let mut all: Vec<FlightEvent> =
            self.shards.iter().flat_map(|s| s.flight.events()).collect();
        all.sort_by_key(|e| e.us);
        all
    }
}

/// The per-shard latency probe: rides as the fourth element of the shard's
/// probe tuple and records admit→first-dispatch and arrival→completion
/// latencies into the shard's [`ShardTelemetry`]. The worker feeds it
/// offer/admit stamps via [`stamp`](Self::stamp) right after each
/// admission; the probe hooks handle the rest. Cost is one `Instant::now`
/// per *job* milestone (never per subjob), plus a vec lookup per dispatch.
#[derive(Debug)]
pub struct LatencyProbe {
    tel: Arc<ShardTelemetry>,
    offered_us: Vec<u64>,
    admitted_us: Vec<u64>,
    dispatched: Vec<bool>,
}

impl LatencyProbe {
    /// A probe recording into `tel`.
    pub fn new(tel: Arc<ShardTelemetry>) -> Self {
        LatencyProbe {
            tel,
            offered_us: Vec::new(),
            admitted_us: Vec::new(),
            dispatched: Vec::new(),
        }
    }

    /// Register `job`'s wall-clock stamps: when the router first saw it
    /// (`offered_us`) and when the session admitted it (`admit_us`).
    /// Records the arrival→admit observation immediately.
    pub fn stamp(&mut self, job: JobId, offered_us: u64, admit_us: u64) {
        let i = job.index();
        if i >= self.offered_us.len() {
            self.offered_us.resize(i + 1, 0);
            self.admitted_us.resize(i + 1, 0);
            self.dispatched.resize(i + 1, false);
        }
        self.offered_us[i] = offered_us;
        self.admitted_us[i] = admit_us;
        self.tel.arrival_to_admit.record(admit_us.saturating_sub(offered_us));
    }
}

impl Probe for LatencyProbe {
    #[inline]
    fn on_dispatch(&mut self, _t: Time, job: JobId, _node: NodeId) {
        let i = job.index();
        if i < self.dispatched.len() && !self.dispatched[i] {
            self.dispatched[i] = true;
            let now = self.tel.now_us();
            self.tel.admit_to_first_dispatch.record(now.saturating_sub(self.admitted_us[i]));
        }
    }

    #[inline]
    fn on_complete(&mut self, _t: Time, job: JobId) {
        let i = job.index();
        if i < self.offered_us.len() {
            let now = self.tel.now_us();
            self.tel.arrival_to_complete.record(now.saturating_sub(self.offered_us[i]));
        }
    }

    /// Idle gaps carry no job milestones; an O(1) no-op keeps fast-forward
    /// fast (the default impl would replay the gap stepwise).
    #[inline]
    fn on_idle_gap(&mut self, _t0: Time, _steps: Time, _m: usize) {}
}

/// One shard's materialized metrics (see [`ShardTelemetry::metrics`]).
#[derive(Debug, Clone)]
pub struct ShardMetrics {
    /// Shard index.
    pub shard: usize,
    /// Arrival→admit latency distribution (µs).
    pub arrival_to_admit: LogHistogram,
    /// Admit→first-dispatch latency distribution (µs).
    pub admit_to_first_dispatch: LogHistogram,
    /// Arrival→completion latency distribution (µs).
    pub arrival_to_complete: LogHistogram,
    /// Live invariant-violation total.
    pub violations: u64,
    /// Live observed max flow over completed jobs.
    pub max_flow: u64,
    /// Live streaming Lemma 5.1 lower bound.
    pub lower_bound: u64,
    /// Flight events currently in the ring.
    pub flight_len: usize,
    /// Flight events evicted because the ring was full.
    pub flight_dropped: u64,
}

impl ShardMetrics {
    /// Live `max_flow / LB` competitive-ratio gauge (`None` before the
    /// first completion, mirroring the streaming monitor).
    pub fn ratio(&self) -> Option<f64> {
        (self.max_flow > 0).then(|| self.max_flow as f64 / self.lower_bound.max(1) as f64)
    }
}

/// A merged point-in-time view of the whole pool's telemetry: ingest
/// counters, per-shard progress, and per-shard latency/gauge metrics.
/// Returned by [`PoolHandle::metrics`]; rendered by
/// [`render_prometheus`](Self::render_prometheus).
#[derive(Debug, Clone)]
pub struct MetricsSnapshot {
    /// Microseconds since the pool launched.
    pub uptime_us: u64,
    /// Ingest counters at snapshot time.
    pub ingest: IngestStats,
    /// Per-shard progress, indexed by shard.
    pub shards: Vec<ShardSnapshot>,
    /// Per-shard telemetry, indexed by shard.
    pub telemetry: Vec<ShardMetrics>,
}

impl MetricsSnapshot {
    /// Pool-wide arrival→completion latency: the per-shard histograms
    /// merged (exact — merging disjoint streams is lossless).
    pub fn arrival_to_complete(&self) -> LogHistogram {
        let mut merged = LogHistogram::new();
        for t in &self.telemetry {
            merged.merge(&t.arrival_to_complete);
        }
        merged
    }

    /// Worst live per-shard `max_flow / LB` ratio (`None` until some shard
    /// completes a job).
    pub fn ratio(&self) -> Option<f64> {
        self.telemetry.iter().filter_map(|t| t.ratio()).fold(None, |acc, r| {
            Some(match acc {
                Some(a) if a >= r => a,
                _ => r,
            })
        })
    }

    /// Invariant violations summed across shards.
    pub fn total_violations(&self) -> u64 {
        self.telemetry.iter().map(|t| t.violations).sum()
    }

    /// Render the snapshot in the Prometheus text exposition format
    /// (`text/plain; version=0.0.4`): `_total` counters for ingest,
    /// per-shard gauges, and per-stage latency summaries with
    /// `quantile`-labelled p50/p90/p99 plus `_max`, `_mean`, `_count`.
    pub fn render_prometheus(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(4096);
        let _ = writeln!(out, "# HELP flowtree_uptime_seconds Seconds since the pool launched.");
        let _ = writeln!(out, "# TYPE flowtree_uptime_seconds gauge");
        let _ = writeln!(out, "flowtree_uptime_seconds {}", self.uptime_us as f64 / 1e6);

        let ing = &self.ingest;
        let counters: [(&str, u64, &str); 8] = [
            ("offered", ing.offered, "Arrivals offered to the pool."),
            ("delivered", ing.delivered, "Arrivals delivered to some shard."),
            ("dropped", ing.dropped, "Arrivals shed under the drop policy."),
            ("redirected", ing.redirected, "Arrivals placed off their routed shard."),
            ("reordered", ing.reordered, "Arrivals whose release was clamped forward."),
            ("stolen_in", ing.stolen_in, "Jobs migrated onto an underloaded shard."),
            ("stolen_out", ing.stolen_out, "Jobs migrated off an overloaded shard."),
            ("wm_skipped", ing.wm_skipped, "Watermark broadcasts skipped on full queues."),
        ];
        for (name, v, help) in counters {
            let _ = writeln!(out, "# HELP flowtree_ingest_{name}_total {help}");
            let _ = writeln!(out, "# TYPE flowtree_ingest_{name}_total counter");
            let _ = writeln!(out, "flowtree_ingest_{name}_total {v}");
        }

        let _ = writeln!(out, "# HELP flowtree_shard_now The shard's simulated clock.");
        let _ = writeln!(out, "# TYPE flowtree_shard_now gauge");
        for (i, s) in self.shards.iter().enumerate() {
            let _ = writeln!(out, "flowtree_shard_now{{shard=\"{i}\"}} {}", s.now);
        }
        type GaugeRow<'a, T> = (&'a str, &'a dyn Fn(&T) -> u64, &'a str);
        let shard_gauges: [GaugeRow<'_, ShardSnapshot>; 7] = [
            ("admitted", &|s| s.admitted as u64, "Jobs admitted so far."),
            ("steps", &|s| s.steps, "Steps simulated so far."),
            ("dispatched", &|s| s.dispatched, "Subjobs dispatched so far."),
            ("queue_len", &|s| s.queue_len as u64, "Commands queued to the shard."),
            ("staged", &|s| s.staged as u64, "Arrivals staged router-side for the shard."),
            ("donated", &|s| s.donated, "Jobs admitted via donation (stolen in)."),
            ("swaps", &|s| s.swaps, "Scheduler hot-swaps applied."),
        ];
        for (name, get, help) in shard_gauges {
            let _ = writeln!(out, "# HELP flowtree_shard_{name} {help}");
            let _ = writeln!(out, "# TYPE flowtree_shard_{name} gauge");
            for (i, s) in self.shards.iter().enumerate() {
                let _ = writeln!(out, "flowtree_shard_{name}{{shard=\"{i}\"}} {}", get(s));
            }
        }

        let tel_gauges: [GaugeRow<'_, ShardMetrics>; 5] = [
            ("violations", &|t| t.violations, "Live invariant-violation total."),
            ("max_flow", &|t| t.max_flow, "Live observed max flow."),
            ("lower_bound", &|t| t.lower_bound, "Live Lemma 5.1 lower bound."),
            ("flight_events", &|t| t.flight_len as u64, "Flight events in the ring."),
            ("flight_dropped", &|t| t.flight_dropped, "Flight events evicted from the ring."),
        ];
        for (name, get, help) in tel_gauges {
            let _ = writeln!(out, "# HELP flowtree_shard_{name} {help}");
            let _ = writeln!(out, "# TYPE flowtree_shard_{name} gauge");
            for t in &self.telemetry {
                let _ = writeln!(out, "flowtree_shard_{name}{{shard=\"{}\"}} {}", t.shard, get(t));
            }
        }
        let _ = writeln!(out, "# HELP flowtree_shard_flow_ratio Live max_flow/LB ratio.");
        let _ = writeln!(out, "# TYPE flowtree_shard_flow_ratio gauge");
        for t in &self.telemetry {
            if let Some(r) = t.ratio() {
                let _ = writeln!(out, "flowtree_shard_flow_ratio{{shard=\"{}\"}} {r}", t.shard);
            }
        }

        let _ = writeln!(
            out,
            "# HELP flowtree_latency_us End-to-end wall-clock latency summaries (µs)."
        );
        let _ = writeln!(out, "# TYPE flowtree_latency_us summary");
        for t in &self.telemetry {
            for (stage, h) in [
                ("arrival_to_admit", &t.arrival_to_admit),
                ("admit_to_first_dispatch", &t.admit_to_first_dispatch),
                ("arrival_to_complete", &t.arrival_to_complete),
            ] {
                let base = format!("stage=\"{stage}\",shard=\"{}\"", t.shard);
                for (q, v) in [("0.5", h.p50()), ("0.9", h.p90()), ("0.99", h.p99())] {
                    let _ = writeln!(out, "flowtree_latency_us{{{base},quantile=\"{q}\"}} {v}");
                }
                let _ = writeln!(out, "flowtree_latency_us_max{{{base}}} {}", h.max());
                let _ = writeln!(out, "flowtree_latency_us_mean{{{base}}} {}", h.mean());
                let _ = writeln!(out, "flowtree_latency_us_count{{{base}}} {}", h.count());
            }
        }
        out
    }
}

/// A running metrics exposition endpoint (see [`serve_metrics`]). Dropping
/// (or calling [`shutdown`](Self::shutdown)) stops the listener thread.
#[derive(Debug)]
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// The address the listener actually bound (resolves `:0` ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop the listener thread and wait for it to exit.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        // The listener thread parks in a *blocking* `accept` (a sleeping
        // poll loop would wake on a timer and preempt busy cores for
        // nothing); wake it with a throwaway connection so it observes the
        // stop flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// An extra exposition provider: called per scrape, its output is appended
/// verbatim after the pool's own exposition (it must be well-formed
/// Prometheus text itself). This is how a front door (the gateway) gets its
/// per-connection gauges onto the *existing* endpoint instead of a second
/// port.
pub type MetricsExtra = Arc<dyn Fn() -> String + Send + Sync>;

/// Serve `handle`'s metrics over HTTP on `addr` (e.g. `127.0.0.1:9464`, or
/// port 0 to pick a free one). Every request — any path — receives the
/// current [`MetricsSnapshot`] rendered in the Prometheus text format.
/// Plain std TCP, one reader thread, no new dependencies; scraping reads
/// the same atomics the workers write, so it cannot perturb results. The
/// listener thread blocks in `accept` between requests — it never wakes on
/// a timer, so an idle endpoint costs the pool nothing even on a
/// single-core host ([`MetricsServer::shutdown`] wakes it with a poke
/// connection).
pub fn serve_metrics(addr: &str, handle: PoolHandle) -> io::Result<MetricsServer> {
    serve_metrics_with(addr, handle, None)
}

/// [`serve_metrics`] plus an optional [`MetricsExtra`] appended to every
/// scrape body.
pub fn serve_metrics_with(
    addr: &str,
    handle: PoolHandle,
    extra: Option<MetricsExtra>,
) -> io::Result<MetricsServer> {
    let listener = TcpListener::bind(addr)?;
    let bound = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let flag = Arc::clone(&stop);
    let thread =
        std::thread::Builder::new()
            .name("flowtree-metrics".to_string())
            .spawn(move || {
                while let Ok((stream, _)) = listener.accept() {
                    if flag.load(Ordering::Relaxed) {
                        break;
                    }
                    let _ = respond(stream, &handle, extra.as_ref());
                }
            })?;
    Ok(MetricsServer { addr: bound, stop, thread: Some(thread) })
}

fn respond(
    mut stream: TcpStream,
    handle: &PoolHandle,
    extra: Option<&MetricsExtra>,
) -> io::Result<()> {
    stream.set_nonblocking(false)?;
    stream.set_read_timeout(Some(Duration::from_millis(500)))?;
    // Consume (and ignore) the request head; every path serves metrics.
    let mut buf = [0u8; 1024];
    let _ = stream.read(&mut buf);
    let mut body = handle.metrics().render_prometheus();
    if let Some(extra) = extra {
        body.push_str(&extra());
    }
    let head = format!(
        "HTTP/1.0 200 OK\r\nContent-Type: text/plain; version=0.0.4\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())
}

/// Why a [`scrape_metrics`] call failed. Every variant's message names the
/// scraped address, so a CI log or CLI error points straight at the
/// endpoint that was (or wasn't) there.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScrapeError {
    /// Nothing is listening at the address (the usual CI race: the serve
    /// process has not bound its `--metrics-addr` yet, or already exited).
    Refused {
        /// The address that refused the connection.
        addr: String,
    },
    /// Some other socket-level failure (timeout, reset, unroutable …).
    Io {
        /// The address being scraped.
        addr: String,
        /// The underlying error, stringified.
        err: String,
    },
    /// The response was not an HTTP reply with a header/body split.
    Malformed {
        /// The address that replied.
        addr: String,
    },
}

impl ScrapeError {
    /// Whether retrying later could plausibly succeed (the endpoint may
    /// simply not be up yet).
    pub fn is_retryable(&self) -> bool {
        !matches!(self, ScrapeError::Malformed { .. })
    }
}

impl std::fmt::Display for ScrapeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScrapeError::Refused { addr } => write!(
                f,
                "connection refused by {addr} — is a serve/gateway run with \
                 --metrics-addr {addr} up?"
            ),
            ScrapeError::Io { addr, err } => write!(f, "scrape {addr}: {err}"),
            ScrapeError::Malformed { addr } => {
                write!(f, "scrape {addr}: response has no HTTP header/body split")
            }
        }
    }
}

impl std::error::Error for ScrapeError {}

/// One-shot scrape: GET `addr` and return the exposition body (headers
/// stripped). The client half of [`serve_metrics`], used by the
/// `flowtree-repro metrics` subcommand and the CI smoke test.
pub fn scrape_metrics(addr: &str) -> Result<String, ScrapeError> {
    let classify = |e: io::Error| match e.kind() {
        io::ErrorKind::ConnectionRefused => ScrapeError::Refused { addr: addr.to_string() },
        _ => ScrapeError::Io { addr: addr.to_string(), err: e.to_string() },
    };
    let mut stream = TcpStream::connect(addr).map_err(classify)?;
    stream.set_read_timeout(Some(Duration::from_secs(5))).map_err(classify)?;
    stream
        .write_all(b"GET /metrics HTTP/1.0\r\nHost: flowtree\r\n\r\n")
        .map_err(classify)?;
    let mut text = String::new();
    stream.read_to_string(&mut text).map_err(classify)?;
    match text.split_once("\r\n\r\n") {
        Some((_, body)) => Ok(body.to_string()),
        None => Err(ScrapeError::Malformed { addr: addr.to_string() }),
    }
}

/// Write `events` as JSONL (one [`FlightEvent`] object per line).
pub fn write_flight_jsonl(path: &Path, events: &[FlightEvent]) -> io::Result<()> {
    let mut out = String::new();
    for ev in events {
        let line = serde_json::to_string(ev)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        out.push_str(&line);
        out.push('\n');
    }
    std::fs::write(path, out)
}

/// Load a flight JSONL dump written by [`write_flight_jsonl`].
pub fn load_flight_jsonl(path: &Path) -> io::Result<Vec<FlightEvent>> {
    let text = std::fs::read_to_string(path)?;
    let mut events = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let ev: FlightEvent = serde_json::from_str(line).map_err(|e| {
            io::Error::new(io::ErrorKind::InvalidData, format!("{}:{}: {e}", path.display(), i + 1))
        })?;
        events.push(ev);
    }
    Ok(events)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atomic_histo_snapshot_matches_plain_histogram() {
        let atomic = AtomicHisto::new();
        let mut plain = LogHistogram::new();
        for v in [0u64, 1, 2, 7, 100, 1_000_000, 5] {
            atomic.record(v);
            plain.record(v);
        }
        let snap = atomic.snapshot();
        assert_eq!(snap.count(), plain.count());
        assert_eq!(snap.max(), plain.max());
        assert_eq!(snap.p50(), plain.p50());
        assert_eq!(snap.p99(), plain.p99());
        assert!((snap.mean() - plain.mean()).abs() < 1e-9);
    }

    #[test]
    fn flight_ring_bounds_and_counts_evictions() {
        let ring = FlightRecorder::new(3);
        for i in 0..5u64 {
            ring.record(FlightEvent {
                us: i,
                shard: 0,
                kind: FlightKind::Swap,
                t: i,
                detail: String::new(),
            });
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.dropped(), 2);
        let events = ring.events();
        assert_eq!(events.first().map(|e| e.us), Some(2));
        assert_eq!(events.last().map(|e| e.us), Some(4));
    }

    #[test]
    fn flight_events_roundtrip_through_jsonl() {
        let dir = std::env::temp_dir().join(format!("flowtree-flight-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("flight.jsonl");
        let events = vec![
            FlightEvent {
                us: 12,
                shard: 0,
                kind: FlightKind::Swap,
                t: 4,
                detail: "fifo→lpf".to_string(),
            },
            FlightEvent {
                us: 34,
                shard: 1,
                kind: FlightKind::Steal,
                t: 0,
                detail: "1→0 x5".to_string(),
            },
        ];
        write_flight_jsonl(&path, &events).expect("write");
        let back = load_flight_jsonl(&path).expect("load");
        assert_eq!(back, events);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn flight_kind_names_roundtrip() {
        for k in [
            FlightKind::Swap,
            FlightKind::Donate,
            FlightKind::Steal,
            FlightKind::WmSkip,
            FlightKind::WmRetry,
            FlightKind::Drop,
            FlightKind::Redirect,
            FlightKind::Quiesce,
            FlightKind::Drain,
            FlightKind::Panic,
            FlightKind::ConnOpen,
            FlightKind::ConnClose,
            FlightKind::Busy,
        ] {
            assert_eq!(k.name().parse::<FlightKind>(), Ok(k));
        }
        assert!("warp".parse::<FlightKind>().is_err());
    }

    #[test]
    fn refused_scrapes_report_a_typed_error_naming_the_address() {
        // Bind then drop a listener so the port is known-free: the connect
        // must be refused, not time out.
        let addr = {
            let l = TcpListener::bind("127.0.0.1:0").expect("bind");
            l.local_addr().expect("addr").to_string()
        };
        let err = scrape_metrics(&addr).expect_err("nothing listening");
        assert_eq!(err, ScrapeError::Refused { addr: addr.clone() });
        assert!(err.is_retryable());
        let msg = err.to_string();
        assert!(msg.contains(&addr), "{msg}");
        assert!(msg.contains("refused"), "{msg}");
        assert!(!ScrapeError::Malformed { addr }.is_retryable());
    }

    #[test]
    fn latency_probe_records_job_milestones_once() {
        let tel = Arc::new(ShardTelemetry::new(Instant::now(), 8));
        let mut probe = LatencyProbe::new(Arc::clone(&tel));
        probe.stamp(JobId(0), 0, 10);
        probe.on_dispatch(0, JobId(0), NodeId(0));
        probe.on_dispatch(0, JobId(0), NodeId(1)); // second dispatch: no-op
        probe.on_complete(1, JobId(0));
        assert_eq!(tel.arrival_to_admit.snapshot().count(), 1);
        assert_eq!(tel.arrival_to_admit.snapshot().max(), 10);
        assert_eq!(tel.admit_to_first_dispatch.snapshot().count(), 1);
        assert_eq!(tel.arrival_to_complete.snapshot().count(), 1);
    }
}
