//! Arrival sources: where streamed jobs come from.
//!
//! An [`ArrivalSource`] yields [`JobSpec`]s one at a time in nondecreasing
//! release order — the same contract [`Session::admit`](flowtree_sim::Session)
//! enforces. Three implementations cover the serving use cases: replaying a
//! recorded trace ([`ReplaySource`]), sampling a workload scenario lazily at
//! a target arrival rate ([`GeneratorSource`]), and pulling from a channel
//! fed by another thread ([`ChannelSource`]).
//!
//! The nondecreasing-release contract holds at the *source*; downstream the
//! pool may reorder per shard. In particular a stealing pool re-releases
//! donated jobs at the thief (clamped to the thief's clock and last admitted
//! release), so per-shard admit order stays monotone even though the global
//! interleaving differs from the source order.

use std::collections::VecDeque;

use crossbeam::channel;
use flowtree_dag::{JobGraph, Time};
use flowtree_sim::{Instance, JobSpec};
use flowtree_workloads::mix::{Scenario, Shape};
use flowtree_workloads::Rng;
use rand::Rng as _;

/// A stream of job arrivals in nondecreasing release order.
///
/// `None` ends the stream; a pool reading the source then drains its shards.
/// Sources must be `Send` so a caller may pump one from a dedicated thread.
pub trait ArrivalSource: Send {
    /// The next arrival, or `None` when the stream is exhausted. May block
    /// (e.g. [`ChannelSource`] waits for its producer).
    fn next_arrival(&mut self) -> Option<JobSpec>;

    /// Append the next ingest batch to `out` (callers pass it empty): up to
    /// `max` arrivals whose releases stay within `span` of the first one.
    /// Returns how many were appended; 0 ends the stream. The span rule
    /// keeps batching from changing event-time semantics — a batch never
    /// spans more frontier than one watermark stride would. The default
    /// forwards a single [`next_arrival`](Self::next_arrival); sources
    /// override it to hand over bursts without per-job dispatch.
    fn next_batch(&mut self, max: usize, span: Time, out: &mut Vec<JobSpec>) -> usize {
        let _ = (max, span);
        match self.next_arrival() {
            Some(spec) => {
                out.push(spec);
                1
            }
            None => 0,
        }
    }
}

/// Replays a recorded instance (or JSONL trace) job by job.
#[derive(Debug, Clone)]
pub struct ReplaySource {
    jobs: VecDeque<JobSpec>,
}

impl ReplaySource {
    /// Replay the jobs of `instance` in arrival order.
    pub fn from_instance(instance: &Instance) -> Self {
        ReplaySource { jobs: instance.jobs().iter().cloned().collect() }
    }

    /// Parse a trace: either one JSON [`Instance`] document, or JSONL with
    /// one [`JobSpec`] per line (releases must be nondecreasing).
    pub fn from_json(text: &str) -> Result<Self, String> {
        if let Ok(inst) = serde_json::from_str::<Instance>(text) {
            return Ok(Self::from_instance(&inst));
        }
        let mut jobs: VecDeque<JobSpec> = VecDeque::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let spec: JobSpec = serde_json::from_str(line)
                .map_err(|e| format!("trace line {}: {e}", lineno + 1))?;
            if let Some(last) = jobs.back() {
                if spec.release < last.release {
                    return Err(format!(
                        "trace line {}: release {} goes backwards (after {})",
                        lineno + 1,
                        spec.release,
                        last.release
                    ));
                }
            }
            jobs.push_back(spec);
        }
        if jobs.is_empty() {
            return Err("trace contains no jobs".to_string());
        }
        Ok(ReplaySource { jobs })
    }

    /// Arrivals not yet replayed.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Is the trace exhausted?
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }
}

impl ArrivalSource for ReplaySource {
    fn next_arrival(&mut self) -> Option<JobSpec> {
        self.jobs.pop_front()
    }

    fn next_batch(&mut self, max: usize, span: Time, out: &mut Vec<JobSpec>) -> usize {
        let Some(first) = self.jobs.pop_front() else {
            return 0;
        };
        let cutoff = first.release.saturating_add(span);
        out.push(first);
        while out.len() < max {
            match self.jobs.front() {
                Some(job) if job.release <= cutoff => {
                    let job = self.jobs.pop_front().expect("front peeked");
                    out.push(job);
                }
                _ => break,
            }
        }
        out.len()
    }
}

/// Samples jobs from a [`Scenario`] blend lazily, arriving as a Bernoulli
/// process at a target rate of `rate` expected jobs per step (the same
/// thinning [`flowtree_workloads`] uses for load-targeted streams), until a
/// fixed job budget is spent.
#[derive(Debug, Clone)]
pub struct GeneratorSource {
    blend: Vec<(Shape, u32)>,
    total_weight: u32,
    rng: Rng,
    rate: f64,
    remaining: usize,
    t: Time,
    pending: VecDeque<JobSpec>,
}

impl GeneratorSource {
    /// A source emitting `jobs` samples of `scenario`'s shape blend at
    /// `rate` expected arrivals per step, seeded for reproducibility.
    pub fn new(scenario: &Scenario, rate: f64, jobs: usize, seed: u64) -> Self {
        assert!(rate > 0.0, "arrival rate must be positive");
        assert!(!scenario.blend.is_empty(), "scenario blend must be nonempty");
        let total_weight: u32 = scenario.blend.iter().map(|&(_, w)| w).sum();
        assert!(total_weight > 0, "blend weights must not all be zero");
        GeneratorSource {
            blend: scenario.blend.clone(),
            total_weight,
            rng: flowtree_workloads::rng(seed),
            rate,
            remaining: jobs,
            t: 0,
            pending: VecDeque::new(),
        }
    }

    /// Jobs still to be emitted (pending + unsampled).
    pub fn remaining(&self) -> usize {
        self.remaining + self.pending.len()
    }

    fn sample_shape(&mut self) -> JobGraph {
        let mut roll = self.rng.gen_range(0..self.total_weight);
        for &(shape, w) in &self.blend {
            if roll < w {
                return shape.sample(&mut self.rng);
            }
            roll -= w;
        }
        unreachable!("weights cover the roll")
    }
}

impl ArrivalSource for GeneratorSource {
    fn next_arrival(&mut self) -> Option<JobSpec> {
        while self.pending.is_empty() && self.remaining > 0 {
            let release = self.t;
            // Rates above 1 split into unit Bernoulli trials per step, so
            // every burst shares one release time (order stays valid).
            let mut expected = self.rate;
            while expected > 0.0 && self.remaining > 0 {
                let p = expected.min(1.0);
                if self.rng.gen_bool(p) {
                    let graph = self.sample_shape();
                    self.pending.push_back(JobSpec { graph, release });
                    self.remaining -= 1;
                }
                expected -= 1.0;
            }
            self.t += 1;
        }
        self.pending.pop_front()
    }

    fn next_batch(&mut self, max: usize, span: Time, out: &mut Vec<JobSpec>) -> usize {
        let Some(first) = self.next_arrival() else {
            return 0;
        };
        let cutoff = first.release.saturating_add(span);
        out.push(first);
        while out.len() < max {
            match self.pending.front() {
                Some(job) if job.release <= cutoff => {
                    let job = self.pending.pop_front().expect("front peeked");
                    out.push(job);
                }
                Some(_) => break,
                None => {
                    // Sample the next step; an out-of-span arrival goes back
                    // to the front of the pending queue for the next batch.
                    let Some(job) = self.next_arrival() else {
                        break;
                    };
                    if job.release <= cutoff {
                        out.push(job);
                    } else {
                        self.pending.push_front(job);
                        break;
                    }
                }
            }
        }
        out.len()
    }
}

/// Pulls arrivals from a channel fed by an external producer thread; the
/// stream ends when every [`Sender`](channel::Sender) is dropped.
#[derive(Debug)]
pub struct ChannelSource {
    rx: channel::Receiver<JobSpec>,
    /// An arrival pulled while batching that fell outside the batch's
    /// release span; it leads the next batch instead.
    lookahead: Option<JobSpec>,
}

/// An unbounded arrival channel: feed [`JobSpec`]s through the sender (from
/// any thread) and hand the [`ChannelSource`] to a
/// [`ShardPool`](crate::ShardPool). Senders are responsible for
/// nondecreasing release order; the pool clamps stragglers (counting them)
/// rather than erroring.
pub fn channel_source() -> (channel::Sender<JobSpec>, ChannelSource) {
    let (tx, rx) = channel::unbounded();
    (tx, ChannelSource { rx, lookahead: None })
}

impl ArrivalSource for ChannelSource {
    fn next_arrival(&mut self) -> Option<JobSpec> {
        self.lookahead.take().or_else(|| self.rx.recv().ok())
    }

    fn next_batch(&mut self, max: usize, span: Time, out: &mut Vec<JobSpec>) -> usize {
        // Block for the batch's first arrival, then absorb whatever the
        // producer already queued — never wait for a batch to fill.
        let Some(first) = self.next_arrival() else {
            return 0;
        };
        let cutoff = first.release.saturating_add(span);
        out.push(first);
        while out.len() < max {
            let Some(job) = self.rx.try_recv() else {
                break;
            };
            if job.release <= cutoff {
                out.push(job);
            } else {
                self.lookahead = Some(job);
                break;
            }
        }
        out.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowtree_dag::builder::chain;

    #[test]
    fn replay_preserves_instance_order() {
        let inst = Scenario::service(10).instantiate(&mut flowtree_workloads::rng(3));
        let mut src = ReplaySource::from_instance(&inst);
        assert_eq!(src.len(), 10);
        let mut got = Vec::new();
        while let Some(spec) = src.next_arrival() {
            got.push(spec);
        }
        assert!(src.is_empty());
        assert_eq!(got, inst.jobs());
    }

    #[test]
    fn replay_parses_instance_json_and_jsonl() {
        let inst = Instance::new(vec![
            JobSpec { graph: chain(2), release: 0 },
            JobSpec { graph: chain(3), release: 4 },
        ]);
        let doc = serde_json::to_string(&inst).unwrap();
        let mut a = ReplaySource::from_json(&doc).unwrap();
        assert_eq!(a.len(), 2);
        assert_eq!(a.next_arrival().unwrap().release, 0);

        let jsonl = inst
            .jobs()
            .iter()
            .map(|j| serde_json::to_string(j).unwrap())
            .collect::<Vec<_>>()
            .join("\n");
        let b = ReplaySource::from_json(&jsonl).unwrap();
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn replay_rejects_backwards_and_empty_traces() {
        let a = serde_json::to_string(&JobSpec { graph: chain(2), release: 5 }).unwrap();
        let b = serde_json::to_string(&JobSpec { graph: chain(2), release: 3 }).unwrap();
        let err = ReplaySource::from_json(&format!("{a}\n{b}")).unwrap_err();
        assert!(err.contains("backwards"), "{err}");
        assert!(ReplaySource::from_json("").is_err());
        assert!(ReplaySource::from_json("not json").is_err());
    }

    #[test]
    fn generator_emits_exactly_the_budget_in_release_order() {
        let scenario = Scenario::analytics(1); // blend only; jobs field unused
        let mut src = GeneratorSource::new(&scenario, 1.5, 25, 9);
        assert_eq!(src.remaining(), 25);
        let mut releases = Vec::new();
        while let Some(spec) = src.next_arrival() {
            assert!(spec.graph.n() >= 1);
            releases.push(spec.release);
        }
        assert_eq!(releases.len(), 25);
        assert!(releases.windows(2).all(|w| w[0] <= w[1]), "{releases:?}");
    }

    #[test]
    fn generator_is_reproducible() {
        let scenario = Scenario::service(1);
        let collect = |seed| {
            let mut src = GeneratorSource::new(&scenario, 0.5, 12, seed);
            std::iter::from_fn(move || src.next_arrival()).collect::<Vec<_>>()
        };
        assert_eq!(collect(4), collect(4));
    }

    #[test]
    fn replay_batches_respect_max_and_release_span() {
        let releases = [0, 0, 0, 2, 2, 5];
        let inst = Instance::new(
            releases.iter().map(|&release| JobSpec { graph: chain(2), release }).collect(),
        );
        // span 0: only same-release bursts coalesce.
        let mut src = ReplaySource::from_instance(&inst);
        let mut sizes = Vec::new();
        let mut out = Vec::new();
        while src.next_batch(16, 0, &mut out) > 0 {
            sizes.push(out.len());
            out.clear();
        }
        assert_eq!(sizes, vec![3, 2, 1]);
        // span 2 merges [0,2] but not 5; max caps the first batch.
        let mut src = ReplaySource::from_instance(&inst);
        let mut out = Vec::new();
        assert_eq!(src.next_batch(4, 2, &mut out), 4);
        assert_eq!(out.last().unwrap().release, 2);
        out.clear();
        assert_eq!(src.next_batch(4, 2, &mut out), 1);
        out.clear();
        assert_eq!(src.next_batch(4, 2, &mut out), 1);
        assert_eq!(out[0].release, 5);
        out.clear();
        assert_eq!(src.next_batch(4, 2, &mut out), 0);
    }

    #[test]
    fn batching_yields_the_same_stream_as_single_arrivals() {
        let scenario = Scenario::service(1);
        let single: Vec<JobSpec> = {
            let mut src = GeneratorSource::new(&scenario, 1.5, 40, 7);
            std::iter::from_fn(move || src.next_arrival()).collect()
        };
        let mut batched = Vec::new();
        let mut src = GeneratorSource::new(&scenario, 1.5, 40, 7);
        let mut out = Vec::new();
        while src.next_batch(8, 3, &mut out) > 0 {
            assert!(out.len() <= 8);
            let first = out[0].release;
            assert!(out.iter().all(|j| j.release <= first + 3), "span violated");
            batched.append(&mut out);
        }
        assert_eq!(batched, single);
    }

    #[test]
    fn channel_batches_never_block_and_keep_stragglers() {
        let (tx, mut src) = channel_source();
        for release in [1, 1, 4] {
            tx.send(JobSpec { graph: chain(2), release }).unwrap();
        }
        let mut out = Vec::new();
        // Span 0 stops at release 4, which becomes the lookahead...
        assert_eq!(src.next_batch(8, 0, &mut out), 2);
        out.clear();
        // ...and leads the next batch even with the producer idle.
        assert_eq!(src.next_batch(8, 0, &mut out), 1);
        assert_eq!(out[0].release, 4);
        out.clear();
        drop(tx);
        assert_eq!(src.next_batch(8, 0, &mut out), 0);
    }

    #[test]
    fn channel_source_drains_then_ends() {
        let (tx, mut src) = channel_source();
        tx.send(JobSpec { graph: chain(2), release: 0 }).unwrap();
        tx.send(JobSpec { graph: chain(2), release: 1 }).unwrap();
        drop(tx);
        assert_eq!(src.next_arrival().unwrap().release, 0);
        assert_eq!(src.next_arrival().unwrap().release, 1);
        assert!(src.next_arrival().is_none());
    }
}
