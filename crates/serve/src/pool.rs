//! The shard pool: bounded-queue routing of an arrival stream across N
//! engine shards, with a control plane for live scheduler hot-swap and
//! work stealing, explicit overload behavior, and graceful drain.
//!
//! Each shard is a worker thread (see [`crate::shard`]) behind a bounded
//! channel of [`ShardCmd`]s. The router serializes arrivals: it clamps the
//! rare out-of-order release from a misbehaving source (counting it in
//! [`IngestStats::reordered`]), picks a shard ([`Routing`]) per job, and
//! delivers under the configured [`OverloadPolicy`]. The hot path is
//! batched: [`PoolHandle::offer_batch`] takes the router lock **once** per
//! ingest batch, routes every job, coalesces same-shard placements into
//! one [`ShardCmd::AdmitBatch`] (one queue slot, one channel op), and
//! flushes event time at the batch boundary. Sources feed batches through
//! [`PoolHandle::run_source`] via
//! [`ArrivalSource::next_batch`], bounded by
//! [`ServeConfig::ingest_batch`] jobs and a release-span flush rule tied to
//! [`ServeConfig::watermark_stride`], so batching never changes event-time
//! semantics — only how many channel ops they cost.
//!
//! Event time propagates to the other shards as *watermarks*, amortized two
//! ways: the router remembers the highest watermark each shard is known to
//! have (never re-sending a value that cannot advance it), and
//! [`ServeConfig::watermark_stride`] suppresses per-arrival broadcasts
//! until the frontier has advanced at least that far. Batch boundaries,
//! [`quiesce`](PoolHandle::quiesce), and drain always flush regardless, so
//! a shard's safe time lags the frontier by less than one stride while
//! arrivals flow, and not at all at synchronization points. Broadcasts use
//! `try_send` and skip full queues (counted in [`IngestStats::wm_skipped`],
//! surfaced in the CLI drain table): a full queue already holds a command
//! whose eventual processing advances that shard at least as far, so
//! skipping cannot deadlock or stall a shard forever — and the dedup
//! ledger retries the skipped value on the next broadcast anyway.
//!
//! With stealing enabled ([`StealConfig`]), an arrival whose target queue
//! is full is *staged* router-side instead of blocking the ingest thread.
//! When one shard's ingress backlog (queue + staged) sinks to the low
//! watermark while another's exceeds the high watermark, the router
//! migrates staged — never admitted — jobs to the underloaded shard in one
//! [`ShardCmd::Donate`] batch. A shard whose staged queue is nonempty has
//! its broadcast watermark capped at the staged front's release, so it can
//! never simulate past a job it has yet to receive.
//!
//! Runtime control (offer / swap / snapshot / quiesce / drain request) is
//! a [`PoolHandle`]: a cheap clone that external front doors can drive
//! without owning the pool. [`ShardPool`] owns the worker threads and is
//! the only way to [`drain`](ShardPool::drain) and join them.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread::JoinHandle;

use crossbeam::channel::{self, Sender, TrySendError};
use flowtree_core::SchedulerSpec;
use flowtree_dag::Time;
use flowtree_sim::JobSpec;

use crate::shard::{
    run_shard, Arrival, ShardCmd, ShardCtx, ShardResult, ShardSnapshot, ShardStats, SwapDirective,
};
use crate::source::ArrivalSource;
use crate::telemetry::{FlightEvent, FlightKind, MetricsSnapshot, Telemetry};

/// Everything that can go wrong launching or driving a pool.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The configuration failed validation (message says which field).
    InvalidConfig(String),
    /// A worker thread could not be spawned.
    Spawn(String),
    /// The pool's workers are gone (already drained or panicked); the
    /// handle can no longer deliver commands.
    PoolClosed,
    /// These shard workers panicked during drain; surviving shards'
    /// results are lost but the pool's telemetry (including each shard's
    /// flight ring, which records the panic) remains readable through any
    /// [`PoolHandle`].
    ShardPanicked(Vec<usize>),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::InvalidConfig(msg) => write!(f, "invalid serve config: {msg}"),
            ServeError::Spawn(msg) => write!(f, "failed to spawn shard worker: {msg}"),
            ServeError::PoolClosed => f.write_str("pool is closed (shards already drained)"),
            ServeError::ShardPanicked(shards) => {
                write!(f, "shard worker(s) panicked during drain: {shards:?}")
            }
        }
    }
}

impl std::error::Error for ServeError {}

impl From<ServeError> for String {
    fn from(e: ServeError) -> String {
        e.to_string()
    }
}

/// What to do with an arrival whose target shard queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OverloadPolicy {
    /// Apply backpressure: block the ingest thread until there is room
    /// (never loses work; the default). With stealing enabled the arrival
    /// is staged router-side instead, so ingest never blocks.
    Block,
    /// Shed load: drop the arriving job (counted in
    /// [`IngestStats::dropped`]); its release still advances watermarks.
    DropNewest,
    /// Try every other shard in ascending queue-length order, falling back
    /// to a blocking send on the original target (never loses work).
    Redirect,
}

impl OverloadPolicy {
    /// CLI name.
    pub fn name(&self) -> &'static str {
        match self {
            OverloadPolicy::Block => "block",
            OverloadPolicy::DropNewest => "drop",
            OverloadPolicy::Redirect => "redirect",
        }
    }

    /// Parse a CLI name.
    #[deprecated(note = "use `name.parse::<OverloadPolicy>()`")]
    pub fn parse(name: &str) -> Result<Self, String> {
        name.parse()
    }
}

impl std::str::FromStr for OverloadPolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "block" => Ok(OverloadPolicy::Block),
            "drop" => Ok(OverloadPolicy::DropNewest),
            "redirect" => Ok(OverloadPolicy::Redirect),
            other => {
                Err(format!("unknown overload policy '{other}'; known: block, drop, redirect"))
            }
        }
    }
}

impl std::fmt::Display for OverloadPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// How the router picks a shard for each arrival.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Routing {
    /// Multiplicative hash of the arrival sequence number — stateless and
    /// uniform, like consistent hashing over a fixed ring.
    Hash,
    /// The shard with the fewest jobs assigned by the router so far (ties
    /// go to the lowest index). The ledger counts actual placements —
    /// redirects land where they land, stolen jobs move victim → thief —
    /// so placement is a pure function of the arrival sequence, never of
    /// shard timing; that determinism is what lets the differential suite
    /// compare batched and per-event ingest bit for bit under this routing
    /// too.
    LeastLoaded,
}

impl Routing {
    /// CLI name.
    pub fn name(&self) -> &'static str {
        match self {
            Routing::Hash => "hash",
            Routing::LeastLoaded => "least-loaded",
        }
    }

    /// Parse a CLI name.
    #[deprecated(note = "use `name.parse::<Routing>()`")]
    pub fn parse(name: &str) -> Result<Self, String> {
        name.parse()
    }
}

impl std::str::FromStr for Routing {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "hash" => Ok(Routing::Hash),
            "least-loaded" => Ok(Routing::LeastLoaded),
            other => Err(format!("unknown routing '{other}'; known: hash, least-loaded")),
        }
    }
}

impl std::fmt::Display for Routing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Work-stealing thresholds over each shard's ingress backlog
/// (channel queue + router-side staged jobs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StealConfig {
    /// A shard whose backlog is at or below this may steal.
    pub low_watermark: usize,
    /// A shard whose backlog is at or above this (and has staged jobs to
    /// give) may be stolen from.
    pub high_watermark: usize,
}

impl Default for StealConfig {
    fn default() -> Self {
        StealConfig { low_watermark: 2, high_watermark: 8 }
    }
}

/// Configuration of a [`ShardPool`]. Build one with
/// [`ServeConfig::builder`] (validated) or [`ServeConfig::new`] (the
/// always-valid single-shard default).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Number of engine shards (worker threads).
    pub shards: usize,
    /// Processors per shard.
    pub m: usize,
    /// Scheduler to run on every shard.
    pub spec: SchedulerSpec,
    /// Scenario label carried into summaries and store records.
    pub scenario: String,
    /// Bounded queue capacity per shard.
    pub queue_cap: usize,
    /// What to do when a shard queue is full.
    pub policy: OverloadPolicy,
    /// How arrivals are placed.
    pub routing: Routing,
    /// Safety horizon per shard (a stalling scheduler errors out instead of
    /// spinning forever).
    pub max_horizon: Time,
    /// Work-stealing thresholds; `None` disables stealing and keeps the
    /// delivery path identical to the pre-control-plane pool.
    pub steal: Option<StealConfig>,
    /// Most arrivals one ingest batch may carry
    /// ([`run_source`](PoolHandle::run_source) /
    /// [`offer_batch`](PoolHandle::offer_batch)); 1 degenerates to
    /// per-event ingest.
    pub ingest_batch: usize,
    /// Watermark granularity. While arrivals flow, a shard is only told
    /// about frontier advances of at least this much (0 = every advance);
    /// the same value bounds how much event time one ingest batch may span.
    /// Batch boundaries, quiesce, and drain flush the exact frontier
    /// regardless, and watermarks never affect final results — only how
    /// eagerly shards may simulate ahead.
    pub watermark_stride: Time,
    /// Capacity of each shard's control-plane flight ring (structured
    /// swap/steal/overload events kept for diagnosis; oldest evicted when
    /// full).
    pub flight_capacity: usize,
}

impl ServeConfig {
    /// A single-shard, blocking, hash-routed pool — the configuration whose
    /// behavior is bit-for-bit the batch engine's.
    pub fn new(spec: SchedulerSpec, m: usize) -> Self {
        ServeConfig {
            shards: 1,
            m,
            spec,
            scenario: "serve".to_string(),
            queue_cap: 1024,
            policy: OverloadPolicy::Block,
            routing: Routing::Hash,
            max_horizon: 100_000_000,
            steal: None,
            ingest_batch: 32,
            watermark_stride: 0,
            flight_capacity: 256,
        }
    }

    /// Start a validated configuration.
    pub fn builder(spec: SchedulerSpec, m: usize) -> ServeConfigBuilder {
        ServeConfigBuilder { cfg: ServeConfig::new(spec, m) }
    }

    fn validate(&self) -> Result<(), ServeError> {
        if self.shards < 1 {
            return Err(ServeError::InvalidConfig("need at least one shard".into()));
        }
        if self.m < 1 {
            return Err(ServeError::InvalidConfig("need at least one processor per shard".into()));
        }
        if self.queue_cap < 1 {
            return Err(ServeError::InvalidConfig("queues must hold at least one command".into()));
        }
        if self.ingest_batch < 1 {
            return Err(ServeError::InvalidConfig(
                "ingest batches must carry at least one arrival".into(),
            ));
        }
        if self.flight_capacity < 1 {
            return Err(ServeError::InvalidConfig(
                "flight rings must hold at least one event".into(),
            ));
        }
        if self.max_horizon < 1 || self.max_horizon >= Time::MAX / 2 {
            return Err(ServeError::InvalidConfig(format!(
                "max_horizon must be in [1, {}), got {}",
                Time::MAX / 2,
                self.max_horizon
            )));
        }
        if let Some(steal) = self.steal {
            if steal.low_watermark >= steal.high_watermark {
                return Err(ServeError::InvalidConfig(format!(
                    "steal low watermark ({}) must be below the high watermark ({})",
                    steal.low_watermark, steal.high_watermark
                )));
            }
            if self.policy != OverloadPolicy::Block {
                return Err(ServeError::InvalidConfig(format!(
                    "work stealing stages full-queue arrivals and requires the '{}' \
                     overload policy, got '{}'",
                    OverloadPolicy::Block,
                    self.policy
                )));
            }
        }
        Ok(())
    }
}

/// Chained, validated construction of a [`ServeConfig`].
#[derive(Debug, Clone)]
pub struct ServeConfigBuilder {
    cfg: ServeConfig,
}

impl ServeConfigBuilder {
    /// Number of engine shards.
    pub fn shards(mut self, shards: usize) -> Self {
        self.cfg.shards = shards;
        self
    }

    /// Scenario label for summaries and store records.
    pub fn scenario(mut self, scenario: impl Into<String>) -> Self {
        self.cfg.scenario = scenario.into();
        self
    }

    /// Bounded queue capacity per shard.
    pub fn queue_cap(mut self, cap: usize) -> Self {
        self.cfg.queue_cap = cap;
        self
    }

    /// Full-queue behavior.
    pub fn policy(mut self, policy: OverloadPolicy) -> Self {
        self.cfg.policy = policy;
        self
    }

    /// Shard placement.
    pub fn routing(mut self, routing: Routing) -> Self {
        self.cfg.routing = routing;
        self
    }

    /// Per-shard safety horizon.
    pub fn max_horizon(mut self, horizon: Time) -> Self {
        self.cfg.max_horizon = horizon;
        self
    }

    /// Enable work stealing with these thresholds.
    pub fn steal(mut self, steal: StealConfig) -> Self {
        self.cfg.steal = Some(steal);
        self
    }

    /// Most arrivals one ingest batch may carry (1 = per-event ingest).
    pub fn ingest_batch(mut self, max: usize) -> Self {
        self.cfg.ingest_batch = max;
        self
    }

    /// Watermark granularity (see [`ServeConfig::watermark_stride`]).
    pub fn watermark_stride(mut self, stride: Time) -> Self {
        self.cfg.watermark_stride = stride;
        self
    }

    /// Per-shard flight-ring capacity (see [`ServeConfig::flight_capacity`]).
    pub fn flight_capacity(mut self, cap: usize) -> Self {
        self.cfg.flight_capacity = cap;
        self
    }

    /// Validate and produce the configuration.
    pub fn build(self) -> Result<ServeConfig, ServeError> {
        self.cfg.validate()?;
        Ok(self.cfg)
    }
}

/// Ingest-side counters (what happened to offered arrivals).
///
/// The books must always balance:
/// `delivered + dropped + staged-in-flight == offered`, and pool-wide
/// `stolen_in == stolen_out` (every migrated job leaves one shard's staged
/// queue and lands on another).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IngestStats {
    /// Arrivals offered to the pool.
    pub offered: u64,
    /// Arrivals delivered to some shard (directly, pumped from staging, or
    /// donated to a thief).
    pub delivered: u64,
    /// Arrivals shed under [`OverloadPolicy::DropNewest`].
    pub dropped: u64,
    /// Arrivals placed on a shard other than the routed one under
    /// [`OverloadPolicy::Redirect`].
    pub redirected: u64,
    /// Arrivals whose release went backwards and was clamped forward.
    pub reordered: u64,
    /// Jobs migrated onto an underloaded shard by work stealing.
    pub stolen_in: u64,
    /// Jobs migrated off an overloaded shard's staged queue.
    pub stolen_out: u64,
    /// Watermark broadcasts skipped because a shard's queue was full. Not
    /// part of the balance equation: a full queue already holds a command
    /// that advances the shard at least as far, and the router's dedup
    /// ledger retries the value on the next broadcast.
    pub wm_skipped: u64,
}

serde::impl_serde_struct!(IngestStats {
    offered,
    delivered,
    dropped,
    redirected,
    reordered,
    stolen_in,
    stolen_out,
    wm_skipped
});

impl IngestStats {
    /// Field-wise difference `self - earlier`. Counters only grow, so the
    /// saturation never fires between two snapshots of the same ledger;
    /// it just keeps a misuse from panicking. A gateway uses this to tell
    /// each client exactly what *its* command did to the pool-wide books.
    pub fn delta_since(&self, earlier: &IngestStats) -> IngestStats {
        IngestStats {
            offered: self.offered.saturating_sub(earlier.offered),
            delivered: self.delivered.saturating_sub(earlier.delivered),
            dropped: self.dropped.saturating_sub(earlier.dropped),
            redirected: self.redirected.saturating_sub(earlier.redirected),
            reordered: self.reordered.saturating_sub(earlier.reordered),
            stolen_in: self.stolen_in.saturating_sub(earlier.stolen_in),
            stolen_out: self.stolen_out.saturating_sub(earlier.stolen_out),
            wm_skipped: self.wm_skipped.saturating_sub(earlier.wm_skipped),
        }
    }
}

/// A point-in-time view of the whole pool.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolSnapshot {
    /// Per-shard progress, indexed by shard.
    pub shards: Vec<ShardSnapshot>,
    /// Ingest counters at snapshot time.
    pub ingest: IngestStats,
}

impl PoolSnapshot {
    /// Jobs admitted across all shards.
    pub fn total_admitted(&self) -> usize {
        self.shards.iter().map(|s| s.admitted).sum()
    }

    /// Subjobs dispatched across all shards.
    pub fn total_dispatched(&self) -> u64 {
        self.shards.iter().map(|s| s.dispatched).sum()
    }

    /// Arrivals staged router-side, offered but not yet delivered.
    pub fn in_flight(&self) -> u64 {
        self.shards.iter().map(|s| s.staged as u64).sum()
    }

    /// Whether every offered arrival is accounted for:
    /// `delivered + dropped + in-flight == offered` and
    /// `stolen_in == stolen_out`.
    pub fn accounting_balanced(&self) -> bool {
        self.ingest.delivered + self.ingest.dropped + self.in_flight() == self.ingest.offered
            && self.ingest.stolen_in == self.ingest.stolen_out
    }

    /// One human-readable stats line (the CLI's periodic heartbeat).
    pub fn line(&self) -> String {
        let now = self.shards.iter().map(|s| s.now).min().unwrap_or(0);
        let queued: usize = self.shards.iter().map(|s| s.queue_len).sum();
        let lb = self.shards.iter().map(|s| s.lower_bound).max().unwrap_or(0);
        format!(
            "t>={now} admitted={} dispatched={} queued={queued} staged={} lb>={lb} \
             dropped={} redirected={} stolen={}",
            self.total_admitted(),
            self.total_dispatched(),
            self.in_flight(),
            self.ingest.dropped,
            self.ingest.redirected,
            self.ingest.stolen_in,
        )
    }
}

/// Router state: everything the ingest path mutates, behind one lock.
#[derive(Debug)]
struct Router {
    seq: u64,
    last_release: Time,
    ingest: IngestStats,
    /// Per-shard arrivals accepted but not yet delivered (steal mode only).
    staged: Vec<VecDeque<Arrival>>,
    /// Highest watermark each shard is known to have seen (via an admit or
    /// an accepted broadcast). A broadcast that cannot advance a shard past
    /// this value is skipped — it would be a no-op channel op.
    wm_known: Vec<Time>,
    /// Whether the last watermark broadcast to each shard was skipped on a
    /// full queue — the next successful send is recorded as a flight
    /// `wm-retry` event.
    wm_skip: Vec<bool>,
    /// Jobs placed on each shard by the router so far — the deterministic
    /// load ledger behind [`Routing::LeastLoaded`]. Counts actual
    /// placements: redirects credit the shard that took the job, stolen
    /// jobs move victim → thief, drops count nowhere.
    assigned: Vec<u64>,
}

/// Shared pool state: what both the owning [`ShardPool`] and every cloned
/// [`PoolHandle`] see.
#[derive(Debug)]
struct PoolCore {
    cfg: ServeConfig,
    txs: Vec<Sender<ShardCmd>>,
    stats: Vec<Arc<ShardStats>>,
    tel: Arc<Telemetry>,
    router: Mutex<Router>,
}

/// A cloneable runtime-control handle onto a running pool.
///
/// Handles carry every operation that does not require owning the worker
/// threads: [`offer`](Self::offer), [`swap`](Self::swap),
/// [`snapshot`](Self::snapshot), [`quiesce`](Self::quiesce), and
/// [`request_drain`](Self::request_drain). Joining the workers and
/// collecting [`ShardResult`]s stays with [`ShardPool::drain`].
#[derive(Debug, Clone)]
pub struct PoolHandle {
    core: Arc<PoolCore>,
}

impl PoolHandle {
    /// The pool's configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.core.cfg
    }

    /// Ingest counters so far.
    pub fn ingest(&self) -> IngestStats {
        self.router().ingest
    }

    fn router(&self) -> MutexGuard<'_, Router> {
        self.core.router.lock().expect("pool router lock")
    }

    fn pick_shard(&self, r: &Router) -> usize {
        match self.core.cfg.routing {
            Routing::Hash => {
                (r.seq.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 33) as usize % self.core.txs.len()
            }
            Routing::LeastLoaded => (0..self.core.txs.len())
                .min_by_key(|&i| r.assigned[i])
                .expect("at least one shard"),
        }
    }

    /// Flush shard `i`'s staged queue into its channel while there is room.
    fn pump_shard(&self, r: &mut Router, i: usize) -> Result<(), ServeError> {
        while let Some(arrival) = r.staged[i].pop_front() {
            match self.core.txs[i].try_send(ShardCmd::Admit(arrival)) {
                Ok(()) => r.ingest.delivered += 1,
                Err(TrySendError::Full(ShardCmd::Admit(arrival))) => {
                    r.staged[i].push_front(arrival);
                    break;
                }
                Err(TrySendError::Full(_)) => unreachable!("pumped a non-admit command"),
                Err(TrySendError::Disconnected(_)) => return Err(ServeError::PoolClosed),
            }
        }
        Ok(())
    }

    /// One stealing round: if some shard's backlog sank to the low
    /// watermark while another's exceeds the high watermark *and* has
    /// staged jobs to give, migrate half the victim's staged queue (taken
    /// from the back — the latest arrivals) to the thief in one
    /// [`ShardCmd::Donate`] batch. The thief re-releases donated jobs at
    /// its own event time, so admitted work never moves and per-shard
    /// determinism is untouched.
    fn rebalance(&self, r: &mut Router) -> Result<(), ServeError> {
        let Some(steal) = self.core.cfg.steal else {
            return Ok(());
        };
        let n = self.core.txs.len();
        if n < 2 {
            return Ok(());
        }
        let backlog: Vec<usize> =
            (0..n).map(|i| self.core.txs[i].len() + r.staged[i].len()).collect();
        let thief = (0..n)
            .filter(|&i| r.staged[i].is_empty() && backlog[i] <= steal.low_watermark)
            .min_by_key(|&i| backlog[i]);
        let victim = (0..n)
            .filter(|&i| !r.staged[i].is_empty() && backlog[i] >= steal.high_watermark)
            .max_by_key(|&i| backlog[i]);
        let (Some(thief), Some(victim)) = (thief, victim) else {
            return Ok(());
        };
        if thief == victim {
            return Ok(());
        }
        let keep = r.staged[victim].len() - r.staged[victim].len().div_ceil(2);
        let moved: Vec<Arrival> = r.staged[victim].split_off(keep).into();
        let count = moved.len() as u64;
        match self.core.txs[thief].try_send(ShardCmd::Donate(moved)) {
            Ok(()) => {
                r.ingest.stolen_out += count;
                r.ingest.stolen_in += count;
                r.ingest.delivered += count;
                r.assigned[victim] -= count;
                r.assigned[thief] += count;
                self.core.tel.shard(victim).flight.record(FlightEvent {
                    us: self.core.tel.now_us(),
                    shard: victim,
                    kind: FlightKind::Steal,
                    t: r.last_release,
                    detail: format!("{victim}→{thief} x{count}"),
                });
            }
            Err(TrySendError::Full(ShardCmd::Donate(jobs))) => {
                // Thief filled up in the meantime: put the jobs back.
                r.staged[victim].extend(jobs);
            }
            Err(TrySendError::Full(_)) => unreachable!("donated a non-donate command"),
            Err(TrySendError::Disconnected(_)) => return Err(ServeError::PoolClosed),
        }
        Ok(())
    }

    /// Route one arrival under the configured policy, updating the load and
    /// watermark ledgers. Returns the shard the job was delivered to
    /// (`None` if it was staged or dropped). Callers broadcast the frontier
    /// afterwards, so the router lock is held across a whole batch.
    fn route_one(&self, r: &mut Router, mut arrival: Arrival) -> Result<Option<usize>, ServeError> {
        r.ingest.offered += 1;
        if arrival.spec.release < r.last_release {
            arrival.spec.release = r.last_release;
            r.ingest.reordered += 1;
        }
        r.last_release = arrival.spec.release;
        let release = arrival.spec.release;
        let target = self.pick_shard(r);
        r.seq = r.seq.wrapping_add(1);

        let mut delivered_to = None;
        if self.core.cfg.steal.is_some() {
            // Staging path: never block ingest; preserve per-shard FIFO by
            // staging behind any jobs already waiting for this shard. The
            // load ledger credits the routed shard now; rebalance moves the
            // credit if the job is later stolen.
            r.assigned[target] += 1;
            self.pump_shard(r, target)?;
            if r.staged[target].is_empty() {
                match self.core.txs[target].try_send(ShardCmd::Admit(arrival)) {
                    Ok(()) => {
                        delivered_to = Some(target);
                        r.ingest.delivered += 1;
                    }
                    Err(TrySendError::Full(ShardCmd::Admit(arrival))) => {
                        r.staged[target].push_back(arrival);
                    }
                    Err(TrySendError::Full(_)) => unreachable!("offered a non-admit command"),
                    Err(TrySendError::Disconnected(_)) => return Err(ServeError::PoolClosed),
                }
            } else {
                r.staged[target].push_back(arrival);
            }
        } else {
            match self.core.cfg.policy {
                OverloadPolicy::Block => {
                    self.core.txs[target]
                        .send(ShardCmd::Admit(arrival))
                        .map_err(|_| ServeError::PoolClosed)?;
                    delivered_to = Some(target);
                }
                OverloadPolicy::DropNewest => {
                    match self.core.txs[target].try_send(ShardCmd::Admit(arrival)) {
                        Ok(()) => delivered_to = Some(target),
                        Err(TrySendError::Full(_)) => {
                            r.ingest.dropped += 1;
                            self.core.tel.shard(target).flight.record(FlightEvent {
                                us: self.core.tel.now_us(),
                                shard: target,
                                kind: FlightKind::Drop,
                                t: release,
                                detail: String::new(),
                            });
                        }
                        Err(TrySendError::Disconnected(_)) => return Err(ServeError::PoolClosed),
                    }
                }
                OverloadPolicy::Redirect => {
                    let mut order: Vec<usize> = (0..self.core.txs.len()).collect();
                    order.sort_by_key(|&i| (i != target, self.core.txs[i].len()));
                    let mut cmd = Some(ShardCmd::Admit(arrival));
                    for &i in &order {
                        match self.core.txs[i].try_send(cmd.take().expect("command pending")) {
                            Ok(()) => {
                                delivered_to = Some(i);
                                break;
                            }
                            Err(TrySendError::Full(back)) => cmd = Some(back),
                            Err(TrySendError::Disconnected(_)) => {
                                return Err(ServeError::PoolClosed)
                            }
                        }
                    }
                    if let Some(cmd) = cmd {
                        // Everyone is full: fall back to backpressure.
                        self.core.txs[target].send(cmd).map_err(|_| ServeError::PoolClosed)?;
                        delivered_to = Some(target);
                    }
                    if delivered_to != Some(target) {
                        r.ingest.redirected += 1;
                        self.core.tel.shard(target).flight.record(FlightEvent {
                            us: self.core.tel.now_us(),
                            shard: target,
                            kind: FlightKind::Redirect,
                            t: release,
                            detail: format!(
                                "{target}→{}",
                                delivered_to.expect("redirect delivered somewhere")
                            ),
                        });
                    }
                }
            }
            if let Some(i) = delivered_to {
                r.ingest.delivered += 1;
                r.assigned[i] += 1;
            }
        }
        if let Some(i) = delivered_to {
            // The admit itself carries the release: once the shard processes
            // it, its safe time is at least this far along.
            if release > r.wm_known[i] {
                r.wm_known[i] = release;
            }
        }
        Ok(delivered_to)
    }

    /// Send frontier watermarks to shards that need them. `force` flushes
    /// every advance (batch boundaries, quiesce); otherwise
    /// [`ServeConfig::watermark_stride`] suppresses a broadcast until the
    /// frontier has advanced at least one stride past what the shard is
    /// known to have seen.
    fn broadcast_frontier(&self, r: &mut Router, force: bool) {
        let frontier = r.last_release;
        let stride = self.core.cfg.watermark_stride;
        for (i, tx) in self.core.txs.iter().enumerate() {
            // A shard with staged jobs must not outrun its own backlog, so
            // its watermark is capped at the staged front's release.
            let w = match r.staged[i].front() {
                Some(a) => frontier.min(a.spec.release),
                None => frontier,
            };
            if w <= r.wm_known[i] {
                continue;
            }
            if !force && w < r.wm_known[i].saturating_add(stride) {
                continue;
            }
            match tx.try_send(ShardCmd::Watermark(w)) {
                Ok(()) => {
                    r.wm_known[i] = w;
                    if r.wm_skip[i] {
                        r.wm_skip[i] = false;
                        self.core.tel.shard(i).flight.record(FlightEvent {
                            us: self.core.tel.now_us(),
                            shard: i,
                            kind: FlightKind::WmRetry,
                            t: w,
                            detail: String::new(),
                        });
                    }
                }
                // A full queue already holds commands that advance this
                // shard at least as far; the dedup ledger retries the value
                // on the next broadcast.
                Err(TrySendError::Full(_)) => {
                    r.ingest.wm_skipped += 1;
                    if !r.wm_skip[i] {
                        r.wm_skip[i] = true;
                        self.core.tel.shard(i).flight.record(FlightEvent {
                            us: self.core.tel.now_us(),
                            shard: i,
                            kind: FlightKind::WmSkip,
                            t: w,
                            detail: String::new(),
                        });
                    }
                }
                // Workers gone: drain already started; nothing left to pace.
                Err(TrySendError::Disconnected(_)) => {}
            }
        }
    }

    /// Route one arrival. A release earlier than the last offered one is
    /// clamped forward (counted in [`IngestStats::reordered`]) so shard
    /// sessions always see admissible order.
    pub fn offer(&self, spec: JobSpec) -> Result<(), ServeError> {
        let offered_us = self.core.tel.now_us();
        let r = &mut *self.router();
        self.route_one(r, Arrival { spec, offered_us })?;
        if self.core.cfg.steal.is_some() {
            self.rebalance(r)?;
        }
        self.broadcast_frontier(r, false);
        Ok(())
    }

    /// Route a whole ingest batch under one router lock. Same-shard
    /// placements coalesce into a single [`ShardCmd::AdmitBatch`] — one
    /// queue slot, one channel op — and the event-time frontier is flushed
    /// at the batch boundary. Drains `specs` so the caller can reuse the
    /// buffer. Placement is identical to offering the same jobs one at a
    /// time; only the channel traffic differs.
    pub fn offer_batch(&self, specs: &mut Vec<JobSpec>) -> Result<(), ServeError> {
        self.offer_batch_stamped(specs, self.core.tel.now_us()).map(|_| ())
    }

    /// [`offer_batch`](Self::offer_batch) with an explicit arrival stamp
    /// (microseconds on the pool clock, see [`now_us`](Self::now_us)) and
    /// an exact per-command ledger delta in the reply. Front doors stamp at
    /// decode time so arrival→admit latency covers queueing behind the
    /// router lock, and the delta — computed under that lock — is exact
    /// even with any number of concurrent offering clients.
    pub fn offer_batch_stamped(
        &self,
        specs: &mut Vec<JobSpec>,
        offered_us: u64,
    ) -> Result<IngestStats, ServeError> {
        if specs.is_empty() {
            return Ok(IngestStats::default());
        }
        let r = &mut *self.router();
        let before = r.ingest;
        let stealing = self.core.cfg.steal.is_some();
        if stealing || self.core.cfg.policy == OverloadPolicy::Block {
            // Coalescing path: place every arrival first, then deliver one
            // command per shard.
            let n = self.core.txs.len();
            let mut buckets: Vec<Vec<Arrival>> = (0..n).map(|_| Vec::new()).collect();
            for mut spec in specs.drain(..) {
                r.ingest.offered += 1;
                if spec.release < r.last_release {
                    spec.release = r.last_release;
                    r.ingest.reordered += 1;
                }
                r.last_release = spec.release;
                let target = self.pick_shard(r);
                r.seq = r.seq.wrapping_add(1);
                r.assigned[target] += 1;
                buckets[target].push(Arrival { spec, offered_us });
            }
            for (i, bucket) in buckets.into_iter().enumerate() {
                if bucket.is_empty() {
                    continue;
                }
                let count = bucket.len() as u64;
                let last = bucket.last().expect("nonempty bucket").spec.release;
                if stealing {
                    // Same non-blocking discipline as route_one, batch-wide:
                    // FIFO order demands the whole bucket stages if anything
                    // for this shard is already staged.
                    self.pump_shard(r, i)?;
                    if r.staged[i].is_empty() {
                        match self.core.txs[i].try_send(ShardCmd::AdmitBatch(bucket)) {
                            Ok(()) => {
                                r.ingest.delivered += count;
                                if last > r.wm_known[i] {
                                    r.wm_known[i] = last;
                                }
                            }
                            Err(TrySendError::Full(ShardCmd::AdmitBatch(jobs))) => {
                                r.staged[i].extend(jobs);
                            }
                            Err(TrySendError::Full(_)) => {
                                unreachable!("offered a non-admit command")
                            }
                            Err(TrySendError::Disconnected(_)) => {
                                return Err(ServeError::PoolClosed)
                            }
                        }
                    } else {
                        r.staged[i].extend(bucket);
                    }
                } else {
                    self.core.txs[i]
                        .send(ShardCmd::AdmitBatch(bucket))
                        .map_err(|_| ServeError::PoolClosed)?;
                    r.ingest.delivered += count;
                    if last > r.wm_known[i] {
                        r.wm_known[i] = last;
                    }
                }
            }
        } else {
            // Drop and redirect decide per arrival from instantaneous queue
            // room; coalescing those decisions away would change what gets
            // shed or moved. They keep per-job channel ops but still share
            // one lock acquisition and one frontier flush per batch.
            for spec in specs.drain(..) {
                self.route_one(r, Arrival { spec, offered_us })?;
            }
        }
        if stealing {
            self.rebalance(r)?;
        }
        self.broadcast_frontier(r, true);
        Ok(r.ingest.delta_since(&before))
    }

    /// Microseconds since the pool launched — the clock every telemetry
    /// stamp and flight event is measured on. Front doors stamp remote
    /// offers with this before handing them to
    /// [`offer_batch_stamped`](Self::offer_batch_stamped).
    #[inline]
    pub fn now_us(&self) -> u64 {
        self.core.tel.now_us()
    }

    /// Free admission slots across every shard queue right now. An
    /// approximation for backpressure decisions — queues also hold
    /// control-plane commands and other clients race for the same room —
    /// but a conservative front door can turn "not enough room for this
    /// batch" into a retry-later reply instead of blocking a connection
    /// handler inside [`offer_batch`](Self::offer_batch).
    pub fn ingress_room(&self) -> usize {
        self.core
            .txs
            .iter()
            .map(|tx| self.core.cfg.queue_cap.saturating_sub(tx.len()))
            .sum()
    }

    /// Advance the event-time frontier to `t` without offering a job, as if
    /// an arrival with release `t` had been observed: later offers with
    /// earlier releases are clamped forward (and counted reordered), and
    /// shards are told they may simulate up to `t`. A no-op if the frontier
    /// is already at or past `t`. Returns the ledger delta (only
    /// `wm_skipped` can move). This is the remote `Watermark` verb: a
    /// client that knows no arrival before `t` is coming lets idle shards
    /// simulate ahead instead of stalling at the last release.
    pub fn advance_frontier(&self, t: Time) -> Result<IngestStats, ServeError> {
        let r = &mut *self.router();
        let before = r.ingest;
        if t > r.last_release {
            r.last_release = t;
            self.broadcast_frontier(r, true);
        }
        Ok(r.ingest.delta_since(&before))
    }

    /// Record a control-plane event that originated *outside* the router —
    /// e.g. a network front door's connection lifecycle — into shard
    /// `shard`'s flight ring, stamped with the pool clock. Errors if the
    /// shard index is out of range.
    pub fn record_flight(
        &self,
        shard: usize,
        kind: FlightKind,
        t: Time,
        detail: String,
    ) -> Result<(), ServeError> {
        if shard >= self.core.txs.len() {
            return Err(ServeError::InvalidConfig(format!(
                "shard {shard} out of range (pool has {})",
                self.core.txs.len()
            )));
        }
        self.core.tel.shard(shard).flight.record(FlightEvent {
            us: self.core.tel.now_us(),
            shard,
            kind,
            t,
            detail,
        });
        Ok(())
    }

    /// Pump `source` dry in ingest batches (bounded by
    /// [`ServeConfig::ingest_batch`] and the stride-sized release span),
    /// calling `progress` with a fresh snapshot roughly every `every`
    /// arrivals (0 disables). Returns the number of arrivals offered.
    pub fn run_source_with(
        &self,
        source: &mut dyn ArrivalSource,
        every: u64,
        progress: &mut dyn FnMut(&PoolSnapshot),
    ) -> Result<u64, ServeError> {
        let (max, span) = (self.core.cfg.ingest_batch, self.core.cfg.watermark_stride);
        let mut batch = Vec::with_capacity(max);
        let mut n = 0u64;
        let mut next_beat = every;
        while source.next_batch(max, span, &mut batch) > 0 {
            n += batch.len() as u64;
            self.offer_batch(&mut batch)?;
            if every > 0 && n >= next_beat {
                progress(&self.snapshot());
                while next_beat <= n {
                    next_beat += every;
                }
            }
        }
        Ok(n)
    }

    /// Pump `source` dry without progress reporting.
    pub fn run_source(&self, source: &mut dyn ArrivalSource) -> Result<u64, ServeError> {
        self.run_source_with(source, 0, &mut |_| {})
    }

    /// Request a live scheduler hot-swap at event time `at` on one shard
    /// (`Some(i)`) or every shard (`None`). The swap applies once the
    /// shard's simulation reaches `at` (immediately if already past it);
    /// the drained [`ShardResult`] records it as a
    /// [`SwapEvent`](crate::SwapEvent).
    pub fn swap(
        &self,
        shard: Option<usize>,
        at: Time,
        spec: SchedulerSpec,
    ) -> Result<(), ServeError> {
        let directive = SwapDirective { at, spec };
        let targets: Vec<usize> = match shard {
            Some(i) if i >= self.core.txs.len() => {
                return Err(ServeError::InvalidConfig(format!(
                    "shard {i} out of range (pool has {})",
                    self.core.txs.len()
                )));
            }
            Some(i) => vec![i],
            None => (0..self.core.txs.len()).collect(),
        };
        for i in targets {
            self.core.txs[i]
                .send(ShardCmd::Swap(directive))
                .map_err(|_| ServeError::PoolClosed)?;
        }
        Ok(())
    }

    /// A point-in-time view of every shard plus ingest counters. Reads the
    /// shards' atomic progress counters — no shard-side lock, so a snapshot
    /// never stalls the hot loop.
    pub fn snapshot(&self) -> PoolSnapshot {
        let r = self.router();
        let shards = self
            .core
            .stats
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let mut snap = s.load();
                snap.queue_len = self.core.txs[i].len();
                snap.staged = r.staged[i].len();
                snap
            })
            .collect();
        PoolSnapshot { shards, ingest: r.ingest }
    }

    /// Synchronous barrier: every shard finishes all in-flight work up to
    /// its current watermark, then reports. Returns settled snapshots in
    /// shard order.
    pub fn quiesce(&self) -> Result<Vec<ShardSnapshot>, ServeError> {
        {
            // Flush the exact frontier first: a shard must not settle short
            // of event time just because strided broadcasts lagged behind.
            let r = &mut *self.router();
            let frontier = r.last_release;
            for (i, tx) in self.core.txs.iter().enumerate() {
                let w = match r.staged[i].front() {
                    Some(a) => frontier.min(a.spec.release),
                    None => frontier,
                };
                if w > r.wm_known[i] {
                    tx.send(ShardCmd::Watermark(w)).map_err(|_| ServeError::PoolClosed)?;
                    r.wm_known[i] = w;
                }
            }
        }
        let mut replies = Vec::with_capacity(self.core.txs.len());
        for tx in &self.core.txs {
            let (reply_tx, reply_rx) = channel::bounded(1);
            tx.send(ShardCmd::Quiesce(reply_tx)).map_err(|_| ServeError::PoolClosed)?;
            replies.push(reply_rx);
        }
        replies
            .into_iter()
            .map(|rx| rx.recv().map_err(|_| ServeError::PoolClosed))
            .collect()
    }

    /// Flush every staged job (blocking until the shards accept them) and
    /// tell every shard to run dry. After this the pool accepts no more
    /// work; join the workers with [`ShardPool::drain`].
    pub fn request_drain(&self) -> Result<(), ServeError> {
        let r = &mut *self.router();
        for i in 0..self.core.txs.len() {
            while let Some(arrival) = r.staged[i].pop_front() {
                self.core.txs[i]
                    .send(ShardCmd::Admit(arrival))
                    .map_err(|_| ServeError::PoolClosed)?;
                r.ingest.delivered += 1;
            }
        }
        for tx in &self.core.txs {
            tx.send(ShardCmd::Drain).map_err(|_| ServeError::PoolClosed)?;
        }
        Ok(())
    }

    /// A full telemetry snapshot: ingest counters, per-shard engine
    /// snapshots, and per-shard latency histograms plus theory gauges.
    /// Lock-light — safe to call from a scrape thread mid-run.
    pub fn metrics(&self) -> MetricsSnapshot {
        let snap = self.snapshot();
        MetricsSnapshot {
            uptime_us: self.core.tel.now_us(),
            ingest: snap.ingest,
            shards: snap.shards,
            telemetry: self
                .core
                .tel
                .shards()
                .iter()
                .enumerate()
                .map(|(i, t)| t.metrics(i))
                .collect(),
        }
    }

    /// Every control-plane flight-recorder event captured so far, merged
    /// across shards and ordered by wall-clock timestamp. Readable even
    /// after a worker panic — the rings outlive the workers.
    pub fn flight(&self) -> Vec<FlightEvent> {
        self.core.tel.flight_events()
    }
}

/// A running pool of engine shards consuming an arrival stream.
///
/// Feed it with [`offer`](Self::offer) (or [`run_source`](Self::run_source)
/// to pump an [`ArrivalSource`] dry), watch it with
/// [`snapshot`](Self::snapshot), control it through a cloned
/// [`handle`](Self::handle), and finish with [`drain`](Self::drain), which
/// returns one [`ShardResult`] per shard.
#[derive(Debug)]
pub struct ShardPool {
    handle: PoolHandle,
    handles: Vec<JoinHandle<ShardResult>>,
}

impl ShardPool {
    /// Validate `cfg`, spawn the shard workers, and return the pool ready
    /// for arrivals.
    pub fn launch(cfg: ServeConfig) -> Result<Self, ServeError> {
        cfg.validate()?;
        let tel = Arc::new(Telemetry::new(cfg.shards, cfg.flight_capacity));
        let mut txs = Vec::with_capacity(cfg.shards);
        let mut handles = Vec::with_capacity(cfg.shards);
        let mut stats = Vec::with_capacity(cfg.shards);
        for shard in 0..cfg.shards {
            let (tx, rx) = channel::bounded(cfg.queue_cap);
            let stat = Arc::new(ShardStats::default());
            let ctx = ShardCtx {
                shard,
                m: cfg.m,
                spec: cfg.spec,
                scenario: cfg.scenario.clone(),
                max_horizon: cfg.max_horizon,
                stats: Arc::clone(&stat),
                tel: Arc::clone(tel.shard(shard)),
            };
            let handle = std::thread::Builder::new()
                .name(format!("flowtree-shard-{shard}"))
                .spawn(move || run_shard(ctx, rx))
                .map_err(|e| ServeError::Spawn(e.to_string()))?;
            txs.push(tx);
            handles.push(handle);
            stats.push(stat);
        }
        let shards = cfg.shards;
        let core = PoolCore {
            cfg,
            txs,
            stats,
            tel,
            router: Mutex::new(Router {
                seq: 0,
                last_release: 0,
                ingest: IngestStats::default(),
                staged: (0..shards).map(|_| VecDeque::new()).collect(),
                wm_known: vec![0; shards],
                wm_skip: vec![false; shards],
                assigned: vec![0; shards],
            }),
        };
        Ok(ShardPool { handle: PoolHandle { core: Arc::new(core) }, handles })
    }

    /// A cloneable runtime-control handle onto this pool.
    pub fn handle(&self) -> PoolHandle {
        self.handle.clone()
    }

    /// The pool's configuration.
    pub fn config(&self) -> &ServeConfig {
        self.handle.config()
    }

    /// Ingest counters so far.
    pub fn ingest(&self) -> IngestStats {
        self.handle.ingest()
    }

    /// Route one arrival (see [`PoolHandle::offer`]).
    pub fn offer(&self, spec: JobSpec) -> Result<(), ServeError> {
        self.handle.offer(spec)
    }

    /// Route a whole ingest batch (see [`PoolHandle::offer_batch`]).
    pub fn offer_batch(&self, specs: &mut Vec<JobSpec>) -> Result<(), ServeError> {
        self.handle.offer_batch(specs)
    }

    /// Pump `source` dry with progress reporting (see
    /// [`PoolHandle::run_source_with`]).
    pub fn run_source_with(
        &self,
        source: &mut dyn ArrivalSource,
        every: u64,
        progress: &mut dyn FnMut(&PoolSnapshot),
    ) -> Result<u64, ServeError> {
        self.handle.run_source_with(source, every, progress)
    }

    /// Pump `source` dry (see [`PoolHandle::run_source`]).
    pub fn run_source(&self, source: &mut dyn ArrivalSource) -> Result<u64, ServeError> {
        self.handle.run_source(source)
    }

    /// Request a scheduler hot-swap (see [`PoolHandle::swap`]).
    pub fn swap(
        &self,
        shard: Option<usize>,
        at: Time,
        spec: SchedulerSpec,
    ) -> Result<(), ServeError> {
        self.handle.swap(shard, at, spec)
    }

    /// A point-in-time view of every shard plus ingest counters.
    pub fn snapshot(&self) -> PoolSnapshot {
        self.handle.snapshot()
    }

    /// Graceful shutdown: flush staged work, tell every shard to run dry,
    /// wait for all of them, and return their results ordered by shard
    /// index. If any worker panicked, the surviving results are discarded
    /// and [`ServeError::ShardPanicked`] lists the dead shards; their
    /// flight rings stay readable through a [`PoolHandle`] cloned before
    /// the drain, so the post-mortem trail survives the crash.
    pub fn drain(self) -> Result<Vec<ShardResult>, ServeError> {
        self.handle.request_drain()?;
        let tel = Arc::clone(&self.handle.core.tel);
        let mut results = Vec::with_capacity(self.handles.len());
        let mut panicked = Vec::new();
        for (shard, h) in self.handles.into_iter().enumerate() {
            match h.join() {
                Ok(res) => results.push(res),
                Err(_) => {
                    tel.shard(shard).flight.record(FlightEvent {
                        us: tel.now_us(),
                        shard,
                        kind: FlightKind::Panic,
                        t: 0,
                        detail: "joined dead worker".to_string(),
                    });
                    panicked.push(shard);
                }
            }
        }
        if !panicked.is_empty() {
            return Err(ServeError::ShardPanicked(panicked));
        }
        results.sort_by_key(|r| r.shard);
        Ok(results)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowtree_dag::builder::{chain, star};

    fn fifo() -> SchedulerSpec {
        "fifo".parse().expect("fifo parses")
    }

    #[test]
    fn policy_and_routing_names_roundtrip() {
        for p in [OverloadPolicy::Block, OverloadPolicy::DropNewest, OverloadPolicy::Redirect] {
            assert_eq!(p.name().parse::<OverloadPolicy>(), Ok(p));
            assert_eq!(p.to_string(), p.name());
        }
        for r in [Routing::Hash, Routing::LeastLoaded] {
            assert_eq!(r.name().parse::<Routing>(), Ok(r));
            assert_eq!(r.to_string(), r.name());
        }
        assert!("yolo".parse::<OverloadPolicy>().is_err());
        assert!("ring".parse::<Routing>().is_err());
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_parse_shims_still_work() {
        assert_eq!(OverloadPolicy::parse("drop"), Ok(OverloadPolicy::DropNewest));
        assert_eq!(Routing::parse("least-loaded"), Ok(Routing::LeastLoaded));
    }

    #[test]
    fn builder_validates_configuration() {
        assert!(ServeConfig::builder(fifo(), 2).shards(2).queue_cap(8).build().is_ok());
        for bad in [
            ServeConfig::builder(fifo(), 2).shards(0).build(),
            ServeConfig::builder(fifo(), 0).build(),
            ServeConfig::builder(fifo(), 2).queue_cap(0).build(),
            ServeConfig::builder(fifo(), 2).max_horizon(0).build(),
            ServeConfig::builder(fifo(), 2).max_horizon(Time::MAX).build(),
            ServeConfig::builder(fifo(), 2)
                .shards(2)
                .steal(StealConfig { low_watermark: 4, high_watermark: 4 })
                .build(),
            ServeConfig::builder(fifo(), 2)
                .shards(2)
                .policy(OverloadPolicy::DropNewest)
                .steal(StealConfig::default())
                .build(),
        ] {
            match bad {
                Err(ServeError::InvalidConfig(msg)) => assert!(!msg.is_empty()),
                other => panic!("expected InvalidConfig, got {other:?}"),
            }
        }
        assert!(
            ShardPool::launch(ServeConfig { shards: 0, ..ServeConfig::new(fifo(), 1) }).is_err()
        );
    }

    #[test]
    fn out_of_order_releases_are_clamped_and_counted() {
        let cfg = ServeConfig::builder(fifo(), 2)
            .scenario("reorder")
            .build()
            .expect("valid config");
        let pool = ShardPool::launch(cfg).expect("launch");
        pool.offer(JobSpec { graph: chain(2), release: 5 }).expect("offer");
        pool.offer(JobSpec { graph: star(2), release: 3 }).expect("offer"); // late straggler
        assert_eq!(pool.ingest().reordered, 1);
        let results = pool.drain().expect("drain");
        assert_eq!(results[0].summary.jobs, 2);
        // Both jobs run with release 5 after the clamp.
        assert_eq!(results[0].instance.last_release(), 5);
        assert!(results[0].summary.invariants_clean);
        assert!(results[0].swaps.is_empty());
    }

    #[test]
    fn hash_routing_spreads_across_shards() {
        let cfg = ServeConfig::builder(fifo(), 1).shards(4).build().expect("valid config");
        let pool = ShardPool::launch(cfg).expect("launch");
        let mut hit = vec![false; 4];
        for seq in 0u64..64 {
            hit[(seq.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 33) as usize % 4] = true;
        }
        assert!(hit.iter().all(|&h| h), "hash leaves a shard cold: {hit:?}");
        let results = pool.drain().expect("drain"); // zero-job drain is clean
        assert_eq!(results.len(), 4);
        for r in &results {
            assert_eq!(r.summary.jobs, 0);
            assert_eq!(r.summary.max_flow, 0);
        }
    }

    #[test]
    fn snapshot_reports_progress_and_queues() {
        let cfg = ServeConfig::builder(fifo(), 2).shards(2).build().expect("valid config");
        let pool = ShardPool::launch(cfg).expect("launch");
        for t in 0..6 {
            pool.offer(JobSpec { graph: chain(3), release: t }).expect("offer");
        }
        let snap = pool.snapshot();
        assert_eq!(snap.shards.len(), 2);
        assert_eq!(snap.ingest.offered, 6);
        assert_eq!(snap.ingest.delivered, 6);
        assert!(snap.accounting_balanced(), "{:?}", snap.ingest);
        let line = snap.line();
        assert!(line.contains("admitted="), "{line}");
        assert!(line.contains("staged="), "{line}");
        let results = pool.drain().expect("drain");
        let total: usize = results.iter().map(|r| r.summary.jobs).sum();
        assert_eq!(total, 6);
    }

    #[test]
    fn hot_swap_records_event_and_relabels_summary() {
        let cfg = ServeConfig::builder(fifo(), 2).scenario("swap").build().expect("valid");
        let pool = ShardPool::launch(cfg).expect("launch");
        let handle = pool.handle();
        handle.swap(None, 4, "lpf".parse().expect("lpf parses")).expect("swap queued");
        for t in 0..8 {
            pool.offer(JobSpec { graph: chain(3), release: t }).expect("offer");
        }
        let results = pool.drain().expect("drain");
        assert_eq!(results[0].summary.jobs, 8);
        assert_eq!(results[0].summary.scheduler, "lpf");
        assert_eq!(results[0].swaps.len(), 1);
        let ev = &results[0].swaps[0];
        assert_eq!((ev.from.as_str(), ev.to.as_str()), ("fifo", "lpf"));
        assert!(ev.t >= 4, "swap applied before its directive time: {ev:?}");
        assert!(results[0].summary.invariants_clean);
    }

    #[test]
    fn swap_on_out_of_range_shard_is_rejected() {
        let pool = ShardPool::launch(ServeConfig::new(fifo(), 1)).expect("launch");
        let err = pool.swap(Some(7), 0, fifo()).expect_err("out of range");
        assert!(matches!(err, ServeError::InvalidConfig(_)), "{err}");
        pool.drain().expect("drain");
    }

    #[test]
    fn donated_jobs_are_rereleased_at_the_thief() {
        // Bypass the router and donate out-of-order releases directly: the
        // shard must clamp them forward instead of panicking.
        let pool = ShardPool::launch(ServeConfig::new(fifo(), 1)).expect("launch");
        pool.offer(JobSpec { graph: chain(2), release: 9 }).expect("offer");
        let donated: Vec<Arrival> = vec![
            JobSpec { graph: chain(2), release: 3 }.into(),
            JobSpec { graph: star(2), release: 1 }.into(),
        ];
        pool.handle.core.txs[0].send(ShardCmd::Donate(donated)).expect("donate");
        let results = pool.drain().expect("drain");
        assert_eq!(results[0].summary.jobs, 3);
        // Clamped to the last admitted release, never earlier.
        assert!(results[0].instance.last_release() >= 9);
        assert!(results[0].summary.invariants_clean);
    }

    #[test]
    fn stealing_pool_loses_no_work_and_balances_books() {
        let cfg = ServeConfig::builder(fifo(), 1)
            .shards(2)
            .queue_cap(2)
            .scenario("steal")
            .steal(StealConfig { low_watermark: 0, high_watermark: 2 })
            .build()
            .expect("valid config");
        let pool = ShardPool::launch(cfg).expect("launch");
        let total = 64usize;
        for t in 0..total {
            pool.offer(JobSpec { graph: chain(4), release: t as Time }).expect("offer");
            let snap = pool.snapshot();
            assert!(snap.accounting_balanced(), "mid-stream books: {:?}", snap.ingest);
        }
        let results = pool.drain().expect("drain");
        let ingest = results.iter().map(|r| r.summary.jobs).sum::<usize>();
        assert_eq!(ingest, total, "work was lost");
        for r in &results {
            assert!(r.summary.invariants_clean, "shard {} dirty", r.shard);
        }
    }

    #[test]
    fn quiesce_settles_all_shards_to_the_watermark() {
        let cfg = ServeConfig::builder(fifo(), 2).shards(2).build().expect("valid");
        let pool = ShardPool::launch(cfg).expect("launch");
        for t in 0..10 {
            pool.offer(JobSpec { graph: chain(2), release: t }).expect("offer");
        }
        let settled = pool.handle().quiesce().expect("quiesce");
        assert_eq!(settled.len(), 2);
        let admitted: usize = settled.iter().map(|s| s.admitted).sum();
        assert_eq!(admitted, 10, "quiesce replies before processing the backlog");
        pool.drain().expect("drain");
    }

    #[test]
    fn stamped_batches_report_exact_deltas() {
        let cfg = ServeConfig::builder(fifo(), 2).shards(2).build().expect("valid");
        let pool = ShardPool::launch(cfg).expect("launch");
        let handle = pool.handle();
        let mut batch = vec![
            JobSpec { graph: chain(2), release: 3 },
            JobSpec { graph: star(2), release: 1 }, // goes backwards: clamped
        ];
        let delta = handle.offer_batch_stamped(&mut batch, handle.now_us()).expect("offer");
        assert_eq!((delta.offered, delta.delivered, delta.reordered), (2, 2, 1));
        let mut empty = Vec::new();
        let delta = handle.offer_batch_stamped(&mut empty, 0).expect("empty offer");
        assert_eq!(delta, IngestStats::default());
        assert_eq!(handle.ingest().offered, 2, "cumulative ledger unaffected by deltas");
        pool.drain().expect("drain");
    }

    #[test]
    fn advance_frontier_clamps_later_offers() {
        let pool = ShardPool::launch(ServeConfig::new(fifo(), 1)).expect("launch");
        let handle = pool.handle();
        handle.advance_frontier(50).expect("advance");
        handle.advance_frontier(10).expect("monotone no-op");
        pool.offer(JobSpec { graph: chain(2), release: 20 }).expect("offer");
        assert_eq!(handle.ingest().reordered, 1, "pre-frontier release clamps forward");
        let results = pool.drain().expect("drain");
        assert_eq!(results[0].instance.last_release(), 50);
    }

    #[test]
    fn external_flight_events_land_in_the_ring() {
        let pool = ShardPool::launch(ServeConfig::new(fifo(), 1)).expect("launch");
        let handle = pool.handle();
        handle
            .record_flight(0, FlightKind::ConnOpen, 0, "127.0.0.1:9".to_string())
            .expect("record");
        assert!(handle.record_flight(9, FlightKind::ConnClose, 0, String::new()).is_err());
        let events = handle.flight();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, FlightKind::ConnOpen);
        assert_eq!(events[0].detail, "127.0.0.1:9");
        pool.drain().expect("drain");
    }

    #[test]
    fn ingest_stats_serde_and_delta_roundtrip() {
        let a = IngestStats {
            offered: 10,
            delivered: 8,
            dropped: 2,
            ..IngestStats::default()
        };
        let line = serde_json::to_string(&a).expect("serializes");
        let back: IngestStats = serde_json::from_str(&line).expect("roundtrips");
        assert_eq!(back, a);
        let b = IngestStats {
            offered: 14,
            delivered: 11,
            dropped: 3,
            ..IngestStats::default()
        };
        let d = b.delta_since(&a);
        assert_eq!((d.offered, d.delivered, d.dropped), (4, 3, 1));
    }

    #[test]
    fn handle_outlives_drain_and_reports_closed() {
        let pool = ShardPool::launch(ServeConfig::new(fifo(), 1)).expect("launch");
        let handle = pool.handle();
        pool.drain().expect("drain");
        let err = handle.offer(JobSpec { graph: chain(2), release: 0 }).expect_err("closed");
        assert_eq!(err, ServeError::PoolClosed);
        assert!(handle.quiesce().is_err());
    }
}
