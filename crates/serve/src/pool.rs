//! The shard pool: bounded-queue routing of an arrival stream across N
//! engine shards, with explicit overload behavior and graceful drain.
//!
//! Each shard is a worker thread (see [`crate::shard`]) behind a bounded
//! channel of [`Msg`]s. The router serializes arrivals: it clamps the rare
//! out-of-order release from a misbehaving source (counting it in
//! [`IngestStats::reordered`]), picks a shard ([`Routing`]), delivers the
//! job under the configured [`OverloadPolicy`], and broadcasts the release
//! as a watermark to every other shard so they may keep simulating. The
//! watermark broadcast uses `try_send` and silently skips full queues: a
//! full queue already holds a message whose eventual processing advances
//! that shard at least as far, so skipping cannot deadlock or stall a shard
//! forever — it only delays it until its backlog drains.

use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use crossbeam::channel::{self, Sender, TrySendError};
use flowtree_core::SchedulerSpec;
use flowtree_dag::Time;
use flowtree_sim::JobSpec;

use crate::shard::{run_shard, Msg, ShardResult, ShardSnapshot};
use crate::source::ArrivalSource;

/// What to do with an arrival whose target shard queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OverloadPolicy {
    /// Apply backpressure: block the ingest thread until there is room
    /// (never loses work; the default).
    Block,
    /// Shed load: drop the arriving job (counted in
    /// [`IngestStats::dropped`]); its release still advances watermarks.
    DropNewest,
    /// Try every other shard in ascending queue-length order, falling back
    /// to a blocking send on the original target (never loses work).
    Redirect,
}

impl OverloadPolicy {
    /// CLI name.
    pub fn name(&self) -> &'static str {
        match self {
            OverloadPolicy::Block => "block",
            OverloadPolicy::DropNewest => "drop",
            OverloadPolicy::Redirect => "redirect",
        }
    }

    /// Parse a CLI name.
    pub fn parse(name: &str) -> Result<Self, String> {
        match name {
            "block" => Ok(OverloadPolicy::Block),
            "drop" => Ok(OverloadPolicy::DropNewest),
            "redirect" => Ok(OverloadPolicy::Redirect),
            other => {
                Err(format!("unknown overload policy '{other}'; known: block, drop, redirect"))
            }
        }
    }
}

/// How the router picks a shard for each arrival.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Routing {
    /// Multiplicative hash of the arrival sequence number — stateless and
    /// uniform, like consistent hashing over a fixed ring.
    Hash,
    /// The shard with the shortest queue right now.
    LeastLoaded,
}

impl Routing {
    /// CLI name.
    pub fn name(&self) -> &'static str {
        match self {
            Routing::Hash => "hash",
            Routing::LeastLoaded => "least-loaded",
        }
    }

    /// Parse a CLI name.
    pub fn parse(name: &str) -> Result<Self, String> {
        match name {
            "hash" => Ok(Routing::Hash),
            "least-loaded" => Ok(Routing::LeastLoaded),
            other => Err(format!("unknown routing '{other}'; known: hash, least-loaded")),
        }
    }
}

/// Configuration of a [`ShardPool`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Number of engine shards (worker threads).
    pub shards: usize,
    /// Processors per shard.
    pub m: usize,
    /// Scheduler to run on every shard.
    pub spec: SchedulerSpec,
    /// Scenario label carried into summaries and store records.
    pub scenario: String,
    /// Bounded queue capacity per shard.
    pub queue_cap: usize,
    /// What to do when a shard queue is full.
    pub policy: OverloadPolicy,
    /// How arrivals are placed.
    pub routing: Routing,
    /// Safety horizon per shard (a stalling scheduler errors out instead of
    /// spinning forever).
    pub max_horizon: Time,
}

impl ServeConfig {
    /// A single-shard, blocking, hash-routed pool — the configuration whose
    /// behavior is bit-for-bit the batch engine's.
    pub fn new(spec: SchedulerSpec, m: usize) -> Self {
        ServeConfig {
            shards: 1,
            m,
            spec,
            scenario: "serve".to_string(),
            queue_cap: 1024,
            policy: OverloadPolicy::Block,
            routing: Routing::Hash,
            max_horizon: 100_000_000,
        }
    }
}

/// Ingest-side counters (what happened to offered arrivals).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IngestStats {
    /// Arrivals offered to the pool.
    pub offered: u64,
    /// Arrivals delivered to some shard.
    pub delivered: u64,
    /// Arrivals shed under [`OverloadPolicy::DropNewest`].
    pub dropped: u64,
    /// Arrivals placed on a shard other than the routed one under
    /// [`OverloadPolicy::Redirect`].
    pub redirected: u64,
    /// Arrivals whose release went backwards and was clamped forward.
    pub reordered: u64,
}

/// A point-in-time view of the whole pool.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolSnapshot {
    /// Per-shard progress, indexed by shard.
    pub shards: Vec<ShardSnapshot>,
    /// Ingest counters at snapshot time.
    pub ingest: IngestStats,
}

impl PoolSnapshot {
    /// Jobs admitted across all shards.
    pub fn total_admitted(&self) -> usize {
        self.shards.iter().map(|s| s.admitted).sum()
    }

    /// Subjobs dispatched across all shards.
    pub fn total_dispatched(&self) -> u64 {
        self.shards.iter().map(|s| s.dispatched).sum()
    }

    /// One human-readable stats line (the CLI's periodic heartbeat).
    pub fn line(&self) -> String {
        let now = self.shards.iter().map(|s| s.now).min().unwrap_or(0);
        let queued: usize = self.shards.iter().map(|s| s.queue_len).sum();
        let lb = self.shards.iter().map(|s| s.lower_bound).max().unwrap_or(0);
        format!(
            "t>={now} admitted={} dispatched={} queued={queued} lb>={lb} dropped={} redirected={}",
            self.total_admitted(),
            self.total_dispatched(),
            self.ingest.dropped,
            self.ingest.redirected,
        )
    }
}

/// A running pool of engine shards consuming an arrival stream.
///
/// Feed it with [`offer`](Self::offer) (or [`run_source`](Self::run_source)
/// to pump an [`ArrivalSource`] dry), watch it with
/// [`snapshot`](Self::snapshot), and finish with [`drain`](Self::drain),
/// which returns one [`ShardResult`] per shard.
#[derive(Debug)]
pub struct ShardPool {
    cfg: ServeConfig,
    txs: Vec<Sender<Msg>>,
    handles: Vec<JoinHandle<ShardResult>>,
    snaps: Vec<Arc<Mutex<ShardSnapshot>>>,
    seq: u64,
    last_release: Time,
    ingest: IngestStats,
}

impl ShardPool {
    /// Spawn the shard workers and return the pool, ready for arrivals.
    pub fn launch(cfg: ServeConfig) -> Self {
        assert!(cfg.shards >= 1, "need at least one shard");
        assert!(cfg.m >= 1, "need at least one processor per shard");
        assert!(cfg.queue_cap >= 1, "queues must hold at least one message");
        let mut txs = Vec::with_capacity(cfg.shards);
        let mut handles = Vec::with_capacity(cfg.shards);
        let mut snaps = Vec::with_capacity(cfg.shards);
        for shard in 0..cfg.shards {
            let (tx, rx) = channel::bounded(cfg.queue_cap);
            let snap = Arc::new(Mutex::new(ShardSnapshot::default()));
            let (m, spec, scenario, horizon) =
                (cfg.m, cfg.spec, cfg.scenario.clone(), cfg.max_horizon);
            let worker_snap = Arc::clone(&snap);
            let handle = std::thread::Builder::new()
                .name(format!("flowtree-shard-{shard}"))
                .spawn(move || run_shard(shard, m, spec, scenario, horizon, rx, worker_snap))
                .expect("spawn shard worker");
            txs.push(tx);
            handles.push(handle);
            snaps.push(snap);
        }
        ShardPool {
            cfg,
            txs,
            handles,
            snaps,
            seq: 0,
            last_release: 0,
            ingest: IngestStats::default(),
        }
    }

    /// The pool's configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.cfg
    }

    /// Ingest counters so far.
    pub fn ingest(&self) -> IngestStats {
        self.ingest
    }

    fn pick_shard(&self) -> usize {
        match self.cfg.routing {
            Routing::Hash => {
                (self.seq.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 33) as usize % self.txs.len()
            }
            Routing::LeastLoaded => (0..self.txs.len())
                .min_by_key(|&i| self.txs[i].len())
                .expect("at least one shard"),
        }
    }

    /// Route one arrival. A release earlier than the last offered one is
    /// clamped forward (counted in [`IngestStats::reordered`]) so shard
    /// sessions always see admissible order.
    pub fn offer(&mut self, mut spec: JobSpec) {
        self.ingest.offered += 1;
        if spec.release < self.last_release {
            spec.release = self.last_release;
            self.ingest.reordered += 1;
        }
        self.last_release = spec.release;
        let release = spec.release;
        let target = self.pick_shard();
        self.seq = self.seq.wrapping_add(1);

        let mut delivered_to = None;
        match self.cfg.policy {
            OverloadPolicy::Block => {
                self.txs[target].send(Msg::Job(spec)).expect("shard hung up");
                delivered_to = Some(target);
            }
            OverloadPolicy::DropNewest => match self.txs[target].try_send(Msg::Job(spec)) {
                Ok(()) => delivered_to = Some(target),
                Err(TrySendError::Full(_)) => self.ingest.dropped += 1,
                Err(TrySendError::Disconnected(_)) => panic!("shard hung up"),
            },
            OverloadPolicy::Redirect => {
                let mut order: Vec<usize> = (0..self.txs.len()).collect();
                order.sort_by_key(|&i| (i != target, self.txs[i].len()));
                let mut msg = Some(Msg::Job(spec));
                for &i in &order {
                    match self.txs[i].try_send(msg.take().expect("message pending")) {
                        Ok(()) => {
                            delivered_to = Some(i);
                            break;
                        }
                        Err(TrySendError::Full(back)) => msg = Some(back),
                        Err(TrySendError::Disconnected(_)) => panic!("shard hung up"),
                    }
                }
                if let Some(msg) = msg {
                    // Everyone is full: fall back to backpressure.
                    self.txs[target].send(msg).expect("shard hung up");
                    delivered_to = Some(target);
                }
                if delivered_to != Some(target) {
                    self.ingest.redirected += 1;
                }
            }
        }
        if delivered_to.is_some() {
            self.ingest.delivered += 1;
        }
        // Advance event time everywhere the job did not land.
        for (i, tx) in self.txs.iter().enumerate() {
            if Some(i) != delivered_to {
                let _ = tx.try_send(Msg::Watermark(release));
            }
        }
    }

    /// Pump `source` dry, calling `progress` with a fresh snapshot every
    /// `every` arrivals (0 disables). Returns the number of arrivals offered.
    pub fn run_source_with(
        &mut self,
        source: &mut dyn ArrivalSource,
        every: u64,
        progress: &mut dyn FnMut(&PoolSnapshot),
    ) -> u64 {
        let mut n = 0u64;
        while let Some(spec) = source.next_arrival() {
            self.offer(spec);
            n += 1;
            if every > 0 && n.is_multiple_of(every) {
                progress(&self.snapshot());
            }
        }
        n
    }

    /// Pump `source` dry without progress reporting.
    pub fn run_source(&mut self, source: &mut dyn ArrivalSource) -> u64 {
        self.run_source_with(source, 0, &mut |_| {})
    }

    /// A point-in-time view of every shard plus ingest counters.
    pub fn snapshot(&self) -> PoolSnapshot {
        let shards = self
            .snaps
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let mut snap = s.lock().expect("shard snapshot lock").clone();
                snap.queue_len = self.txs[i].len();
                snap
            })
            .collect();
        PoolSnapshot { shards, ingest: self.ingest }
    }

    /// Graceful shutdown: tell every shard to run dry, wait for all of
    /// them, and return their results ordered by shard index.
    pub fn drain(self) -> Vec<ShardResult> {
        let ShardPool { txs, handles, .. } = self;
        for tx in &txs {
            tx.send(Msg::Drain).expect("shard hung up");
        }
        drop(txs);
        let mut results: Vec<ShardResult> =
            handles.into_iter().map(|h| h.join().expect("shard worker panicked")).collect();
        results.sort_by_key(|r| r.shard);
        results
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowtree_dag::builder::{chain, star};

    fn fifo() -> SchedulerSpec {
        SchedulerSpec::parse("fifo", 1).expect("fifo parses")
    }

    #[test]
    fn policy_and_routing_names_roundtrip() {
        for p in [OverloadPolicy::Block, OverloadPolicy::DropNewest, OverloadPolicy::Redirect] {
            assert_eq!(OverloadPolicy::parse(p.name()), Ok(p));
        }
        for r in [Routing::Hash, Routing::LeastLoaded] {
            assert_eq!(Routing::parse(r.name()), Ok(r));
        }
        assert!(OverloadPolicy::parse("yolo").is_err());
        assert!(Routing::parse("ring").is_err());
    }

    #[test]
    fn out_of_order_releases_are_clamped_and_counted() {
        let mut cfg = ServeConfig::new(fifo(), 2);
        cfg.scenario = "reorder".to_string();
        let mut pool = ShardPool::launch(cfg);
        pool.offer(JobSpec { graph: chain(2), release: 5 });
        pool.offer(JobSpec { graph: star(2), release: 3 }); // late straggler
        assert_eq!(pool.ingest().reordered, 1);
        let results = pool.drain();
        assert_eq!(results[0].summary.jobs, 2);
        // Both jobs run with release 5 after the clamp.
        assert_eq!(results[0].instance.last_release(), 5);
        assert!(results[0].summary.invariants_clean);
    }

    #[test]
    fn hash_routing_spreads_across_shards() {
        let mut cfg = ServeConfig::new(fifo(), 1);
        cfg.shards = 4;
        let pool = ShardPool::launch(cfg);
        let mut hit = vec![false; 4];
        for seq in 0u64..64 {
            hit[(seq.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 33) as usize % 4] = true;
        }
        assert!(hit.iter().all(|&h| h), "hash leaves a shard cold: {hit:?}");
        let results = pool.drain(); // zero-job drain is clean
        assert_eq!(results.len(), 4);
        for r in &results {
            assert_eq!(r.summary.jobs, 0);
            assert_eq!(r.summary.max_flow, 0);
        }
    }

    #[test]
    fn snapshot_reports_progress_and_queues() {
        let mut cfg = ServeConfig::new(fifo(), 2);
        cfg.shards = 2;
        let mut pool = ShardPool::launch(cfg);
        for t in 0..6 {
            pool.offer(JobSpec { graph: chain(3), release: t });
        }
        let snap = pool.snapshot();
        assert_eq!(snap.shards.len(), 2);
        assert_eq!(snap.ingest.offered, 6);
        assert_eq!(snap.ingest.delivered, 6);
        let line = snap.line();
        assert!(line.contains("admitted="), "{line}");
        let results = pool.drain();
        let total: usize = results.iter().map(|r| r.summary.jobs).sum();
        assert_eq!(total, 6);
    }
}
