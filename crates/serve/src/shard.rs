//! One shard: a worker thread driving a streaming [`Session`] under the
//! pool's control-plane protocol.
//!
//! The worker owns a scheduler (built fresh from its
//! [`SchedulerSpec`]) and the streaming monitor stack — a
//! [`LowerBound`], an [`InvariantMonitor`], and [`RunHistograms`] attached
//! to the session as one probe tuple, exactly like the batch
//! [`summarize`](flowtree_analysis::summarize) path. Commands arrive on a
//! bounded channel:
//!
//! * [`ShardCmd::Admit`] admits an arrival and advances the shard's *safe*
//!   time to the job's release — once the router has shown us release `r`,
//!   the global nondecreasing-release contract guarantees no later arrival
//!   can land before `r`, so every step `t < r` may be simulated.
//! * [`ShardCmd::AdmitBatch`] admits a router-coalesced batch in one queue
//!   slot and one [`Session::admit_batch`] call; the batch's last release
//!   implies the watermark. Because placement is per job and the admitted
//!   sequence per shard is what determines its final result, a batched
//!   delivery is bit-for-bit equivalent to the same jobs delivered one
//!   [`ShardCmd::Admit`] at a time (pinned by the batched differential
//!   suite).
//! * [`ShardCmd::Watermark`] advances safe time without a job (the arrival
//!   went to a different shard, was dropped, or is staged behind this
//!   shard's own backlog).
//! * [`ShardCmd::Donate`] admits jobs migrated from another shard's ingress
//!   backlog (work stealing). A donated job's release is clamped forward to
//!   this shard's event time — migration re-releases it here — so the
//!   session's nondecreasing-admission contract survives the move.
//! * [`ShardCmd::Swap`] requests a **live scheduler hot-swap** at an event
//!   time: the shard quiesces there (finishes every whole subjob step up to
//!   the swap point; sessions never split a step), rebuilds the scheduler
//!   from the new [`SchedulerSpec`] against live state via
//!   [`Session::prime_scheduler`], retargets the invariant monitor, and
//!   records a [`SwapEvent`] for the drain summary.
//! * [`ShardCmd::Quiesce`] finishes all in-flight work up to the current
//!   watermark, then replies with a fresh [`ShardSnapshot`] — a synchronous
//!   barrier for callers that need a settled view.
//! * [`ShardCmd::Snapshot`] replies immediately with the shard's current
//!   view, without forcing simulation.
//! * [`ShardCmd::Drain`] (or a closed channel) lifts the watermark limit
//!   entirely: the session runs dry, and the worker returns a
//!   [`ShardResult`] carrying the [`RunReport`], the materialized
//!   per-shard [`Instance`], a certified [`RunSummary`], and every
//!   [`SwapEvent`] along the way.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crossbeam::channel::{Receiver, Sender};
use flowtree_analysis::{summary_from_parts, RunSummary};
use flowtree_core::SchedulerSpec;
use flowtree_dag::{JobId, Time};
use flowtree_sim::monitor::{InvariantMonitor, LowerBound};
use flowtree_sim::{Instance, JobSpec, OnlineScheduler, RunHistograms, RunReport, Session};

use crate::telemetry::{FlightEvent, FlightKind, LatencyProbe, ShardTelemetry};

/// One arrival in flight through the pool: the job plus the wall-clock
/// stamp (µs since the pool's epoch) of when the router first saw it. The
/// stamp rides along through staging, batching, and donation so end-to-end
/// latency is measured from the *offer*, not from whichever queue the job
/// last sat in.
#[derive(Debug, Clone)]
pub struct Arrival {
    /// The job being delivered.
    pub spec: JobSpec,
    /// Microseconds since the pool's epoch when the router accepted it.
    pub offered_us: u64,
}

impl From<JobSpec> for Arrival {
    /// Wrap a bare spec with a zero stamp (tests and direct injection).
    fn from(spec: JobSpec) -> Self {
        Arrival { spec, offered_us: 0 }
    }
}

/// A control-plane command from the router to one shard worker.
#[derive(Debug)]
pub enum ShardCmd {
    /// Admit this arrival (its release implies a watermark).
    Admit(Arrival),
    /// Admit a coalesced batch of arrivals (releases nondecreasing within
    /// the batch; the last one implies the watermark). One queue slot, one
    /// [`Session::admit_batch`] call.
    AdmitBatch(Vec<Arrival>),
    /// No job for you, but event time has advanced this far.
    Watermark(Time),
    /// Admit jobs stolen from another shard's ingress backlog; releases are
    /// clamped forward to this shard's event time.
    Donate(Vec<Arrival>),
    /// Hot-swap the scheduler once simulation reaches the directive's time.
    Swap(SwapDirective),
    /// Finish in-flight work up to the current watermark, then reply with a
    /// settled snapshot.
    Quiesce(Sender<ShardSnapshot>),
    /// Reply with the current snapshot without forcing simulation.
    Snapshot(Sender<ShardSnapshot>),
    /// No further arrivals follow: run dry and report.
    Drain,
}

/// A scheduler hot-swap request: at event time `at`, switch to `spec`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SwapDirective {
    /// Event time of the switch. If the shard's clock is already past `at`
    /// when the command is processed, the swap applies immediately.
    pub at: Time,
    /// The scheduler to rebuild to.
    pub spec: SchedulerSpec,
}

/// One recorded scheduler hot-swap (carried into the results store).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SwapEvent {
    /// Event time at which the new scheduler took over.
    pub t: Time,
    /// Registry name of the scheduler swapped out.
    pub from: String,
    /// Registry name of the scheduler swapped in.
    pub to: String,
}

serde::impl_serde_struct!(SwapEvent { t, from, to });

impl std::fmt::Display for SwapEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}→{}@{}", self.from, self.to, self.t)
    }
}

/// Progress counters one shard publishes continuously, lock-free: a set of
/// relaxed atomics the worker stores after each command batch and any
/// reader ([`PoolHandle::snapshot`](crate::PoolHandle::snapshot)) loads
/// without ever blocking the hot loop. Individual fields are each exact;
/// a multi-field read may straddle a publication (e.g. `dispatched` one
/// loop ahead of `now`) — callers that need a settled, mutually consistent
/// view use [`ShardCmd::Quiesce`] or [`ShardCmd::Snapshot`], whose replies
/// are built synchronously by the worker.
#[derive(Debug, Default)]
pub(crate) struct ShardStats {
    now: AtomicU64,
    admitted: AtomicU64,
    steps: AtomicU64,
    dispatched: AtomicU64,
    lower_bound: AtomicU64,
    donated: AtomicU64,
    swaps: AtomicU64,
}

impl ShardStats {
    /// Publish `snap` (worker side). Relaxed: readers tolerate field skew.
    pub(crate) fn publish(&self, snap: &ShardSnapshot) {
        self.now.store(snap.now, Ordering::Relaxed);
        self.admitted.store(snap.admitted as u64, Ordering::Relaxed);
        self.steps.store(snap.steps, Ordering::Relaxed);
        self.dispatched.store(snap.dispatched, Ordering::Relaxed);
        self.lower_bound.store(snap.lower_bound, Ordering::Relaxed);
        self.donated.store(snap.donated, Ordering::Relaxed);
        self.swaps.store(snap.swaps, Ordering::Relaxed);
    }

    /// Load the latest published view (reader side). `queue_len` and
    /// `staged` are the pool's to fill in.
    pub(crate) fn load(&self) -> ShardSnapshot {
        ShardSnapshot {
            now: self.now.load(Ordering::Relaxed),
            admitted: self.admitted.load(Ordering::Relaxed) as usize,
            steps: self.steps.load(Ordering::Relaxed),
            dispatched: self.dispatched.load(Ordering::Relaxed),
            lower_bound: self.lower_bound.load(Ordering::Relaxed),
            donated: self.donated.load(Ordering::Relaxed),
            swaps: self.swaps.load(Ordering::Relaxed),
            queue_len: 0,
            staged: 0,
        }
    }
}

/// A point-in-time view of one shard's progress (see
/// [`PoolHandle::snapshot`](crate::PoolHandle::snapshot)).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShardSnapshot {
    /// The shard's simulated clock.
    pub now: Time,
    /// Jobs admitted so far.
    pub admitted: usize,
    /// Steps simulated so far.
    pub steps: u64,
    /// Subjobs dispatched so far.
    pub dispatched: u64,
    /// The live Lemma 5.1 lower bound over admitted jobs.
    pub lower_bound: u64,
    /// Jobs admitted via [`ShardCmd::Donate`] (stolen in).
    pub donated: u64,
    /// Scheduler hot-swaps applied so far.
    pub swaps: u64,
    /// Commands queued to the shard (filled in by the pool, not the worker).
    pub queue_len: usize,
    /// Arrivals staged router-side for this shard, awaiting delivery
    /// (filled in by the pool; nonzero only with stealing enabled).
    pub staged: usize,
}

/// What one drained shard hands back.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardResult {
    /// The shard's index in the pool.
    pub shard: usize,
    /// The certified run summary for this shard's sub-instance (labelled
    /// with the *final* scheduler after any hot-swaps).
    pub summary: RunSummary,
    /// The full run report (schedule + stats + counters). Every step was
    /// validated online as the session applied it; debug builds additionally
    /// re-verify the whole schedule against `instance` at drain time.
    pub report: RunReport,
    /// The per-shard instance materialized from admissions.
    pub instance: Instance,
    /// Every scheduler hot-swap applied, in event-time order.
    pub swaps: Vec<SwapEvent>,
}

/// The concrete probe stack every shard session carries.
type ShardProbe<'a> = (
    &'a mut LowerBound,
    &'a mut InvariantMonitor,
    &'a mut RunHistograms,
    &'a mut LatencyProbe,
);

fn snapshot_of(session: &Session<ShardProbe<'_>>, swaps: u64, donated: u64) -> ShardSnapshot {
    let counters = session.counters();
    ShardSnapshot {
        now: session.now(),
        admitted: session.num_admitted(),
        steps: counters.steps,
        dispatched: counters.dispatched,
        lower_bound: session.probe().0.lower_bound(),
        donated,
        swaps,
        queue_len: 0,
        staged: 0,
    }
}

/// Everything a shard worker needs beyond its command channel: identity,
/// engine parameters, and the shared observability cells.
pub(crate) struct ShardCtx {
    pub shard: usize,
    pub m: usize,
    pub spec: SchedulerSpec,
    pub scenario: String,
    pub max_horizon: Time,
    pub stats: Arc<ShardStats>,
    pub tel: Arc<ShardTelemetry>,
}

/// Worker body: consume commands until drained, then summarize.
pub(crate) fn run_shard(ctx: ShardCtx, rx: Receiver<ShardCmd>) -> ShardResult {
    let ShardCtx { shard, m, mut spec, scenario, max_horizon, stats, tel } = ctx;
    let mut sched: Box<dyn OnlineScheduler + Send> = spec.build();
    let mut lb = LowerBound::streaming();
    let mut inv = InvariantMonitor::streaming(spec.invariants());
    let mut histos = RunHistograms::new();
    let mut lat = LatencyProbe::new(Arc::clone(&tel));
    let mut session = Session::new(m).with_max_horizon(max_horizon).with_probe((
        &mut lb,
        &mut inv,
        &mut histos,
        &mut lat,
    ));

    let mut safe: Time = 0;
    let mut draining = false;
    let mut donated: u64 = 0;
    let mut swaps: Vec<SwapEvent> = Vec::new();
    let mut pending_swaps: Vec<SwapDirective> = Vec::new();
    let mut quiesce_replies: Vec<Sender<ShardSnapshot>> = Vec::new();
    let mut batch: Vec<ShardCmd> = Vec::new();
    loop {
        // Block for one command, then absorb the backlog without blocking,
        // so a burst is admitted whole before simulation resumes.
        match rx.recv() {
            Ok(cmd) => {
                batch.push(cmd);
                while let Some(cmd) = rx.try_recv() {
                    batch.push(cmd);
                }
            }
            Err(_) => draining = true,
        }
        for cmd in batch.drain(..) {
            match cmd {
                ShardCmd::Admit(a) => {
                    safe = safe.max(a.spec.release);
                    let id = session
                        .admit(a.spec)
                        .expect("router delivers jobs in nondecreasing release order");
                    let now_us = tel.now_us();
                    session.probe_mut().3.stamp(id, a.offered_us, now_us);
                }
                ShardCmd::AdmitBatch(arrivals) => {
                    if let Some(last) = arrivals.last() {
                        safe = safe.max(last.spec.release);
                    }
                    let base = session.num_admitted();
                    let stamps: Vec<u64> = arrivals.iter().map(|a| a.offered_us).collect();
                    session
                        .admit_batch(arrivals.into_iter().map(|a| a.spec).collect())
                        .expect("router delivers batches in nondecreasing release order");
                    let now_us = tel.now_us();
                    for (k, &offered_us) in stamps.iter().enumerate() {
                        session.probe_mut().3.stamp(JobId((base + k) as u32), offered_us, now_us);
                    }
                }
                ShardCmd::Watermark(w) => safe = safe.max(w),
                ShardCmd::Donate(arrivals) => {
                    let count = arrivals.len();
                    for mut a in arrivals {
                        // Migration re-releases the job at this shard's
                        // event time: never earlier than the clock or the
                        // latest admission, so the session contract holds.
                        a.spec.release = a.spec.release.max(session.now());
                        if session.num_admitted() > 0 {
                            a.spec.release = a.spec.release.max(session.instance().last_release());
                        }
                        safe = safe.max(a.spec.release);
                        let id =
                            session.admit(a.spec).expect("donated releases are clamped admissible");
                        let now_us = tel.now_us();
                        session.probe_mut().3.stamp(id, a.offered_us, now_us);
                        donated += 1;
                    }
                    tel.flight.record(FlightEvent {
                        us: tel.now_us(),
                        shard,
                        kind: FlightKind::Donate,
                        t: session.now(),
                        detail: format!("x{count}"),
                    });
                }
                ShardCmd::Swap(d) => {
                    pending_swaps.push(d);
                    pending_swaps.sort_by_key(|d| d.at);
                }
                ShardCmd::Quiesce(reply) => quiesce_replies.push(reply),
                ShardCmd::Snapshot(reply) => {
                    let _ = reply.send(snapshot_of(&session, swaps.len() as u64, donated));
                }
                ShardCmd::Drain => {
                    draining = true;
                    tel.flight.record(FlightEvent {
                        us: tel.now_us(),
                        shard,
                        kind: FlightKind::Drain,
                        t: session.now(),
                        detail: String::new(),
                    });
                }
            }
        }
        let target = if draining { Time::MAX } else { safe };
        // Apply every swap due inside this simulation window, quiescing the
        // session at each swap point first. The watermark certifies nothing
        // can happen between a dry clock and the swap time, so swapping the
        // moment the session settles is equivalent to swapping at `at`.
        while let Some(&d) = pending_swaps.first() {
            if d.at > target {
                break;
            }
            pending_swaps.remove(0);
            session.run_until(d.at, sched.as_mut()).unwrap_or_else(|e| {
                record_panic(&tel, shard, session.now(), &e);
                panic!("shard {shard}: {e}")
            });
            let t_swap = d.at.max(session.now());
            let from = spec;
            spec = d.spec;
            sched = spec.build();
            session.probe_mut().1.set_checks(spec.invariants());
            session.prime_scheduler(sched.as_mut());
            swaps.push(SwapEvent { t: t_swap, from: from.to_string(), to: spec.to_string() });
            tel.flight.record(FlightEvent {
                us: tel.now_us(),
                shard,
                kind: FlightKind::Swap,
                t: t_swap,
                detail: format!("{from}→{spec}"),
            });
        }
        session.run_until(target, sched.as_mut()).unwrap_or_else(|e| {
            record_panic(&tel, shard, session.now(), &e);
            panic!("shard {shard}: {e}")
        });
        {
            let fresh = snapshot_of(&session, swaps.len() as u64, donated);
            stats.publish(&fresh);
            // Live theory gauges ride the same publication cadence.
            let p = session.probe();
            tel.set_gauges(p.1.total_violations(), p.0.max_flow().unwrap_or(0), p.0.lower_bound());
            if !quiesce_replies.is_empty() {
                tel.flight.record(FlightEvent {
                    us: tel.now_us(),
                    shard,
                    kind: FlightKind::Quiesce,
                    t: session.now(),
                    detail: format!("x{}", quiesce_replies.len()),
                });
            }
            for reply in quiesce_replies.drain(..) {
                let _ = reply.send(fresh.clone());
            }
        }
        if draining {
            break;
        }
    }

    let (report, instance) = session.finish();
    // The session validated every step online (stamp checks at dispatch
    // time), so the full feasibility re-scan is a debug-build cross-check,
    // not a release-path cost.
    #[cfg(debug_assertions)]
    report
        .verify(&instance)
        .unwrap_or_else(|e| panic!("shard {shard} produced an infeasible schedule: {e}"));
    let summary =
        summary_from_parts(&scenario, spec.name(), &instance, m, &report, &lb, &inv, &histos);
    ShardResult { shard, summary, report, instance, swaps }
}

/// Leave a trace of an imminent worker panic in the flight ring (the ring
/// outlives the worker thread behind its `Arc`).
fn record_panic(tel: &ShardTelemetry, shard: usize, t: Time, err: &dyn std::fmt::Display) {
    tel.flight.record(FlightEvent {
        us: tel.now_us(),
        shard,
        kind: FlightKind::Panic,
        t,
        detail: err.to_string(),
    });
}
