//! One shard: a worker thread driving a streaming [`Session`] under the
//! pool's event-time watermark protocol.
//!
//! The worker owns a scheduler (built fresh from its
//! [`SchedulerSpec`]) and the streaming monitor stack — a
//! [`LowerBound`], an [`InvariantMonitor`], and [`RunHistograms`] attached
//! to the session as one probe tuple, exactly like the batch
//! [`summarize`](flowtree_analysis::summarize) path. Messages arrive on a
//! bounded channel:
//!
//! * [`Msg::Job`] admits an arrival and advances the shard's *safe* time to
//!   the job's release — once the router has shown us release `r`, the
//!   global nondecreasing-release contract guarantees no later arrival can
//!   land before `r`, so every step `t < r` may be simulated.
//! * [`Msg::Watermark`] advances safe time without a job (the arrival went
//!   to a different shard, or was dropped).
//! * [`Msg::Drain`] (or a closed channel) lifts the limit entirely: the
//!   session runs dry, and the worker returns a [`ShardResult`] carrying the
//!   verified [`RunReport`], the materialized per-shard [`Instance`], and a
//!   certified [`RunSummary`] — the same record a batch run would produce
//!   for that instance.

use std::sync::{Arc, Mutex};

use crossbeam::channel::Receiver;
use flowtree_analysis::{summary_from_parts, RunSummary};
use flowtree_core::SchedulerSpec;
use flowtree_dag::Time;
use flowtree_sim::monitor::{InvariantMonitor, LowerBound};
use flowtree_sim::{Instance, JobSpec, RunHistograms, RunReport, Session};

/// A message from the router to one shard worker.
#[derive(Debug)]
pub enum Msg {
    /// Admit this arrival (release implies a watermark).
    Job(JobSpec),
    /// No job for you, but event time has advanced this far.
    Watermark(Time),
    /// No further messages follow: run dry and report.
    Drain,
}

/// A live, lock-published view of one shard's progress (see
/// [`ShardPool::snapshot`](crate::ShardPool::snapshot)).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShardSnapshot {
    /// The shard's simulated clock.
    pub now: Time,
    /// Jobs admitted so far.
    pub admitted: usize,
    /// Steps simulated so far.
    pub steps: u64,
    /// Subjobs dispatched so far.
    pub dispatched: u64,
    /// The live Lemma 5.1 lower bound over admitted jobs.
    pub lower_bound: u64,
    /// Messages queued to the shard (filled in by the pool, not the worker).
    pub queue_len: usize,
}

/// What one drained shard hands back.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardResult {
    /// The shard's index in the pool.
    pub shard: usize,
    /// The certified run summary for this shard's sub-instance.
    pub summary: RunSummary,
    /// The full run report (schedule + stats + counters), already verified
    /// feasible against `instance`.
    pub report: RunReport,
    /// The per-shard instance materialized from admissions.
    pub instance: Instance,
}

/// Worker body: consume messages until drained, then summarize.
pub(crate) fn run_shard(
    shard: usize,
    m: usize,
    spec: SchedulerSpec,
    scenario: String,
    max_horizon: Time,
    rx: Receiver<Msg>,
    snap: Arc<Mutex<ShardSnapshot>>,
) -> ShardResult {
    let mut sched = spec.build();
    let mut lb = LowerBound::streaming();
    let mut inv = InvariantMonitor::streaming(spec.invariants());
    let mut histos = RunHistograms::new();
    let mut session =
        Session::new(m)
            .with_max_horizon(max_horizon)
            .with_probe((&mut lb, &mut inv, &mut histos));

    let mut safe: Time = 0;
    let mut draining = false;
    let mut batch: Vec<Msg> = Vec::new();
    loop {
        // Block for one message, then absorb the backlog without blocking,
        // so a burst is admitted whole before simulation resumes.
        match rx.recv() {
            Ok(msg) => {
                batch.push(msg);
                while let Some(msg) = rx.try_recv() {
                    batch.push(msg);
                }
            }
            Err(_) => draining = true,
        }
        for msg in batch.drain(..) {
            match msg {
                Msg::Job(job) => {
                    safe = safe.max(job.release);
                    session
                        .admit(job)
                        .expect("router delivers jobs in nondecreasing release order");
                }
                Msg::Watermark(w) => safe = safe.max(w),
                Msg::Drain => draining = true,
            }
        }
        let target = if draining { Time::MAX } else { safe };
        session
            .run_until(target, sched.as_mut())
            .unwrap_or_else(|e| panic!("shard {shard}: {e}"));
        {
            let counters = session.counters();
            let mut s = snap.lock().expect("shard snapshot lock");
            s.now = session.now();
            s.admitted = session.num_admitted();
            s.steps = counters.steps;
            s.dispatched = counters.dispatched;
            s.lower_bound = session.probe().0.lower_bound();
        }
        if draining {
            break;
        }
    }

    let (report, instance) = session.finish();
    report
        .verify(&instance)
        .unwrap_or_else(|e| panic!("shard {shard} produced an infeasible schedule: {e}"));
    let summary =
        summary_from_parts(&scenario, spec.name(), &instance, m, &report, &lb, &inv, &histos);
    ShardResult { shard, summary, report, instance }
}
