//! Cross-run trend tables over [`StoreRecord`]s.
//!
//! Groups store records by `(scenario, m)` and renders one table per group
//! with the headline serving metrics per record: the certified competitive
//! ratio, throughput (dispatched subjobs per simulated step), and the p99
//! of the per-job flow distribution — the numbers a maintainer watches
//! across commits to spot regressions in scheduler quality.

use std::collections::BTreeMap;

use flowtree_analysis::table::f3;
use flowtree_analysis::Table;

use crate::store::StoreRecord;

/// One table per `(scenario, m)` group, rows sorted by scheduler, run id,
/// then shard.
pub fn trend_tables(records: &[StoreRecord]) -> Vec<Table> {
    let mut groups: BTreeMap<(String, usize), Vec<&StoreRecord>> = BTreeMap::new();
    for r in records {
        groups.entry((r.summary.scenario.clone(), r.summary.m)).or_default().push(r);
    }
    groups
        .into_iter()
        .map(|((scenario, m), mut rs)| {
            rs.sort_by(|a, b| {
                (&a.summary.scheduler, &a.run_id, a.shard).cmp(&(
                    &b.summary.scheduler,
                    &b.run_id,
                    b.shard,
                ))
            });
            let mut table = Table::new(
                format!("trend — scenario '{scenario}' (m = {m}, {} record(s))", rs.len()),
                &[
                    "run",
                    "git",
                    "scheduler",
                    "shard",
                    "jobs",
                    "max flow",
                    "ratio ≤",
                    "throughput",
                    "flow p99",
                    "invariants",
                ],
            );
            for r in rs {
                let s = &r.summary;
                table.row(vec![
                    r.run_id.clone(),
                    r.git.clone(),
                    s.scheduler.clone(),
                    format!("{}/{}", r.shard, r.shards),
                    s.jobs.to_string(),
                    s.max_flow.to_string(),
                    f3(s.ratio),
                    f3(s.dispatched as f64 / s.steps.max(1) as f64),
                    s.flow.p99.to_string(),
                    if s.invariants_clean {
                        "clean".to_string()
                    } else {
                        format!("{} violation(s)", s.total_violations)
                    },
                ]);
            }
            table
        })
        .collect()
}

/// Render the trend tables as one markdown document.
pub fn render_trend(records: &[StoreRecord]) -> String {
    if records.is_empty() {
        return "no store records found\n".to_string();
    }
    let mut out = String::from("# Store trends\n\n");
    for table in trend_tables(records) {
        out.push_str(&table.to_markdown());
        out.push('\n');
    }
    out
}
