//! Cross-run trend tables and plots over [`StoreRecord`]s.
//!
//! Groups store records by `(scenario, m)` and renders one table per group
//! with the headline serving metrics per record: the certified competitive
//! ratio, throughput (dispatched subjobs per simulated step), and the p99
//! of the per-job flow distribution — the numbers a maintainer watches
//! across commits to spot regressions in scheduler quality.
//! [`render_trend_plots`] turns the same records into ASCII longitudinal
//! plots (certified ratio against git revision, one plot per
//! scenario × m × scheduler) for an at-a-glance regression check.

use std::collections::BTreeMap;

use flowtree_analysis::table::f3;
use flowtree_analysis::Table;

use crate::store::StoreRecord;

/// One table per `(scenario, m)` group, rows sorted by scheduler, run id,
/// then shard.
pub fn trend_tables(records: &[StoreRecord]) -> Vec<Table> {
    let mut groups: BTreeMap<(String, usize), Vec<&StoreRecord>> = BTreeMap::new();
    for r in records {
        groups.entry((r.summary.scenario.clone(), r.summary.m)).or_default().push(r);
    }
    groups
        .into_iter()
        .map(|((scenario, m), mut rs)| {
            rs.sort_by(|a, b| {
                (&a.summary.scheduler, &a.run_id, a.shard).cmp(&(
                    &b.summary.scheduler,
                    &b.run_id,
                    b.shard,
                ))
            });
            let mut table = Table::new(
                format!("trend — scenario '{scenario}' (m = {m}, {} record(s))", rs.len()),
                &[
                    "run",
                    "git",
                    "scheduler",
                    "shard",
                    "jobs",
                    "max flow",
                    "ratio ≤",
                    "throughput",
                    "flow p99",
                    "invariants",
                ],
            );
            for r in rs {
                let s = &r.summary;
                table.row(vec![
                    r.run_id.clone(),
                    r.git.clone(),
                    s.scheduler.clone(),
                    format!("{}/{}", r.shard, r.shards),
                    s.jobs.to_string(),
                    s.max_flow.to_string(),
                    f3(s.ratio),
                    f3(s.dispatched as f64 / s.steps.max(1) as f64),
                    s.flow.p99.to_string(),
                    if s.invariants_clean {
                        "clean".to_string()
                    } else {
                        format!("{} violation(s)", s.total_violations)
                    },
                ]);
            }
            table
        })
        .collect()
}

/// Render the trend tables as one markdown document.
pub fn render_trend(records: &[StoreRecord]) -> String {
    if records.is_empty() {
        return "no store records found\n".to_string();
    }
    let mut out = String::from("# Store trends\n\n");
    for table in trend_tables(records) {
        out.push_str(&table.to_markdown());
        out.push('\n');
    }
    out
}

/// Plot grid height in character rows.
const PLOT_ROWS: usize = 8;
/// Character columns per data point.
const PLOT_COL_W: usize = 3;

/// ASCII longitudinal plots: certified ratio per record, in store order
/// (file name = run id, so chronological for dated runs), one plot per
/// `(scenario, m, scheduler)`. Each column is one record; its git revision
/// is listed in the legend under the axis.
pub fn render_trend_plots(records: &[StoreRecord]) -> String {
    let mut groups: BTreeMap<(String, usize, String), Vec<&StoreRecord>> = BTreeMap::new();
    for r in records {
        groups
            .entry((r.summary.scenario.clone(), r.summary.m, r.summary.scheduler.clone()))
            .or_default()
            .push(r);
    }
    let mut out = String::new();
    for ((scenario, m, scheduler), rs) in groups {
        let pts: Vec<(&str, f64)> = rs.iter().map(|r| (r.git.as_str(), r.summary.ratio)).collect();
        out.push_str(&format!(
            "## ratio trend — scenario '{scenario}' (m = {m}, scheduler {scheduler})\n\n"
        ));
        out.push_str(&ascii_plot(&pts));
        out.push('\n');
    }
    out
}

/// One fixed-height scatter of `(label, y)` points, columns in input order.
fn ascii_plot(pts: &[(&str, f64)]) -> String {
    if pts.is_empty() {
        return "(no points)\n".to_string();
    }
    let lo = pts.iter().map(|&(_, y)| y).fold(f64::INFINITY, f64::min);
    let hi = pts.iter().map(|&(_, y)| y).fold(f64::NEG_INFINITY, f64::max);
    let span = if hi > lo { hi - lo } else { 1.0 };
    let width = pts.len() * PLOT_COL_W;
    let mut grid = vec![vec![' '; width]; PLOT_ROWS];
    for (x, &(_, y)) in pts.iter().enumerate() {
        let frac = (y - lo) / span;
        let row = ((PLOT_ROWS - 1) as f64 * frac).round() as usize;
        grid[PLOT_ROWS - 1 - row][x * PLOT_COL_W + 1] = '*';
    }
    let mut out = String::new();
    for (i, row) in grid.iter().enumerate() {
        let label = if i == 0 {
            f3(hi)
        } else if i == PLOT_ROWS - 1 {
            f3(lo)
        } else {
            String::new()
        };
        let line: String = row.iter().collect();
        out.push_str(&format!("{label:>8} |{}\n", line.trim_end()));
    }
    out.push_str(&format!("{:>8} +{}\n", "", "-".repeat(width)));
    let legend: Vec<String> =
        pts.iter().enumerate().map(|(i, &(git, _))| format!("{i}:{git}")).collect();
    out.push_str(&format!("{:>8}  runs: {}\n", "", legend.join(" ")));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::{ServeConfig, ShardPool};

    fn record(git: &str, ratio: f64) -> StoreRecord {
        let pool = ShardPool::launch(ServeConfig::new("fifo".parse().expect("fifo parses"), 1))
            .expect("launch");
        pool.offer(flowtree_sim::JobSpec { graph: flowtree_dag::builder::chain(2), release: 0 })
            .expect("offer");
        let mut summary = pool.drain().expect("drain").remove(0).summary;
        summary.ratio = ratio;
        StoreRecord {
            run_id: "r".to_string(),
            git: git.to_string(),
            shard: 0,
            shards: 1,
            summary,
            swaps: Vec::new(),
        }
    }

    #[test]
    fn plots_render_one_block_per_group_with_git_legend() {
        let out = render_trend_plots(&[record("aaa1111", 1.0), record("bbb2222", 2.0)]);
        assert!(out.contains("ratio trend"), "{out}");
        assert!(out.contains("runs: 0:aaa1111 1:bbb2222"), "{out}");
        assert_eq!(out.matches('*').count(), 2, "{out}");
        assert!(out.contains("2.000"), "{out}");
        assert!(out.contains("1.000"), "{out}");
    }

    #[test]
    fn empty_plot_input_renders_nothing() {
        assert!(render_trend_plots(&[]).is_empty());
    }
}
