//! Persistent results store: append-only JSONL records of drained runs.
//!
//! Each [`StoreRecord`] is one shard's certified
//! [`RunSummary`](flowtree_analysis::RunSummary) plus identifying metadata
//! (run id, `git describe`, shard index). Records append to
//! `<dir>/<run_id>.jsonl`, one JSON object per line, so a run can be
//! re-executed (appending new lines to the same file) without rewriting
//! history, and [`load_records`] can trend over every run in a directory.
//! The conventional location is `results/store/` at the repository root.

use std::fs::{self, OpenOptions};
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};

use flowtree_analysis::RunSummary;

use crate::shard::SwapEvent;

/// One persisted shard result.
#[derive(Debug, Clone, PartialEq)]
pub struct StoreRecord {
    /// Identifies the serve run (conventionally from [`run_id`]).
    pub run_id: String,
    /// `git describe --always --dirty` of the producing tree (or
    /// `"unknown"` outside a repository).
    pub git: String,
    /// Which shard of the run this record is.
    pub shard: usize,
    /// How many shards the run had.
    pub shards: usize,
    /// The shard's certified run summary.
    pub summary: RunSummary,
    /// Scheduler hot-swaps applied during the run, in event-time order
    /// (empty for swap-free runs and for records predating the field).
    pub swaps: Vec<SwapEvent>,
}

// Manual impl instead of `impl_serde_struct!`: the macro rejects records
// missing a field, but `swaps` was added after stores were already written,
// so old JSONL lines must deserialize with an empty swap list.
impl serde::Serialize for StoreRecord {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("run_id".to_string(), serde::Serialize::to_value(&self.run_id)),
            ("git".to_string(), serde::Serialize::to_value(&self.git)),
            ("shard".to_string(), serde::Serialize::to_value(&self.shard)),
            ("shards".to_string(), serde::Serialize::to_value(&self.shards)),
            ("summary".to_string(), serde::Serialize::to_value(&self.summary)),
            ("swaps".to_string(), serde::Serialize::to_value(&self.swaps)),
        ])
    }
}

impl serde::Deserialize for StoreRecord {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        fn field<T: serde::Deserialize>(v: &serde::Value, name: &str) -> Result<T, serde::Error> {
            let f = v.get(name).ok_or_else(|| serde::Error::missing_field(name))?;
            T::from_value(f)
        }
        Ok(StoreRecord {
            run_id: field(v, "run_id")?,
            git: field(v, "git")?,
            shard: field(v, "shard")?,
            shards: field(v, "shards")?,
            summary: field(v, "summary")?,
            swaps: match v.get("swaps") {
                Some(f) => serde::Deserialize::from_value(f)?,
                None => Vec::new(),
            },
        })
    }
}

/// An append-only directory of JSONL run records.
#[derive(Debug, Clone)]
pub struct ResultsStore {
    dir: PathBuf,
}

impl ResultsStore {
    /// Open (creating if needed) the store directory.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(ResultsStore { dir })
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Append one record to `<dir>/<run_id>.jsonl`; returns the file path.
    pub fn append(&self, record: &StoreRecord) -> io::Result<PathBuf> {
        let file = self.dir.join(format!("{}.jsonl", sanitize(&record.run_id)));
        let line = serde_json::to_string(record)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        let mut f = OpenOptions::new().create(true).append(true).open(&file)?;
        writeln!(f, "{line}")?;
        Ok(file)
    }

    /// Load every record in the store, file-sorted then line-ordered.
    pub fn load(&self) -> io::Result<Vec<StoreRecord>> {
        load_records(&self.dir)
    }
}

/// Load records from a JSONL file, or from every `*.jsonl` file (sorted by
/// name) when `path` is a directory — except `flight*.jsonl` flight-recorder
/// dumps, which share the store directory but not the record schema.
pub fn load_records(path: &Path) -> io::Result<Vec<StoreRecord>> {
    let mut records = Vec::new();
    if path.is_dir() {
        let mut files: Vec<PathBuf> = fs::read_dir(path)?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|e| e == "jsonl"))
            .filter(|p| {
                !p.file_name().and_then(|n| n.to_str()).is_some_and(|n| n.starts_with("flight"))
            })
            .collect();
        files.sort();
        for file in files {
            load_file(&file, &mut records)?;
        }
    } else {
        load_file(path, &mut records)?;
    }
    Ok(records)
}

fn load_file(path: &Path, out: &mut Vec<StoreRecord>) -> io::Result<()> {
    let text = fs::read_to_string(path)?;
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let record: StoreRecord = serde_json::from_str(line).map_err(|e| {
            io::Error::new(io::ErrorKind::InvalidData, format!("{}:{}: {e}", path.display(), i + 1))
        })?;
        out.push(record);
    }
    Ok(())
}

/// `git describe --always --dirty` of the current tree, or `"unknown"`.
pub fn git_describe() -> String {
    std::process::Command::new("git")
        .args(["describe", "--always", "--dirty"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// The conventional run id: `<scenario>-<scheduler>-m<m>-s<seed>`,
/// sanitized for use as a file name.
pub fn run_id(scenario: &str, scheduler: &str, m: usize, seed: u64) -> String {
    sanitize(&format!("{scenario}-{scheduler}-m{m}-s{seed}"))
}

fn sanitize(s: &str) -> String {
    s.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-') {
                c
            } else {
                '-'
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_ids_are_filesystem_safe() {
        assert_eq!(run_id("sort farm", "fifo", 8, 42), "sort-farm-fifo-m8-s42");
        assert_eq!(sanitize("a/b\\c:d"), "a-b-c-d");
    }

    fn sample_summary() -> RunSummary {
        use crate::pool::{ServeConfig, ShardPool};
        let pool = ShardPool::launch(ServeConfig::new("fifo".parse().expect("fifo parses"), 1))
            .expect("launch");
        pool.offer(flowtree_sim::JobSpec { graph: flowtree_dag::builder::chain(2), release: 0 })
            .expect("offer");
        pool.drain().expect("drain").remove(0).summary
    }

    #[test]
    fn records_without_swaps_field_still_deserialize() {
        let record = StoreRecord {
            run_id: "r1".to_string(),
            git: "abc1234".to_string(),
            shard: 0,
            shards: 1,
            summary: sample_summary(),
            swaps: vec![SwapEvent { t: 7, from: "fifo".to_string(), to: "lpf".to_string() }],
        };
        let line = serde_json::to_string(&record).expect("serializes");
        assert!(line.contains("\"swaps\""), "{line}");
        let back: StoreRecord = serde_json::from_str(&line).expect("roundtrips");
        assert_eq!(back, record);

        // A pre-control-plane line has no "swaps" key at all.
        let legacy = line.replace(",\"swaps\":[{\"t\":7,\"from\":\"fifo\",\"to\":\"lpf\"}]", "");
        assert!(!legacy.contains("swaps"), "{legacy}");
        let old: StoreRecord = serde_json::from_str(&legacy).expect("legacy line loads");
        assert!(old.swaps.is_empty());
        assert_eq!(old.summary, record.summary);
    }

    #[test]
    fn directory_scan_skips_flight_recorder_dumps() {
        let dir = std::env::temp_dir().join(format!("flowtree-store-scan-{}", std::process::id()));
        fs::create_dir_all(&dir).expect("mkdir");
        let record = StoreRecord {
            run_id: "r1".to_string(),
            git: "abc1234".to_string(),
            shard: 0,
            shards: 1,
            summary: sample_summary(),
            swaps: Vec::new(),
        };
        let store = ResultsStore::open(&dir).expect("open");
        store.append(&record).expect("append");
        // A flight-recorder dump shares the directory but not the schema; a
        // drained serve run writes one beside the records by default.
        fs::write(dir.join("flight-r1.jsonl"), "{\"t_us\":1,\"shard\":0,\"kind\":\"drain\"}\n")
            .expect("write flight dump");
        let loaded = load_records(&dir).expect("flight dump must not break the scan");
        assert_eq!(loaded, vec![record]);
        fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn git_describe_never_panics() {
        let g = git_describe();
        assert!(!g.is_empty());
        assert!(!g.contains('\n'));
    }
}
