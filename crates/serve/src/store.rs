//! Persistent results store: append-only JSONL records of drained runs.
//!
//! Each [`StoreRecord`] is one shard's certified
//! [`RunSummary`](flowtree_analysis::RunSummary) plus identifying metadata
//! (run id, `git describe`, shard index). Records append to
//! `<dir>/<run_id>.jsonl`, one JSON object per line, so a run can be
//! re-executed (appending new lines to the same file) without rewriting
//! history, and [`load_records`] can trend over every run in a directory.
//! The conventional location is `results/store/` at the repository root.

use std::fs::{self, OpenOptions};
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};

use flowtree_analysis::RunSummary;

use crate::shard::SwapEvent;

/// One persisted shard result.
#[derive(Debug, Clone, PartialEq)]
pub struct StoreRecord {
    /// Identifies the serve run (conventionally from [`run_id`]).
    pub run_id: String,
    /// `git describe --always --dirty` of the producing tree (or
    /// `"unknown"` outside a repository).
    pub git: String,
    /// Which shard of the run this record is.
    pub shard: usize,
    /// How many shards the run had.
    pub shards: usize,
    /// The shard's certified run summary.
    pub summary: RunSummary,
    /// Scheduler hot-swaps applied during the run, in event-time order
    /// (empty for swap-free runs and for records predating the field).
    pub swaps: Vec<SwapEvent>,
}

// Manual impl instead of `impl_serde_struct!`: the macro rejects records
// missing a field, but `swaps` was added after stores were already written,
// so old JSONL lines must deserialize with an empty swap list.
impl serde::Serialize for StoreRecord {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("run_id".to_string(), serde::Serialize::to_value(&self.run_id)),
            ("git".to_string(), serde::Serialize::to_value(&self.git)),
            ("shard".to_string(), serde::Serialize::to_value(&self.shard)),
            ("shards".to_string(), serde::Serialize::to_value(&self.shards)),
            ("summary".to_string(), serde::Serialize::to_value(&self.summary)),
            ("swaps".to_string(), serde::Serialize::to_value(&self.swaps)),
        ])
    }
}

impl serde::Deserialize for StoreRecord {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        fn field<T: serde::Deserialize>(v: &serde::Value, name: &str) -> Result<T, serde::Error> {
            let f = v.get(name).ok_or_else(|| serde::Error::missing_field(name))?;
            T::from_value(f)
        }
        Ok(StoreRecord {
            run_id: field(v, "run_id")?,
            git: field(v, "git")?,
            shard: field(v, "shard")?,
            shards: field(v, "shards")?,
            summary: field(v, "summary")?,
            swaps: match v.get("swaps") {
                Some(f) => serde::Deserialize::from_value(f)?,
                None => Vec::new(),
            },
        })
    }
}

/// An append-only directory of JSONL run records.
#[derive(Debug, Clone)]
pub struct ResultsStore {
    dir: PathBuf,
}

impl ResultsStore {
    /// Open (creating if needed) the store directory.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(ResultsStore { dir })
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Append one record to `<dir>/<run_id>.jsonl`; returns the file path.
    pub fn append(&self, record: &StoreRecord) -> io::Result<PathBuf> {
        let file = self.dir.join(format!("{}.jsonl", sanitize(&record.run_id)));
        let line = serde_json::to_string(record)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        let mut f = OpenOptions::new().create(true).append(true).open(&file)?;
        writeln!(f, "{line}")?;
        Ok(file)
    }

    /// Load every record in the store, file-sorted then line-ordered.
    pub fn load(&self) -> io::Result<Vec<StoreRecord>> {
        load_records(&self.dir)
    }
}

/// Where [`gc_store`] folds superseded lines: a compacted history file in
/// the store directory, excluded from directory scans like flight dumps
/// (its lines are still plain [`StoreRecord`]s, loadable by passing the
/// file path to [`load_records`] directly).
pub const HISTORY_FILE: &str = "history.jsonl";

/// Load records from a JSONL file, or from every `*.jsonl` file (sorted by
/// name) when `path` is a directory — except `flight*.jsonl` flight-recorder
/// dumps (which share the store directory but not the record schema) and
/// the [`HISTORY_FILE`] of folded superseded runs.
pub fn load_records(path: &Path) -> io::Result<Vec<StoreRecord>> {
    let mut records = Vec::new();
    if path.is_dir() {
        let mut files: Vec<PathBuf> = fs::read_dir(path)?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|e| e == "jsonl"))
            .filter(|p| {
                !p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with("flight") || n == HISTORY_FILE)
            })
            .collect();
        files.sort();
        for file in files {
            load_file(&file, &mut records)?;
        }
    } else {
        load_file(path, &mut records)?;
    }
    Ok(records)
}

/// One store file's outcome in a [`GcReport`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GcFileReport {
    /// File name within the store directory.
    pub file: String,
    /// Lines kept in place (current git for their run id).
    pub kept: usize,
    /// Superseded lines folded (or foldable, under `--dry-run`) into
    /// [`HISTORY_FILE`].
    pub folded: usize,
}

/// What a [`gc_store`] pass did — or would do, when planned with
/// `dry_run`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GcReport {
    /// Per-file outcomes, sorted by file name (files with nothing to fold
    /// included, so a dry run lists the whole corpus).
    pub files: Vec<GcFileReport>,
    /// Whether this was a plan only (nothing written).
    pub dry_run: bool,
}

impl GcReport {
    /// Superseded lines across all files.
    pub fn total_folded(&self) -> usize {
        self.files.iter().map(|f| f.folded).sum()
    }

    /// Kept lines across all files.
    pub fn total_kept(&self) -> usize {
        self.files.iter().map(|f| f.kept).sum()
    }
}

/// Compact a store directory: within each record file, a line is
/// *superseded* when a later line carries the same `run_id` with a
/// different `git` — the file is append-only, so line order is re-run
/// order, and only the newest git's records describe the current tree.
/// Superseded lines move (verbatim, preserving legacy lines without a
/// `swaps` field byte for byte) into [`HISTORY_FILE`]; current lines stay.
/// With `dry_run` nothing is written and the report says what would fold.
/// Flight dumps and the history file itself are never touched.
pub fn gc_store(dir: &Path, dry_run: bool) -> io::Result<GcReport> {
    let mut files: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == "jsonl"))
        .filter(|p| {
            !p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("flight") || n == HISTORY_FILE)
        })
        .collect();
    files.sort();
    let mut report = GcReport { files: Vec::new(), dry_run };
    for file in files {
        let name = file.file_name().and_then(|n| n.to_str()).unwrap_or("<non-utf8>").to_string();
        let text = fs::read_to_string(&file)?;
        // (raw line, run_id, git) for every record line, in file order.
        let mut lines: Vec<(String, String, String)> = Vec::new();
        for (i, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let record: StoreRecord = serde_json::from_str(line).map_err(|e| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("{}:{}: {e}", file.display(), i + 1),
                )
            })?;
            lines.push((line.to_string(), record.run_id, record.git));
        }
        // The current git per run id is whatever the *last* line says.
        let mut current: Vec<(String, String)> = Vec::new();
        for (_, run_id, git) in &lines {
            match current.iter_mut().find(|(r, _)| r == run_id) {
                Some((_, g)) => g.clone_from(git),
                None => current.push((run_id.clone(), git.clone())),
            }
        }
        let is_current =
            |run_id: &str, git: &str| current.iter().any(|(r, g)| r == run_id && g == git);
        let (kept, folded): (Vec<_>, Vec<_>) =
            lines.iter().partition(|(_, run_id, git)| is_current(run_id, git));
        if !dry_run && !folded.is_empty() {
            let mut history =
                OpenOptions::new().create(true).append(true).open(dir.join(HISTORY_FILE))?;
            for (raw, _, _) in &folded {
                writeln!(history, "{raw}")?;
            }
            let mut out = String::new();
            for (raw, _, _) in &kept {
                out.push_str(raw);
                out.push('\n');
            }
            fs::write(&file, out)?;
        }
        report
            .files
            .push(GcFileReport { file: name, kept: kept.len(), folded: folded.len() });
    }
    Ok(report)
}

fn load_file(path: &Path, out: &mut Vec<StoreRecord>) -> io::Result<()> {
    let text = fs::read_to_string(path)?;
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let record: StoreRecord = serde_json::from_str(line).map_err(|e| {
            io::Error::new(io::ErrorKind::InvalidData, format!("{}:{}: {e}", path.display(), i + 1))
        })?;
        out.push(record);
    }
    Ok(())
}

/// `git describe --always --dirty` of the current tree, or `"unknown"`.
pub fn git_describe() -> String {
    std::process::Command::new("git")
        .args(["describe", "--always", "--dirty"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// The conventional run id: `<scenario>-<scheduler>-m<m>-s<seed>`,
/// sanitized for use as a file name.
pub fn run_id(scenario: &str, scheduler: &str, m: usize, seed: u64) -> String {
    sanitize(&format!("{scenario}-{scheduler}-m{m}-s{seed}"))
}

fn sanitize(s: &str) -> String {
    s.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-') {
                c
            } else {
                '-'
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_ids_are_filesystem_safe() {
        assert_eq!(run_id("sort farm", "fifo", 8, 42), "sort-farm-fifo-m8-s42");
        assert_eq!(sanitize("a/b\\c:d"), "a-b-c-d");
    }

    fn sample_summary() -> RunSummary {
        use crate::pool::{ServeConfig, ShardPool};
        let pool = ShardPool::launch(ServeConfig::new("fifo".parse().expect("fifo parses"), 1))
            .expect("launch");
        pool.offer(flowtree_sim::JobSpec { graph: flowtree_dag::builder::chain(2), release: 0 })
            .expect("offer");
        pool.drain().expect("drain").remove(0).summary
    }

    #[test]
    fn records_without_swaps_field_still_deserialize() {
        let record = StoreRecord {
            run_id: "r1".to_string(),
            git: "abc1234".to_string(),
            shard: 0,
            shards: 1,
            summary: sample_summary(),
            swaps: vec![SwapEvent { t: 7, from: "fifo".to_string(), to: "lpf".to_string() }],
        };
        let line = serde_json::to_string(&record).expect("serializes");
        assert!(line.contains("\"swaps\""), "{line}");
        let back: StoreRecord = serde_json::from_str(&line).expect("roundtrips");
        assert_eq!(back, record);

        // A pre-control-plane line has no "swaps" key at all.
        let legacy = line.replace(",\"swaps\":[{\"t\":7,\"from\":\"fifo\",\"to\":\"lpf\"}]", "");
        assert!(!legacy.contains("swaps"), "{legacy}");
        let old: StoreRecord = serde_json::from_str(&legacy).expect("legacy line loads");
        assert!(old.swaps.is_empty());
        assert_eq!(old.summary, record.summary);
    }

    #[test]
    fn directory_scan_skips_flight_recorder_dumps() {
        let dir = std::env::temp_dir().join(format!("flowtree-store-scan-{}", std::process::id()));
        fs::create_dir_all(&dir).expect("mkdir");
        let record = StoreRecord {
            run_id: "r1".to_string(),
            git: "abc1234".to_string(),
            shard: 0,
            shards: 1,
            summary: sample_summary(),
            swaps: Vec::new(),
        };
        let store = ResultsStore::open(&dir).expect("open");
        store.append(&record).expect("append");
        // A flight-recorder dump shares the directory but not the schema; a
        // drained serve run writes one beside the records by default.
        fs::write(dir.join("flight-r1.jsonl"), "{\"t_us\":1,\"shard\":0,\"kind\":\"drain\"}\n")
            .expect("write flight dump");
        let loaded = load_records(&dir).expect("flight dump must not break the scan");
        assert_eq!(loaded, vec![record]);
        fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn gc_folds_superseded_runs_and_preserves_legacy_lines() {
        let dir = std::env::temp_dir().join(format!("flowtree-store-gc-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("mkdir");
        let summary = sample_summary();
        let record = |git: &str, shard: usize| StoreRecord {
            run_id: "r1".to_string(),
            git: git.to_string(),
            shard,
            shards: 2,
            summary: summary.clone(),
            swaps: Vec::new(),
        };
        // An old re-run under git "aaa" — one line predating the `swaps`
        // field — then the current run under git "bbb".
        let legacy = serde_json::to_string(&record("aaa", 0))
            .expect("serializes")
            .replace(",\"swaps\":[]", "");
        assert!(!legacy.contains("swaps"), "{legacy}");
        let current: Vec<String> = (0..2)
            .map(|s| serde_json::to_string(&record("bbb", s)).expect("serializes"))
            .collect();
        let file = dir.join("r1.jsonl");
        fs::write(&file, format!("{legacy}\n{}\n{}\n", current[0], current[1])).expect("seed");
        // A flight dump must never be touched by gc.
        fs::write(dir.join("flight-r1.jsonl"), "{\"not\":\"a record\"}\n").expect("flight");

        let plan = gc_store(&dir, true).expect("dry run");
        assert!(plan.dry_run);
        assert_eq!(plan.files, vec![GcFileReport { file: "r1.jsonl".into(), kept: 2, folded: 1 }]);
        assert!(!dir.join(HISTORY_FILE).exists(), "dry run must not write");

        let done = gc_store(&dir, false).expect("gc");
        assert_eq!((done.total_kept(), done.total_folded()), (2, 1));
        // The superseded legacy line moved to history byte for byte.
        let history = fs::read_to_string(dir.join(HISTORY_FILE)).expect("history");
        assert_eq!(history, format!("{legacy}\n"));
        let live = fs::read_to_string(&file).expect("live file");
        assert_eq!(live, format!("{}\n{}\n", current[0], current[1]));
        // Scans see only current records; history still loads explicitly.
        let records = load_records(&dir).expect("scan");
        assert_eq!(records.len(), 2);
        assert!(records.iter().all(|r| r.git == "bbb"));
        let old = load_records(&dir.join(HISTORY_FILE)).expect("history loads");
        assert_eq!(old.len(), 1);
        assert_eq!(old[0].git, "aaa");
        assert!(old[0].swaps.is_empty());
        // Idempotent: a second pass folds nothing.
        let again = gc_store(&dir, false).expect("second gc");
        assert_eq!(again.total_folded(), 0);
        fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn git_describe_never_panics() {
        let g = git_describe();
        assert!(!g.is_empty());
        assert!(!g.contains('\n'));
    }
}
