//! Persistent results store: append-only JSONL records of drained runs.
//!
//! Each [`StoreRecord`] is one shard's certified
//! [`RunSummary`](flowtree_analysis::RunSummary) plus identifying metadata
//! (run id, `git describe`, shard index). Records append to
//! `<dir>/<run_id>.jsonl`, one JSON object per line, so a run can be
//! re-executed (appending new lines to the same file) without rewriting
//! history, and [`load_records`] can trend over every run in a directory.
//! The conventional location is `results/store/` at the repository root.

use std::fs::{self, OpenOptions};
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};

use flowtree_analysis::RunSummary;

use crate::shard::SwapEvent;

/// One persisted shard result.
#[derive(Debug, Clone, PartialEq)]
pub struct StoreRecord {
    /// Identifies the serve run (conventionally from [`run_id`]).
    pub run_id: String,
    /// `git describe --always --dirty` of the producing tree (or
    /// `"unknown"` outside a repository).
    pub git: String,
    /// Which shard of the run this record is.
    pub shard: usize,
    /// How many shards the run had.
    pub shards: usize,
    /// The shard's certified run summary.
    pub summary: RunSummary,
    /// Scheduler hot-swaps applied during the run, in event-time order
    /// (empty for swap-free runs and for records predating the field).
    pub swaps: Vec<SwapEvent>,
}

// Manual impl instead of `impl_serde_struct!`: the macro rejects records
// missing a field, but `swaps` was added after stores were already written,
// so old JSONL lines must deserialize with an empty swap list.
impl serde::Serialize for StoreRecord {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("run_id".to_string(), serde::Serialize::to_value(&self.run_id)),
            ("git".to_string(), serde::Serialize::to_value(&self.git)),
            ("shard".to_string(), serde::Serialize::to_value(&self.shard)),
            ("shards".to_string(), serde::Serialize::to_value(&self.shards)),
            ("summary".to_string(), serde::Serialize::to_value(&self.summary)),
            ("swaps".to_string(), serde::Serialize::to_value(&self.swaps)),
        ])
    }
}

impl serde::Deserialize for StoreRecord {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        fn field<T: serde::Deserialize>(v: &serde::Value, name: &str) -> Result<T, serde::Error> {
            let f = v.get(name).ok_or_else(|| serde::Error::missing_field(name))?;
            T::from_value(f)
        }
        Ok(StoreRecord {
            run_id: field(v, "run_id")?,
            git: field(v, "git")?,
            shard: field(v, "shard")?,
            shards: field(v, "shards")?,
            summary: field(v, "summary")?,
            swaps: match v.get("swaps") {
                Some(f) => serde::Deserialize::from_value(f)?,
                None => Vec::new(),
            },
        })
    }
}

/// An append-only directory of JSONL run records.
#[derive(Debug, Clone)]
pub struct ResultsStore {
    dir: PathBuf,
}

impl ResultsStore {
    /// Open (creating if needed) the store directory.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(ResultsStore { dir })
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Append one record to `<dir>/<run_id>.jsonl`; returns the file path.
    pub fn append(&self, record: &StoreRecord) -> io::Result<PathBuf> {
        let file = self.dir.join(format!("{}.jsonl", sanitize(&record.run_id)));
        let line = serde_json::to_string(record)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        let mut f = OpenOptions::new().create(true).append(true).open(&file)?;
        writeln!(f, "{line}")?;
        Ok(file)
    }

    /// Load every record in the store, file-sorted then line-ordered.
    pub fn load(&self) -> io::Result<Vec<StoreRecord>> {
        load_records(&self.dir)
    }
}

/// Where [`gc_store`] folds superseded lines: a compacted history file in
/// the store directory, excluded from directory scans like flight dumps
/// (its lines are still plain [`StoreRecord`]s, loadable by passing the
/// file path to [`load_records`] directly).
pub const HISTORY_FILE: &str = "history.jsonl";

/// Sidecar next to [`HISTORY_FILE`] recording *when* lines were folded:
/// one `{"at": <unix-secs>, "lines": N}` entry per [`gc_store`] fold, in
/// fold order. [`prune_history`] uses it to age lines; history files
/// predating the sidecar simply have unknown-age lines (never pruned by
/// `--max-age`, still prunable oldest-first by `--max-bytes`).
pub const HISTORY_META_FILE: &str = "history.meta.jsonl";

/// Is this store-directory file one of the maintenance files (flight
/// dumps, history, history metadata) rather than a live record file?
fn is_sidecar(p: &Path) -> bool {
    p.file_name()
        .and_then(|n| n.to_str())
        .is_some_and(|n| n.starts_with("flight") || n == HISTORY_FILE || n == HISTORY_META_FILE)
}

/// Load records from a JSONL file, or from every `*.jsonl` file (sorted by
/// name) when `path` is a directory — except `flight*.jsonl` flight-recorder
/// dumps (which share the store directory but not the record schema), the
/// [`HISTORY_FILE`] of folded superseded runs, and its
/// [`HISTORY_META_FILE`] sidecar.
pub fn load_records(path: &Path) -> io::Result<Vec<StoreRecord>> {
    let mut records = Vec::new();
    if path.is_dir() {
        let mut files: Vec<PathBuf> = fs::read_dir(path)?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|e| e == "jsonl"))
            .filter(|p| !is_sidecar(p))
            .collect();
        files.sort();
        for file in files {
            load_file(&file, &mut records)?;
        }
    } else {
        load_file(path, &mut records)?;
    }
    Ok(records)
}

/// One store file's outcome in a [`GcReport`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GcFileReport {
    /// File name within the store directory.
    pub file: String,
    /// Lines kept in place (current git for their run id).
    pub kept: usize,
    /// Superseded lines folded (or foldable, under `--dry-run`) into
    /// [`HISTORY_FILE`].
    pub folded: usize,
}

/// What a [`gc_store`] pass did — or would do, when planned with
/// `dry_run`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GcReport {
    /// Per-file outcomes, sorted by file name (files with nothing to fold
    /// included, so a dry run lists the whole corpus).
    pub files: Vec<GcFileReport>,
    /// Whether this was a plan only (nothing written).
    pub dry_run: bool,
}

impl GcReport {
    /// Superseded lines across all files.
    pub fn total_folded(&self) -> usize {
        self.files.iter().map(|f| f.folded).sum()
    }

    /// Kept lines across all files.
    pub fn total_kept(&self) -> usize {
        self.files.iter().map(|f| f.kept).sum()
    }
}

/// Compact a store directory: within each record file, a line is
/// *superseded* when a later line carries the same `run_id` with a
/// different `git` — the file is append-only, so line order is re-run
/// order, and only the newest git's records describe the current tree.
/// Superseded lines move (verbatim, preserving legacy lines without a
/// `swaps` field byte for byte) into [`HISTORY_FILE`]; current lines stay.
/// With `dry_run` nothing is written and the report says what would fold.
/// Flight dumps and the history file itself are never touched.
pub fn gc_store(dir: &Path, dry_run: bool) -> io::Result<GcReport> {
    let mut files: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == "jsonl"))
        .filter(|p| !is_sidecar(p))
        .collect();
    files.sort();
    let mut report = GcReport { files: Vec::new(), dry_run };
    for file in files {
        let name = file.file_name().and_then(|n| n.to_str()).unwrap_or("<non-utf8>").to_string();
        let text = fs::read_to_string(&file)?;
        // (raw line, run_id, git) for every record line, in file order.
        let mut lines: Vec<(String, String, String)> = Vec::new();
        for (i, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let record: StoreRecord = serde_json::from_str(line).map_err(|e| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("{}:{}: {e}", file.display(), i + 1),
                )
            })?;
            lines.push((line.to_string(), record.run_id, record.git));
        }
        // The current git per run id is whatever the *last* line says.
        let mut current: Vec<(String, String)> = Vec::new();
        for (_, run_id, git) in &lines {
            match current.iter_mut().find(|(r, _)| r == run_id) {
                Some((_, g)) => g.clone_from(git),
                None => current.push((run_id.clone(), git.clone())),
            }
        }
        let is_current =
            |run_id: &str, git: &str| current.iter().any(|(r, g)| r == run_id && g == git);
        let (kept, folded): (Vec<_>, Vec<_>) =
            lines.iter().partition(|(_, run_id, git)| is_current(run_id, git));
        if !dry_run && !folded.is_empty() {
            let mut history =
                OpenOptions::new().create(true).append(true).open(dir.join(HISTORY_FILE))?;
            for (raw, _, _) in &folded {
                writeln!(history, "{raw}")?;
            }
            // Stamp the fold in the metadata sidecar so `prune_history`
            // can age these lines later.
            let at = std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_secs())
                .unwrap_or(0);
            let mut meta =
                OpenOptions::new().create(true).append(true).open(dir.join(HISTORY_META_FILE))?;
            writeln!(meta, "{{\"at\":{at},\"lines\":{}}}", folded.len())?;
            let mut out = String::new();
            for (raw, _, _) in &kept {
                out.push_str(raw);
                out.push('\n');
            }
            fs::write(&file, out)?;
        }
        report
            .files
            .push(GcFileReport { file: name, kept: kept.len(), folded: folded.len() });
    }
    Ok(report)
}

/// One live record file's row in an [`LsReport`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LsFileReport {
    /// File name within the store directory.
    pub file: String,
    /// Record lines in the file.
    pub records: usize,
    /// File size on disk.
    pub bytes: u64,
    /// Distinct run ids, in first-seen order.
    pub runs: Vec<String>,
    /// Distinct `git describe` revisions, in first-seen order.
    pub gits: Vec<String>,
}

/// What [`ls_store`] saw: live record files plus the maintenance files
/// that share the directory.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LsReport {
    /// Per record file, sorted by file name.
    pub files: Vec<LsFileReport>,
    /// Superseded records folded into [`HISTORY_FILE`].
    pub superseded: usize,
    /// Size of [`HISTORY_FILE`] on disk (0 when absent).
    pub history_bytes: u64,
    /// Flight-recorder dumps (`flight*.jsonl`) in the directory.
    pub flight_files: usize,
    /// Their combined size on disk.
    pub flight_bytes: u64,
}

impl LsReport {
    /// Live records across all files.
    pub fn total_records(&self) -> usize {
        self.files.iter().map(|f| f.records).sum()
    }

    /// Live record bytes across all files.
    pub fn total_bytes(&self) -> u64 {
        self.files.iter().map(|f| f.bytes).sum()
    }

    /// Distinct run ids across all files, in first-seen order.
    pub fn runs(&self) -> Vec<String> {
        let mut out: Vec<String> = Vec::new();
        for f in &self.files {
            for r in &f.runs {
                if !out.contains(r) {
                    out.push(r.clone());
                }
            }
        }
        out
    }

    /// Distinct git revisions across all files, in first-seen order.
    pub fn gits(&self) -> Vec<String> {
        let mut out: Vec<String> = Vec::new();
        for f in &self.files {
            for g in &f.gits {
                if !out.contains(g) {
                    out.push(g.clone());
                }
            }
        }
        out
    }
}

/// Summarize a store directory without modifying it: every live record
/// file (validated line by line — a corrupt record is an error, same as a
/// [`load_records`] scan), the folded history, and any flight dumps.
pub fn ls_store(dir: &Path) -> io::Result<LsReport> {
    let mut report = LsReport::default();
    let mut files: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == "jsonl"))
        .collect();
    files.sort();
    for file in files {
        let name = file.file_name().and_then(|n| n.to_str()).unwrap_or("<non-utf8>").to_string();
        let bytes = fs::metadata(&file)?.len();
        if name.starts_with("flight") {
            report.flight_files += 1;
            report.flight_bytes += bytes;
            continue;
        }
        if name == HISTORY_META_FILE {
            continue;
        }
        if name == HISTORY_FILE {
            report.superseded = count_lines(&file)?;
            report.history_bytes = bytes;
            continue;
        }
        let mut records = Vec::new();
        load_file(&file, &mut records)?;
        let mut runs: Vec<String> = Vec::new();
        let mut gits: Vec<String> = Vec::new();
        for r in &records {
            if !runs.contains(&r.run_id) {
                runs.push(r.run_id.clone());
            }
            if !gits.contains(&r.git) {
                gits.push(r.git.clone());
            }
        }
        report
            .files
            .push(LsFileReport { file: name, records: records.len(), bytes, runs, gits });
    }
    Ok(report)
}

fn count_lines(path: &Path) -> io::Result<usize> {
    Ok(fs::read_to_string(path)?.lines().filter(|l| !l.trim().is_empty()).count())
}

/// Retention limits for [`prune_history`]; `None` means unlimited.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PruneLimits {
    /// Drop history lines folded more than this many days ago (needs the
    /// [`HISTORY_META_FILE`] sidecar; unknown-age lines are kept).
    pub max_age_days: Option<u64>,
    /// Keep [`HISTORY_FILE`] at most this large, dropping oldest lines
    /// first until it fits.
    pub max_bytes: Option<u64>,
}

/// What a [`prune_history`] pass did (or, under `dry_run`, would do).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PruneReport {
    /// History lines inspected.
    pub scanned: usize,
    /// Lines dropped (oldest first).
    pub pruned: usize,
    /// History file size before.
    pub bytes_before: u64,
    /// History file size after (projected, under `dry_run`).
    pub bytes_after: u64,
    /// Whether this was a plan only (nothing written).
    pub dry_run: bool,
}

/// Prune the folded history under retention [`PruneLimits`]. History lines
/// are in fold order, so age pruning and size pruning both drop from the
/// head — the oldest generations go first, and what remains is still a
/// contiguous, newest-suffix of the history. The metadata sidecar is
/// rewritten to match (fold entries covering dropped lines shrink or
/// disappear). Live record files are never touched; deletion is real here,
/// which is why [`gc_store`] (which only *moves* lines) is a separate
/// verb.
pub fn prune_history(dir: &Path, limits: PruneLimits, dry_run: bool) -> io::Result<PruneReport> {
    let path = dir.join(HISTORY_FILE);
    if !path.exists() {
        return Ok(PruneReport {
            scanned: 0,
            pruned: 0,
            bytes_before: 0,
            bytes_after: 0,
            dry_run,
        });
    }
    let text = fs::read_to_string(&path)?;
    let lines: Vec<&str> = text.lines().filter(|l| !l.trim().is_empty()).collect();
    // Parse the sidecar: (folded-at, line-count) per fold, oldest first.
    let meta_path = dir.join(HISTORY_META_FILE);
    let mut meta: Vec<(u64, usize)> = Vec::new();
    if meta_path.exists() {
        for (i, line) in fs::read_to_string(&meta_path)?.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let v: serde::Value = serde_json::from_str(line).map_err(|e| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("{}:{}: {e}", meta_path.display(), i + 1),
                )
            })?;
            let entry = (|| Some((v.get("at")?.as_u64()?, v.get("lines")?.as_u64()? as usize)))()
                .ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("{}:{}: expected {{\"at\",\"lines\"}}", meta_path.display(), i + 1),
                )
            })?;
            meta.push(entry);
        }
    }
    // The sidecar covers the *newest* lines (it may be shorter than the
    // history when the history predates it): align coverage from the end.
    let covered: usize = meta.iter().map(|&(_, n)| n).sum::<usize>().min(lines.len());
    let unknown = lines.len() - covered;
    let mut folded_at: Vec<Option<u64>> = vec![None; unknown];
    for &(at, n) in &meta {
        for _ in 0..n {
            if folded_at.len() < lines.len() {
                folded_at.push(Some(at));
            }
        }
    }
    // Age pass: drop known-age lines older than the cutoff.
    let now = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let mut keep: Vec<bool> = match limits.max_age_days {
        Some(days) => {
            let cutoff = now.saturating_sub(days.saturating_mul(86_400));
            folded_at.iter().map(|ts| !matches!(ts, Some(t) if *t < cutoff)).collect()
        }
        None => vec![true; lines.len()],
    };
    // Size pass: drop oldest kept lines until the survivors fit.
    if let Some(max) = limits.max_bytes {
        let line_bytes = |i: usize| lines[i].len() as u64 + 1;
        let mut total: u64 = (0..lines.len()).filter(|&i| keep[i]).map(line_bytes).sum();
        for (i, k) in keep.iter_mut().enumerate() {
            if total <= max {
                break;
            }
            if *k {
                *k = false;
                total -= line_bytes(i);
            }
        }
    }
    let pruned = keep.iter().filter(|k| !*k).count();
    let bytes_before = fs::metadata(&path)?.len();
    let bytes_after: u64 =
        (0..lines.len()).filter(|&i| keep[i]).map(|i| lines[i].len() as u64 + 1).sum();
    if !dry_run && pruned > 0 {
        let mut out = String::new();
        for (i, line) in lines.iter().enumerate() {
            if keep[i] {
                out.push_str(line);
                out.push('\n');
            }
        }
        if out.is_empty() {
            fs::remove_file(&path)?;
        } else {
            fs::write(&path, out)?;
        }
        // Rewrite the sidecar: shrink each fold entry by its dropped
        // lines (unknown-age lines had no entry to begin with).
        let mut new_meta = String::new();
        let mut idx = unknown;
        for &(at, n) in &meta {
            let span = n.min(lines.len().saturating_sub(idx));
            let kept_in_span = (idx..idx + span).filter(|&i| keep[i]).count();
            idx += span;
            if kept_in_span > 0 {
                new_meta.push_str(&format!("{{\"at\":{at},\"lines\":{kept_in_span}}}\n"));
            }
        }
        if new_meta.is_empty() {
            if meta_path.exists() {
                fs::remove_file(&meta_path)?;
            }
        } else {
            fs::write(&meta_path, new_meta)?;
        }
    }
    Ok(PruneReport {
        scanned: lines.len(),
        pruned,
        bytes_before,
        bytes_after,
        dry_run,
    })
}

fn load_file(path: &Path, out: &mut Vec<StoreRecord>) -> io::Result<()> {
    let text = fs::read_to_string(path)?;
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let record: StoreRecord = serde_json::from_str(line).map_err(|e| {
            io::Error::new(io::ErrorKind::InvalidData, format!("{}:{}: {e}", path.display(), i + 1))
        })?;
        out.push(record);
    }
    Ok(())
}

/// `git describe --always --dirty` of the current tree, or `"unknown"`.
pub fn git_describe() -> String {
    std::process::Command::new("git")
        .args(["describe", "--always", "--dirty"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// The conventional run id: `<scenario>-<scheduler>-m<m>-s<seed>`,
/// sanitized for use as a file name.
pub fn run_id(scenario: &str, scheduler: &str, m: usize, seed: u64) -> String {
    sanitize(&format!("{scenario}-{scheduler}-m{m}-s{seed}"))
}

fn sanitize(s: &str) -> String {
    s.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-') {
                c
            } else {
                '-'
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_ids_are_filesystem_safe() {
        assert_eq!(run_id("sort farm", "fifo", 8, 42), "sort-farm-fifo-m8-s42");
        assert_eq!(sanitize("a/b\\c:d"), "a-b-c-d");
    }

    fn sample_summary() -> RunSummary {
        use crate::pool::{ServeConfig, ShardPool};
        let pool = ShardPool::launch(ServeConfig::new("fifo".parse().expect("fifo parses"), 1))
            .expect("launch");
        pool.offer(flowtree_sim::JobSpec { graph: flowtree_dag::builder::chain(2), release: 0 })
            .expect("offer");
        pool.drain().expect("drain").remove(0).summary
    }

    #[test]
    fn records_without_swaps_field_still_deserialize() {
        let record = StoreRecord {
            run_id: "r1".to_string(),
            git: "abc1234".to_string(),
            shard: 0,
            shards: 1,
            summary: sample_summary(),
            swaps: vec![SwapEvent { t: 7, from: "fifo".to_string(), to: "lpf".to_string() }],
        };
        let line = serde_json::to_string(&record).expect("serializes");
        assert!(line.contains("\"swaps\""), "{line}");
        let back: StoreRecord = serde_json::from_str(&line).expect("roundtrips");
        assert_eq!(back, record);

        // A pre-control-plane line has no "swaps" key at all.
        let legacy = line.replace(",\"swaps\":[{\"t\":7,\"from\":\"fifo\",\"to\":\"lpf\"}]", "");
        assert!(!legacy.contains("swaps"), "{legacy}");
        let old: StoreRecord = serde_json::from_str(&legacy).expect("legacy line loads");
        assert!(old.swaps.is_empty());
        assert_eq!(old.summary, record.summary);
    }

    #[test]
    fn directory_scan_skips_flight_recorder_dumps() {
        let dir = std::env::temp_dir().join(format!("flowtree-store-scan-{}", std::process::id()));
        fs::create_dir_all(&dir).expect("mkdir");
        let record = StoreRecord {
            run_id: "r1".to_string(),
            git: "abc1234".to_string(),
            shard: 0,
            shards: 1,
            summary: sample_summary(),
            swaps: Vec::new(),
        };
        let store = ResultsStore::open(&dir).expect("open");
        store.append(&record).expect("append");
        // A flight-recorder dump shares the directory but not the schema; a
        // drained serve run writes one beside the records by default.
        fs::write(dir.join("flight-r1.jsonl"), "{\"t_us\":1,\"shard\":0,\"kind\":\"drain\"}\n")
            .expect("write flight dump");
        let loaded = load_records(&dir).expect("flight dump must not break the scan");
        assert_eq!(loaded, vec![record]);
        fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn gc_folds_superseded_runs_and_preserves_legacy_lines() {
        let dir = std::env::temp_dir().join(format!("flowtree-store-gc-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("mkdir");
        let summary = sample_summary();
        let record = |git: &str, shard: usize| StoreRecord {
            run_id: "r1".to_string(),
            git: git.to_string(),
            shard,
            shards: 2,
            summary: summary.clone(),
            swaps: Vec::new(),
        };
        // An old re-run under git "aaa" — one line predating the `swaps`
        // field — then the current run under git "bbb".
        let legacy = serde_json::to_string(&record("aaa", 0))
            .expect("serializes")
            .replace(",\"swaps\":[]", "");
        assert!(!legacy.contains("swaps"), "{legacy}");
        let current: Vec<String> = (0..2)
            .map(|s| serde_json::to_string(&record("bbb", s)).expect("serializes"))
            .collect();
        let file = dir.join("r1.jsonl");
        fs::write(&file, format!("{legacy}\n{}\n{}\n", current[0], current[1])).expect("seed");
        // A flight dump must never be touched by gc.
        fs::write(dir.join("flight-r1.jsonl"), "{\"not\":\"a record\"}\n").expect("flight");

        let plan = gc_store(&dir, true).expect("dry run");
        assert!(plan.dry_run);
        assert_eq!(plan.files, vec![GcFileReport { file: "r1.jsonl".into(), kept: 2, folded: 1 }]);
        assert!(!dir.join(HISTORY_FILE).exists(), "dry run must not write");

        let done = gc_store(&dir, false).expect("gc");
        assert_eq!((done.total_kept(), done.total_folded()), (2, 1));
        // The superseded legacy line moved to history byte for byte.
        let history = fs::read_to_string(dir.join(HISTORY_FILE)).expect("history");
        assert_eq!(history, format!("{legacy}\n"));
        let live = fs::read_to_string(&file).expect("live file");
        assert_eq!(live, format!("{}\n{}\n", current[0], current[1]));
        // Scans see only current records; history still loads explicitly.
        let records = load_records(&dir).expect("scan");
        assert_eq!(records.len(), 2);
        assert!(records.iter().all(|r| r.git == "bbb"));
        let old = load_records(&dir.join(HISTORY_FILE)).expect("history loads");
        assert_eq!(old.len(), 1);
        assert_eq!(old[0].git, "aaa");
        assert!(old[0].swaps.is_empty());
        // Idempotent: a second pass folds nothing.
        let again = gc_store(&dir, false).expect("second gc");
        assert_eq!(again.total_folded(), 0);
        fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn ls_summarizes_live_history_and_flight_files() {
        let dir = std::env::temp_dir().join(format!("flowtree-store-ls-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("mkdir");
        let summary = sample_summary();
        let record = |run: &str, git: &str, shard: usize| StoreRecord {
            run_id: run.to_string(),
            git: git.to_string(),
            shard,
            shards: 2,
            summary: summary.clone(),
            swaps: Vec::new(),
        };
        let store = ResultsStore::open(&dir).expect("open");
        store.append(&record("r1", "aaa", 0)).expect("append");
        store.append(&record("r1", "bbb", 0)).expect("append");
        store.append(&record("r1", "bbb", 1)).expect("append");
        store.append(&record("r2", "bbb", 0)).expect("append");
        fs::write(dir.join("flight-r1.jsonl"), "{\"not\":\"a record\"}\n").expect("flight");

        let before = ls_store(&dir).expect("ls");
        assert_eq!(before.files.len(), 2);
        assert_eq!(before.total_records(), 4);
        assert_eq!(before.runs(), vec!["r1".to_string(), "r2".to_string()]);
        assert_eq!(before.gits(), vec!["aaa".to_string(), "bbb".to_string()]);
        assert_eq!(before.superseded, 0);
        assert_eq!(before.flight_files, 1);
        assert!(before.flight_bytes > 0);
        assert!(before.total_bytes() > 0);

        // After gc, the superseded "aaa" line shows up as history.
        gc_store(&dir, false).expect("gc");
        let after = ls_store(&dir).expect("ls");
        assert_eq!(after.total_records(), 3);
        assert_eq!(after.superseded, 1);
        assert!(after.history_bytes > 0);
        assert_eq!(after.gits(), vec!["bbb".to_string()]);
        fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn prune_history_drops_oldest_first_under_both_limits() {
        let dir = std::env::temp_dir().join(format!("flowtree-store-prune-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("mkdir");
        // Three folded generations: an ancient pre-sidecar line (unknown
        // age), an old stamped fold, and a fresh stamped fold.
        let now = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_secs();
        let l = |tag: &str| format!("{{\"line\":\"{tag}\"}}");
        fs::write(
            dir.join(HISTORY_FILE),
            format!("{}\n{}\n{}\n", l("ancient"), l("old"), l("fresh")),
        )
        .expect("history");
        fs::write(
            dir.join(HISTORY_META_FILE),
            format!("{{\"at\":{},\"lines\":1}}\n{{\"at\":{now},\"lines\":1}}\n", now - 10 * 86_400),
        )
        .expect("meta");

        // No limits: nothing to do.
        let noop = prune_history(&dir, PruneLimits::default(), false).expect("noop");
        assert_eq!((noop.scanned, noop.pruned), (3, 0));

        // Age limit of 5 days: the 10-day-old line goes; the unknown-age
        // ancient line is kept (no evidence it is old).
        let plan =
            prune_history(&dir, PruneLimits { max_age_days: Some(5), max_bytes: None }, true)
                .expect("dry run");
        assert_eq!((plan.scanned, plan.pruned), (3, 1));
        assert!(plan.dry_run);
        assert_eq!(
            fs::read_to_string(dir.join(HISTORY_FILE)).unwrap().lines().count(),
            3,
            "dry run must not write"
        );
        let done =
            prune_history(&dir, PruneLimits { max_age_days: Some(5), max_bytes: None }, false)
                .expect("prune");
        assert_eq!(done.pruned, 1);
        let left = fs::read_to_string(dir.join(HISTORY_FILE)).unwrap();
        assert_eq!(left, format!("{}\n{}\n", l("ancient"), l("fresh")));
        assert!(done.bytes_after < done.bytes_before);
        // The sidecar shrank to the surviving stamped fold.
        let meta = fs::read_to_string(dir.join(HISTORY_META_FILE)).unwrap();
        assert_eq!(meta, format!("{{\"at\":{now},\"lines\":1}}\n"));

        // Size limit smaller than one line: everything goes, files too.
        let wiped =
            prune_history(&dir, PruneLimits { max_age_days: None, max_bytes: Some(4) }, false)
                .expect("wipe");
        assert_eq!((wiped.scanned, wiped.pruned, wiped.bytes_after), (2, 2, 0));
        assert!(!dir.join(HISTORY_FILE).exists());
        assert!(!dir.join(HISTORY_META_FILE).exists());
        // Pruning an empty store is a clean no-op.
        let empty = prune_history(&dir, PruneLimits::default(), false).expect("empty");
        assert_eq!(empty.scanned, 0);
        fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn gc_stamps_the_history_sidecar() {
        let dir = std::env::temp_dir().join(format!("flowtree-store-meta-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("mkdir");
        let summary = sample_summary();
        let record = |git: &str| StoreRecord {
            run_id: "r1".to_string(),
            git: git.to_string(),
            shard: 0,
            shards: 1,
            summary: summary.clone(),
            swaps: Vec::new(),
        };
        let store = ResultsStore::open(&dir).expect("open");
        store.append(&record("aaa")).expect("append");
        store.append(&record("bbb")).expect("append");
        gc_store(&dir, false).expect("gc");
        let meta = fs::read_to_string(dir.join(HISTORY_META_FILE)).expect("sidecar written");
        assert!(meta.contains("\"lines\":1"), "{meta}");
        // The sidecar must not pollute record scans or a second gc.
        assert_eq!(load_records(&dir).expect("scan").len(), 1);
        assert_eq!(gc_store(&dir, false).expect("regc").total_folded(), 0);
        fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn git_describe_never_panics() {
        let g = git_describe();
        assert!(!g.is_empty());
        assert!(!g.contains('\n'));
    }
}
