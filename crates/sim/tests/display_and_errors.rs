//! Error-path and display coverage: every error type renders a useful
//! message, and the engine/checker reject malformed inputs loudly.

use flowtree_dag::builder::chain;
use flowtree_dag::{GraphError, JobId, NodeId};
use flowtree_sim::{EngineError, FeasibilityError, Instance, JobSpec, Schedule};

#[test]
fn graph_error_messages() {
    assert_eq!(
        GraphError::NodeOutOfRange { node: 5, n: 3 }.to_string(),
        "node v5 out of range (n = 3)"
    );
    assert_eq!(GraphError::SelfLoop(2).to_string(), "self-loop at v2");
    assert_eq!(GraphError::Cyclic.to_string(), "edge set contains a directed cycle");
    assert_eq!(GraphError::DuplicateEdge(1, 2).to_string(), "duplicate edge (v1, v2)");
    assert_eq!(GraphError::Empty.to_string(), "job graph must contain at least one subjob");
}

#[test]
fn feasibility_error_messages() {
    assert_eq!(
        FeasibilityError::CapacityExceeded { t: 3, count: 5, m: 2 }.to_string(),
        "step 3: 5 subjobs on 2 processors"
    );
    assert_eq!(
        FeasibilityError::DuplicateRun(JobId(1), NodeId(2)).to_string(),
        "J1/v2 scheduled twice"
    );
    assert_eq!(
        FeasibilityError::MissingRun(JobId(0), NodeId(7)).to_string(),
        "J0/v7 never scheduled"
    );
    assert_eq!(
        FeasibilityError::PrecedenceViolation { job: JobId(0), pred: NodeId(1), succ: NodeId(2) }
            .to_string(),
        "J0: edge v1 -> v2 violated"
    );
    assert_eq!(
        FeasibilityError::ReleaseViolation(JobId(3), NodeId(0)).to_string(),
        "J3/v0 ran before the job's release"
    );
    assert_eq!(
        FeasibilityError::UnknownSubjob(JobId(9), NodeId(9)).to_string(),
        "unknown subjob J9/v9"
    );
}

#[test]
fn engine_error_messages() {
    assert_eq!(
        EngineError::NotReady { t: 4, job: JobId(1), node: NodeId(0) }.to_string(),
        "t=4: scheduler selected unready subjob J1/v0"
    );
    assert_eq!(
        EngineError::DuplicateSelection { t: 1, job: JobId(0), node: NodeId(2) }.to_string(),
        "t=1: scheduler selected J0/v2 twice"
    );
    assert_eq!(
        EngineError::HorizonExceeded { horizon: 99 }.to_string(),
        "simulation exceeded safety horizon 99"
    );
}

#[test]
fn errors_are_std_error() {
    // Boxing as dyn Error works (source chains are unused but the trait is
    // implemented for interop).
    let e: Box<dyn std::error::Error> = Box::new(GraphError::Cyclic);
    assert!(!e.to_string().is_empty());
    let e: Box<dyn std::error::Error> =
        Box::new(FeasibilityError::DuplicateRun(JobId(0), NodeId(0)));
    assert!(!e.to_string().is_empty());
    let e: Box<dyn std::error::Error> = Box::new(EngineError::HorizonExceeded { horizon: 1 });
    assert!(!e.to_string().is_empty());
}

#[test]
fn ids_display() {
    assert_eq!(JobId(3).to_string(), "J3");
    assert_eq!(NodeId(11).to_string(), "v11");
}

#[test]
fn verify_reports_step_scan_violations_before_structural_ones() {
    // A schedule with both a release violation (found during the time-order
    // step scan) and a missing node (found in the later per-job pass): the
    // step-scan error wins.
    let inst = Instance::new(vec![
        JobSpec { graph: chain(2), release: 0 },
        JobSpec { graph: chain(2), release: 5 },
    ]);
    let mut s = Schedule::new(2);
    // Job 1 runs at t=1 although it releases at 5; job 0's tail is missing.
    s.push_step(vec![(JobId(0), NodeId(0)), (JobId(1), NodeId(0))]);
    s.push_step(vec![(JobId(1), NodeId(1))]);
    let err = s.verify(&inst).unwrap_err();
    assert_eq!(err, FeasibilityError::ReleaseViolation(JobId(1), NodeId(0)));
}

#[test]
#[should_panic(expected = "out of range")]
fn replace_step_bounds_checked() {
    let mut s = Schedule::new(2);
    s.replace_step(1, vec![]);
}
