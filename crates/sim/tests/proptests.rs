//! Property tests for the simulator substrate: random instances, random
//! work-conserving decisions — feasibility and accounting invariants must
//! hold unconditionally.

use flowtree_dag::{GraphBuilder, JobGraph, NodeId, Time};
use flowtree_sim::metrics::flow_stats;
use flowtree_sim::{Clairvoyance, Engine, Instance, JobSpec, OnlineScheduler, Selection, SimView};
use proptest::prelude::*;

/// Random out-tree via the recursive-attachment process.
fn arb_tree(max_n: usize) -> impl Strategy<Value = JobGraph> {
    (1..=max_n).prop_flat_map(|n| {
        proptest::collection::vec(0..usize::MAX, n.saturating_sub(1)).prop_map(move |cs| {
            let mut b = GraphBuilder::new(n);
            for (i, &c) in cs.iter().enumerate() {
                b.edge((c % (i + 1)) as u32, (i + 1) as u32);
            }
            b.build().unwrap()
        })
    })
}

fn arb_instance(max_jobs: usize, max_n: usize, max_r: Time) -> impl Strategy<Value = Instance> {
    proptest::collection::vec((arb_tree(max_n), 0..=max_r), 1..=max_jobs).prop_map(|jobs| {
        Instance::new(jobs.into_iter().map(|(graph, release)| JobSpec { graph, release }).collect())
    })
}

/// A work-conserving scheduler whose per-step choices are driven by a seed —
/// a stand-in for "any scheduler" in feasibility properties.
struct SeededGreedy {
    state: u64,
}

impl SeededGreedy {
    fn next(&mut self) -> u64 {
        self.state ^= self.state << 13;
        self.state ^= self.state >> 7;
        self.state ^= self.state << 17;
        self.state
    }
}

impl OnlineScheduler for SeededGreedy {
    fn clairvoyance(&self) -> Clairvoyance {
        Clairvoyance::NonClairvoyant
    }
    fn select(&mut self, _t: Time, view: &SimView<'_>, sel: &mut Selection) {
        // Work-conserving but otherwise arbitrary: gather the whole ready
        // pool, shuffle it with the seeded generator, take up to m.
        let mut pool: Vec<(flowtree_dag::JobId, u32)> = Vec::new();
        for &job in view.alive() {
            for &v in view.ready(job) {
                pool.push((job, v));
            }
        }
        let take = pool.len().min(sel.remaining());
        for i in 0..take {
            let j = i + (self.next() as usize) % (pool.len() - i);
            pool.swap(i, j);
            let (job, v) = pool[i];
            sel.push(job, NodeId(v));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn engine_output_always_verifies(inst in arb_instance(5, 12, 10), m in 1usize..6, seed in 1u64..5000) {
        let mut sched = SeededGreedy { state: seed };
        let s = Engine::new(m)
            .with_max_horizon(100_000)
            .run(&inst, &mut sched)
            .expect("greedy completes");
        prop_assert_eq!(s.verify(&inst), Ok(()));
        let stats = flow_stats(&inst, &s);
        // Flow >= span of each job.
        for (id, spec) in inst.iter() {
            prop_assert!(stats.flows[id.index()] >= spec.graph.span());
        }
        // Makespan sanity: at least ceil(total work / m) after last release.
        prop_assert!(stats.makespan >= inst.total_work().div_ceil(m as u64));
        prop_assert!(stats.makespan <= inst.last_release() + inst.total_work() + 1);
    }

    #[test]
    fn completion_times_cover_all_jobs(inst in arb_instance(4, 10, 6), seed in 1u64..1000) {
        let mut sched = SeededGreedy { state: seed };
        let s = Engine::new(3).with_max_horizon(100_000).run(&inst, &mut sched).unwrap();
        let completions = s.completion_times(&inst);
        for (i, c) in completions.iter().enumerate() {
            let c = c.expect("every job completes");
            prop_assert!(c > inst.jobs()[i].release);
        }
    }

    #[test]
    fn schedule_loads_bounded_by_m(inst in arb_instance(4, 10, 6), m in 1usize..5, seed in 1u64..1000) {
        let mut sched = SeededGreedy { state: seed };
        let s = Engine::new(m).with_max_horizon(100_000).run(&inst, &mut sched).unwrap();
        for t in 1..=s.horizon() {
            prop_assert!(s.load(t) <= m);
        }
        // Total scheduled = total work.
        let total: usize = (1..=s.horizon()).map(|t| s.load(t)).sum();
        prop_assert_eq!(total as u64, inst.total_work());
    }

    #[test]
    fn restriction_is_monotone(inst in arb_instance(4, 8, 8), seed in 1u64..500) {
        let mut sched = SeededGreedy { state: seed };
        let s = Engine::new(2).with_max_horizon(100_000).run(&inst, &mut sched).unwrap();
        // Restricting to releases <= r keeps loads nonincreasing in r.
        let r_max = inst.last_release();
        for r in 0..=r_max {
            let restricted = s.restrict_to_released_by(&inst, r);
            for t in 1..=s.horizon() {
                prop_assert!(restricted.load(t) <= s.load(t));
            }
        }
        // Restriction at the last release is the identity.
        prop_assert_eq!(s.restrict_to_released_by(&inst, r_max), s.schedule);
    }

    #[test]
    fn speed_augmentation_invariants(inst in arb_instance(4, 10, 6), s in 1u64..4, seed in 1u64..500) {
        let mut sched = SeededGreedy { state: seed };
        let run = flowtree_sim::speed::run_with_speed(&inst, 2, s, &mut sched, Some(1_000_000)).unwrap();
        // Macro flows are at least ceil(span / s).
        for (id, spec) in inst.iter() {
            prop_assert!(run.flows[id.index()] >= spec.graph.span().div_ceil(s));
            prop_assert!(run.flows[id.index()] >= 1);
        }
        prop_assert_eq!(run.micro_schedule.verify(&run.scaled_instance), Ok(()));
    }
}

#[test]
fn seeded_greedy_is_deterministic() {
    let inst = Instance::new(vec![
        JobSpec { graph: flowtree_dag::builder::star(6), release: 0 },
        JobSpec { graph: flowtree_dag::builder::chain(4), release: 1 },
    ]);
    let a = Engine::new(2)
        .with_max_horizon(10_000)
        .run(&inst, &mut SeededGreedy { state: 7 })
        .unwrap();
    let b = Engine::new(2)
        .with_max_horizon(10_000)
        .run(&inst, &mut SeededGreedy { state: 7 })
        .unwrap();
    assert_eq!(a, b);
}
