//! ASCII Gantt rendering of schedules — used to reproduce the paper's
//! Figure 1 ("two possible packings for one job on three processors").
//!
//! Subjobs are assigned to processor lanes greedily per step (the paper notes
//! the processor identity is irrelevant; lanes are presentation only). Cells
//! show a per-job letter, or a per-node label for single-job schedules.

use crate::instance::Instance;
use crate::schedule::Schedule;
use flowtree_dag::Time;

/// Rendering options.
#[derive(Debug, Clone)]
pub struct GanttOptions {
    /// Label cells by node id (single-job figures) instead of by job.
    pub label_nodes: bool,
    /// Character used for an idle processor cell.
    pub idle: char,
    /// Clip rendering to at most this many steps (0 = no limit).
    pub max_steps: usize,
}

impl Default for GanttOptions {
    fn default() -> Self {
        GanttOptions { label_nodes: false, idle: '.', max_steps: 0 }
    }
}

fn job_label(i: usize) -> String {
    // A..Z, then A1, B1, ...
    let letter = (b'A' + (i % 26) as u8) as char;
    if i < 26 {
        letter.to_string()
    } else {
        format!("{letter}{}", i / 26)
    }
}

fn node_label(i: usize) -> String {
    job_label(i)
}

/// Render `schedule` as an ASCII Gantt chart: one row per processor, one
/// column per time step.
pub fn render(instance: &Instance, schedule: &Schedule, opts: &GanttOptions) -> String {
    let m = schedule.m();
    let horizon = schedule.horizon();
    let steps = if opts.max_steps > 0 {
        horizon.min(opts.max_steps as Time)
    } else {
        horizon
    };

    // Widest cell label decides the column width.
    let mut cells: Vec<Vec<String>> = vec![Vec::new(); m];
    let mut width = 1;
    for t in 1..=steps {
        let picks = schedule.at(t);
        for (lane, row) in cells.iter_mut().enumerate() {
            let label = picks.get(lane).map(|&(j, v)| {
                if opts.label_nodes {
                    node_label(v.index())
                } else {
                    job_label(j.index())
                }
            });
            let s = label.unwrap_or_else(|| opts.idle.to_string());
            width = width.max(s.len());
            row.push(s);
        }
    }

    let mut out = String::new();
    // Header: time axis.
    out.push_str("t    |");
    for t in 1..=steps {
        out.push_str(&format!("{:>width$}|", t, width = width));
    }
    out.push('\n');
    for (lane, row) in cells.iter().enumerate() {
        out.push_str(&format!("p{:<4}|", lane + 1));
        for cell in row {
            out.push_str(&format!("{:>width$}|", cell, width = width));
        }
        out.push('\n');
    }
    let _ = instance; // reserved for richer labels (release markers etc.)
    out
}

/// Render with default options.
pub fn render_default(instance: &Instance, schedule: &Schedule) -> String {
    render(instance, schedule, &GanttOptions::default())
}

/// Per-step load profile as a sparkline-ish string: digit = load (capped at
/// 9, `#` for loads over 9, `.` for idle steps). Handy for eyeballing the
/// "head + rectangular tail" shape of LPF schedules (Figure 2).
pub fn load_profile(schedule: &Schedule) -> String {
    (1..=schedule.horizon())
        .map(|t| match schedule.load(t) {
            0 => '.',
            l @ 1..=9 => char::from_digit(l as u32, 10).unwrap(),
            _ => '#',
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::{Instance, JobSpec};
    use flowtree_dag::builder::chain;
    use flowtree_dag::{JobId, NodeId};

    fn fixture() -> (Instance, Schedule) {
        let inst = Instance::new(vec![
            JobSpec { graph: chain(2), release: 0 },
            JobSpec { graph: chain(2), release: 0 },
        ]);
        let mut s = Schedule::new(2);
        s.push_step(vec![(JobId(0), NodeId(0)), (JobId(1), NodeId(0))]);
        s.push_step(vec![(JobId(0), NodeId(1))]);
        s.push_step(vec![(JobId(1), NodeId(1))]);
        (inst, s)
    }

    #[test]
    fn renders_rows_and_columns() {
        let (inst, s) = fixture();
        let out = render_default(&inst, &s);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 3); // header + 2 lanes
        assert!(lines[0].starts_with("t    |"));
        assert!(lines[1].contains('A'));
        assert!(lines[2].contains('B'));
        // Idle cell in steps 2 and 3 on the second lane.
        assert!(lines[2].contains('.'));
    }

    #[test]
    fn node_labels_for_single_job() {
        let (inst, s) = fixture();
        let opts = GanttOptions { label_nodes: true, ..Default::default() };
        let out = render(&inst, &s, &opts);
        // Node 0 of both jobs renders as 'A' (node-indexed labels).
        assert!(out.lines().nth(1).unwrap().contains('A'));
        assert!(out.lines().nth(2).unwrap().contains('A'));
    }

    #[test]
    fn max_steps_clips() {
        let (inst, s) = fixture();
        let opts = GanttOptions { max_steps: 1, ..Default::default() };
        let out = render(&inst, &s, &opts);
        assert!(!out.lines().next().unwrap().contains('2'));
    }

    #[test]
    fn load_profile_string() {
        let (_, s) = fixture();
        assert_eq!(load_profile(&s), "211");
    }

    #[test]
    fn load_profile_marks_idle_and_wide() {
        let inst = Instance::single(flowtree_dag::builder::star(12));
        let mut s = Schedule::new(16);
        s.push_step(vec![(JobId(0), NodeId(0))]);
        s.push_step(vec![]);
        s.push_step((1..=12).map(|i| (JobId(0), NodeId(i))).collect());
        let _ = inst;
        assert_eq!(load_profile(&s), "1.#");
    }

    #[test]
    fn job_labels_wrap_past_z() {
        assert_eq!(job_label(0), "A");
        assert_eq!(job_label(25), "Z");
        assert_eq!(job_label(26), "A1");
        assert_eq!(job_label(27), "B1");
    }
}
