//! Theory-aware run monitors — probes that watch a live run against the
//! paper's provable guarantees.
//!
//! * [`LowerBound`] maintains the Lemma 5.1 certified lower bound
//!   `max_d (d + ⌈W(d)/m⌉)` over the released jobs and the live competitive
//!   ratio `max_flow / LB` as jobs complete. For a single out-forest released
//!   at time 0 the bound is *exact* (Corollary 5.4), so an optimal scheduler
//!   (LPF, Lemma 5.3) drives the ratio to exactly 1.
//! * [`InvariantMonitor`] checks structural invariants a scheduler claims to
//!   uphold — non-idling while work is ready (work conservation, the
//!   property Lemma 5.5 proves for MC) and the LPF rectangle-tail shape of
//!   Lemma 5.2 — recording structured [`Violation`]s instead of panicking,
//!   so a long sweep completes and reports every breach.
//!
//! Which invariants apply to which scheduler is declarative data
//! ([`InvariantChecks`]); the registry in `flowtree-core` maps every
//! `SchedulerSpec` entry to its checks. Both monitors are ordinary
//! [`Probe`]s: attach them (alone or composed in a tuple) via
//! `Engine::with_probe` and inspect them after the run.

use crate::instance::Instance;
use crate::probe::{Probe, StepStat};
use flowtree_dag::{DepthProfile, DepthScratch, JobGraph, JobId, NodeId, Time};
use std::collections::BTreeMap;

/// Live Lemma 5.1 lower-bound tracker.
///
/// Per-job profiles are precomputed from the instance at construction; the
/// per-job bounds `max_d (d + ⌈W_i(d)/m⌉)` are evaluated once `m` is known
/// (at [`Probe::on_start`]). The running lower bound is the max over
/// *released* jobs — each job must individually be scheduled within its own
/// single-job optimum, whatever else is in the system — and the running
/// `max_flow` is the max over *completed* jobs, so
/// [`ratio`](LowerBound::ratio) is a certified competitive-ratio bound at
/// every point of the run and exact for single out-forests at the end.
#[derive(Debug, Clone)]
pub struct LowerBound {
    /// Batch-mode profiles (empty for streaming trackers: an admitted job's
    /// bound is evaluated on arrival and the profile is never needed again).
    profiles: Vec<DepthProfile>,
    /// Per-job Lemma 5.1 bounds on the run's machine size (filled at
    /// `on_start`, or per job at `on_admit` for streaming sessions).
    bounds: Vec<Time>,
    releases: Vec<Option<Time>>,
    /// Machine size (recorded at `on_start`; streaming admits need it to
    /// evaluate per-job bounds as graphs arrive).
    m: u64,
    lb: Time,
    max_flow: Option<Time>,
    /// Reused working memory for streaming per-admit bound evaluation, so
    /// the serve admit path allocates nothing per job.
    scratch: DepthScratch,
}

impl LowerBound {
    /// Precompute depth profiles for every job of `instance`.
    pub fn new(instance: &Instance) -> Self {
        let profiles =
            instance.jobs().iter().map(|j| DepthProfile::new(&j.graph)).collect::<Vec<_>>();
        let n = profiles.len();
        LowerBound {
            profiles,
            bounds: Vec::new(),
            releases: vec![None; n],
            m: 0,
            lb: 0,
            max_flow: None,
            scratch: DepthScratch::default(),
        }
    }

    /// A tracker for a streaming [`Session`](crate::Session), which starts
    /// with zero jobs: profiles and bounds are computed incrementally as the
    /// session emits [`Probe::on_admit`] for each arriving job.
    pub fn streaming() -> Self {
        LowerBound {
            profiles: Vec::new(),
            bounds: Vec::new(),
            releases: Vec::new(),
            m: 0,
            lb: 0,
            max_flow: None,
            scratch: DepthScratch::default(),
        }
    }

    /// Current certified lower bound on the optimal max flow: the max
    /// Lemma 5.1 bound over released jobs (0 before any release).
    pub fn lower_bound(&self) -> Time {
        self.lb
    }

    /// The Lemma 5.1 bound of one job on this run's machine size.
    /// Panics before `on_start` (the bounds need `m`).
    pub fn job_bound(&self, job: JobId) -> Time {
        self.bounds[job.index()]
    }

    /// Maximum flow over completed jobs (`None` until a job completes).
    pub fn max_flow(&self) -> Option<Time> {
        self.max_flow
    }

    /// Live competitive ratio `max_flow / lower_bound` (`None` until a job
    /// completes). Never below 1 on a feasible run: each completed job's
    /// flow is itself at least its own Lemma 5.1 bound.
    pub fn ratio(&self) -> Option<f64> {
        Some(self.max_flow? as f64 / self.lb.max(1) as f64)
    }
}

impl Probe for LowerBound {
    fn on_start(&mut self, m: usize, num_jobs: usize) {
        assert_eq!(
            num_jobs,
            self.profiles.len(),
            "LowerBound monitor built from a different instance"
        );
        self.m = (m as u64).max(1);
        self.bounds = self.profiles.iter().map(|p| p.opt_single_job(self.m)).collect();
        self.releases = vec![None; num_jobs];
        self.lb = 0;
        self.max_flow = None;
    }

    fn on_admit(&mut self, _t: Time, job: JobId, graph: &JobGraph) {
        debug_assert_eq!(
            job.index(),
            self.bounds.len(),
            "streaming admits must arrive in job-id order"
        );
        // One depth pass over the arriving graph, no allocation: the serve
        // admit path runs this per job, so the profile itself is never
        // materialized (only the bound matters once the job is in).
        self.bounds
            .push(DepthProfile::opt_single_job_in(graph, self.m.max(1), &mut self.scratch));
        self.releases.push(None);
    }

    fn on_release(&mut self, t: Time, job: JobId) {
        self.releases[job.index()] = Some(t);
        self.lb = self.lb.max(self.bounds[job.index()]);
    }

    fn on_complete(&mut self, t: Time, job: JobId) {
        if let Some(r) = self.releases[job.index()] {
            let flow = t - r;
            self.max_flow = Some(self.max_flow.map_or(flow, |f| f.max(flow)));
        }
    }
}

/// Parameters of the Algorithm 𝒜 head/tail accounting check (Thm 5.6
/// batch structure).
///
/// 𝒜 partitions releases into *groups* at block boundaries (multiples of
/// `half`, the working estimate OPT/2) and never grants a group more than
/// one slice `p = m/alpha` of processors per step — head levels are
/// `LPF(union, p)` levels (width ≤ p by construction), tail grants are
/// `min(remaining, p)` (Section 5.3). The monitor rebuilds the grouping
/// from observed release times (`boundary = ⌈release / half⌉ · half`; the
/// simulator fires releases before the same-step selection, so this matches
/// 𝒜's own group formation exactly) and enforces the width cap per group
/// per step.
///
/// With `strict`, the Lemma 5.2 rectangle shape of the tail is also
/// checked: once a tail-phase group (age ≥ 2·half) is granted processors
/// and returns *short* — it schedules fewer than `p` subjobs in a step
/// whose total selection is under `m`, so its grant provably exceeded its
/// picks — its MC rectangle is exhausted and the group must never schedule
/// again. Strict mode is sound when the grouping is exact (a scheduler
/// constructed at run start); a mid-run hot-swap regroups alive jobs at the
/// swap boundary, so [`InvariantMonitor::set_checks`] demotes `strict`
/// (the width cap stays sound: a release-derived group is then a *subset*
/// of one rebuilt group, and a subset's picks never exceed the group's).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HeadTailChecks {
    /// Processor-augmentation parameter α: the per-group slice is `m/α`.
    pub alpha: usize,
    /// Block length (the algorithm's OPT/2 estimate); boundaries are its
    /// multiples.
    pub half: Time,
    /// Also enforce the Lemma 5.2 exhausted-rectangle rule (see above).
    pub strict: bool,
}

/// Which structural invariants a scheduler is expected to uphold.
///
/// This is declarative metadata, not behavior: the scheduler registry in
/// `flowtree-core` maps each spec to its checks, and an [`InvariantMonitor`]
/// enforces exactly the enabled ones.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvariantChecks {
    /// The scheduler never leaves a processor idle while a ready subjob
    /// exists (every step runs `min(m, ready)` subjobs). Holds for the FIFO
    /// family by definition and for MC by Lemma 5.5; deliberately violated
    /// by Algorithm 𝒜, which reserves capacity for its guarantees.
    pub work_conserving: bool,
    /// Lemma 5.2 shape check for single-job runs: with OPT computed on
    /// `alpha * m` processors, every schedule step from `release + OPT`
    /// onward must use all `m` processors, except possibly the final step.
    /// `Some(alpha)` enables the check (LPF runs use `alpha = 1`); ignored
    /// on multi-job instances, where the lemma does not apply.
    pub rectangle_tail_alpha: Option<usize>,
    /// Algorithm 𝒜 group-structure check (see [`HeadTailChecks`]); applies
    /// to batch and streaming runs alike.
    pub head_tail: Option<HeadTailChecks>,
}

impl InvariantChecks {
    /// No checks (schedulers with no proven structural invariants).
    pub const NONE: InvariantChecks = InvariantChecks {
        work_conserving: false,
        rectangle_tail_alpha: None,
        head_tail: None,
    };

    /// Work conservation only.
    pub const WORK_CONSERVING: InvariantChecks = InvariantChecks {
        work_conserving: true,
        rectangle_tail_alpha: None,
        head_tail: None,
    };
}

/// Which invariant a [`Violation`] breached.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InvariantRule {
    /// Idle processors coexisted with unscheduled ready subjobs.
    WorkConserving,
    /// A non-final tail step (at or after `release + OPT`) was not full
    /// width (Lemma 5.2).
    RectangleTail,
    /// An Algorithm 𝒜 release group exceeded its `m/α` slice in one step
    /// (Section 5.3 layout).
    GroupWidth,
    /// A tail-phase group scheduled again after a short step proved its MC
    /// rectangle exhausted (Lemma 5.2 under a valid estimate).
    TailRectangle,
}

impl std::fmt::Display for InvariantRule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InvariantRule::WorkConserving => write!(f, "work-conserving"),
            InvariantRule::RectangleTail => write!(f, "rectangle-tail"),
            InvariantRule::GroupWidth => write!(f, "group-width"),
            InvariantRule::TailRectangle => write!(f, "tail-rectangle"),
        }
    }
}

/// One recorded invariant breach.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Step start time at which the breach occurred.
    pub t: Time,
    /// The invariant breached.
    pub rule: InvariantRule,
    /// Human-readable specifics (counts involved).
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "t={}: {}: {}", self.t, self.rule, self.detail)
    }
}

/// One live Algorithm 𝒜 release group the head/tail check is tracking.
/// Retired (removed from the map) when every member job has completed.
#[derive(Debug, Clone, Default)]
struct GroupTrack {
    /// Jobs whose release maps to this boundary.
    members: usize,
    /// Members that have completed.
    completed: usize,
    /// Picks attributed to the group in the step being judged (reset as
    /// each step's selection is processed).
    picks: usize,
    /// Time of the short tail step that proved the group's MC rectangle
    /// exhausted (strict mode); any later pick is a violation.
    exhausted_at: Option<Time>,
}

/// Checks the enabled [`InvariantChecks`] online, recording [`Violation`]s
/// instead of panicking (at most [`MAX_RECORDED`](Self::MAX_RECORDED) are
/// kept; the total is counted). Work-conservation and the single-job
/// rectangle tail are O(1) state; the head/tail group check is O(alive
/// groups) state and O(picks) work per step.
///
/// The rectangle-tail check is stateful but bounded: it remembers only the
/// most recent narrow tail step, which becomes a violation the moment any
/// later step proves it was not the schedule's final step.
#[derive(Debug, Clone)]
pub struct InvariantMonitor {
    checks: InvariantChecks,
    /// Depth profile of the single job (`None` on multi-job instances —
    /// the rectangle-tail lemma is single-job only).
    profile: Option<DepthProfile>,
    m: usize,
    /// `release + OPT(alpha * m)` — first tail step (rectangle check only).
    tail_start: Option<Time>,
    release: Time,
    /// Most recent narrow tail step, not yet known to be non-final.
    pending_narrow: Option<(Time, usize)>,
    done: bool,
    /// Per-job release times (grown on release). Always maintained — cheap,
    /// and it lets [`set_checks`](Self::set_checks) arm the head/tail group
    /// check mid-run by rebuilding the grouping from history.
    releases: Vec<Option<Time>>,
    /// Per-job completion flags (same lifecycle as `releases`).
    completed: Vec<bool>,
    /// Live release groups keyed by block boundary (head/tail check only).
    groups: BTreeMap<Time, GroupTrack>,
    /// Scratch: boundaries touched by the current step's selection.
    touched: Vec<Time>,
    violations: Vec<Violation>,
    total: u64,
}

/// The block boundary a job released at `r` is grouped to: the next
/// multiple of `half` at or after `r` (𝒜 forms groups at boundaries, and
/// releases fire before the same-step selection).
fn group_boundary(release: Time, half: Time) -> Time {
    let half = half.max(1);
    release.div_ceil(half) * half
}

impl InvariantMonitor {
    /// Cap on stored violations; beyond it only the count grows, so a badly
    /// broken scheduler on a long horizon cannot exhaust memory.
    pub const MAX_RECORDED: usize = 64;

    /// Monitor a streaming [`Session`](crate::Session) against `checks`.
    /// Sessions are inherently multi-job, so the single-job rectangle-tail
    /// check is never armed (matching [`new`](Self::new) on a multi-job
    /// instance); work conservation is checked per step as usual.
    pub fn streaming(checks: InvariantChecks) -> Self {
        InvariantMonitor {
            checks,
            profile: None,
            m: 0,
            tail_start: None,
            release: 0,
            pending_narrow: None,
            done: false,
            releases: Vec::new(),
            completed: Vec::new(),
            groups: BTreeMap::new(),
            touched: Vec::new(),
            violations: Vec::new(),
            total: 0,
        }
    }

    /// Monitor a run of the given instance against `checks`.
    pub fn new(instance: &Instance, checks: InvariantChecks) -> Self {
        let single = instance.num_jobs() == 1;
        InvariantMonitor {
            checks,
            profile: (single && checks.rectangle_tail_alpha.is_some())
                .then(|| DepthProfile::new(instance.graph(JobId(0)))),
            m: 0,
            tail_start: None,
            release: if single {
                instance.release(JobId(0))
            } else {
                0
            },
            pending_narrow: None,
            done: false,
            releases: Vec::new(),
            completed: Vec::new(),
            groups: BTreeMap::new(),
            touched: Vec::new(),
            violations: Vec::new(),
            total: 0,
        }
    }

    /// Switch the enforced checks mid-run — the probe half of a live
    /// scheduler hot-swap: steps from here on are judged against the *new*
    /// scheduler's invariants, while violations already recorded stand.
    /// Disabling the rectangle-tail check discards its pending state;
    /// enabling it mid-run arms only if a single-job depth profile was built
    /// at construction (streaming monitors never have one, matching
    /// [`streaming`](Self::streaming)'s multi-job semantics).
    ///
    /// A head/tail group check is re-armed from the recorded release
    /// history, with `strict` demoted: a hot-swapped Algorithm 𝒜 regroups
    /// every alive job at the swap boundary, so release-derived rectangles
    /// no longer apply, while the `m/α` width cap stays sound (each
    /// release-derived group is a subset of one rebuilt group).
    pub fn set_checks(&mut self, checks: InvariantChecks) {
        let mut checks = checks;
        if let Some(ht) = &mut checks.head_tail {
            ht.strict = false;
        }
        self.checks = checks;
        if checks.rectangle_tail_alpha.is_none() {
            self.tail_start = None;
            self.pending_narrow = None;
        }
        self.groups.clear();
        if let Some(ht) = checks.head_tail {
            for (i, r) in self.releases.iter().enumerate() {
                if let Some(r) = r {
                    if !self.completed[i] {
                        self.groups.entry(group_boundary(*r, ht.half)).or_default().members += 1;
                    }
                }
            }
        }
    }

    /// Recorded violations (first [`Self::MAX_RECORDED`] of them).
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// Total violations observed, including any beyond the storage cap.
    pub fn total_violations(&self) -> u64 {
        self.total
    }

    /// Did the run uphold every enabled invariant?
    pub fn is_clean(&self) -> bool {
        self.total == 0
    }

    fn record(&mut self, t: Time, rule: InvariantRule, detail: String) {
        self.total += 1;
        if self.violations.len() < Self::MAX_RECORDED {
            self.violations.push(Violation { t, rule, detail });
        }
    }
}

impl InvariantMonitor {
    /// Judge the current step's selection against the head/tail group
    /// structure (width cap always; exhausted-rectangle rule in strict
    /// mode). `total` is the step's whole selection size.
    fn check_head_tail(&mut self, ht: HeadTailChecks, t: Time, total: usize) {
        let p = (self.m / ht.alpha.max(1)).max(1);
        let opt = 2 * ht.half.max(1);
        for i in 0..self.touched.len() {
            let b = self.touched[i];
            let Some(g) = self.groups.get_mut(&b) else {
                continue;
            };
            let picks = std::mem::take(&mut g.picks);
            let exhausted_at = g.exhausted_at;
            let in_tail = ht.strict && t >= b.saturating_add(opt);
            if in_tail {
                // A short tail step (the group got < p while the selection
                // stayed under m, so its grant provably exceeded its picks)
                // means its MC rectangle is exhausted under a valid
                // estimate; re-evaluated every tail step the group runs.
                g.exhausted_at = (picks < p && total < self.m).then_some(t);
            }
            if picks > p {
                self.record(
                    t,
                    InvariantRule::GroupWidth,
                    format!("group@{b} ran {picks} > slice {p} (m={}, alpha={})", self.m, ht.alpha),
                );
            }
            if in_tail {
                if let Some(t0) = exhausted_at {
                    if t > t0 {
                        self.record(
                            t,
                            InvariantRule::TailRectangle,
                            format!("group@{b} scheduled after its rectangle ran short at t={t0}"),
                        );
                    }
                }
            }
        }
        self.touched.clear();
    }
}

impl Probe for InvariantMonitor {
    fn on_start(&mut self, m: usize, _num_jobs: usize) {
        self.m = m;
        self.tail_start = self.checks.rectangle_tail_alpha.and_then(|alpha| {
            let p = self.profile.as_ref()?;
            Some(self.release + p.opt_single_job((alpha.max(1) * m.max(1)) as u64))
        });
        self.pending_narrow = None;
        self.done = false;
        self.releases.clear();
        self.completed.clear();
        self.groups.clear();
        self.touched.clear();
        self.violations.clear();
        self.total = 0;
    }

    fn on_release(&mut self, t: Time, job: JobId) {
        if job.index() >= self.releases.len() {
            self.releases.resize(job.index() + 1, None);
            self.completed.resize(job.index() + 1, false);
        }
        self.releases[job.index()] = Some(t);
        if let Some(ht) = self.checks.head_tail {
            self.groups.entry(group_boundary(t, ht.half)).or_default().members += 1;
        }
    }

    fn on_select(&mut self, t: Time, picks: &[(JobId, NodeId)]) {
        let Some(ht) = self.checks.head_tail else {
            return;
        };
        if picks.is_empty() {
            return;
        }
        for &(job, _) in picks {
            let Some(Some(r)) = self.releases.get(job.index()).copied() else {
                continue;
            };
            let b = group_boundary(r, ht.half);
            let g = self.groups.entry(b).or_default();
            if g.picks == 0 {
                self.touched.push(b);
            }
            g.picks += 1;
        }
        self.check_head_tail(ht, t, picks.len());
    }

    fn on_step(&mut self, t: Time, stat: StepStat) {
        if self.checks.work_conserving
            && stat.scheduled < self.m
            && stat.scheduled < stat.ready_depth
        {
            self.record(
                t,
                InvariantRule::WorkConserving,
                format!(
                    "scheduled {} of {} ready on {} processors",
                    stat.scheduled, stat.ready_depth, self.m
                ),
            );
        }
        if let Some(tail) = self.tail_start {
            if t >= tail && !self.done {
                // Any tail step arriving after a narrow one proves the
                // narrow step was not the schedule's (exempt) final step.
                if let Some((nt, width)) = self.pending_narrow.take() {
                    self.record(
                        nt,
                        InvariantRule::RectangleTail,
                        format!(
                            "non-final tail step ran {width} < {} subjobs (tail starts at {tail})",
                            self.m
                        ),
                    );
                }
                if stat.scheduled < self.m {
                    self.pending_narrow = Some((t, stat.scheduled));
                }
            }
        }
    }

    fn on_complete(&mut self, _t: Time, job: JobId) {
        // Single-job instance: the run's last productive step has happened;
        // a pending narrow step was the final one, which Lemma 5.2 exempts.
        self.done = true;
        self.pending_narrow = None;
        if job.index() < self.completed.len() {
            self.completed[job.index()] = true;
            if let (Some(ht), Some(Some(r))) =
                (self.checks.head_tail, self.releases.get(job.index()))
            {
                let b = group_boundary(*r, ht.half);
                if let Some(g) = self.groups.get_mut(&b) {
                    g.completed += 1;
                    if g.completed >= g.members {
                        // Every member done: the group retires, and with it
                        // any exhausted-rectangle state (a short final step
                        // is the expected rectangle shape, not a breach).
                        self.groups.remove(&b);
                    }
                }
            }
        }
    }

    fn on_idle_gap(&mut self, _t0: Time, _steps: Time, _m: usize) {
        // Gaps occur only when nothing is alive: vacuously work-conserving,
        // and on single-job instances they precede the release, before any
        // tail. O(1) instead of the default stepwise replay.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use crate::instance::JobSpec;
    use crate::scheduler::{Clairvoyance, OnlineScheduler, Selection, SimView};
    use flowtree_dag::builder::{chain, star};
    use flowtree_dag::NodeId;

    struct Greedy;

    impl OnlineScheduler for Greedy {
        fn clairvoyance(&self) -> Clairvoyance {
            Clairvoyance::NonClairvoyant
        }
        fn select(&mut self, _t: Time, view: &SimView<'_>, sel: &mut Selection) {
            for &job in view.alive() {
                for &v in view.ready(job) {
                    if !sel.push(job, NodeId(v)) {
                        return;
                    }
                }
            }
        }
    }

    /// Greedy, but refuses to use the last processor — breaks work
    /// conservation whenever more than `m - 1` subjobs are ready.
    struct Lazy;

    impl OnlineScheduler for Lazy {
        fn clairvoyance(&self) -> Clairvoyance {
            Clairvoyance::NonClairvoyant
        }
        fn select(&mut self, _t: Time, view: &SimView<'_>, sel: &mut Selection) {
            for &job in view.alive() {
                for &v in view.ready(job) {
                    if sel.remaining() <= 1 || !sel.push(job, NodeId(v)) {
                        return;
                    }
                }
            }
        }
    }

    #[test]
    fn lower_bound_is_exact_for_single_star() {
        // star(6): root + 6 leaves on m=3 -> OPT = 3 (Corollary 5.4).
        let inst = Instance::single(star(6));
        let mut lb = LowerBound::new(&inst);
        let report = Engine::new(3).with_probe(&mut lb).run(&inst, &mut Greedy).unwrap();
        assert_eq!(lb.lower_bound(), 3);
        assert_eq!(lb.job_bound(JobId(0)), 3);
        assert_eq!(lb.max_flow(), Some(report.stats.max_flow));
        assert_eq!(lb.ratio(), Some(report.stats.max_flow as f64 / 3.0));
        assert!(lb.ratio().unwrap() >= 1.0);
    }

    #[test]
    fn lower_bound_tracks_released_jobs_only() {
        let inst = Instance::new(vec![
            JobSpec { graph: chain(2), release: 0 },
            JobSpec { graph: chain(9), release: 50 },
        ]);
        let mut lb = LowerBound::new(&inst);
        Engine::new(2).with_probe(&mut lb).run(&inst, &mut Greedy).unwrap();
        // Both released by the end: the chain(9) dominates.
        assert_eq!(lb.lower_bound(), 9);
    }

    #[test]
    fn work_conserving_violations_are_recorded_not_panicked() {
        let inst = Instance::single(star(9));
        let mut mon = InvariantMonitor::new(&inst, InvariantChecks::WORK_CONSERVING);
        Engine::new(4).with_probe(&mut mon).run(&inst, &mut Lazy).unwrap();
        assert!(!mon.is_clean());
        let v = &mon.violations()[0];
        assert_eq!(v.rule, InvariantRule::WorkConserving);
        assert!(v.detail.contains("of"), "detail should carry counts: {}", v.detail);
        // The same run is clean under the greedy scheduler.
        let mut mon = InvariantMonitor::new(&inst, InvariantChecks::WORK_CONSERVING);
        Engine::new(4).with_probe(&mut mon).run(&inst, &mut Greedy).unwrap();
        assert!(mon.is_clean(), "{:?}", mon.violations());
    }

    #[test]
    fn rectangle_tail_flags_non_final_narrow_steps_only() {
        let checks = InvariantChecks {
            work_conserving: false,
            rectangle_tail_alpha: Some(1),
            head_tail: None,
        };
        let inst = Instance::single(star(8));
        let mut mon = InvariantMonitor::new(&inst, checks);
        // Drive the probe by hand: star(8) on m=4 has OPT = 3, so the tail
        // starts at t=3.
        mon.on_start(4, 1);
        mon.on_release(0, JobId(0));
        for (t, scheduled) in [(0u64, 1usize), (1, 4), (2, 4), (3, 4), (4, 2), (5, 1)] {
            mon.on_step(t, StepStat { scheduled, idle_procs: 4 - scheduled, ready_depth: 9 });
        }
        mon.on_complete(6, JobId(0));
        mon.on_finish(6);
        // t=4 ran 2 < 4 and was followed by t=5, so it is a violation;
        // t=5 was the final step and is exempt.
        assert_eq!(mon.total_violations(), 1);
        assert_eq!(mon.violations()[0].t, 4);
        assert_eq!(mon.violations()[0].rule, InvariantRule::RectangleTail);
    }

    #[test]
    fn head_tail_width_cap_and_strict_rectangle_rule() {
        let checks = InvariantChecks {
            work_conserving: false,
            rectangle_tail_alpha: None,
            head_tail: Some(HeadTailChecks { alpha: 4, half: 2, strict: true }),
        };
        let mut mon = InvariantMonitor::streaming(checks);
        mon.on_start(8, 0); // slice p = 2, head length opt = 4
        mon.on_release(0, JobId(0));
        mon.on_release(0, JobId(1)); // group@0 with jobs 0, 1
        mon.on_release(3, JobId(2)); // group@4
                                     // Head step within the cap: clean.
        mon.on_select(0, &[(JobId(0), NodeId(0)), (JobId(1), NodeId(0))]);
        assert!(mon.is_clean());
        // Width breach: 3 picks for group@0 against slice 2.
        mon.on_select(1, &[(JobId(0), NodeId(1)), (JobId(0), NodeId(2)), (JobId(1), NodeId(1))]);
        assert_eq!(mon.total_violations(), 1);
        assert_eq!(mon.violations()[0].rule, InvariantRule::GroupWidth);
        // Tail (t >= 4): a short step (1 < 2 picks, total under m) marks the
        // rectangle exhausted but is not itself a breach...
        mon.on_select(4, &[(JobId(0), NodeId(3))]);
        assert_eq!(mon.total_violations(), 1);
        // ...scheduling the group again afterwards is.
        mon.on_select(5, &[(JobId(1), NodeId(2))]);
        assert_eq!(mon.total_violations(), 2);
        assert_eq!(mon.violations()[1].rule, InvariantRule::TailRectangle);
    }

    #[test]
    fn head_tail_group_retires_when_all_members_complete() {
        let checks = InvariantChecks {
            work_conserving: false,
            rectangle_tail_alpha: None,
            head_tail: Some(HeadTailChecks { alpha: 4, half: 2, strict: true }),
        };
        let mut mon = InvariantMonitor::streaming(checks);
        mon.on_start(8, 0);
        mon.on_release(0, JobId(0));
        mon.on_release(0, JobId(1));
        // Short tail step, then both members complete: the short step was
        // the group's (exempt) rectangle end, not a violation.
        mon.on_select(4, &[(JobId(0), NodeId(0)), (JobId(1), NodeId(0))]);
        mon.on_select(5, &[(JobId(0), NodeId(1))]);
        mon.on_complete(5, JobId(0));
        mon.on_complete(5, JobId(1));
        mon.on_finish(5);
        assert!(mon.is_clean(), "{:?}", mon.violations());
    }

    #[test]
    fn set_checks_rearms_head_tail_from_history_without_strict() {
        let mut mon = InvariantMonitor::streaming(InvariantChecks::NONE);
        mon.on_start(8, 0);
        mon.on_release(0, JobId(0));
        mon.on_release(1, JobId(1));
        mon.on_complete(2, JobId(0)); // done before the swap: not regrouped
        mon.set_checks(InvariantChecks {
            work_conserving: false,
            rectangle_tail_alpha: None,
            head_tail: Some(HeadTailChecks { alpha: 4, half: 2, strict: true }),
        });
        // Strict demoted: a short tail step followed by more scheduling of
        // the same group is tolerated after a hot-swap regrouping...
        mon.on_select(6, &[(JobId(1), NodeId(0))]);
        mon.on_select(7, &[(JobId(1), NodeId(1))]);
        assert!(mon.is_clean(), "{:?}", mon.violations());
        // ...but the m/alpha width cap still applies (slice = 2).
        mon.on_select(8, &[(JobId(1), NodeId(2)), (JobId(1), NodeId(3)), (JobId(1), NodeId(4))]);
        assert_eq!(mon.total_violations(), 1);
        assert_eq!(mon.violations()[0].rule, InvariantRule::GroupWidth);
    }

    #[test]
    fn violation_storage_is_capped() {
        let inst = Instance::single(chain(2));
        let mut mon = InvariantMonitor::new(&inst, InvariantChecks::WORK_CONSERVING);
        mon.on_start(4, 1);
        for t in 0..1000 {
            mon.on_step(t, StepStat { scheduled: 0, idle_procs: 4, ready_depth: 7 });
        }
        assert_eq!(mon.total_violations(), 1000);
        assert_eq!(mon.violations().len(), InvariantMonitor::MAX_RECORDED);
    }
}
