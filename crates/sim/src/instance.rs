//! Problem instances: a set of jobs with release times.

use flowtree_dag::{classify, DepthProfile, JobGraph, JobId, Time};

/// One job of an instance: a DAG plus its release (arrival) time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobSpec {
    /// The precedence DAG of unit-time subjobs.
    pub graph: JobGraph,
    /// Release time `r_i`: the scheduler becomes aware of the job at `r_i`
    /// and no subjob may complete before `r_i + 1`.
    pub release: Time,
}

/// An instance: jobs sorted by `(release, insertion order)`. [`JobId`]s index
/// into this sorted order, so `JobId` order *is* FIFO arrival order (ties
/// broken by insertion, matching "arrived no later" in the paper's FIFO
/// definition).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Instance {
    jobs: Vec<JobSpec>,
}

serde::impl_serde_struct!(JobSpec { graph, release });

impl serde::Serialize for Instance {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![("jobs".to_string(), serde::Serialize::to_value(&self.jobs))])
    }
}

impl serde::Deserialize for Instance {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let jobs = Vec::<JobSpec>::from_value(
            v.get("jobs").ok_or_else(|| serde::Error::missing_field("jobs"))?,
        )?;
        if jobs.is_empty() {
            return Err(serde::Error::custom("instance must contain at least one job"));
        }
        Ok(Instance::new(jobs))
    }
}

impl Instance {
    /// Build an instance; jobs are stably sorted by release time.
    pub fn new(mut jobs: Vec<JobSpec>) -> Self {
        assert!(!jobs.is_empty(), "instance must contain at least one job");
        jobs.sort_by_key(|j| j.release);
        Instance { jobs }
    }

    /// Single job released at time 0.
    pub fn single(graph: JobGraph) -> Self {
        Instance::new(vec![JobSpec { graph, release: 0 }])
    }

    /// An instance with no jobs yet, for incremental construction via
    /// [`push_job`](Self::push_job) (streaming sessions admit arrivals one at
    /// a time instead of sorting a full batch up front).
    pub fn empty() -> Self {
        Instance { jobs: Vec::new() }
    }

    /// Append a job arriving no earlier than every job already present, so
    /// the sorted-by-release invariant is preserved without a sort. Returns
    /// the new job's id. Panics if `spec.release` would go backwards.
    pub fn push_job(&mut self, spec: JobSpec) -> JobId {
        if let Some(last) = self.jobs.last() {
            assert!(
                spec.release >= last.release,
                "streamed arrivals must have nondecreasing release times \
                 ({} after {})",
                spec.release,
                last.release
            );
        }
        let id = JobId(self.jobs.len() as u32);
        self.jobs.push(spec);
        id
    }

    /// Number of jobs.
    pub fn num_jobs(&self) -> usize {
        self.jobs.len()
    }

    /// All jobs in arrival order.
    pub fn jobs(&self) -> &[JobSpec] {
        &self.jobs
    }

    /// The job with the given id.
    pub fn job(&self, id: JobId) -> &JobSpec {
        &self.jobs[id.index()]
    }

    /// The DAG of the given job.
    pub fn graph(&self, id: JobId) -> &JobGraph {
        &self.jobs[id.index()].graph
    }

    /// Release time of the given job.
    pub fn release(&self, id: JobId) -> Time {
        self.jobs[id.index()].release
    }

    /// Iterator over `(JobId, &JobSpec)` in arrival order.
    pub fn iter(&self) -> impl Iterator<Item = (JobId, &JobSpec)> + '_ {
        self.jobs.iter().enumerate().map(|(i, j)| (JobId(i as u32), j))
    }

    /// Total work over all jobs.
    pub fn total_work(&self) -> u64 {
        self.jobs.iter().map(|j| j.graph.work()).sum()
    }

    /// Maximum span over all jobs — a lower bound on the optimal max flow.
    pub fn max_span(&self) -> u64 {
        self.jobs.iter().map(|j| j.graph.span()).max().unwrap_or(0)
    }

    /// Latest release time.
    pub fn last_release(&self) -> Time {
        self.jobs.last().map(|j| j.release).unwrap_or(0)
    }

    /// Is every job an out-forest? (Scope of the paper's Section 5 results.)
    pub fn is_out_forest_instance(&self) -> bool {
        self.jobs.iter().all(|j| classify::is_out_forest(&j.graph))
    }

    /// Are all release times integer multiples of `q`? (`q = OPT` gives the
    /// paper's *batched* instances of Section 6; `q = OPT/2` the
    /// *semi-batched* ones of Section 5.3.)
    pub fn is_batched(&self, q: Time) -> bool {
        q > 0 && self.jobs.iter().all(|j| j.release % q == 0)
    }

    /// A simple certified lower bound on the optimal maximum flow on `m`
    /// processors: the max over jobs of the single-job bound
    /// `max_d (d + ceil(W_i(d)/m))` (paper Lemma 5.1), which subsumes both
    /// the span and the per-job work bound. See `flowtree-opt` for stronger
    /// multi-job (interval load) bounds.
    pub fn per_job_lower_bound(&self, m: u64) -> u64 {
        self.jobs
            .iter()
            .map(|j| DepthProfile::new(&j.graph).opt_single_job(m))
            .max()
            .unwrap_or(0)
    }

    /// The batching transformation of Section 5.4: merge all jobs with
    /// release in `((i-1)*q, i*q]` into a single job released at `i*q`
    /// (jobs at time 0 stay at 0). The optimal max flow of the result is at
    /// most `OPT(original) + q` (delay the optimal schedule by `q`).
    pub fn batch_releases(&self, q: Time) -> Instance {
        assert!(q > 0);
        use std::collections::BTreeMap;
        let mut buckets: BTreeMap<Time, Vec<&JobGraph>> = BTreeMap::new();
        for j in &self.jobs {
            let slot = j.release.div_ceil(q) * q;
            buckets.entry(slot).or_default().push(&j.graph);
        }
        let jobs = buckets
            .into_iter()
            .map(|(release, graphs)| JobSpec {
                graph: JobGraph::disjoint_union(&graphs).0,
                release,
            })
            .collect();
        Instance::new(jobs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowtree_dag::builder::{chain, star};

    fn inst() -> Instance {
        Instance::new(vec![
            JobSpec { graph: star(3), release: 5 },
            JobSpec { graph: chain(4), release: 0 },
            JobSpec { graph: chain(2), release: 5 },
        ])
    }

    #[test]
    fn jobs_sorted_by_release_stably() {
        let i = inst();
        assert_eq!(i.release(JobId(0)), 0);
        assert_eq!(i.release(JobId(1)), 5);
        assert_eq!(i.release(JobId(2)), 5);
        // Stability: the star (inserted before the chain(2)) keeps priority.
        assert_eq!(i.graph(JobId(1)).work(), 4); // star(3)
        assert_eq!(i.graph(JobId(2)).work(), 2);
    }

    #[test]
    fn aggregate_metrics() {
        let i = inst();
        assert_eq!(i.total_work(), 4 + 4 + 2);
        assert_eq!(i.max_span(), 4);
        assert_eq!(i.last_release(), 5);
        assert_eq!(i.num_jobs(), 3);
        assert!(i.is_out_forest_instance());
    }

    #[test]
    fn batched_predicate() {
        let i = inst();
        assert!(i.is_batched(5));
        assert!(i.is_batched(1));
        assert!(!i.is_batched(4));
        assert!(!i.is_batched(0));
    }

    #[test]
    fn per_job_lower_bound_dominates_span_and_work() {
        let i = inst();
        for m in 1..=4 {
            let lb = i.per_job_lower_bound(m);
            assert!(lb >= i.max_span());
            for (_, j) in i.iter() {
                assert!(lb >= j.graph.work().div_ceil(m));
            }
        }
        // chain(4) forces lb = 4 for all m.
        assert_eq!(i.per_job_lower_bound(8), 4);
    }

    #[test]
    fn single_constructor() {
        let i = Instance::single(chain(3));
        assert_eq!(i.num_jobs(), 1);
        assert_eq!(i.release(JobId(0)), 0);
    }

    #[test]
    #[should_panic(expected = "at least one job")]
    fn empty_instance_panics() {
        Instance::new(vec![]);
    }

    #[test]
    fn push_job_appends_in_release_order() {
        let mut i = Instance::empty();
        assert_eq!(i.num_jobs(), 0);
        assert_eq!(i.last_release(), 0);
        assert_eq!(i.push_job(JobSpec { graph: chain(2), release: 1 }), JobId(0));
        assert_eq!(i.push_job(JobSpec { graph: star(2), release: 1 }), JobId(1));
        assert_eq!(i.push_job(JobSpec { graph: chain(3), release: 4 }), JobId(2));
        assert_eq!(i.num_jobs(), 3);
        assert_eq!(i.last_release(), 4);
        assert_eq!(i.total_work(), 2 + 3 + 3);
        // The incrementally built instance equals the batch-sorted one.
        assert_eq!(
            i,
            Instance::new(vec![
                JobSpec { graph: chain(2), release: 1 },
                JobSpec { graph: star(2), release: 1 },
                JobSpec { graph: chain(3), release: 4 },
            ])
        );
    }

    #[test]
    #[should_panic(expected = "nondecreasing")]
    fn push_job_rejects_backwards_release() {
        let mut i = Instance::empty();
        i.push_job(JobSpec { graph: chain(1), release: 5 });
        i.push_job(JobSpec { graph: chain(1), release: 4 });
    }

    #[test]
    fn batch_releases_merges_buckets() {
        let i = Instance::new(vec![
            JobSpec { graph: chain(2), release: 0 },
            JobSpec { graph: chain(3), release: 1 },
            JobSpec { graph: chain(4), release: 7 },
            JobSpec { graph: star(2), release: 8 },
        ]);
        let b = i.batch_releases(4);
        // Buckets: 0 -> {r=0}, 4 -> {r=1}, 8 -> {r=7, r=8}.
        assert_eq!(b.num_jobs(), 3);
        assert_eq!(b.release(JobId(0)), 0);
        assert_eq!(b.release(JobId(1)), 4);
        assert_eq!(b.release(JobId(2)), 8);
        assert_eq!(b.graph(JobId(2)).work(), 4 + 3);
        assert!(b.is_batched(4));
        assert_eq!(b.total_work(), i.total_work());
    }

    #[test]
    fn batch_releases_identity_when_already_batched() {
        let i = inst(); // releases 0, 5, 5
        let b = i.batch_releases(5);
        assert_eq!(b.num_jobs(), 2);
        assert_eq!(b.total_work(), i.total_work());
        assert_eq!(b.release(JobId(1)), 5);
    }

    #[test]
    fn serde_roundtrip() {
        let i = inst();
        let json = serde_json::to_string(&i).unwrap();
        let back: Instance = serde_json::from_str(&json).unwrap();
        assert_eq!(back, i);
    }
}
