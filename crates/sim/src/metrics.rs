//! Schedule quality metrics: per-job flow, maximum flow, utilization.

use crate::instance::Instance;
use crate::schedule::Schedule;
use flowtree_dag::Time;

/// Flow-time statistics of a complete schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowStats {
    /// Per-job flow `F_i = C_i - r_i`, indexed by job id.
    pub flows: Vec<Time>,
    /// `max_i F_i` — the paper's objective.
    pub max_flow: Time,
    /// `sum_i F_i / n` (the l1-norm counterpart, for context in reports).
    pub mean_flow: f64,
    /// Completion time of the last subjob overall.
    pub makespan: Time,
    /// Fraction of processor-steps busy in `[1, makespan]`.
    pub utilization: f64,
    /// Steps in `[1, makespan]` with at least one idle processor.
    pub idle_steps: u64,
}

/// Compute [`FlowStats`]. Panics if the schedule is incomplete (some job has
/// no completion time) — run [`Schedule::verify`] first for a precise error.
pub fn flow_stats(instance: &Instance, schedule: &Schedule) -> FlowStats {
    let completions = schedule.completion_times(instance);
    let mut flows = Vec::with_capacity(instance.num_jobs());
    let mut makespan = 0;
    for (id, spec) in instance.iter() {
        let c = completions[id.index()].unwrap_or_else(|| panic!("job {id} never scheduled"));
        assert!(
            c > spec.release,
            "job {id} completes at {c} before its release {}",
            spec.release
        );
        flows.push(c - spec.release);
        makespan = makespan.max(c);
    }
    let max_flow = flows.iter().copied().max().unwrap_or(0);
    let mean_flow = flows.iter().map(|&f| f as f64).sum::<f64>() / flows.len() as f64;

    let mut busy = 0u64;
    let mut idle_steps = 0u64;
    for t in 1..=makespan {
        let load = schedule.load(t) as u64;
        busy += load;
        if load < schedule.m() as u64 {
            idle_steps += 1;
        }
    }
    let utilization = if makespan == 0 {
        0.0
    } else {
        busy as f64 / (makespan as f64 * schedule.m() as f64)
    };

    FlowStats {
        flows,
        max_flow,
        mean_flow,
        makespan,
        utilization,
        idle_steps,
    }
}

/// Competitive-ratio report: a measured objective against a reference value
/// (exact OPT when known, else a certified lower bound — in which case the
/// reported ratio is an upper bound on the true ratio).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ratio {
    /// The algorithm's measured maximum flow.
    pub achieved: Time,
    /// The reference (OPT or a lower bound on it).
    pub reference: Time,
}

impl Ratio {
    /// `achieved / reference` as f64 (infinite if the reference is 0).
    pub fn value(&self) -> f64 {
        if self.reference == 0 {
            f64::INFINITY
        } else {
            self.achieved as f64 / self.reference as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::{Instance, JobSpec};
    use flowtree_dag::builder::chain;
    use flowtree_dag::{JobId, NodeId};

    fn simple() -> (Instance, Schedule) {
        let inst = Instance::new(vec![
            JobSpec { graph: chain(2), release: 0 },
            JobSpec { graph: chain(1), release: 2 },
        ]);
        let mut s = Schedule::new(2);
        s.push_step(vec![(JobId(0), NodeId(0))]); // t=1
        s.push_step(vec![(JobId(0), NodeId(1))]); // t=2
        s.push_step(vec![]); // t=3 idle
        s.push_step(vec![(JobId(1), NodeId(0))]); // t=4
        (inst, s)
    }

    #[test]
    fn flows_and_max_flow() {
        let (inst, s) = simple();
        s.verify(&inst).unwrap();
        let st = flow_stats(&inst, &s);
        assert_eq!(st.flows, vec![2, 2]);
        assert_eq!(st.max_flow, 2);
        assert_eq!(st.makespan, 4);
        assert!((st.mean_flow - 2.0).abs() < 1e-12);
    }

    #[test]
    fn utilization_counts_busy_processor_steps() {
        let (inst, s) = simple();
        let st = flow_stats(&inst, &s);
        // 3 busy processor-steps out of 4 steps x 2 processors.
        assert!((st.utilization - 3.0 / 8.0).abs() < 1e-12);
        assert_eq!(st.idle_steps, 4); // every step has an idle processor
    }

    #[test]
    fn full_rectangle_utilization_is_one() {
        let inst = Instance::new(vec![
            JobSpec { graph: chain(2), release: 0 },
            JobSpec { graph: chain(2), release: 0 },
        ]);
        let mut s = Schedule::new(2);
        s.push_step(vec![(JobId(0), NodeId(0)), (JobId(1), NodeId(0))]);
        s.push_step(vec![(JobId(0), NodeId(1)), (JobId(1), NodeId(1))]);
        s.verify(&inst).unwrap();
        let st = flow_stats(&inst, &s);
        assert_eq!(st.utilization, 1.0);
        assert_eq!(st.idle_steps, 0);
        assert_eq!(st.max_flow, 2);
    }

    #[test]
    #[should_panic(expected = "never scheduled")]
    fn incomplete_schedule_panics() {
        let (inst, _) = simple();
        let s = Schedule::new(2);
        flow_stats(&inst, &s);
    }

    #[test]
    fn ratio_value() {
        assert_eq!(Ratio { achieved: 6, reference: 2 }.value(), 3.0);
        assert!(Ratio { achieved: 1, reference: 0 }.value().is_infinite());
    }
}
