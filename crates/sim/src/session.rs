//! Incremental (streaming) engine entry point.
//!
//! [`Engine::run`](crate::Engine::run) needs the whole [`Instance`] up
//! front; a [`Session`] instead accepts jobs one at a time via
//! [`admit`](Session::admit) and simulates on demand via
//! [`run_until`](Session::run_until), so a long-running service can feed
//! arrivals as they happen. The step loop mirrors the engine's exactly —
//! same release order, same idle-gap fast-forward, same stamp-based
//! selection validation, same probe event stream — so a session that admits
//! every job of an instance before its release time produces a
//! [`RunReport`] *identical* to the batch engine's (the differential tests
//! in `flowtree-serve` pin this bit-for-bit).
//!
//! The contract that makes this work: a job may only be admitted with
//! `release >= now()`, and admissions must have nondecreasing release
//! times. Callers that ingest from concurrent sources enforce this with an
//! event-time watermark (see `flowtree-serve`): simulate step `t` only once
//! every arrival with release `<= t` has been admitted.

use crate::engine::{EngineError, RunReport};
use crate::instance::{Instance, JobSpec};
use crate::probe::{Counters, NullProbe, Probe, StepStat};
use crate::schedule::Schedule;
use crate::scheduler::{OnlineScheduler, Selection, SimView};
use crate::state::SimState;
use flowtree_dag::{JobId, Time};

/// Errors from [`Session::admit`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SessionError {
    /// The job's release time is before the session's current time — the
    /// steps that should have seen it were already simulated.
    ReleaseInPast {
        /// The rejected release time.
        release: Time,
        /// The session's current time.
        now: Time,
    },
    /// The job's release time is before an earlier admission's — admissions
    /// must arrive in nondecreasing release order.
    ReleaseOutOfOrder {
        /// The rejected release time.
        release: Time,
        /// The latest admitted release.
        last: Time,
    },
}

impl std::fmt::Display for SessionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionError::ReleaseInPast { release, now } => {
                write!(f, "cannot admit a job released at {release}: session is at {now}")
            }
            SessionError::ReleaseOutOfOrder { release, last } => {
                write!(f, "cannot admit a job released at {release} after one released at {last}")
            }
        }
    }
}

impl std::error::Error for SessionError {}

/// Default safety horizon: far enough to never bind in practice, low enough
/// that `horizon + 1` cannot overflow.
const DEFAULT_HORIZON: Time = Time::MAX / 4;

/// A resumable simulation accepting streamed arrivals.
///
/// ```
/// use flowtree_sim::{Session, Instance, JobSpec};
/// # use flowtree_sim::{Selection, SimView, OnlineScheduler, Clairvoyance};
/// # use flowtree_dag::{builder::chain, NodeId, Time};
/// # struct Greedy;
/// # impl OnlineScheduler for Greedy {
/// #     fn clairvoyance(&self) -> Clairvoyance { Clairvoyance::NonClairvoyant }
/// #     fn select(&mut self, _t: Time, view: &SimView<'_>, sel: &mut Selection) {
/// #         for &job in view.alive() {
/// #             for &v in view.ready(job) {
/// #                 if !sel.push(job, NodeId(v)) { return; }
/// #             }
/// #         }
/// #     }
/// # }
/// let mut sched = Greedy;
/// let mut s = Session::new(2);
/// s.admit(JobSpec { graph: chain(3), release: 0 }).unwrap();
/// s.run_until(Time::MAX, &mut sched).unwrap(); // runs dry at t=3
/// assert_eq!(s.now(), 3);
/// let (report, inst) = s.finish();
/// report.verify(&inst).unwrap();
/// ```
#[derive(Debug)]
pub struct Session<P: Probe = NullProbe> {
    m: usize,
    max_horizon: Time,
    probe: P,
    instance: Instance,
    state: SimState,
    schedule: Schedule,
    counters: Counters,
    /// Flat node-array offsets per job (see `Engine::run`).
    node_off: Vec<usize>,
    node_stamp: Vec<Time>,
    job_stamp: Vec<Time>,
    sel: Selection,
    t: Time,
    started: bool,
}

impl Session<NullProbe> {
    /// A session over `m` identical processors, with no instrumentation.
    pub fn new(m: usize) -> Self {
        assert!(m >= 1, "need at least one processor");
        let instance = Instance::empty();
        let state = SimState::new(&instance);
        Session {
            m,
            max_horizon: DEFAULT_HORIZON,
            probe: NullProbe,
            instance,
            state,
            schedule: Schedule::new(m),
            counters: Counters::default(),
            node_off: vec![0],
            node_stamp: Vec::new(),
            job_stamp: Vec::new(),
            sel: Selection::new(m),
            t: 0,
            started: false,
        }
    }
}

impl<P: Probe> Session<P> {
    /// Attach `probe` (before any admit/step; the session has not started).
    /// Streaming-capable probes learn job graphs via
    /// [`Probe::on_admit`].
    pub fn with_probe<Q: Probe>(self, probe: Q) -> Session<Q> {
        assert!(!self.started, "attach probes before the session starts");
        Session {
            m: self.m,
            max_horizon: self.max_horizon,
            probe,
            instance: self.instance,
            state: self.state,
            schedule: self.schedule,
            counters: self.counters,
            node_off: self.node_off,
            node_stamp: self.node_stamp,
            job_stamp: self.job_stamp,
            sel: self.sel,
            t: self.t,
            started: self.started,
        }
    }

    /// Override the safety horizon (a stalling scheduler surfaces as
    /// [`EngineError::HorizonExceeded`] instead of spinning forever).
    pub fn with_max_horizon(mut self, horizon: Time) -> Self {
        self.max_horizon = horizon;
        self
    }

    /// Machine size.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Current simulated time.
    pub fn now(&self) -> Time {
        self.t
    }

    /// Jobs admitted so far.
    pub fn num_admitted(&self) -> usize {
        self.instance.num_jobs()
    }

    /// The instance materialized from admissions so far.
    pub fn instance(&self) -> &Instance {
        &self.instance
    }

    /// The engine-maintained counters (live snapshot).
    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    /// The attached probe (live snapshot — e.g. per-shard monitors).
    pub fn probe(&self) -> &P {
        &self.probe
    }

    /// Mutable access to the attached probe, for mid-stream reconfiguration
    /// (e.g. retargeting an `InvariantMonitor` at a scheduler hot-swap).
    /// Probes see every event exactly once either way; this only exposes
    /// their own knobs, not the event stream.
    pub fn probe_mut(&mut self) -> &mut P {
        &mut self.probe
    }

    /// Have all admitted jobs finished (vacuously true before any admit)?
    pub fn is_drained(&self) -> bool {
        self.state.all_done()
    }

    fn ensure_started(&mut self) {
        if !self.started {
            self.started = true;
            // A streaming run starts with zero known jobs; probes grow.
            self.counters.on_start(self.m, 0);
            self.probe.on_start(self.m, 0);
        }
    }

    /// Admit one job. Its release must be `>= now()` and `>=` every earlier
    /// admission's release; the job releases (and its roots become ready)
    /// once simulation reaches its release time.
    pub fn admit(&mut self, spec: JobSpec) -> Result<JobId, SessionError> {
        self.ensure_started();
        if spec.release < self.t {
            return Err(SessionError::ReleaseInPast { release: spec.release, now: self.t });
        }
        let last = self.instance.last_release();
        if self.instance.num_jobs() > 0 && spec.release < last {
            return Err(SessionError::ReleaseOutOfOrder { release: spec.release, last });
        }
        let n = spec.graph.n();
        let id = self.instance.push_job(spec);
        self.state.push_job(&self.instance);
        self.node_off.push(self.node_off.last().unwrap() + n);
        self.node_stamp.resize(self.node_stamp.len() + n, 0);
        self.job_stamp.push(0);
        self.probe.on_admit(self.t, id, self.instance.graph(id));
        Ok(id)
    }

    /// Admit a whole batch of jobs in one call. The batch is validated
    /// up front — releases must be nondecreasing within the batch, and the
    /// first must satisfy the same `>= now()` / `>=` last-admission rules as
    /// [`admit`](Self::admit) — so the call is all-or-nothing: on error
    /// nothing was admitted. Capacity for the session's flat per-node
    /// arrays is reserved once for the whole batch, which is what makes
    /// batched ingest (see `flowtree-serve`) cheaper than a loop of single
    /// admissions.
    pub fn admit_batch(&mut self, specs: Vec<JobSpec>) -> Result<(), SessionError> {
        self.ensure_started();
        let mut last = if self.instance.num_jobs() > 0 {
            Some(self.instance.last_release())
        } else {
            None
        };
        let mut total_nodes = 0usize;
        for spec in &specs {
            if spec.release < self.t {
                return Err(SessionError::ReleaseInPast { release: spec.release, now: self.t });
            }
            if let Some(last) = last {
                if spec.release < last {
                    return Err(SessionError::ReleaseOutOfOrder { release: spec.release, last });
                }
            }
            last = Some(spec.release);
            total_nodes += spec.graph.n();
        }
        self.node_off.reserve(specs.len());
        self.node_stamp.reserve(total_nodes);
        self.job_stamp.reserve(specs.len());
        for spec in specs {
            let n = spec.graph.n();
            let id = self.instance.push_job(spec);
            self.state.push_job(&self.instance);
            self.node_off.push(self.node_off.last().unwrap() + n);
            self.node_stamp.resize(self.node_stamp.len() + n, 0);
            self.job_stamp.push(0);
            self.probe.on_admit(self.t, id, self.instance.graph(id));
        }
        Ok(())
    }

    /// Introduce every alive (released, unfinished) job to `scheduler`, in
    /// arrival order, as if each arrived right now.
    ///
    /// This is the quiesce half of a **live scheduler hot-swap**: the caller
    /// stops driving the old scheduler at some step boundary (sessions never
    /// leave subjob steps half-applied), builds a fresh scheduler, and primes
    /// it here so its `on_arrival` bookkeeping (FIFO order, clairvoyant
    /// priorities, batching state) covers the jobs already in flight. Jobs
    /// admitted but not yet released are *not* replayed — they fire
    /// `on_arrival` naturally when simulation reaches their release.
    pub fn prime_scheduler(&mut self, scheduler: &mut dyn OnlineScheduler) {
        self.ensure_started();
        let clair = scheduler.clairvoyance();
        let view = SimView::new(&self.instance, &self.state, self.m, clair);
        for &job in self.state.alive() {
            scheduler.on_arrival(self.t, job, &view);
        }
    }

    /// Simulate until `t_end`, or until the session runs dry (every admitted
    /// job finished and none pending), whichever comes first. Semantics per
    /// step are identical to [`Engine::run`](crate::Engine::run): due
    /// releases fire (with `on_arrival`), all-idle stretches fast-forward,
    /// selections are validated. Callers feeding from concurrent sources
    /// must only pass a `t_end` no later than their arrival watermark.
    pub fn run_until(
        &mut self,
        t_end: Time,
        scheduler: &mut dyn OnlineScheduler,
    ) -> Result<(), EngineError> {
        self.ensure_started();
        let clair = scheduler.clairvoyance();
        while self.t < t_end {
            if self.state.all_done() {
                break;
            }
            if self.t > self.max_horizon {
                return Err(EngineError::HorizonExceeded { horizon: self.max_horizon });
            }

            while let Some(job) = self.state.release_one(&self.instance, self.t) {
                self.counters.on_release(self.t, job);
                self.probe.on_release(self.t, job);
                let view = SimView::new(&self.instance, &self.state, self.m, clair);
                scheduler.on_arrival(self.t, job, &view);
            }

            // Idle-gap fast-forward, capped additionally at `t_end`. A gap
            // split across `run_until` calls replays as the same stepwise
            // event stream, so probes cannot tell it from the engine's
            // single-call gap.
            if self.state.alive().is_empty() {
                let next = self
                    .state
                    .next_release_time(&self.instance)
                    .expect("no job alive and none pending, yet not all done");
                debug_assert!(next > self.t, "a release due now was not applied");
                let end = next.min(t_end).min(self.max_horizon + 1);
                let gap = end - self.t;
                self.counters.on_idle_gap(self.t, gap, self.m);
                self.probe.on_idle_gap(self.t, gap, self.m);
                self.schedule.push_empty_steps(gap);
                self.t = end;
                continue;
            }

            let ready_depth = self.state.total_ready();
            self.sel.clear();
            {
                let view = SimView::new(&self.instance, &self.state, self.m, clair);
                scheduler.select(self.t, &view, &mut self.sel);
            }
            let picks = self.sel.picks();

            // Stamp validation, exactly as in `Engine::run`.
            let stamp = self.t + 1;
            for &(j, v) in picks {
                if j.index() >= self.instance.num_jobs() || v.index() >= self.instance.graph(j).n()
                {
                    return Err(EngineError::NotReady { t: self.t, job: j, node: v });
                }
                let slot = &mut self.node_stamp[self.node_off[j.index()] + v.index()];
                if *slot == stamp {
                    return Err(EngineError::DuplicateSelection { t: self.t, job: j, node: v });
                }
                *slot = stamp;
                if !self.state.is_ready(j, v) {
                    return Err(EngineError::NotReady { t: self.t, job: j, node: v });
                }
            }

            self.counters.on_select(self.t, picks);
            self.probe.on_select(self.t, picks);
            for &(j, v) in picks {
                self.probe.on_dispatch(self.t, j, v);
                self.state.complete(&self.instance, j, v, self.t + 1);
            }

            let stat = StepStat {
                scheduled: picks.len(),
                idle_procs: self.m - picks.len(),
                ready_depth,
            };
            self.counters.on_step(self.t, stat);
            self.probe.on_step(self.t, stat);

            let mut any_finished = false;
            for &(j, _) in picks {
                if self.state.unfinished(j) == 0 && self.job_stamp[j.index()] != stamp {
                    self.job_stamp[j.index()] = stamp;
                    any_finished = true;
                    self.counters.on_complete(self.t + 1, j);
                    self.probe.on_complete(self.t + 1, j);
                }
            }

            if any_finished {
                self.state.prune_alive();
            }
            self.schedule.extend_step(picks);
            self.t += 1;
        }
        Ok(())
    }

    /// Finish the session: fire `on_finish`, compute flow statistics, and
    /// return the [`RunReport`] plus the materialized [`Instance`] (needed
    /// to verify the schedule or compute instance-level lower bounds).
    ///
    /// Panics if some admitted job never completed — drain with
    /// [`run_until`](Self::run_until)`(Time::MAX, …)` first.
    pub fn finish(mut self) -> (RunReport, Instance) {
        self.ensure_started();
        self.counters.on_finish(self.t);
        self.probe.on_finish(self.t);
        let stats = self.counters.flow_stats();
        (
            RunReport { schedule: self.schedule, stats, counters: self.counters },
            self.instance,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use crate::probe::JsonlTrace;
    use crate::scheduler::Clairvoyance;
    use flowtree_dag::builder::{chain, star};
    use flowtree_dag::NodeId;

    struct Greedy;

    impl OnlineScheduler for Greedy {
        fn clairvoyance(&self) -> Clairvoyance {
            Clairvoyance::NonClairvoyant
        }
        fn select(&mut self, _t: Time, view: &SimView<'_>, sel: &mut Selection) {
            for &job in view.alive() {
                for &v in view.ready(job) {
                    if !sel.push(job, NodeId(v)) {
                        return;
                    }
                }
            }
        }
    }

    fn specs() -> Vec<JobSpec> {
        vec![
            JobSpec { graph: chain(3), release: 0 },
            JobSpec { graph: star(4), release: 1 },
            JobSpec { graph: chain(2), release: 9 },
        ]
    }

    /// The headline property: admit-before-release streaming == batch, down
    /// to the bytes of the trace and the full `RunReport`.
    #[test]
    fn piecewise_session_matches_batch_engine_bit_for_bit() {
        let inst = Instance::new(specs());
        let mut batch_trace = JsonlTrace::new(Vec::new());
        let batch = Engine::new(2).with_probe(&mut batch_trace).run(&inst, &mut Greedy).unwrap();

        let mut stream_trace = JsonlTrace::new(Vec::new());
        let mut s = Session::new(2).with_probe(&mut stream_trace);
        // Admit lazily, advancing in awkward increments that split the idle
        // gap before t=9 across calls.
        s.admit(specs().remove(0)).unwrap();
        s.run_until(1, &mut Greedy).unwrap();
        s.admit(specs().remove(1)).unwrap();
        s.run_until(5, &mut Greedy).unwrap();
        s.run_until(7, &mut Greedy).unwrap();
        s.admit(specs().remove(2)).unwrap();
        s.run_until(Time::MAX, &mut Greedy).unwrap();
        let (stream, materialized) = s.finish();

        assert_eq!(materialized, inst);
        assert_eq!(stream, batch);
        stream.verify(&inst).unwrap();
        let a = String::from_utf8(batch_trace.finish().unwrap()).unwrap();
        let b = String::from_utf8(stream_trace.finish().unwrap()).unwrap();
        // The only legitimate difference is the `start` record: a streaming
        // session cannot know the final job count up front, so it reports 0.
        let (a0, a_rest) = a.split_once('\n').unwrap();
        let (b0, b_rest) = b.split_once('\n').unwrap();
        assert_eq!(a0, r#"{"ev":"start","m":2,"jobs":3}"#);
        assert_eq!(b0, r#"{"ev":"start","m":2,"jobs":0}"#);
        assert_eq!(a_rest, b_rest);
    }

    #[test]
    fn run_until_stops_at_the_requested_time() {
        let mut s = Session::new(2);
        s.admit(JobSpec { graph: chain(5), release: 0 }).unwrap();
        s.run_until(2, &mut Greedy).unwrap();
        assert_eq!(s.now(), 2);
        assert!(!s.is_drained());
        s.run_until(Time::MAX, &mut Greedy).unwrap();
        assert_eq!(s.now(), 5);
        assert!(s.is_drained());
    }

    #[test]
    fn session_runs_dry_without_advancing_past_last_completion() {
        let mut s = Session::new(4);
        s.admit(JobSpec { graph: chain(2), release: 3 }).unwrap();
        s.run_until(1_000, &mut Greedy).unwrap();
        // Idle gap 0..3, then two busy steps; the clock freezes at 5.
        assert_eq!(s.now(), 5);
        assert!(s.is_drained());
        // A later admission resumes from the frozen clock.
        s.admit(JobSpec { graph: chain(1), release: 10 }).unwrap();
        s.run_until(1_000, &mut Greedy).unwrap();
        assert_eq!(s.now(), 11);
    }

    #[test]
    fn admit_rejects_past_and_out_of_order_releases() {
        let mut s = Session::new(2);
        s.admit(JobSpec { graph: chain(1), release: 5 }).unwrap();
        assert_eq!(
            s.admit(JobSpec { graph: chain(1), release: 4 }),
            Err(SessionError::ReleaseOutOfOrder { release: 4, last: 5 })
        );
        s.run_until(Time::MAX, &mut Greedy).unwrap();
        assert_eq!(s.now(), 6);
        assert_eq!(
            s.admit(JobSpec { graph: chain(1), release: 5 }),
            Err(SessionError::ReleaseInPast { release: 5, now: 6 })
        );
    }

    /// Batched admission must be indistinguishable from a loop of single
    /// admissions — same report, same materialized instance, same trace.
    #[test]
    fn admit_batch_matches_single_admissions_bit_for_bit() {
        let mut trace_a = JsonlTrace::new(Vec::new());
        let mut a = Session::new(2).with_probe(&mut trace_a);
        for spec in specs() {
            a.admit(spec).unwrap();
        }
        a.run_until(Time::MAX, &mut Greedy).unwrap();
        let (ra, ia) = a.finish();

        let mut trace_b = JsonlTrace::new(Vec::new());
        let mut b = Session::new(2).with_probe(&mut trace_b);
        b.admit_batch(specs()).unwrap();
        b.run_until(Time::MAX, &mut Greedy).unwrap();
        let (rb, ib) = b.finish();

        assert_eq!(ia, ib);
        assert_eq!(ra, rb);
        assert_eq!(
            String::from_utf8(trace_a.finish().unwrap()).unwrap(),
            String::from_utf8(trace_b.finish().unwrap()).unwrap()
        );
    }

    #[test]
    fn admit_batch_is_all_or_nothing() {
        let mut s = Session::new(2);
        s.admit(JobSpec { graph: chain(2), release: 5 }).unwrap();
        // Out of order inside the batch: release 3 after 7.
        let err = s
            .admit_batch(vec![
                JobSpec { graph: chain(2), release: 7 },
                JobSpec { graph: chain(2), release: 3 },
            ])
            .unwrap_err();
        assert_eq!(err, SessionError::ReleaseOutOfOrder { release: 3, last: 7 });
        assert_eq!(s.num_admitted(), 1, "failed batch must admit nothing");
        // Before the earlier admission's release: also rejected whole.
        let err = s.admit_batch(vec![JobSpec { graph: chain(2), release: 4 }]).unwrap_err();
        assert_eq!(err, SessionError::ReleaseOutOfOrder { release: 4, last: 5 });
        // An empty batch is a no-op; a valid batch still lands afterwards.
        s.admit_batch(Vec::new()).unwrap();
        s.admit_batch(vec![JobSpec { graph: chain(2), release: 6 }]).unwrap();
        assert_eq!(s.num_admitted(), 2);
        s.run_until(Time::MAX, &mut Greedy).unwrap();
        let (report, inst) = s.finish();
        report.verify(&inst).unwrap();
    }

    #[test]
    fn empty_session_is_inert() {
        let mut s = Session::new(3);
        s.run_until(100, &mut Greedy).unwrap();
        assert_eq!(s.now(), 0);
        assert!(s.is_drained());
    }

    #[test]
    fn streaming_monitors_match_batch_monitors() {
        use crate::monitor::{InvariantChecks, InvariantMonitor, LowerBound};

        let inst = Instance::new(specs());
        let mut lb = LowerBound::new(&inst);
        let mut mon = InvariantMonitor::new(&inst, InvariantChecks::WORK_CONSERVING);
        Engine::new(2).with_probe((&mut lb, &mut mon)).run(&inst, &mut Greedy).unwrap();

        let mut slb = LowerBound::streaming();
        let mut smon = InvariantMonitor::streaming(InvariantChecks::WORK_CONSERVING);
        let mut s = Session::new(2).with_probe((&mut slb, &mut smon));
        for spec in specs() {
            s.admit(spec).unwrap();
        }
        s.run_until(Time::MAX, &mut Greedy).unwrap();
        s.finish();

        assert_eq!(slb.lower_bound(), lb.lower_bound());
        assert_eq!(slb.max_flow(), lb.max_flow());
        assert_eq!(slb.ratio(), lb.ratio());
        assert_eq!(smon.is_clean(), mon.is_clean());
        assert_eq!(smon.total_violations(), mon.total_violations());
    }

    /// A scheduler that only runs jobs it was told about via `on_arrival` —
    /// the shape that makes hot-swap priming observable: a fresh instance
    /// swapped in mid-stream knows nothing and stalls unless primed.
    struct KnowsArrivals {
        known: Vec<JobId>,
    }

    impl OnlineScheduler for KnowsArrivals {
        fn clairvoyance(&self) -> Clairvoyance {
            Clairvoyance::NonClairvoyant
        }
        fn on_arrival(&mut self, _t: Time, job: JobId, _view: &SimView<'_>) {
            self.known.push(job);
        }
        fn select(&mut self, _t: Time, view: &SimView<'_>, sel: &mut Selection) {
            for &job in &self.known {
                for &v in view.ready(job) {
                    if !sel.push(job, NodeId(v)) {
                        return;
                    }
                }
            }
        }
    }

    #[test]
    fn prime_scheduler_replays_alive_jobs_into_a_fresh_scheduler() {
        let mut s = Session::new(2).with_max_horizon(50);
        let mut old = KnowsArrivals { known: Vec::new() };
        s.admit(JobSpec { graph: chain(6), release: 0 }).unwrap();
        s.admit(JobSpec { graph: star(4), release: 1 }).unwrap();
        s.run_until(2, &mut old).unwrap();

        // Swap without priming: the new scheduler knows no jobs, schedules
        // nothing, and the session hits its safety horizon.
        let mut blank = KnowsArrivals { known: Vec::new() };
        let err = s.run_until(Time::MAX, &mut blank).unwrap_err();
        assert_eq!(err, EngineError::HorizonExceeded { horizon: 50 });

        // Same swap, primed: both alive jobs are reintroduced (in arrival
        // order) and the run completes and verifies.
        let mut s = Session::new(2).with_max_horizon(50);
        let mut old = KnowsArrivals { known: Vec::new() };
        s.admit(JobSpec { graph: chain(6), release: 0 }).unwrap();
        s.admit(JobSpec { graph: star(4), release: 1 }).unwrap();
        s.run_until(2, &mut old).unwrap();
        let mut new = KnowsArrivals { known: Vec::new() };
        s.prime_scheduler(&mut new);
        assert_eq!(new.known, &[JobId(0), JobId(1)]);
        s.run_until(Time::MAX, &mut new).unwrap();
        let (report, inst) = s.finish();
        report.verify(&inst).unwrap();
    }

    #[test]
    fn prime_scheduler_skips_finished_and_unreleased_jobs() {
        let mut s = Session::new(4).with_max_horizon(100);
        let mut old = KnowsArrivals { known: Vec::new() };
        s.admit(JobSpec { graph: chain(2), release: 0 }).unwrap();
        s.admit(JobSpec { graph: chain(3), release: 1 }).unwrap();
        s.admit(JobSpec { graph: chain(2), release: 50 }).unwrap();
        s.run_until(3, &mut old).unwrap(); // job 0 finished, job 2 unreleased
        assert_eq!(s.now(), 3);
        let mut new = KnowsArrivals { known: Vec::new() };
        s.prime_scheduler(&mut new);
        assert_eq!(new.known, &[JobId(1)], "only the alive job is replayed");
        s.run_until(Time::MAX, &mut new).unwrap();
        // Job 2 reached the swapped-in scheduler through its natural release.
        assert!(s.is_drained());
        let (report, inst) = s.finish();
        report.verify(&inst).unwrap();
    }

    #[test]
    fn lazy_scheduler_hits_session_horizon() {
        struct Lazy;
        impl OnlineScheduler for Lazy {
            fn clairvoyance(&self) -> Clairvoyance {
                Clairvoyance::NonClairvoyant
            }
            fn select(&mut self, _t: Time, _v: &SimView<'_>, _s: &mut Selection) {}
        }
        let mut s = Session::new(2).with_max_horizon(20);
        s.admit(JobSpec { graph: chain(2), release: 0 }).unwrap();
        let err = s.run_until(Time::MAX, &mut Lazy).unwrap_err();
        assert_eq!(err, EngineError::HorizonExceeded { horizon: 20 });
    }
}
