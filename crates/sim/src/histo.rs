//! Bounded-memory run histograms and downsampled time series.
//!
//! Long-horizon runs (10^8 steps on sparse instances) cannot afford
//! per-step storage, so everything here is O(1) memory in the horizon:
//!
//! * [`LogHistogram`] — power-of-two log-bucketed value histogram (65 fixed
//!   buckets cover the full `u64` range) with p50/p90/p99/max summaries;
//! * [`TimeSeries`] — a fixed-resolution downsampled series that coarsens
//!   ×2 whenever its bucket array fills, so resolution degrades gracefully
//!   instead of memory growing;
//! * [`RunHistograms`] — a [`Probe`] recording per-job flow and per-step
//!   ready-depth/utilization into the above, with an O(1) idle-gap batch
//!   update so fast-forwarded gaps cost nothing.

use crate::probe::{Probe, StepStat};
use flowtree_dag::{JobId, Time};

/// Number of buckets: one for zero plus one per power of two up to `2^63`.
const BUCKETS: usize = 65;

/// Log-bucketed histogram of `u64` values.
///
/// Bucket 0 holds exact zeros; bucket `b >= 1` holds values in
/// `[2^(b-1), 2^b)`. Quantiles are reported as the upper edge of the bucket
/// containing the target rank, clamped to the observed maximum — a value
/// within a factor 2 of the true quantile, at 65 × 8 bytes of state.
#[derive(Debug, Clone)]
pub struct LogHistogram {
    counts: [u64; BUCKETS],
    count: u64,
    sum: u128,
    max: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram { counts: [0; BUCKETS], count: 0, sum: 0, max: 0 }
    }
}

impl LogHistogram {
    /// Fresh empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    fn bucket(v: u64) -> usize {
        Self::bucket_of(v)
    }

    /// Index of the bucket holding `v` (0 for zero, else `65 - clz(v)`).
    /// Public so external recorders (e.g. an atomic sharded histogram) can
    /// bucket identically and rebuild via [`from_parts`](Self::from_parts).
    #[inline]
    pub fn bucket_of(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            64 - v.leading_zeros() as usize
        }
    }

    /// Number of buckets a [`from_parts`](Self::from_parts) counts slice
    /// must have.
    pub const NUM_BUCKETS: usize = BUCKETS;

    /// Rebuild a histogram from externally accumulated state: per-bucket
    /// counts (indexed by [`bucket_of`](Self::bucket_of)), the value sum,
    /// and the observed maximum. Panics if `counts` is not
    /// [`NUM_BUCKETS`](Self::NUM_BUCKETS) long.
    pub fn from_parts(counts: &[u64], sum: u128, max: u64) -> Self {
        assert_eq!(counts.len(), BUCKETS, "need {BUCKETS} bucket counts");
        let mut h = LogHistogram::new();
        h.counts.copy_from_slice(counts);
        h.count = counts.iter().sum();
        h.sum = sum;
        h.max = max;
        h
    }

    /// Fold `other` into `self`: bucket-wise count sums, value-sum sums, max
    /// of maxes. Merging per-shard histograms of disjoint streams yields
    /// exactly the histogram of the concatenated stream.
    pub fn merge(&mut self, other: &LogHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// Record one observation.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.record_n(v, 1);
    }

    /// Record `n` identical observations in O(1).
    #[inline]
    pub fn record_n(&mut self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.counts[Self::bucket(v)] += n;
        self.count += n;
        self.sum += v as u128 * n as u128;
        self.max = self.max.max(v);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Largest observation (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean observation (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper bound on the `q`-quantile (`0 < q <= 1`): the upper edge of the
    /// bucket holding the `ceil(q * count)`-th smallest observation, clamped
    /// to the observed max. Returns 0 on an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (b, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= target {
                let upper = if b == 0 {
                    0
                } else {
                    (1u64 << (b - 1)).saturating_mul(2) - 1
                };
                return upper.min(self.max);
            }
        }
        self.max
    }

    /// Median upper bound.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th-percentile upper bound.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th-percentile upper bound.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }
}

/// Default [`TimeSeries`] resolution (buckets kept in memory).
pub const SERIES_RESOLUTION: usize = 1024;

/// Fixed-memory downsampled time series.
///
/// Values are appended one per time step; each stored bucket aggregates
/// `scale()` consecutive steps (sum and max). When all `resolution` buckets
/// are full the series *coarsens*: adjacent buckets merge pairwise and the
/// scale doubles, keeping memory constant for any horizon — 10^8 steps at
/// resolution 1024 end at scale 2^17 ≈ 131k steps per bucket.
#[derive(Debug, Clone)]
pub struct TimeSeries {
    resolution: usize,
    scale: u64,
    /// Completed buckets: (sum, max) per bucket.
    buckets: Vec<(u64, u64)>,
    cur_sum: u64,
    cur_max: u64,
    cur_n: u64,
    total: u64,
}

impl Default for TimeSeries {
    fn default() -> Self {
        TimeSeries::new(SERIES_RESOLUTION)
    }
}

impl TimeSeries {
    /// Series keeping at most `resolution` buckets (`resolution >= 2`).
    pub fn new(resolution: usize) -> Self {
        assert!(resolution >= 2, "a series needs at least two buckets");
        TimeSeries {
            resolution,
            scale: 1,
            buckets: Vec::new(),
            cur_sum: 0,
            cur_max: 0,
            cur_n: 0,
            total: 0,
        }
    }

    /// Append one step's value.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.record_n(v, 1);
    }

    /// Append `n` consecutive steps of the same value, in O(buckets touched)
    /// — the idle-gap path (`n` up to 10^8) touches at most
    /// `resolution * log2(n / resolution)` buckets over a whole run.
    pub fn record_n(&mut self, v: u64, mut n: u64) {
        while n > 0 {
            let take = n.min(self.scale - self.cur_n);
            self.cur_sum += v * take;
            self.cur_max = self.cur_max.max(v);
            self.cur_n += take;
            self.total += take;
            n -= take;
            if self.cur_n == self.scale {
                self.flush();
            }
        }
    }

    fn flush(&mut self) {
        self.buckets.push((self.cur_sum, self.cur_max));
        self.cur_sum = 0;
        self.cur_max = 0;
        self.cur_n = 0;
        if self.buckets.len() == self.resolution {
            // Coarsen: merge adjacent pairs, double the scale.
            let merged: Vec<(u64, u64)> = self
                .buckets
                .chunks(2)
                .map(|pair| {
                    let (s1, m1) = pair[0];
                    let (s2, m2) = pair.get(1).copied().unwrap_or((0, 0));
                    (s1 + s2, m1.max(m2))
                })
                .collect();
            self.buckets = merged;
            self.scale *= 2;
        }
    }

    /// Steps aggregated per completed bucket.
    pub fn scale(&self) -> u64 {
        self.scale
    }

    /// Total steps recorded.
    pub fn len(&self) -> u64 {
        self.total
    }

    /// Has nothing been recorded?
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Per-bucket `(mean, max)` pairs, including the trailing partial bucket
    /// (whose mean is over the steps it actually holds).
    pub fn buckets(&self) -> Vec<(f64, u64)> {
        let mut out: Vec<(f64, u64)> = self
            .buckets
            .iter()
            .map(|&(sum, max)| (sum as f64 / self.scale as f64, max))
            .collect();
        if self.cur_n > 0 {
            out.push((self.cur_sum as f64 / self.cur_n as f64, self.cur_max));
        }
        out
    }
}

/// Probe recording run-shape distributions: per-job flow, per-step
/// ready-depth and scheduled-width histograms, plus downsampled ready-depth
/// and utilization time series. All state is O(jobs + resolution).
#[derive(Debug, Clone, Default)]
pub struct RunHistograms {
    /// Per-job flow `C_i - r_i` distribution (one observation per job).
    pub flow: LogHistogram,
    /// Ready-pool size per step.
    pub ready_depth: LogHistogram,
    /// Subjobs scheduled per step (utilization × m).
    pub scheduled: LogHistogram,
    /// Downsampled ready-depth over time.
    pub ready_series: TimeSeries,
    /// Downsampled scheduled-width over time.
    pub scheduled_series: TimeSeries,
    releases: Vec<Option<Time>>,
}

impl RunHistograms {
    /// Fresh, with default series resolution.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Probe for RunHistograms {
    fn on_start(&mut self, _m: usize, num_jobs: usize) {
        *self = RunHistograms { releases: vec![None; num_jobs], ..RunHistograms::default() };
    }

    fn on_release(&mut self, t: Time, job: JobId) {
        // Grow on demand: streaming sessions admit jobs after `on_start`.
        if job.index() >= self.releases.len() {
            self.releases.resize(job.index() + 1, None);
        }
        self.releases[job.index()] = Some(t);
    }

    fn on_complete(&mut self, t: Time, job: JobId) {
        if let Some(r) = self.releases[job.index()] {
            self.flow.record(t - r);
        }
    }

    fn on_step(&mut self, _t: Time, stat: StepStat) {
        self.ready_depth.record(stat.ready_depth as u64);
        self.scheduled.record(stat.scheduled as u64);
        self.ready_series.record(stat.ready_depth as u64);
        self.scheduled_series.record(stat.scheduled as u64);
    }

    /// O(1)-ish batch form: a gap is `steps` all-idle steps.
    fn on_idle_gap(&mut self, _t0: Time, steps: Time, _m: usize) {
        self.ready_depth.record_n(0, steps);
        self.scheduled.record_n(0, steps);
        self.ready_series.record_n(0, steps);
        self.scheduled_series.record_n(0, steps);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_buckets_are_powers_of_two() {
        assert_eq!(LogHistogram::bucket(0), 0);
        assert_eq!(LogHistogram::bucket(1), 1);
        assert_eq!(LogHistogram::bucket(2), 2);
        assert_eq!(LogHistogram::bucket(3), 2);
        assert_eq!(LogHistogram::bucket(4), 3);
        assert_eq!(LogHistogram::bucket(u64::MAX), 64);
    }

    #[test]
    fn quantiles_bound_the_data_within_a_factor_two() {
        let mut h = LogHistogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.max(), 1000);
        assert!((h.mean() - 500.5).abs() < 1e-9);
        for (q, exact) in [(0.5, 500u64), (0.9, 900), (0.99, 990), (1.0, 1000)] {
            let est = h.quantile(q);
            assert!(est >= exact, "q={q}: {est} < exact {exact}");
            assert!(est < exact * 2, "q={q}: {est} >= 2x exact {exact}");
        }
        // Quantiles never exceed the observed max.
        assert_eq!(h.quantile(1.0), 1000);
    }

    #[test]
    fn merge_matches_single_stream_and_from_parts_roundtrips() {
        let mut single = LogHistogram::new();
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        for v in 0..500u64 {
            single.record(v * 3);
            if v % 2 == 0 {
                a.record(v * 3);
            } else {
                b.record(v * 3);
            }
        }
        a.merge(&b);
        assert_eq!(a.counts, single.counts);
        assert_eq!(a.count(), single.count());
        assert_eq!(a.max(), single.max());
        assert_eq!(a.p50(), single.p50());
        assert_eq!(a.p99(), single.p99());
        // from_parts on the raw pieces rebuilds the same histogram.
        let rebuilt = LogHistogram::from_parts(&single.counts, single.sum, single.max);
        assert_eq!(rebuilt.counts, single.counts);
        assert_eq!(rebuilt.count(), single.count());
        assert!((rebuilt.mean() - single.mean()).abs() < 1e-12);
    }

    #[test]
    fn quantile_handles_zeros_and_empty() {
        let mut h = LogHistogram::new();
        assert_eq!(h.p50(), 0);
        h.record_n(0, 10);
        h.record(8);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.quantile(1.0), 8);
    }

    #[test]
    fn series_coarsens_and_preserves_totals() {
        let mut s = TimeSeries::new(4);
        for v in 0..32u64 {
            s.record(v);
        }
        assert_eq!(s.len(), 32);
        // 32 steps in <= 4 buckets: scale reached 16.
        assert!(s.buckets.len() < 4);
        assert_eq!(s.scale(), 16);
        let total: u64 = s.buckets.iter().map(|&(sum, _)| sum).sum::<u64>() + s.cur_sum;
        assert_eq!(total, (0..32).sum::<u64>());
        // Max of the final bucket is the global max.
        assert_eq!(s.buckets().last().unwrap().1, 31);
    }

    #[test]
    fn series_record_n_matches_stepwise() {
        let mut a = TimeSeries::new(8);
        let mut b = TimeSeries::new(8);
        a.record_n(3, 100);
        a.record_n(0, 1_000_000);
        a.record(5);
        for _ in 0..100 {
            b.record(3);
        }
        for _ in 0..1_000_000 {
            b.record(0);
        }
        b.record(5);
        assert_eq!(a.buckets, b.buckets);
        assert_eq!(a.scale, b.scale);
        assert_eq!((a.cur_sum, a.cur_max, a.cur_n), (b.cur_sum, b.cur_max, b.cur_n));
    }

    #[test]
    fn run_histograms_batch_gap_matches_default_replay() {
        let mut batched = RunHistograms::new();
        batched.on_start(4, 1);
        batched.on_idle_gap(0, 10_000, 4);
        let mut stepwise = RunHistograms::new();
        stepwise.on_start(4, 1);
        for t in 0..10_000 {
            stepwise.on_step(t, StepStat { scheduled: 0, idle_procs: 4, ready_depth: 0 });
        }
        assert_eq!(batched.ready_depth.count(), stepwise.ready_depth.count());
        assert_eq!(batched.scheduled_series.buckets, stepwise.scheduled_series.buckets);
    }
}
