//! The online simulation loop.
//!
//! [`Engine::run`] drives an [`OnlineScheduler`] over an [`Instance`]:
//!
//! ```text
//! t = 0
//! loop:
//!   release jobs with r_i <= t, calling on_arrival for each
//!   scheduler selects <= m ready subjobs      (runs during step t+1)
//!   engine validates and applies the selection
//!   t += 1
//! until all jobs complete
//! ```
//!
//! Every selection is validated online (readiness, distinctness — capacity
//! is enforced by [`Selection`] itself), so scheduler bugs surface as
//! [`EngineError`]s at the offending step instead of as corrupt results.
//!
//! A run returns a [`RunReport`]: the recorded [`Schedule`] plus
//! [`FlowStats`] and the engine's internal [`Counters`], so callers no
//! longer recompute flow statistics ad hoc. Attach a custom
//! [`Probe`](crate::probe::Probe) with [`Engine::with_probe`] to observe
//! per-step events (tracing, custom instrumentation).

use crate::instance::Instance;
use crate::metrics::FlowStats;
use crate::probe::{Counters, NullProbe, Probe, StepStat};
use crate::schedule::Schedule;
use crate::scheduler::{OnlineScheduler, Selection, SimView};
use crate::state::SimState;
use flowtree_dag::{JobId, NodeId, Time};

/// Errors raised while driving a scheduler.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// The scheduler selected a subjob that is not ready (unreleased job,
    /// incomplete predecessor, or already-complete subjob).
    NotReady {
        /// Time of the offending selection.
        t: Time,
        /// Offending job.
        job: JobId,
        /// Offending node.
        node: NodeId,
    },
    /// The scheduler selected the same subjob twice in one step.
    DuplicateSelection {
        /// Time of the offending selection.
        t: Time,
        /// Offending job.
        job: JobId,
        /// Offending node.
        node: NodeId,
    },
    /// The simulation exceeded the safety horizon — the scheduler is
    /// stalling (e.g. selecting nothing while work remains).
    HorizonExceeded {
        /// The safety cap that was hit.
        horizon: Time,
    },
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::NotReady { t, job, node } => {
                write!(f, "t={t}: scheduler selected unready subjob {job}/{node}")
            }
            EngineError::DuplicateSelection { t, job, node } => {
                write!(f, "t={t}: scheduler selected {job}/{node} twice")
            }
            EngineError::HorizonExceeded { horizon } => {
                write!(f, "simulation exceeded safety horizon {horizon}")
            }
        }
    }
}

impl std::error::Error for EngineError {}

/// The result of a completed [`Engine::run`]: the recorded schedule plus the
/// metrics every caller used to recompute by hand.
///
/// Dereferences to its [`Schedule`], so schedule accessors (`horizon`,
/// `load`, `at`, `verify`, `completion_times`, …) work directly on the
/// report.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// The recorded feasible schedule.
    pub schedule: Schedule,
    /// Flow statistics of the completed schedule (what
    /// [`metrics::flow_stats`](crate::metrics::flow_stats) computes).
    pub stats: FlowStats,
    /// The engine's internal per-step counters.
    pub counters: Counters,
}

impl std::ops::Deref for RunReport {
    type Target = Schedule;

    fn deref(&self) -> &Schedule {
        &self.schedule
    }
}

/// Simulation driver. Construct with the machine size, optionally attach a
/// [`Probe`] via [`with_probe`](Self::with_probe), then [`run`](Self::run).
#[derive(Debug, Clone)]
pub struct Engine<P: Probe = NullProbe> {
    m: usize,
    /// Hard cap on simulated steps; `None` derives a generous default from
    /// the instance (every scheduler that never idles unnecessarily finishes
    /// well below it).
    max_horizon: Option<Time>,
    probe: P,
}

impl Engine<NullProbe> {
    /// An engine over `m` identical processors, with no instrumentation
    /// (the [`NullProbe`] hooks compile away).
    pub fn new(m: usize) -> Self {
        assert!(m >= 1, "need at least one processor");
        Engine { m, max_horizon: None, probe: NullProbe }
    }
}

impl<P: Probe> Engine<P> {
    /// Attach `probe`; its hooks fire at every step of subsequent runs.
    /// Pass `&mut probe` to keep ownership for inspection after the run.
    pub fn with_probe<Q: Probe>(self, probe: Q) -> Engine<Q> {
        Engine { m: self.m, max_horizon: self.max_horizon, probe }
    }

    /// Override the safety horizon (default: `last_release + total_work +
    /// max_span + 4`, enough for any scheduler that makes progress whenever
    /// possible — even one running a single subjob per busy step).
    pub fn with_max_horizon(mut self, horizon: Time) -> Self {
        self.max_horizon = Some(horizon);
        self
    }

    /// Machine size.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Drive `scheduler` over `instance` to completion. Returns the recorded
    /// schedule bundled with its flow statistics and step counters. The
    /// caller should usually also run [`Schedule::verify`] (via the report's
    /// deref).
    ///
    /// The loop allocates nothing per step: one [`Selection`] scratch buffer
    /// is cleared and reused, its picks are copied straight into the CSR
    /// [`Schedule`], releases are peeked one at a time, and selection
    /// validation uses per-run stamp arrays (O(picks) per step rather than
    /// O(picks²)). When no job is alive the engine fast-forwards to the next
    /// release, emitting a [`Probe::on_idle_gap`] that is observationally
    /// equivalent to stepwise idling; `select` is *not* called during such
    /// gaps (nothing is ready, so only an empty selection could be valid).
    pub fn run(
        &mut self,
        instance: &Instance,
        scheduler: &mut dyn OnlineScheduler,
    ) -> Result<RunReport, EngineError> {
        let clair = scheduler.clairvoyance();
        let horizon = self.max_horizon.unwrap_or_else(|| {
            instance.last_release() + instance.total_work() + instance.max_span() + 4
        });

        let mut state = SimState::new(instance);
        let mut schedule = Schedule::new(self.m);
        let mut counters = Counters::default();

        // Stamp arrays for O(1)-per-pick validation and completion firing.
        // `node_off` maps a job to its slice of the flat node array; a stamp
        // equal to `t + 1` marks "seen during step t" (stamps are strictly
        // increasing across steps, so no clearing between steps is needed).
        let mut node_off: Vec<usize> = Vec::with_capacity(instance.num_jobs() + 1);
        node_off.push(0);
        for spec in instance.jobs() {
            node_off.push(node_off.last().unwrap() + spec.graph.n());
        }
        let mut node_stamp: Vec<Time> = vec![0; *node_off.last().unwrap()];
        let mut job_stamp: Vec<Time> = vec![0; instance.num_jobs()];

        let mut sel = Selection::new(self.m);
        let mut t: Time = 0;

        counters.on_start(self.m, instance.num_jobs());
        self.probe.on_start(self.m, instance.num_jobs());

        while !state.all_done() {
            if t > horizon {
                return Err(EngineError::HorizonExceeded { horizon });
            }

            while let Some(job) = state.release_one(instance, t) {
                counters.on_release(t, job);
                self.probe.on_release(t, job);
                let view = SimView::new(instance, &state, self.m, clair);
                scheduler.on_arrival(t, job, &view);
            }

            // Idle-gap fast-forward: no alive job means nothing is ready and
            // no non-empty selection could be valid, so jump to the next
            // release. The gap is capped at `horizon + 1` so a release
            // beyond the safety cap still surfaces as `HorizonExceeded`
            // (with the same probe events the stepwise loop emitted first).
            if state.alive().is_empty() {
                let next = state
                    .next_release_time(instance)
                    .expect("no job alive and none pending, yet not all done");
                debug_assert!(next > t, "a release due now was not applied");
                let end = next.min(horizon + 1);
                let gap = end - t;
                counters.on_idle_gap(t, gap, self.m);
                self.probe.on_idle_gap(t, gap, self.m);
                schedule.push_empty_steps(gap);
                t = end;
                continue;
            }

            let ready_depth = state.total_ready();
            sel.clear();
            {
                let view = SimView::new(instance, &state, self.m, clair);
                scheduler.select(t, &view, &mut sel);
            }
            let picks = sel.picks();

            // Validate: in-bounds, pairwise distinct, ready. The stamp
            // catches duplicates in O(1) per pick; readiness in SimState is
            // only cleared on completion and completions apply after this
            // loop, so `is_ready` is checked against the start-of-step state
            // exactly as the pre-stamp quadratic scan did.
            let stamp = t + 1; // nonzero, unique per step
            for &(j, v) in picks {
                if j.index() >= instance.num_jobs() || v.index() >= instance.graph(j).n() {
                    return Err(EngineError::NotReady { t, job: j, node: v });
                }
                let slot = &mut node_stamp[node_off[j.index()] + v.index()];
                if *slot == stamp {
                    return Err(EngineError::DuplicateSelection { t, job: j, node: v });
                }
                *slot = stamp;
                if !state.is_ready(j, v) {
                    return Err(EngineError::NotReady { t, job: j, node: v });
                }
            }

            counters.on_select(t, picks);
            self.probe.on_select(t, picks);
            for &(j, v) in picks {
                self.probe.on_dispatch(t, j, v);
                state.complete(instance, j, v, t + 1);
            }

            let stat = StepStat {
                scheduled: picks.len(),
                idle_procs: self.m - picks.len(),
                ready_depth,
            };
            counters.on_step(t, stat);
            self.probe.on_step(t, stat);

            // A job completes at t+1 when this step ran its last subjob.
            // Fire once per job — the job stamp replaces the old quadratic
            // "first pick of this job?" rescan.
            let mut any_finished = false;
            for &(j, _) in picks {
                if state.unfinished(j) == 0 && job_stamp[j.index()] != stamp {
                    job_stamp[j.index()] = stamp;
                    any_finished = true;
                    counters.on_complete(t + 1, j);
                    self.probe.on_complete(t + 1, j);
                }
            }

            if any_finished {
                state.prune_alive();
            }
            schedule.extend_step(picks);
            t += 1;
        }

        counters.on_finish(t);
        self.probe.on_finish(t);

        // O(jobs), from the counters alone — no second pass over the
        // schedule, so an uninstrumented run costs the same as returning the
        // bare schedule did.
        let stats = counters.flow_stats();
        Ok(RunReport { schedule, stats, counters })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::JobSpec;
    use crate::scheduler::Clairvoyance;
    use flowtree_dag::builder::{chain, star};

    /// Greedy work-conserving scheduler: take ready subjobs from alive jobs
    /// in FIFO order until processors run out.
    struct Greedy;

    impl OnlineScheduler for Greedy {
        fn clairvoyance(&self) -> Clairvoyance {
            Clairvoyance::NonClairvoyant
        }
        fn select(&mut self, _t: Time, view: &SimView<'_>, sel: &mut Selection) {
            'outer: for &job in view.alive() {
                for &v in view.ready(job) {
                    if !sel.push(job, NodeId(v)) {
                        break 'outer;
                    }
                }
            }
        }
        fn name(&self) -> String {
            "greedy".into()
        }
    }

    /// A scheduler that always does nothing (to exercise the horizon guard).
    struct Lazy;
    impl OnlineScheduler for Lazy {
        fn clairvoyance(&self) -> Clairvoyance {
            Clairvoyance::NonClairvoyant
        }
        fn select(&mut self, _t: Time, _v: &SimView<'_>, _s: &mut Selection) {}
    }

    /// A buggy scheduler that selects node 1 of job 0 immediately (not ready
    /// at t=0 for a chain).
    struct Eager;
    impl OnlineScheduler for Eager {
        fn clairvoyance(&self) -> Clairvoyance {
            Clairvoyance::NonClairvoyant
        }
        fn select(&mut self, _t: Time, _v: &SimView<'_>, sel: &mut Selection) {
            sel.push(JobId(0), NodeId(1));
        }
    }

    /// A buggy scheduler that selects the same subjob twice.
    struct Doubler;
    impl OnlineScheduler for Doubler {
        fn clairvoyance(&self) -> Clairvoyance {
            Clairvoyance::NonClairvoyant
        }
        fn select(&mut self, _t: Time, view: &SimView<'_>, sel: &mut Selection) {
            if let Some(&job) = view.alive().first() {
                if let Some(&v) = view.ready(job).first() {
                    sel.push(job, NodeId(v));
                    sel.push(job, NodeId(v));
                }
            }
        }
    }

    fn two_job_instance() -> Instance {
        Instance::new(vec![
            JobSpec { graph: chain(3), release: 0 },
            JobSpec { graph: star(3), release: 1 },
        ])
    }

    #[test]
    fn greedy_completes_and_verifies() {
        let inst = two_job_instance();
        let s = Engine::new(2).run(&inst, &mut Greedy).unwrap();
        s.verify(&inst).unwrap();
        let c = s.completion_times(&inst);
        assert_eq!(c[0], Some(3)); // chain(3) released at 0 runs 1,2,3
        assert!(c[1].unwrap() >= 3); // star needs root + 2 steps of leaves on m=2
    }

    #[test]
    fn greedy_single_processor() {
        let inst = two_job_instance();
        let s = Engine::new(1).run(&inst, &mut Greedy).unwrap();
        s.verify(&inst).unwrap();
        assert_eq!(s.horizon(), 7); // 7 subjobs, one per step, no forced idles
    }

    #[test]
    fn many_processors_run_wide() {
        let inst = Instance::single(star(10));
        let s = Engine::new(16).run(&inst, &mut Greedy).unwrap();
        s.verify(&inst).unwrap();
        assert_eq!(s.horizon(), 2); // root, then all 10 leaves at once
        assert_eq!(s.load(2), 10);
    }

    #[test]
    fn idle_gap_before_late_arrival() {
        let inst = Instance::new(vec![
            JobSpec { graph: chain(1), release: 0 },
            JobSpec { graph: chain(1), release: 5 },
        ]);
        let s = Engine::new(4).run(&inst, &mut Greedy).unwrap();
        s.verify(&inst).unwrap();
        assert_eq!(s.horizon(), 6);
        for t in 2..=5 {
            assert_eq!(s.load(t), 0);
        }
    }

    #[test]
    fn fast_forward_emits_stepwise_equivalent_events() {
        // chain(1) at t=0, then nothing until t=7: steps 1..=6 are a
        // fast-forwarded gap. Counters and the JSONL trace must look exactly
        // like stepwise idling.
        let inst = Instance::new(vec![
            JobSpec { graph: chain(1), release: 0 },
            JobSpec { graph: chain(1), release: 7 },
        ]);
        let mut trace = crate::probe::JsonlTrace::new(Vec::new());
        let report = Engine::new(3).with_probe(&mut trace).run(&inst, &mut Greedy).unwrap();
        report.verify(&inst).unwrap();

        let c = &report.counters;
        assert_eq!(c.steps, 8);
        assert_eq!(c.dispatched, 2);
        assert_eq!(c.idle_slots, 2 + 6 * 3 + 2);
        assert_eq!(c.idle_steps, 8);

        let text = String::from_utf8(trace.finish().unwrap()).unwrap();
        // One step record per simulated step, gap steps included.
        let steps: Vec<&str> = text.lines().filter(|l| l.contains("\"ev\":\"step\"")).collect();
        assert_eq!(steps.len(), 8);
        assert!(text.contains(r#"{"ev":"step","t":3,"picks":[],"idle":3,"ready":0}"#));
        assert!(text.lines().last().unwrap().contains(r#""ev":"finish","horizon":8"#));
    }

    #[test]
    fn fast_forward_respects_horizon_cap() {
        // Second release far beyond the horizon: the gap must stop at the
        // cap and report HorizonExceeded, like the stepwise loop did.
        let inst = Instance::new(vec![
            JobSpec { graph: chain(1), release: 0 },
            JobSpec { graph: chain(1), release: 1_000 },
        ]);
        let err = Engine::new(2).with_max_horizon(10).run(&inst, &mut Greedy).unwrap_err();
        assert_eq!(err, EngineError::HorizonExceeded { horizon: 10 });
    }

    #[test]
    fn lazy_scheduler_hits_horizon() {
        let inst = two_job_instance();
        let err = Engine::new(2).with_max_horizon(50).run(&inst, &mut Lazy).unwrap_err();
        assert_eq!(err, EngineError::HorizonExceeded { horizon: 50 });
    }

    #[test]
    fn unready_selection_rejected() {
        let inst = two_job_instance();
        let err = Engine::new(2).run(&inst, &mut Eager).unwrap_err();
        assert_eq!(err, EngineError::NotReady { t: 0, job: JobId(0), node: NodeId(1) });
    }

    #[test]
    fn duplicate_selection_rejected() {
        let inst = two_job_instance();
        let err = Engine::new(2).run(&inst, &mut Doubler).unwrap_err();
        assert_eq!(err, EngineError::DuplicateSelection { t: 0, job: JobId(0), node: NodeId(0) });
    }

    #[test]
    fn arrival_hook_called_once_per_job() {
        struct Counting {
            arrivals: Vec<(Time, JobId)>,
        }
        impl OnlineScheduler for Counting {
            fn clairvoyance(&self) -> Clairvoyance {
                Clairvoyance::NonClairvoyant
            }
            fn on_arrival(&mut self, t: Time, job: JobId, _v: &SimView<'_>) {
                self.arrivals.push((t, job));
            }
            fn select(&mut self, _t: Time, view: &SimView<'_>, sel: &mut Selection) {
                for &job in view.alive() {
                    for &v in view.ready(job) {
                        if !sel.push(job, NodeId(v)) {
                            return;
                        }
                    }
                }
            }
        }
        let inst = two_job_instance();
        let mut s = Counting { arrivals: vec![] };
        Engine::new(2).run(&inst, &mut s).unwrap();
        assert_eq!(s.arrivals, vec![(0, JobId(0)), (1, JobId(1))]);
    }
}
