//! Runtime simulation state: which subjobs are ready, which jobs are alive.
//!
//! [`SimState`] tracks, per job, the remaining in-degree of every node, a
//! ready list (arbitrary order; removal is O(1) swap-remove) and a global
//! monotone **became-ready stamp** per node so schedulers can reconstruct
//! the true became-ready order when they need it (e.g.
//! `FIFO[became-ready]`). All mutation is O(1) amortized per (node, edge).

use crate::instance::Instance;
use flowtree_dag::{JobId, NodeId, Time};

const NOT_READY: u32 = u32::MAX;

/// Per-node runtime bookkeeping, kept together so the completion hot path
/// (indeg decrement → ready insert → stamp) touches one cache line per node
/// and a streaming admit costs one allocation, not four.
#[derive(Debug, Clone, Copy)]
struct NodeSlot {
    /// Remaining unfinished predecessors.
    indeg: u32,
    /// Position in the job's `ready` list (NOT_READY if absent).
    pos: u32,
    /// Global became-ready stamp (monotone across the whole simulation;
    /// 0 = never ready yet).
    seq: u64,
    /// Completion time (0 = not complete; valid times are >= 1).
    completion: Time,
}

/// Per-job runtime bookkeeping.
#[derive(Debug, Clone)]
struct JobState {
    /// Per-node slots, indexed by node id.
    nodes: Vec<NodeSlot>,
    /// Ready nodes (arbitrary order — removal swaps; use the slot `seq` for
    /// true became-ready order).
    ready: Vec<u32>,
    /// Number of unfinished nodes.
    unfinished: u32,
    /// Has the job been released to the scheduler yet?
    released: bool,
}

impl JobState {
    fn of(g: &flowtree_dag::JobGraph) -> Self {
        JobState {
            nodes: g
                .nodes()
                .map(|v| NodeSlot {
                    indeg: g.in_degree(v) as u32,
                    pos: NOT_READY,
                    seq: 0,
                    completion: 0,
                })
                .collect(),
            ready: Vec::new(),
            unfinished: g.n() as u32,
            released: false,
        }
    }
}

/// Mutable simulation state over an [`Instance`].
#[derive(Debug, Clone)]
pub struct SimState {
    jobs: Vec<JobState>,
    /// Released, unfinished jobs in arrival (JobId) order.
    alive: Vec<JobId>,
    /// Next job (by arrival order) not yet released.
    next_release: usize,
    finished_jobs: usize,
    /// Monotone became-ready counter (next stamp to hand out).
    next_seq: u64,
    /// Ready subjobs over all jobs, maintained incrementally (finished and
    /// unreleased jobs contribute zero, so this equals the sum over alive).
    total_ready: usize,
}

impl SimState {
    /// Initial state: nothing released, nothing complete.
    pub fn new(instance: &Instance) -> Self {
        let jobs = instance.jobs().iter().map(|spec| JobState::of(&spec.graph)).collect();
        SimState {
            jobs,
            alive: Vec::new(),
            next_release: 0,
            finished_jobs: 0,
            next_seq: 1,
            total_ready: 0,
        }
    }

    /// Register the next job appended to `instance` after this state was
    /// built (streaming admission): call once per
    /// [`Instance::push_job`](crate::Instance::push_job), in order. The new
    /// job starts unreleased; [`release_one`](Self::release_one) picks it up
    /// when its release time is due, exactly as for a batch-constructed
    /// instance.
    pub fn push_job(&mut self, instance: &Instance) {
        let spec = &instance.jobs()[self.jobs.len()];
        self.jobs.push(JobState::of(&spec.graph));
    }

    /// Release the next job by arrival order if its release time is `<= t`.
    /// Returns `None` when no release is due — the peek costs nothing, so
    /// the engine's loop pays no allocation on the (overwhelmingly common)
    /// no-release step. Roots of the released job become ready.
    pub fn release_one(&mut self, instance: &Instance, t: Time) -> Option<JobId> {
        if self.next_release >= instance.num_jobs()
            || instance.jobs()[self.next_release].release > t
        {
            return None;
        }
        let id = JobId(self.next_release as u32);
        let js = &mut self.jobs[self.next_release];
        js.released = true;
        for v in instance.graph(id).sources() {
            let slot = &mut js.nodes[v.index()];
            slot.pos = js.ready.len() as u32;
            slot.seq = self.next_seq;
            self.next_seq += 1;
            js.ready.push(v.0);
            self.total_ready += 1;
        }
        self.alive.push(id);
        self.next_release += 1;
        Some(id)
    }

    /// Release every job with `release <= t` that is not yet released.
    /// Returns the ids released now (in arrival order).
    pub fn release_due(&mut self, instance: &Instance, t: Time) -> Vec<JobId> {
        let mut out = Vec::new();
        while let Some(id) = self.release_one(instance, t) {
            out.push(id);
        }
        out
    }

    /// Release time of the next unreleased job (`None` when all released).
    /// Releases are sorted, so this is the earliest pending arrival.
    pub fn next_release_time(&self, instance: &Instance) -> Option<Time> {
        instance.jobs().get(self.next_release).map(|j| j.release)
    }

    /// Complete `(job, node)` at time `t` (it ran during step `t`): record
    /// the completion time, remove it from the ready list and enable any
    /// children whose last predecessor this was.
    ///
    /// Panics (debug) if the node was not ready.
    pub fn complete(&mut self, instance: &Instance, job: JobId, node: NodeId, t: Time) {
        let g = instance.graph(job);
        let js = &mut self.jobs[job.index()];
        let vi = node.index();
        debug_assert!(js.nodes[vi].pos != NOT_READY, "{job}/{node} was not ready");
        debug_assert_eq!(js.nodes[vi].completion, 0, "{job}/{node} completed twice");

        // Swap-remove from ready, fixing the moved element's position.
        let p = js.nodes[vi].pos as usize;
        js.ready.swap_remove(p);
        if p < js.ready.len() {
            js.nodes[js.ready[p] as usize].pos = p as u32;
        }
        js.nodes[vi].pos = NOT_READY;
        self.total_ready -= 1;

        js.nodes[vi].completion = t;
        js.unfinished -= 1;
        if js.unfinished == 0 {
            self.finished_jobs += 1;
        }
        for &c in g.children(node) {
            let slot = &mut js.nodes[c as usize];
            slot.indeg -= 1;
            if slot.indeg == 0 {
                slot.pos = js.ready.len() as u32;
                slot.seq = self.next_seq;
                self.next_seq += 1;
                js.ready.push(c);
                self.total_ready += 1;
            }
        }
    }

    /// Drop finished jobs from the alive list (kept in arrival order).
    pub fn prune_alive(&mut self) {
        let jobs = &self.jobs;
        self.alive.retain(|j| jobs[j.index()].unfinished > 0);
    }

    /// Released, unfinished jobs in arrival order (may briefly include jobs
    /// finished this step until [`prune_alive`](Self::prune_alive) runs).
    pub fn alive(&self) -> &[JobId] {
        &self.alive
    }

    /// Ready nodes of `job` (arbitrary order; pair with
    /// [`ready_seq`](Self::ready_seq) for the true became-ready order).
    pub fn ready(&self, job: JobId) -> &[u32] {
        &self.jobs[job.index()].ready
    }

    /// The global became-ready stamp of a node: smaller = became ready
    /// earlier (unique across the whole simulation; 0 = never ready).
    pub fn ready_seq(&self, job: JobId, node: NodeId) -> u64 {
        self.jobs[job.index()].nodes[node.index()].seq
    }

    /// Is a specific node ready?
    pub fn is_ready(&self, job: JobId, node: NodeId) -> bool {
        self.jobs[job.index()].nodes[node.index()].pos != NOT_READY
    }

    /// Completion time of a node (`None` if not complete).
    pub fn completion(&self, job: JobId, node: NodeId) -> Option<Time> {
        match self.jobs[job.index()].nodes[node.index()].completion {
            0 => None,
            t => Some(t),
        }
    }

    /// Number of unfinished subjobs of `job`.
    pub fn unfinished(&self, job: JobId) -> u32 {
        self.jobs[job.index()].unfinished
    }

    /// Has `job` been released?
    pub fn is_released(&self, job: JobId) -> bool {
        self.jobs[job.index()].released
    }

    /// Total ready subjobs over all alive jobs — an incrementally maintained
    /// counter, O(1) per call (it used to be an O(alive) per-step sum).
    pub fn total_ready(&self) -> usize {
        self.total_ready
    }

    /// Are all jobs finished?
    pub fn all_done(&self) -> bool {
        self.finished_jobs == self.jobs.len()
    }

    /// Index of the next unreleased job (== num_jobs when all released).
    pub fn next_release_index(&self) -> usize {
        self.next_release
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::{Instance, JobSpec};
    use flowtree_dag::builder::{chain, star};

    fn two_job_instance() -> Instance {
        Instance::new(vec![
            JobSpec { graph: chain(3), release: 0 },
            JobSpec { graph: star(2), release: 2 },
        ])
    }

    #[test]
    fn release_order_and_roots() {
        let inst = two_job_instance();
        let mut st = SimState::new(&inst);
        assert_eq!(st.release_due(&inst, 0), vec![JobId(0)]);
        assert_eq!(st.release_due(&inst, 1), vec![]);
        assert_eq!(st.release_due(&inst, 2), vec![JobId(1)]);
        assert_eq!(st.alive(), &[JobId(0), JobId(1)]);
        assert_eq!(st.ready(JobId(0)), &[0]);
        assert_eq!(st.ready(JobId(1)), &[0]);
        assert!(st.is_released(JobId(1)));
    }

    #[test]
    fn late_release_catches_up() {
        let inst = two_job_instance();
        let mut st = SimState::new(&inst);
        // Jump straight to t=5: both released at once, in order.
        assert_eq!(st.release_due(&inst, 5), vec![JobId(0), JobId(1)]);
    }

    #[test]
    fn completion_enables_children() {
        let inst = two_job_instance();
        let mut st = SimState::new(&inst);
        st.release_due(&inst, 0);
        st.complete(&inst, JobId(0), NodeId(0), 1);
        assert_eq!(st.ready(JobId(0)), &[1]);
        assert_eq!(st.completion(JobId(0), NodeId(0)), Some(1));
        assert_eq!(st.completion(JobId(0), NodeId(1)), None);
        assert_eq!(st.unfinished(JobId(0)), 2);
    }

    #[test]
    fn star_root_enables_all_leaves() {
        let inst = two_job_instance();
        let mut st = SimState::new(&inst);
        st.release_due(&inst, 2);
        st.complete(&inst, JobId(1), NodeId(0), 3);
        assert_eq!(st.ready(JobId(1)), &[1, 2]);
        assert!(st.is_ready(JobId(1), NodeId(1)));
        assert!(!st.is_ready(JobId(1), NodeId(0)));
    }

    #[test]
    fn finish_job_and_prune() {
        let inst = two_job_instance();
        let mut st = SimState::new(&inst);
        st.release_due(&inst, 0);
        st.complete(&inst, JobId(0), NodeId(0), 1);
        st.complete(&inst, JobId(0), NodeId(1), 2);
        st.complete(&inst, JobId(0), NodeId(2), 3);
        assert_eq!(st.unfinished(JobId(0)), 0);
        st.prune_alive();
        assert!(st.alive().is_empty());
        assert!(!st.all_done()); // job 1 not yet released/finished
        st.release_due(&inst, 2);
        st.complete(&inst, JobId(1), NodeId(0), 3);
        st.complete(&inst, JobId(1), NodeId(1), 4);
        st.complete(&inst, JobId(1), NodeId(2), 4);
        assert!(st.all_done());
    }

    #[test]
    fn ready_order_is_became_ready_order() {
        // Diamond-ish out-tree: root with 3 children; completing the root
        // makes children ready in child-list order.
        let inst = Instance::single(star(3));
        let mut st = SimState::new(&inst);
        st.release_due(&inst, 0);
        st.complete(&inst, JobId(0), NodeId(0), 1);
        assert_eq!(st.ready(JobId(0)), &[1, 2, 3]);
        // Complete the middle one; swap_remove moves 3 into its slot.
        st.complete(&inst, JobId(0), NodeId(2), 2);
        assert_eq!(st.ready(JobId(0)), &[1, 3]);
        assert!(st.is_ready(JobId(0), NodeId(3)));
    }

    #[test]
    fn total_ready_sums_alive_jobs() {
        let inst = two_job_instance();
        let mut st = SimState::new(&inst);
        st.release_due(&inst, 2);
        assert_eq!(st.total_ready(), 2);
    }

    /// The incremental counter must agree with a from-scratch sum over the
    /// alive jobs' ready lists after every kind of mutation.
    #[test]
    fn total_ready_counter_matches_recomputed_sum() {
        let recompute =
            |st: &SimState| -> usize { st.alive().iter().map(|&j| st.ready(j).len()).sum() };
        let inst = Instance::new(vec![
            JobSpec { graph: star(3), release: 0 },
            JobSpec { graph: chain(3), release: 1 },
        ]);
        let mut st = SimState::new(&inst);
        assert_eq!(st.total_ready(), 0);
        st.release_due(&inst, 0);
        assert_eq!(st.total_ready(), recompute(&st));
        st.complete(&inst, JobId(0), NodeId(0), 1); // star root: 3 leaves appear
        assert_eq!(st.total_ready(), recompute(&st));
        assert_eq!(st.total_ready(), 3);
        st.release_due(&inst, 1);
        assert_eq!(st.total_ready(), 4);
        st.complete(&inst, JobId(0), NodeId(1), 2);
        st.complete(&inst, JobId(0), NodeId(2), 2);
        st.complete(&inst, JobId(0), NodeId(3), 2);
        st.prune_alive();
        assert_eq!(st.total_ready(), recompute(&st));
        assert_eq!(st.total_ready(), 1); // chain head only
    }

    #[test]
    fn release_one_peeks_without_allocating() {
        let inst = two_job_instance();
        let mut st = SimState::new(&inst);
        assert_eq!(st.next_release_time(&inst), Some(0));
        assert_eq!(st.release_one(&inst, 0), Some(JobId(0)));
        assert_eq!(st.release_one(&inst, 0), None); // job 1 releases at 2
        assert_eq!(st.next_release_time(&inst), Some(2));
        assert_eq!(st.release_one(&inst, 2), Some(JobId(1)));
        assert_eq!(st.release_one(&inst, 99), None);
        assert_eq!(st.next_release_time(&inst), None);
    }

    #[test]
    fn pushed_jobs_behave_like_batch_construction() {
        let mut inst = Instance::empty();
        let mut st = SimState::new(&inst);
        assert!(st.all_done()); // vacuously: zero jobs
        inst.push_job(JobSpec { graph: chain(3), release: 0 });
        st.push_job(&inst);
        assert!(!st.all_done());
        assert_eq!(st.release_due(&inst, 0), vec![JobId(0)]);
        inst.push_job(JobSpec { graph: star(2), release: 2 });
        st.push_job(&inst);
        assert_eq!(st.next_release_time(&inst), Some(2));
        assert_eq!(st.release_due(&inst, 2), vec![JobId(1)]);
        assert_eq!(st.alive(), &[JobId(0), JobId(1)]);
        assert_eq!(st.total_ready(), 2);
    }

    #[test]
    #[should_panic]
    #[cfg(debug_assertions)]
    fn completing_unready_node_panics() {
        let inst = two_job_instance();
        let mut st = SimState::new(&inst);
        st.release_due(&inst, 0);
        st.complete(&inst, JobId(0), NodeId(2), 1); // chain tail not ready
    }
}
