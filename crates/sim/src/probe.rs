//! Per-step instrumentation hooks for the simulation engine.
//!
//! A [`Probe`] observes an [`Engine`](crate::Engine) run without influencing
//! it: the engine invokes the hooks at fixed points of its loop, in event
//! order ([`on_start`](Probe::on_start), then per step
//! [`on_release`](Probe::on_release)* → [`on_select`](Probe::on_select) →
//! [`on_dispatch`](Probe::on_dispatch)* → [`on_step`](Probe::on_step) →
//! [`on_complete`](Probe::on_complete)*, and finally
//! [`on_finish`](Probe::on_finish)). When the engine fast-forwards over a
//! stretch of forced-idle steps it emits a single
//! [`on_idle_gap`](Probe::on_idle_gap), whose *default* implementation
//! replays the per-step events verbatim — probes that don't override it
//! cannot tell a fast-forwarded gap from stepwise idling.
//!
//! The default probe is [`NullProbe`], whose empty inlined hooks compile
//! away entirely — an uninstrumented `Engine::new(m)` pays nothing. The
//! engine additionally maintains its own internal [`Counters`] (a handful of
//! integer updates per step), which every run returns in
//! [`RunReport::counters`](crate::RunReport::counters).
//!
//! Built-in probes:
//!
//! * [`Counters`] — O(1)-per-event aggregate counters (steps, idle slots,
//!   per-job flows, ready-depth high-water mark);
//! * [`JsonlTrace`] — streams every event as one JSON Lines record to any
//!   `io::Write`; [`crate::replay`] parses the stream back.

use crate::metrics::FlowStats;
use flowtree_dag::{JobGraph, JobId, NodeId, Time};
use std::io::Write;

/// Per-step summary handed to [`Probe::on_step`] after the step's picks have
/// been validated and applied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StepStat {
    /// Number of subjobs dispatched this step.
    pub scheduled: usize,
    /// Processors left idle this step (`m - scheduled`).
    pub idle_procs: usize,
    /// Number of ready subjobs the scheduler could choose from (measured
    /// before the selection was applied).
    pub ready_depth: usize,
}

/// Observer of one engine run. All hooks default to no-ops, so probes
/// implement only what they need.
///
/// `&mut P` also implements `Probe`, so a probe can be attached by mutable
/// reference and inspected after the run:
///
/// ```
/// use flowtree_sim::{Engine, Instance, probe::Counters};
/// # use flowtree_sim::{Selection, SimView, OnlineScheduler, Clairvoyance};
/// # use flowtree_dag::{builder::chain, NodeId, Time};
/// # struct Greedy;
/// # impl OnlineScheduler for Greedy {
/// #     fn clairvoyance(&self) -> Clairvoyance { Clairvoyance::NonClairvoyant }
/// #     fn select(&mut self, _t: Time, view: &SimView<'_>, sel: &mut Selection) {
/// #         for &job in view.alive() {
/// #             for &v in view.ready(job) {
/// #                 if !sel.push(job, NodeId(v)) { return; }
/// #             }
/// #         }
/// #     }
/// # }
/// let inst = Instance::single(chain(3));
/// let mut counters = Counters::default();
/// Engine::new(2).with_probe(&mut counters).run(&inst, &mut Greedy).unwrap();
/// assert_eq!(counters.steps, 3);
/// ```
pub trait Probe {
    /// The run is starting on `m` processors over `num_jobs` jobs.
    #[inline]
    fn on_start(&mut self, m: usize, num_jobs: usize) {
        let _ = (m, num_jobs);
    }

    /// `job` was admitted to a streaming [`Session`](crate::Session) at
    /// wall-clock time `t`, ahead of its release firing. Batch
    /// [`Engine`](crate::Engine) runs never emit this (the whole instance is
    /// known at `on_start`); streaming-capable probes use it to learn a
    /// job's graph incrementally (see
    /// [`LowerBound::streaming`](crate::monitor::LowerBound::streaming)).
    #[inline]
    fn on_admit(&mut self, t: Time, job: JobId, graph: &JobGraph) {
        let _ = (t, job, graph);
    }

    /// `job` was released at time `t`.
    #[inline]
    fn on_release(&mut self, t: Time, job: JobId) {
        let _ = (t, job);
    }

    /// The scheduler's (validated) selection for the step running during
    /// `(t, t+1]`.
    #[inline]
    fn on_select(&mut self, t: Time, picks: &[(JobId, NodeId)]) {
        let _ = (t, picks);
    }

    /// One subjob of the selection was dispatched (fires once per pick,
    /// after [`on_select`](Self::on_select)).
    #[inline]
    fn on_dispatch(&mut self, t: Time, job: JobId, node: NodeId) {
        let _ = (t, job, node);
    }

    /// `job` ran its last subjob during this step and completes at time `t`
    /// (its completion time `C_i`).
    #[inline]
    fn on_complete(&mut self, t: Time, job: JobId) {
        let _ = (t, job);
    }

    /// The step starting at `t` finished; `stat` summarizes it.
    #[inline]
    fn on_step(&mut self, t: Time, stat: StepStat) {
        let _ = (t, stat);
    }

    /// The engine fast-forwarded over `steps` consecutive idle steps
    /// starting at `t0` (no job alive, nothing ready, next release at
    /// `t0 + steps` or the horizon cap). The default implementation replays
    /// the gap as the stepwise events the non-fast-forwarding loop would
    /// have emitted — an empty [`on_select`](Self::on_select) followed by an
    /// all-idle [`on_step`](Self::on_step) per step — so existing probes
    /// (tracers included) observe a byte-identical event stream without
    /// opting in. Aggregating probes override this with an O(1) batch
    /// update (see [`Counters`]).
    #[inline]
    fn on_idle_gap(&mut self, t0: Time, steps: Time, m: usize) {
        for t in t0..t0 + steps {
            self.on_select(t, &[]);
            self.on_step(t, StepStat { scheduled: 0, idle_procs: m, ready_depth: 0 });
        }
    }

    /// The run completed after `horizon` steps (the schedule's horizon).
    #[inline]
    fn on_finish(&mut self, horizon: Time) {
        let _ = horizon;
    }
}

/// The do-nothing probe: every hook is an empty `#[inline]` default, so an
/// `Engine<NullProbe>` monomorphizes to the uninstrumented loop.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullProbe;

impl Probe for NullProbe {}

/// Forwarding impl so callers can keep ownership of their probe:
/// `engine.with_probe(&mut probe)`.
impl<P: Probe + ?Sized> Probe for &mut P {
    #[inline]
    fn on_start(&mut self, m: usize, num_jobs: usize) {
        (**self).on_start(m, num_jobs)
    }
    #[inline]
    fn on_admit(&mut self, t: Time, job: JobId, graph: &JobGraph) {
        (**self).on_admit(t, job, graph)
    }
    #[inline]
    fn on_release(&mut self, t: Time, job: JobId) {
        (**self).on_release(t, job)
    }
    #[inline]
    fn on_select(&mut self, t: Time, picks: &[(JobId, NodeId)]) {
        (**self).on_select(t, picks)
    }
    #[inline]
    fn on_dispatch(&mut self, t: Time, job: JobId, node: NodeId) {
        (**self).on_dispatch(t, job, node)
    }
    #[inline]
    fn on_complete(&mut self, t: Time, job: JobId) {
        (**self).on_complete(t, job)
    }
    #[inline]
    fn on_step(&mut self, t: Time, stat: StepStat) {
        (**self).on_step(t, stat)
    }
    #[inline]
    fn on_idle_gap(&mut self, t0: Time, steps: Time, m: usize) {
        (**self).on_idle_gap(t0, steps, m)
    }
    #[inline]
    fn on_finish(&mut self, horizon: Time) {
        (**self).on_finish(horizon)
    }
}

/// Probe composition: a tuple of probes is a probe, each hook forwarding to
/// every element in order. Composition nests (`((a, b), c)`) and stays fully
/// monomorphized — no dynamic dispatch, so a `(NullProbe, NullProbe)` still
/// compiles away. Crucially `on_idle_gap` forwards to each element's *own*
/// implementation, so an aggregating probe keeps its O(1) batch update even
/// when composed with a stepwise tracer.
macro_rules! impl_probe_tuple {
    ($(($($p:ident . $idx:tt),+);)*) => {$(
        impl<$($p: Probe),+> Probe for ($($p,)+) {
            #[inline]
            fn on_start(&mut self, m: usize, num_jobs: usize) {
                $(self.$idx.on_start(m, num_jobs);)+
            }
            #[inline]
            fn on_admit(&mut self, t: Time, job: JobId, graph: &JobGraph) {
                $(self.$idx.on_admit(t, job, graph);)+
            }
            #[inline]
            fn on_release(&mut self, t: Time, job: JobId) {
                $(self.$idx.on_release(t, job);)+
            }
            #[inline]
            fn on_select(&mut self, t: Time, picks: &[(JobId, NodeId)]) {
                $(self.$idx.on_select(t, picks);)+
            }
            #[inline]
            fn on_dispatch(&mut self, t: Time, job: JobId, node: NodeId) {
                $(self.$idx.on_dispatch(t, job, node);)+
            }
            #[inline]
            fn on_complete(&mut self, t: Time, job: JobId) {
                $(self.$idx.on_complete(t, job);)+
            }
            #[inline]
            fn on_step(&mut self, t: Time, stat: StepStat) {
                $(self.$idx.on_step(t, stat);)+
            }
            #[inline]
            fn on_idle_gap(&mut self, t0: Time, steps: Time, m: usize) {
                $(self.$idx.on_idle_gap(t0, steps, m);)+
            }
            #[inline]
            fn on_finish(&mut self, horizon: Time) {
                $(self.$idx.on_finish(horizon);)+
            }
        }
    )*};
}

impl_probe_tuple! {
    (A.0, B.1);
    (A.0, B.1, C.2);
    (A.0, B.1, C.2, D.3);
}

/// Aggregate run counters: O(1) integer updates per event.
///
/// The engine maintains one internally for every run (returned in
/// [`RunReport::counters`](crate::RunReport::counters)); it can also be
/// attached as an explicit probe.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Counters {
    /// Machine size of the observed run.
    pub m: usize,
    /// Steps simulated (== the schedule's horizon).
    pub steps: u64,
    /// Subjobs dispatched in total (== total work on completion).
    pub dispatched: u64,
    /// Idle processor-slots summed over all steps.
    pub idle_slots: u64,
    /// Steps with at least one idle processor.
    pub idle_steps: u64,
    /// High-water mark of the ready pool (max subjobs simultaneously ready).
    pub max_ready_depth: usize,
    /// Per-job release times, indexed by job id (`None` until released).
    pub releases: Vec<Option<Time>>,
    /// Per-job completion times, indexed by job id (`None` until complete).
    pub completions: Vec<Option<Time>>,
}

impl Counters {
    /// Per-job flow `F_i = C_i - r_i`; `None` for jobs not yet complete.
    pub fn flows(&self) -> Vec<Option<Time>> {
        self.completions
            .iter()
            .zip(&self.releases)
            .map(|(c, r)| Some(c.as_ref()? - r.as_ref()?))
            .collect()
    }

    /// Maximum flow over completed jobs (`None` when no job completed).
    pub fn max_flow(&self) -> Option<Time> {
        self.flows().into_iter().flatten().max()
    }

    /// Fraction of processor-slots busy over the simulated steps.
    pub fn utilization(&self) -> f64 {
        let total = self.steps * self.m as u64;
        if total == 0 {
            0.0
        } else {
            (total - self.idle_slots) as f64 / total as f64
        }
    }

    /// [`FlowStats`] of a completed run, derived from the counters alone in
    /// O(jobs) — no pass over the schedule. Agrees exactly with
    /// [`metrics::flow_stats`](crate::metrics::flow_stats) on any
    /// engine-produced run: the engine stops the moment the last job
    /// completes, so `steps == makespan`, and `idle_steps`/`idle_slots`
    /// already cover exactly the window `[1, makespan]` that `flow_stats`
    /// scans.
    ///
    /// Panics if some job never completed, mirroring `flow_stats` on a
    /// partial schedule.
    pub fn flow_stats(&self) -> FlowStats {
        let mut flows = Vec::with_capacity(self.completions.len());
        let mut makespan = 0;
        for (id, (c, r)) in self.completions.iter().zip(&self.releases).enumerate() {
            let c = c.unwrap_or_else(|| panic!("job {id} never scheduled"));
            let r = r.unwrap_or_else(|| panic!("job {id} completed without a release"));
            assert!(c > r, "job {id} completes at {c} before its release {r}");
            flows.push(c - r);
            makespan = makespan.max(c);
        }
        let max_flow = flows.iter().copied().max().unwrap_or(0);
        let mean_flow = if flows.is_empty() {
            0.0
        } else {
            flows.iter().sum::<Time>() as f64 / flows.len() as f64
        };
        FlowStats {
            flows,
            max_flow,
            mean_flow,
            makespan,
            utilization: self.utilization(),
            idle_steps: self.idle_steps,
        }
    }
}

impl Probe for Counters {
    fn on_start(&mut self, m: usize, num_jobs: usize) {
        *self = Counters {
            m,
            releases: vec![None; num_jobs],
            completions: vec![None; num_jobs],
            ..Counters::default()
        };
    }

    fn on_release(&mut self, t: Time, job: JobId) {
        // Streaming sessions start with zero jobs and admit as they go; jobs
        // release in id order, so growing to `index + 1` here leaves the
        // vectors identical to the batch-presized ones once all jobs release.
        if job.index() >= self.releases.len() {
            self.releases.resize(job.index() + 1, None);
            self.completions.resize(job.index() + 1, None);
        }
        self.releases[job.index()] = Some(t);
    }

    fn on_complete(&mut self, t: Time, job: JobId) {
        self.completions[job.index()] = Some(t);
    }

    fn on_step(&mut self, _t: Time, stat: StepStat) {
        self.steps += 1;
        self.dispatched += stat.scheduled as u64;
        self.idle_slots += stat.idle_procs as u64;
        if stat.idle_procs > 0 {
            self.idle_steps += 1;
        }
        self.max_ready_depth = self.max_ready_depth.max(stat.ready_depth);
    }

    /// O(1) batch form of `steps` all-idle [`on_step`](Probe::on_step)s —
    /// the whole point of the engine's idle-gap fast-forward.
    fn on_idle_gap(&mut self, _t0: Time, steps: Time, m: usize) {
        self.steps += steps;
        self.idle_slots += steps * m as u64;
        if m > 0 {
            self.idle_steps += steps;
        }
    }
}

/// Streams every probe event as one JSON Lines record.
///
/// Record shapes (one per line, in event order):
///
/// ```text
/// {"ev":"start","m":2,"jobs":3}
/// {"ev":"release","t":0,"job":1}
/// {"ev":"step","t":0,"picks":[[1,0],[0,2]],"idle":0,"ready":4}
/// {"ev":"complete","t":3,"job":1}
/// {"ev":"finish","horizon":7}
/// ```
///
/// `picks` entries are `[job, node]` pairs. The per-pick
/// [`on_dispatch`](Probe::on_dispatch) events are folded into the `step`
/// record (they duplicate `picks`), keeping the stream one line per step.
/// [`crate::replay`] parses this format back into events, a
/// [`Schedule`](crate::Schedule), and per-job flows.
///
/// Write errors are sticky: the first error stops further output and is
/// surfaced by [`finish`](Self::finish) (or swallowed on drop, matching the
/// usual buffered-writer contract).
#[derive(Debug)]
pub struct JsonlTrace<W: Write> {
    out: W,
    /// The current step's picks, formatted as a JSON array; filled by
    /// `on_select`, consumed by `on_step` (which owns the step record).
    picks_json: String,
    compact_idle: bool,
    error: Option<std::io::Error>,
}

impl<W: Write> JsonlTrace<W> {
    /// Trace into `out`. Wrap files in a `BufWriter`; the trace writes one
    /// small record per event.
    pub fn new(out: W) -> Self {
        JsonlTrace {
            out,
            picks_json: String::new(),
            compact_idle: false,
            error: None,
        }
    }

    /// Emit fast-forwarded idle gaps as a single
    /// `{"ev":"idle","t0":…,"steps":…}` record instead of one all-idle
    /// `step` line per idle step. Off by default (the default stream is
    /// byte-identical to the pre-fast-forward format); turn on for sparse
    /// instances where gap replay dominates the trace size. [`crate::replay`]
    /// accepts both forms.
    pub fn compact_idle(mut self, on: bool) -> Self {
        self.compact_idle = on;
        self
    }

    /// Flush and return the writer, surfacing any write error encountered
    /// during the run.
    pub fn finish(mut self) -> std::io::Result<W> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        self.out.flush()?;
        Ok(self.out)
    }

    fn record(&mut self, line: std::fmt::Arguments<'_>) {
        if self.error.is_some() {
            return;
        }
        if let Err(e) = self.out.write_fmt(format_args!("{line}\n")) {
            self.error = Some(e);
        }
    }
}

impl<W: Write> Probe for JsonlTrace<W> {
    fn on_start(&mut self, m: usize, num_jobs: usize) {
        self.record(format_args!(r#"{{"ev":"start","m":{m},"jobs":{num_jobs}}}"#));
    }

    fn on_release(&mut self, t: Time, job: JobId) {
        self.record(format_args!(r#"{{"ev":"release","t":{t},"job":{}}}"#, job.0));
    }

    fn on_select(&mut self, _t: Time, picks: &[(JobId, NodeId)]) {
        use std::fmt::Write as _;
        self.picks_json.clear();
        self.picks_json.push('[');
        for (i, (j, v)) in picks.iter().enumerate() {
            if i > 0 {
                self.picks_json.push(',');
            }
            let _ = write!(self.picks_json, "[{},{}]", j.0, v.0);
        }
        self.picks_json.push(']');
    }

    fn on_step(&mut self, t: Time, stat: StepStat) {
        let picks = std::mem::take(&mut self.picks_json);
        self.record(format_args!(
            r#"{{"ev":"step","t":{t},"picks":{picks},"idle":{},"ready":{}}}"#,
            stat.idle_procs, stat.ready_depth
        ));
    }

    fn on_complete(&mut self, t: Time, job: JobId) {
        self.record(format_args!(r#"{{"ev":"complete","t":{t},"job":{}}}"#, job.0));
    }

    fn on_idle_gap(&mut self, t0: Time, steps: Time, m: usize) {
        if self.compact_idle {
            self.record(format_args!(r#"{{"ev":"idle","t0":{t0},"steps":{steps}}}"#));
        } else {
            // Replay the gap stepwise (the default-impl behavior) so the
            // stream stays byte-identical to the non-fast-forwarding loop.
            for t in t0..t0 + steps {
                self.on_select(t, &[]);
                self.on_step(t, StepStat { scheduled: 0, idle_procs: m, ready_depth: 0 });
            }
        }
    }

    fn on_finish(&mut self, horizon: Time) {
        self.record(format_args!(r#"{{"ev":"finish","horizon":{horizon}}}"#));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Records the order hooks fire in, to pin tuple forwarding semantics.
    #[derive(Default)]
    struct Log(Vec<String>);

    impl Probe for Log {
        fn on_start(&mut self, m: usize, num_jobs: usize) {
            self.0.push(format!("start {m} {num_jobs}"));
        }
        fn on_step(&mut self, t: Time, stat: StepStat) {
            self.0.push(format!("step {t} {}", stat.scheduled));
        }
        fn on_idle_gap(&mut self, t0: Time, steps: Time, _m: usize) {
            self.0.push(format!("gap {t0}+{steps}"));
        }
    }

    #[test]
    fn tuple_probe_forwards_to_every_element_in_order() {
        let mut pair = (Log::default(), Log::default());
        pair.on_start(4, 2);
        pair.on_step(0, StepStat { scheduled: 3, idle_procs: 1, ready_depth: 5 });
        pair.on_idle_gap(1, 10, 4);
        assert_eq!(pair.0 .0, vec!["start 4 2", "step 0 3", "gap 1+10"]);
        assert_eq!(pair.0 .0, pair.1 .0);

        let mut triple = (Log::default(), Counters::default(), Log::default());
        triple.on_start(2, 1);
        triple.on_idle_gap(0, 7, 2);
        // Each element gets its *own* on_idle_gap: the batching Counters
        // sees one O(1) update, not a stepwise replay.
        assert_eq!(triple.1.steps, 7);
        assert_eq!(triple.1.idle_slots, 14);
        assert_eq!(triple.0 .0, vec!["start 2 1", "gap 0+7"]);
    }

    #[test]
    fn tuple_of_counters_matches_single_counters() {
        let mut single = Counters::default();
        let mut pair = (Counters::default(), NullProbe);
        for p in [&mut single, &mut pair.0] {
            p.on_start(2, 1);
            p.on_release(0, JobId(0));
            p.on_step(0, StepStat { scheduled: 2, idle_procs: 0, ready_depth: 3 });
            p.on_complete(1, JobId(0));
            p.on_finish(1);
        }
        assert_eq!(single, pair.0);
    }

    #[test]
    fn compact_idle_emits_one_record_per_gap() {
        let mut trace = JsonlTrace::new(Vec::new()).compact_idle(true);
        trace.on_start(3, 1);
        trace.on_idle_gap(5, 1000, 3);
        trace.on_finish(1005);
        let text = String::from_utf8(trace.finish().unwrap()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(
            lines,
            vec![
                r#"{"ev":"start","m":3,"jobs":1}"#,
                r#"{"ev":"idle","t0":5,"steps":1000}"#,
                r#"{"ev":"finish","horizon":1005}"#,
            ]
        );
    }
}
