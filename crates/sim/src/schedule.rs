//! Recorded schedules and the independent feasibility checker.
//!
//! A [`Schedule`] stores, for every time step `t >= 1`, the subjobs run
//! during that step (the paper's `S(t)`). [`Schedule::verify`] re-checks the
//! four feasibility conditions of Section 3 from scratch, independently of
//! the engine's online validation — every test that produces a schedule also
//! verifies it, so engine and checker would both have to be wrong in the same
//! way for an infeasible schedule to slip through.

use crate::instance::Instance;
use flowtree_dag::{JobId, NodeId, Time};

/// A complete recorded schedule on `m` processors.
///
/// Serializes as `{ m, steps }`; deserialization performs only structural
/// checks (per-step capacity) — run [`verify`](Self::verify) against the
/// instance to validate a loaded schedule fully.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule {
    m: usize,
    /// `steps[i]` = subjobs run during time step `i + 1`.
    steps: Vec<Vec<(JobId, NodeId)>>,
}

serde::impl_serde_struct!(Schedule { m, steps });

/// Violations reported by [`Schedule::verify`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FeasibilityError {
    /// More than `m` subjobs in one step.
    CapacityExceeded {
        /// The offending time step.
        t: Time,
        /// Number of subjobs scheduled there.
        count: usize,
        /// Machine capacity.
        m: usize,
    },
    /// A subjob scheduled more than once.
    DuplicateRun(JobId, NodeId),
    /// A subjob never scheduled.
    MissingRun(JobId, NodeId),
    /// A subjob ran although a predecessor had not completed strictly before.
    PrecedenceViolation {
        /// The job containing the violated edge.
        job: JobId,
        /// Predecessor node.
        pred: NodeId,
        /// Successor node.
        succ: NodeId,
    },
    /// A subjob completed at `t <= r_i`, i.e. started before its release.
    ReleaseViolation(JobId, NodeId),
    /// A referenced job id or node id does not exist in the instance.
    UnknownSubjob(JobId, NodeId),
}

impl std::fmt::Display for FeasibilityError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FeasibilityError::CapacityExceeded { t, count, m } => {
                write!(f, "step {t}: {count} subjobs on {m} processors")
            }
            FeasibilityError::DuplicateRun(j, v) => write!(f, "{j}/{v} scheduled twice"),
            FeasibilityError::MissingRun(j, v) => write!(f, "{j}/{v} never scheduled"),
            FeasibilityError::PrecedenceViolation { job, pred, succ } => {
                write!(f, "{job}: edge {pred} -> {succ} violated")
            }
            FeasibilityError::ReleaseViolation(j, v) => {
                write!(f, "{j}/{v} ran before the job's release")
            }
            FeasibilityError::UnknownSubjob(j, v) => write!(f, "unknown subjob {j}/{v}"),
        }
    }
}

impl std::error::Error for FeasibilityError {}

impl Schedule {
    /// An empty schedule on `m` processors.
    pub fn new(m: usize) -> Self {
        assert!(m >= 1, "need at least one processor");
        Schedule { m, steps: Vec::new() }
    }

    /// Machine capacity.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Record that `picks` run during step `t = horizon + 1` (appended).
    pub fn push_step(&mut self, picks: Vec<(JobId, NodeId)>) {
        debug_assert!(picks.len() <= self.m);
        self.steps.push(picks);
    }

    /// Replace the contents of step `t` (1-based; must be within the
    /// current horizon). Used by schedule *constructors* (e.g. the
    /// Section 4 witness schedule) that fill non-contiguous windows.
    pub fn replace_step(&mut self, t: Time, picks: Vec<(JobId, NodeId)>) {
        assert!(t >= 1 && t <= self.steps.len() as Time, "step {t} out of range");
        debug_assert!(picks.len() <= self.m);
        self.steps[(t - 1) as usize] = picks;
    }

    /// Largest time step with any activity (0 if empty). Trailing empty
    /// steps are retained (they represent idle time before later arrivals).
    pub fn horizon(&self) -> Time {
        self.steps.len() as Time
    }

    /// Subjobs run during step `t` (1-based, per the paper's convention).
    /// Empty for `t` beyond the horizon.
    pub fn at(&self, t: Time) -> &[(JobId, NodeId)] {
        if t == 0 || t > self.steps.len() as Time {
            &[]
        } else {
            &self.steps[(t - 1) as usize]
        }
    }

    /// Number of subjobs run during step `t`.
    pub fn load(&self, t: Time) -> usize {
        self.at(t).len()
    }

    /// Iterate `(t, &picks)` over all steps.
    pub fn iter(&self) -> impl Iterator<Item = (Time, &[(JobId, NodeId)])> + '_ {
        self.steps.iter().enumerate().map(|(i, p)| ((i + 1) as Time, p.as_slice()))
    }

    /// Completion time `C_i` of each job: the max step in which one of its
    /// subjobs ran. Returns `None` for a job with no scheduled subjob.
    pub fn completion_times(&self, instance: &Instance) -> Vec<Option<Time>> {
        let mut c = vec![None; instance.num_jobs()];
        for (t, picks) in self.iter() {
            for &(j, _) in picks {
                let slot = &mut c[j.index()];
                *slot = Some(slot.map_or(t, |old: Time| old.max(t)));
            }
        }
        c
    }

    /// Check the four feasibility conditions of Section 3 against `instance`.
    pub fn verify(&self, instance: &Instance) -> Result<(), FeasibilityError> {
        // Completion time per (job, node); detects duplicates.
        let mut completion: Vec<Vec<Time>> =
            instance.jobs().iter().map(|j| vec![0; j.graph.n()]).collect();

        for (t, picks) in self.iter() {
            if picks.len() > self.m {
                return Err(FeasibilityError::CapacityExceeded {
                    t,
                    count: picks.len(),
                    m: self.m,
                });
            }
            for &(j, v) in picks {
                if j.index() >= instance.num_jobs() || v.index() >= instance.graph(j).n() {
                    return Err(FeasibilityError::UnknownSubjob(j, v));
                }
                let slot = &mut completion[j.index()][v.index()];
                if *slot != 0 {
                    return Err(FeasibilityError::DuplicateRun(j, v));
                }
                *slot = t;
                // Subjob runs during (t-1, t]; needs t - 1 >= r_i, i.e. the
                // paper's "if j in S(t) then t > r_i".
                if t <= instance.release(j) {
                    return Err(FeasibilityError::ReleaseViolation(j, v));
                }
            }
        }

        for (id, spec) in instance.iter() {
            let comp = &completion[id.index()];
            for v in spec.graph.nodes() {
                if comp[v.index()] == 0 {
                    return Err(FeasibilityError::MissingRun(id, v));
                }
            }
            for (u, v) in spec.graph.edges() {
                if comp[u as usize] >= comp[v as usize] {
                    return Err(FeasibilityError::PrecedenceViolation {
                        job: id,
                        pred: NodeId(u),
                        succ: NodeId(v),
                    });
                }
            }
        }
        Ok(())
    }

    /// Restrict to the subjobs of jobs released at or before `r`: the
    /// paper's `S_i` (Section 6) when `r = r_i`. The result is a partial
    /// schedule (verify() would report missing runs for excluded jobs).
    pub fn restrict_to_released_by(&self, instance: &Instance, r: Time) -> Schedule {
        let steps = self
            .steps
            .iter()
            .map(|picks| picks.iter().copied().filter(|&(j, _)| instance.release(j) <= r).collect())
            .collect();
        Schedule { m: self.m, steps }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::{Instance, JobSpec};
    use flowtree_dag::builder::{chain, star};

    fn inst() -> Instance {
        Instance::new(vec![
            JobSpec { graph: chain(2), release: 0 },
            JobSpec { graph: star(2), release: 1 },
        ])
    }

    fn ok_schedule() -> Schedule {
        let mut s = Schedule::new(2);
        // t=1: chain head. t=2: chain tail + star root. t=3: both leaves.
        s.push_step(vec![(JobId(0), NodeId(0))]);
        s.push_step(vec![(JobId(0), NodeId(1)), (JobId(1), NodeId(0))]);
        s.push_step(vec![(JobId(1), NodeId(1)), (JobId(1), NodeId(2))]);
        s
    }

    #[test]
    fn valid_schedule_passes() {
        assert_eq!(ok_schedule().verify(&inst()), Ok(()));
    }

    #[test]
    fn completion_times_and_horizon() {
        let s = ok_schedule();
        assert_eq!(s.horizon(), 3);
        assert_eq!(s.completion_times(&inst()), vec![Some(2), Some(3)]);
        assert_eq!(s.load(2), 2);
        assert_eq!(s.at(0), &[]);
        assert_eq!(s.at(99), &[]);
    }

    #[test]
    fn capacity_violation_detected() {
        let mut s = Schedule::new(1);
        s.steps.push(vec![(JobId(0), NodeId(0)), (JobId(1), NodeId(0))]);
        assert!(matches!(
            s.verify(&inst()),
            Err(FeasibilityError::CapacityExceeded { t: 1, count: 2, m: 1 })
        ));
    }

    #[test]
    fn duplicate_detected() {
        let mut s = ok_schedule();
        s.push_step(vec![(JobId(0), NodeId(0))]);
        assert_eq!(s.verify(&inst()), Err(FeasibilityError::DuplicateRun(JobId(0), NodeId(0))));
    }

    #[test]
    fn missing_detected() {
        let mut s = Schedule::new(2);
        s.push_step(vec![(JobId(0), NodeId(0))]);
        let err = s.verify(&inst()).unwrap_err();
        assert!(matches!(err, FeasibilityError::MissingRun(_, _)));
    }

    #[test]
    fn precedence_violation_detected() {
        let mut s = Schedule::new(2);
        // Run chain tail before head.
        s.push_step(vec![(JobId(0), NodeId(1))]);
        s.push_step(vec![(JobId(0), NodeId(0)), (JobId(1), NodeId(0))]);
        s.push_step(vec![(JobId(1), NodeId(1)), (JobId(1), NodeId(2))]);
        assert_eq!(
            s.verify(&inst()),
            Err(FeasibilityError::PrecedenceViolation {
                job: JobId(0),
                pred: NodeId(0),
                succ: NodeId(1),
            })
        );
    }

    #[test]
    fn simultaneous_pred_succ_is_violation() {
        let mut s = Schedule::new(2);
        s.push_step(vec![(JobId(0), NodeId(0)), (JobId(0), NodeId(1))]);
        s.push_step(vec![(JobId(1), NodeId(0))]);
        s.push_step(vec![(JobId(1), NodeId(1)), (JobId(1), NodeId(2))]);
        assert!(matches!(s.verify(&inst()), Err(FeasibilityError::PrecedenceViolation { .. })));
    }

    #[test]
    fn release_violation_detected() {
        let mut s = Schedule::new(2);
        // Star (released at 1) cannot complete a subjob at t=1.
        s.push_step(vec![(JobId(0), NodeId(0)), (JobId(1), NodeId(0))]);
        let err = s.verify(&inst()).unwrap_err();
        assert_eq!(err, FeasibilityError::ReleaseViolation(JobId(1), NodeId(0)));
    }

    #[test]
    fn unknown_subjob_detected() {
        let mut s = Schedule::new(2);
        s.push_step(vec![(JobId(0), NodeId(7))]);
        assert_eq!(s.verify(&inst()), Err(FeasibilityError::UnknownSubjob(JobId(0), NodeId(7))));
    }

    #[test]
    fn serde_roundtrip() {
        let s = ok_schedule();
        let json = serde_json::to_string(&s).unwrap();
        let back: Schedule = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
        back.verify(&inst()).unwrap();
    }

    #[test]
    fn restriction_filters_late_jobs() {
        let s = ok_schedule();
        let r = s.restrict_to_released_by(&inst(), 0);
        assert_eq!(r.load(2), 1); // star root filtered out
        assert_eq!(r.load(3), 0);
        assert_eq!(r.at(2), &[(JobId(0), NodeId(1))]);
    }
}
