//! Recorded schedules and the independent feasibility checker.
//!
//! A [`Schedule`] stores, for every time step `t >= 1`, the subjobs run
//! during that step (the paper's `S(t)`). [`Schedule::verify`] re-checks the
//! four feasibility conditions of Section 3 from scratch, independently of
//! the engine's online validation — every test that produces a schedule also
//! verifies it, so engine and checker would both have to be wrong in the same
//! way for an infeasible schedule to slip through.
//!
//! Internally the steps are stored in CSR (compressed sparse row) form: one
//! flat pick array plus per-step offsets. Recording a step is a single
//! `extend` + one offset push (no per-step `Vec`), an empty step costs one
//! 4-byte offset, and iteration walks a contiguous buffer. The serde wire
//! format is unchanged from the nested-`Vec` era: `{ m, steps }` with
//! `steps` a list of `[job, node]` pair lists.

use crate::instance::Instance;
use flowtree_dag::{JobId, NodeId, Time};

/// A complete recorded schedule on `m` processors.
///
/// Serializes as `{ m, steps }`; deserialization performs only structural
/// checks (per-step capacity) — run [`verify`](Self::verify) against the
/// instance to validate a loaded schedule fully.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule {
    m: usize,
    /// All picks, flat; step `t`'s picks are
    /// `picks[offsets[t-1] .. offsets[t]]`.
    picks: Vec<(JobId, NodeId)>,
    /// CSR offsets: `offsets[0] == 0`, `offsets.len() == horizon + 1`,
    /// monotone non-decreasing.
    offsets: Vec<u32>,
}

impl serde::Serialize for Schedule {
    fn to_value(&self) -> serde::Value {
        let steps: Vec<serde::Value> =
            self.iter().map(|(_, picks)| serde::Serialize::to_value(&picks)).collect();
        serde::Value::Object(vec![
            ("m".to_string(), serde::Value::UInt(self.m as u64)),
            ("steps".to_string(), serde::Value::Array(steps)),
        ])
    }
}

impl serde::Deserialize for Schedule {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let m = <usize as serde::Deserialize>::from_value(
            v.get("m").ok_or_else(|| serde::Error::missing_field("m"))?,
        )?;
        if m == 0 {
            return Err(serde::Error::custom("schedule has m = 0 processors"));
        }
        let steps: Vec<Vec<(JobId, NodeId)>> = serde::Deserialize::from_value(
            v.get("steps").ok_or_else(|| serde::Error::missing_field("steps"))?,
        )?;
        let mut s = Schedule::new(m);
        for (i, picks) in steps.iter().enumerate() {
            if picks.len() > m {
                return Err(serde::Error::custom(format!(
                    "step {}: {} subjobs on {m} processors",
                    i + 1,
                    picks.len()
                )));
            }
            s.extend_step(picks);
        }
        Ok(s)
    }
}

/// Violations reported by [`Schedule::verify`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FeasibilityError {
    /// More than `m` subjobs in one step.
    CapacityExceeded {
        /// The offending time step.
        t: Time,
        /// Number of subjobs scheduled there.
        count: usize,
        /// Machine capacity.
        m: usize,
    },
    /// A subjob scheduled more than once.
    DuplicateRun(JobId, NodeId),
    /// A subjob never scheduled.
    MissingRun(JobId, NodeId),
    /// A subjob ran although a predecessor had not completed strictly before.
    PrecedenceViolation {
        /// The job containing the violated edge.
        job: JobId,
        /// Predecessor node.
        pred: NodeId,
        /// Successor node.
        succ: NodeId,
    },
    /// A subjob completed at `t <= r_i`, i.e. started before its release.
    ReleaseViolation(JobId, NodeId),
    /// A referenced job id or node id does not exist in the instance.
    UnknownSubjob(JobId, NodeId),
}

impl std::fmt::Display for FeasibilityError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FeasibilityError::CapacityExceeded { t, count, m } => {
                write!(f, "step {t}: {count} subjobs on {m} processors")
            }
            FeasibilityError::DuplicateRun(j, v) => write!(f, "{j}/{v} scheduled twice"),
            FeasibilityError::MissingRun(j, v) => write!(f, "{j}/{v} never scheduled"),
            FeasibilityError::PrecedenceViolation { job, pred, succ } => {
                write!(f, "{job}: edge {pred} -> {succ} violated")
            }
            FeasibilityError::ReleaseViolation(j, v) => {
                write!(f, "{j}/{v} ran before the job's release")
            }
            FeasibilityError::UnknownSubjob(j, v) => write!(f, "unknown subjob {j}/{v}"),
        }
    }
}

impl std::error::Error for FeasibilityError {}

impl Schedule {
    /// An empty schedule on `m` processors.
    pub fn new(m: usize) -> Self {
        assert!(m >= 1, "need at least one processor");
        Schedule { m, picks: Vec::new(), offsets: vec![0] }
    }

    /// Machine capacity.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Record that `picks` run during step `t = horizon + 1` (appended).
    pub fn push_step(&mut self, picks: Vec<(JobId, NodeId)>) {
        self.extend_step(&picks);
    }

    /// Record that `picks` run during step `t = horizon + 1` (appended),
    /// copying out of the caller's buffer — the allocation-free form of
    /// [`push_step`](Self::push_step) the engine's hot loop uses.
    pub fn extend_step(&mut self, picks: &[(JobId, NodeId)]) {
        debug_assert!(picks.len() <= self.m);
        self.picks.extend_from_slice(picks);
        let end = u32::try_from(self.picks.len()).expect("schedule exceeds u32::MAX subjob slots");
        self.offsets.push(end);
    }

    /// Append `n` empty (idle) steps in one go — O(n) offset pushes, no pick
    /// storage. Used by the engine's idle-gap fast-forward.
    pub fn push_empty_steps(&mut self, n: Time) {
        let end = *self.offsets.last().expect("offsets never empty");
        self.offsets.resize(self.offsets.len() + n as usize, end);
    }

    /// Replace the contents of step `t` (1-based; must be within the
    /// current horizon). Used by schedule *constructors* (e.g. the
    /// Section 4 witness schedule) that fill non-contiguous windows; costs
    /// O(picks beyond `t`) when the step's size changes, so fill steps
    /// near the tail (as the witness builders do).
    pub fn replace_step(&mut self, t: Time, picks: Vec<(JobId, NodeId)>) {
        assert!(t >= 1 && t <= self.horizon(), "step {t} out of range");
        debug_assert!(picks.len() <= self.m);
        let lo = self.offsets[(t - 1) as usize] as usize;
        let hi = self.offsets[t as usize] as usize;
        let delta = picks.len() as i64 - (hi - lo) as i64;
        self.picks.splice(lo..hi, picks);
        if delta != 0 {
            for o in &mut self.offsets[t as usize..] {
                *o = (*o as i64 + delta) as u32;
            }
        }
    }

    /// Largest time step with any activity (0 if empty). Trailing empty
    /// steps are retained (they represent idle time before later arrivals).
    pub fn horizon(&self) -> Time {
        (self.offsets.len() - 1) as Time
    }

    /// Subjobs run during step `t` (1-based, per the paper's convention).
    /// Empty for `t` beyond the horizon.
    pub fn at(&self, t: Time) -> &[(JobId, NodeId)] {
        if t == 0 || t > self.horizon() {
            &[]
        } else {
            &self.picks[self.offsets[(t - 1) as usize] as usize..self.offsets[t as usize] as usize]
        }
    }

    /// Number of subjobs run during step `t`.
    pub fn load(&self, t: Time) -> usize {
        self.at(t).len()
    }

    /// Total subjobs recorded over all steps.
    pub fn total_picks(&self) -> usize {
        self.picks.len()
    }

    /// Iterate `(t, &picks)` over all steps.
    pub fn iter(&self) -> impl Iterator<Item = (Time, &[(JobId, NodeId)])> + '_ {
        self.offsets
            .windows(2)
            .enumerate()
            .map(|(i, w)| ((i + 1) as Time, &self.picks[w[0] as usize..w[1] as usize]))
    }

    /// Completion time `C_i` of each job: the max step in which one of its
    /// subjobs ran. Returns `None` for a job with no scheduled subjob.
    pub fn completion_times(&self, instance: &Instance) -> Vec<Option<Time>> {
        let mut c = vec![None; instance.num_jobs()];
        for (t, picks) in self.iter() {
            for &(j, _) in picks {
                let slot = &mut c[j.index()];
                *slot = Some(slot.map_or(t, |old: Time| old.max(t)));
            }
        }
        c
    }

    /// Check the four feasibility conditions of Section 3 against `instance`.
    pub fn verify(&self, instance: &Instance) -> Result<(), FeasibilityError> {
        // Completion time per (job, node); detects duplicates.
        let mut completion: Vec<Vec<Time>> =
            instance.jobs().iter().map(|j| vec![0; j.graph.n()]).collect();

        for (t, picks) in self.iter() {
            if picks.len() > self.m {
                return Err(FeasibilityError::CapacityExceeded {
                    t,
                    count: picks.len(),
                    m: self.m,
                });
            }
            for &(j, v) in picks {
                if j.index() >= instance.num_jobs() || v.index() >= instance.graph(j).n() {
                    return Err(FeasibilityError::UnknownSubjob(j, v));
                }
                let slot = &mut completion[j.index()][v.index()];
                if *slot != 0 {
                    return Err(FeasibilityError::DuplicateRun(j, v));
                }
                *slot = t;
                // Subjob runs during (t-1, t]; needs t - 1 >= r_i, i.e. the
                // paper's "if j in S(t) then t > r_i".
                if t <= instance.release(j) {
                    return Err(FeasibilityError::ReleaseViolation(j, v));
                }
            }
        }

        for (id, spec) in instance.iter() {
            let comp = &completion[id.index()];
            for v in spec.graph.nodes() {
                if comp[v.index()] == 0 {
                    return Err(FeasibilityError::MissingRun(id, v));
                }
            }
            for (u, v) in spec.graph.edges() {
                if comp[u as usize] >= comp[v as usize] {
                    return Err(FeasibilityError::PrecedenceViolation {
                        job: id,
                        pred: NodeId(u),
                        succ: NodeId(v),
                    });
                }
            }
        }
        Ok(())
    }

    /// Restrict to the subjobs of jobs released at or before `r`: the
    /// paper's `S_i` (Section 6) when `r = r_i`. The result is a partial
    /// schedule (verify() would report missing runs for excluded jobs).
    pub fn restrict_to_released_by(&self, instance: &Instance, r: Time) -> Schedule {
        let mut out = Schedule::new(self.m);
        out.picks.reserve(self.picks.len());
        for (_, picks) in self.iter() {
            out.picks
                .extend(picks.iter().copied().filter(|&(j, _)| instance.release(j) <= r));
            out.offsets.push(out.picks.len() as u32);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::{Instance, JobSpec};
    use flowtree_dag::builder::{chain, star};

    fn inst() -> Instance {
        Instance::new(vec![
            JobSpec { graph: chain(2), release: 0 },
            JobSpec { graph: star(2), release: 1 },
        ])
    }

    fn ok_schedule() -> Schedule {
        let mut s = Schedule::new(2);
        // t=1: chain head. t=2: chain tail + star root. t=3: both leaves.
        s.push_step(vec![(JobId(0), NodeId(0))]);
        s.push_step(vec![(JobId(0), NodeId(1)), (JobId(1), NodeId(0))]);
        s.push_step(vec![(JobId(1), NodeId(1)), (JobId(1), NodeId(2))]);
        s
    }

    #[test]
    fn valid_schedule_passes() {
        assert_eq!(ok_schedule().verify(&inst()), Ok(()));
    }

    #[test]
    fn completion_times_and_horizon() {
        let s = ok_schedule();
        assert_eq!(s.horizon(), 3);
        assert_eq!(s.completion_times(&inst()), vec![Some(2), Some(3)]);
        assert_eq!(s.load(2), 2);
        assert_eq!(s.at(0), &[]);
        assert_eq!(s.at(99), &[]);
        assert_eq!(s.total_picks(), 5);
    }

    #[test]
    fn capacity_violation_detected() {
        // Construct the CSR fields directly: one over-full step on m = 1.
        let s = Schedule {
            m: 1,
            picks: vec![(JobId(0), NodeId(0)), (JobId(1), NodeId(0))],
            offsets: vec![0, 2],
        };
        assert!(matches!(
            s.verify(&inst()),
            Err(FeasibilityError::CapacityExceeded { t: 1, count: 2, m: 1 })
        ));
    }

    #[test]
    fn duplicate_detected() {
        let mut s = ok_schedule();
        s.push_step(vec![(JobId(0), NodeId(0))]);
        assert_eq!(s.verify(&inst()), Err(FeasibilityError::DuplicateRun(JobId(0), NodeId(0))));
    }

    #[test]
    fn missing_detected() {
        let mut s = Schedule::new(2);
        s.push_step(vec![(JobId(0), NodeId(0))]);
        let err = s.verify(&inst()).unwrap_err();
        assert!(matches!(err, FeasibilityError::MissingRun(_, _)));
    }

    #[test]
    fn precedence_violation_detected() {
        let mut s = Schedule::new(2);
        // Run chain tail before head.
        s.push_step(vec![(JobId(0), NodeId(1))]);
        s.push_step(vec![(JobId(0), NodeId(0)), (JobId(1), NodeId(0))]);
        s.push_step(vec![(JobId(1), NodeId(1)), (JobId(1), NodeId(2))]);
        assert_eq!(
            s.verify(&inst()),
            Err(FeasibilityError::PrecedenceViolation {
                job: JobId(0),
                pred: NodeId(0),
                succ: NodeId(1),
            })
        );
    }

    #[test]
    fn simultaneous_pred_succ_is_violation() {
        let mut s = Schedule::new(2);
        s.push_step(vec![(JobId(0), NodeId(0)), (JobId(0), NodeId(1))]);
        s.push_step(vec![(JobId(1), NodeId(0))]);
        s.push_step(vec![(JobId(1), NodeId(1)), (JobId(1), NodeId(2))]);
        assert!(matches!(s.verify(&inst()), Err(FeasibilityError::PrecedenceViolation { .. })));
    }

    #[test]
    fn release_violation_detected() {
        let mut s = Schedule::new(2);
        // Star (released at 1) cannot complete a subjob at t=1.
        s.push_step(vec![(JobId(0), NodeId(0)), (JobId(1), NodeId(0))]);
        let err = s.verify(&inst()).unwrap_err();
        assert_eq!(err, FeasibilityError::ReleaseViolation(JobId(1), NodeId(0)));
    }

    #[test]
    fn unknown_subjob_detected() {
        let mut s = Schedule::new(2);
        s.push_step(vec![(JobId(0), NodeId(7))]);
        assert_eq!(s.verify(&inst()), Err(FeasibilityError::UnknownSubjob(JobId(0), NodeId(7))));
    }

    #[test]
    fn serde_roundtrip() {
        let s = ok_schedule();
        let json = serde_json::to_string(&s).unwrap();
        let back: Schedule = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
        back.verify(&inst()).unwrap();
    }

    #[test]
    fn serde_wire_format_is_nested_steps() {
        // The CSR layout is an internal detail: on the wire a schedule is
        // still `{ m, steps }` with nested pick lists, byte-for-byte what
        // the pre-CSR representation produced.
        let s = ok_schedule();
        assert_eq!(
            serde_json::to_string(&s).unwrap(),
            r#"{"m":2,"steps":[[[0,0]],[[0,1],[1,0]],[[1,1],[1,2]]]}"#
        );
        // And a hand-written legacy document still loads.
        let legacy = r#"{"m":2,"steps":[[[0,0]],[],[[0,1]]]}"#;
        let back: Schedule = serde_json::from_str(legacy).unwrap();
        assert_eq!(back.horizon(), 3);
        assert_eq!(back.at(1), &[(JobId(0), NodeId(0))]);
        assert_eq!(back.load(2), 0);
        assert_eq!(back.at(3), &[(JobId(0), NodeId(1))]);
    }

    #[test]
    fn serde_rejects_overfull_step() {
        let overfull = r#"{"m":1,"steps":[[[0,0],[1,0]]]}"#;
        assert!(serde_json::from_str::<Schedule>(overfull).is_err());
        let no_procs = r#"{"m":0,"steps":[]}"#;
        assert!(serde_json::from_str::<Schedule>(no_procs).is_err());
    }

    #[test]
    fn extend_and_empty_steps_maintain_csr() {
        let mut s = Schedule::new(3);
        s.extend_step(&[(JobId(0), NodeId(0))]);
        s.push_empty_steps(4);
        s.extend_step(&[(JobId(0), NodeId(1)), (JobId(0), NodeId(2))]);
        assert_eq!(s.horizon(), 6);
        assert_eq!(s.at(1), &[(JobId(0), NodeId(0))]);
        for t in 2..=5 {
            assert_eq!(s.load(t), 0);
        }
        assert_eq!(s.at(6).len(), 2);
        assert_eq!(s.total_picks(), 3);
        let collected: Vec<usize> = s.iter().map(|(_, p)| p.len()).collect();
        assert_eq!(collected, vec![1, 0, 0, 0, 0, 2]);
    }

    #[test]
    fn replace_step_shifts_following_offsets() {
        let mut s = Schedule::new(2);
        s.push_step(vec![(JobId(0), NodeId(0))]);
        s.push_step(vec![]);
        s.push_step(vec![(JobId(1), NodeId(1))]);
        // Grow the middle step; the tail step must stay intact.
        s.replace_step(2, vec![(JobId(0), NodeId(1)), (JobId(1), NodeId(0))]);
        assert_eq!(s.at(1), &[(JobId(0), NodeId(0))]);
        assert_eq!(s.at(2), &[(JobId(0), NodeId(1)), (JobId(1), NodeId(0))]);
        assert_eq!(s.at(3), &[(JobId(1), NodeId(1))]);
        // Shrink it again.
        s.replace_step(2, vec![]);
        assert_eq!(s.load(2), 0);
        assert_eq!(s.at(3), &[(JobId(1), NodeId(1))]);
        assert_eq!(s.horizon(), 3);
    }

    #[test]
    fn restriction_filters_late_jobs() {
        let s = ok_schedule();
        let r = s.restrict_to_released_by(&inst(), 0);
        assert_eq!(r.load(2), 1); // star root filtered out
        assert_eq!(r.load(3), 0);
        assert_eq!(r.at(2), &[(JobId(0), NodeId(1))]);
        assert_eq!(r.horizon(), s.horizon());
    }
}
