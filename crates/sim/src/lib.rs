//! # flowtree-sim — discrete-time multiprocessor scheduling simulator
//!
//! Implements the execution model of *Scheduling Out-Trees Online to Optimize
//! Maximum Flow* (SPAA 2024), Section 3:
//!
//! * `m` identical processors, discrete unit time steps;
//! * jobs ([`Instance`]) are DAGs of unit subjobs with integer release times;
//! * a subjob is **ready** at time `t` if its job is released (`r_i <= t`),
//!   all its predecessors are complete by `t`, and it is not itself complete;
//! * at each time `t` an online scheduler selects up to `m` ready subjobs to
//!   run during step `t+1` (so they complete at `t+1`).
//!
//! The crate provides:
//!
//! * [`Instance`] — a job set with release times;
//! * [`OnlineScheduler`] — the scheduler trait, with clairvoyance expressed
//!   through what [`SimView`] exposes;
//! * [`Engine`] — the simulation loop, which *validates every selection*
//!   (readiness, distinctness, capacity) so a buggy scheduler cannot produce
//!   an infeasible schedule silently;
//! * [`Schedule`] — the recorded output, with an independent
//!   [feasibility checker](Schedule::verify) re-checking Section 3's four
//!   conditions from scratch;
//! * flow/utilization [`metrics`] and an ASCII [`gantt`] renderer used to
//!   reproduce the paper's Figure 1;
//! * a [`probe`] subsystem for per-step instrumentation — runs return a
//!   [`RunReport`] (schedule + stats + counters), and probes like
//!   [`JsonlTrace`] stream events that [`replay`] parses back into
//!   schedules, flows, and Gantt charts. Probes compose as tuples
//!   (`(A, B)`, `(A, B, C)`) with zero dynamic dispatch;
//! * theory-aware [`monitor`]s (live Lemma 5.1 lower bound / competitive
//!   ratio, work-conservation and rectangle-tail invariant checking) and
//!   bounded-memory run [`histo`]grams for long-horizon observability.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod gantt;
pub mod histo;
pub mod instance;
pub mod metrics;
pub mod monitor;
pub mod probe;
pub mod replay;
pub mod schedule;
pub mod scheduler;
pub mod session;
pub mod speed;
pub mod state;
pub mod trace;

pub use engine::{Engine, EngineError, RunReport};
pub use histo::{LogHistogram, RunHistograms, TimeSeries};
pub use instance::{Instance, JobSpec};
pub use metrics::FlowStats;
pub use monitor::{
    HeadTailChecks, InvariantChecks, InvariantMonitor, InvariantRule, LowerBound, Violation,
};
pub use probe::{Counters, JsonlTrace, NullProbe, Probe, StepStat};
pub use replay::Replay;
pub use schedule::{FeasibilityError, Schedule};
pub use scheduler::{Clairvoyance, OnlineScheduler, Selection, SimView};
pub use session::{Session, SessionError};
pub use state::SimState;

pub use flowtree_dag::{JobId, NodeId, Time};
