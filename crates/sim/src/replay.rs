//! Parse [`JsonlTrace`](crate::probe::JsonlTrace) streams back into events,
//! schedules, and metrics.
//!
//! A trace is self-contained for schedule reconstruction: the `start` record
//! carries the machine size, each `step` record carries that step's picks,
//! and `release`/`complete` records carry per-job times. [`Replay`] rebuilds
//! a [`Schedule`] and per-job flows from those records, and
//! [`Replay::gantt`] renders the reconstructed schedule through the regular
//! [`gantt`](crate::gantt) renderer.

use crate::gantt::{self, GanttOptions};
use crate::instance::Instance;
use crate::schedule::Schedule;
use flowtree_dag::{JobId, NodeId, Time};
use serde::Value;

/// One parsed trace record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// Run started on `m` processors over `jobs` jobs.
    Start {
        /// Machine size.
        m: usize,
        /// Number of jobs in the instance.
        jobs: usize,
    },
    /// A job was released.
    Release {
        /// Release time.
        t: Time,
        /// The released job.
        job: JobId,
    },
    /// One simulation step with its validated picks and summary stats.
    Step {
        /// Step start time (the picks run during `(t, t+1]`).
        t: Time,
        /// Dispatched subjobs.
        picks: Vec<(JobId, NodeId)>,
        /// Idle processors this step.
        idle: usize,
        /// Ready-pool size the scheduler chose from.
        ready: usize,
    },
    /// A compact fast-forwarded idle gap: `steps` consecutive all-idle
    /// steps starting at `t0` (emitted only by
    /// [`JsonlTrace::compact_idle`](crate::probe::JsonlTrace::compact_idle)
    /// mode; the default stream spells gaps out as empty `step` records).
    IdleGap {
        /// First idle step.
        t0: Time,
        /// Number of consecutive idle steps.
        steps: Time,
    },
    /// A job ran its last subjob and completes at `t`.
    Complete {
        /// Completion time `C_i`.
        t: Time,
        /// The completed job.
        job: JobId,
    },
    /// The run finished with the given schedule horizon.
    Finish {
        /// Total steps simulated.
        horizon: Time,
    },
}

/// Errors produced while parsing or validating a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplayError {
    /// A line was not valid JSON or lacked required fields.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        reason: String,
    },
    /// The stream did not begin with a `start` record.
    MissingStart,
    /// Records after parsing were inconsistent (e.g. step times out of
    /// order, job ids out of range).
    Inconsistent(String),
}

impl std::fmt::Display for ReplayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplayError::Malformed { line, reason } => {
                write!(f, "trace line {line}: {reason}")
            }
            ReplayError::MissingStart => write!(f, "trace does not begin with a start record"),
            ReplayError::Inconsistent(msg) => write!(f, "inconsistent trace: {msg}"),
        }
    }
}

impl std::error::Error for ReplayError {}

fn field<'v>(v: &'v Value, key: &str, line: usize) -> Result<&'v Value, ReplayError> {
    v.get(key)
        .ok_or_else(|| ReplayError::Malformed { line, reason: format!("missing field `{key}`") })
}

fn uint_field(v: &Value, key: &str, line: usize) -> Result<u64, ReplayError> {
    field(v, key, line)?.as_u64().ok_or_else(|| ReplayError::Malformed {
        line,
        reason: format!("field `{key}` is not an unsigned integer"),
    })
}

/// Parse one JSONL line into a [`TraceEvent`].
fn parse_line(text: &str, line: usize) -> Result<TraceEvent, ReplayError> {
    let v: Value = serde_json::from_str(text)
        .map_err(|e| ReplayError::Malformed { line, reason: e.to_string() })?;
    let ev = field(&v, "ev", line)?
        .as_str()
        .ok_or_else(|| ReplayError::Malformed { line, reason: "`ev` is not a string".into() })?
        .to_string();
    match ev.as_str() {
        "start" => Ok(TraceEvent::Start {
            m: uint_field(&v, "m", line)? as usize,
            jobs: uint_field(&v, "jobs", line)? as usize,
        }),
        "release" => Ok(TraceEvent::Release {
            t: uint_field(&v, "t", line)?,
            job: JobId(uint_field(&v, "job", line)? as u32),
        }),
        "step" => {
            let picks_v = field(&v, "picks", line)?.as_array().ok_or_else(|| {
                ReplayError::Malformed { line, reason: "`picks` is not an array".into() }
            })?;
            let mut picks = Vec::with_capacity(picks_v.len());
            for p in picks_v {
                let pair = p.as_array().filter(|a| a.len() == 2).ok_or_else(|| {
                    ReplayError::Malformed { line, reason: "pick is not a [job, node] pair".into() }
                })?;
                let j = pair[0].as_u64().ok_or_else(|| ReplayError::Malformed {
                    line,
                    reason: "pick job is not an unsigned integer".into(),
                })?;
                let n = pair[1].as_u64().ok_or_else(|| ReplayError::Malformed {
                    line,
                    reason: "pick node is not an unsigned integer".into(),
                })?;
                picks.push((JobId(j as u32), NodeId(n as u32)));
            }
            Ok(TraceEvent::Step {
                t: uint_field(&v, "t", line)?,
                picks,
                idle: uint_field(&v, "idle", line)? as usize,
                ready: uint_field(&v, "ready", line)? as usize,
            })
        }
        "idle" => Ok(TraceEvent::IdleGap {
            t0: uint_field(&v, "t0", line)?,
            steps: uint_field(&v, "steps", line)?,
        }),
        "complete" => Ok(TraceEvent::Complete {
            t: uint_field(&v, "t", line)?,
            job: JobId(uint_field(&v, "job", line)? as u32),
        }),
        "finish" => Ok(TraceEvent::Finish { horizon: uint_field(&v, "horizon", line)? }),
        other => Err(ReplayError::Malformed { line, reason: format!("unknown event `{other}`") }),
    }
}

/// Parse a whole trace (blank lines ignored) into its event sequence.
pub fn parse(trace: &str) -> Result<Vec<TraceEvent>, ReplayError> {
    trace
        .lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty())
        .map(|(i, l)| parse_line(l, i + 1))
        .collect()
}

/// A validated, replayed trace: the reconstructed schedule plus per-job
/// release/completion times as recorded in the stream.
#[derive(Debug, Clone, PartialEq)]
pub struct Replay {
    /// Machine size from the `start` record.
    pub m: usize,
    /// Number of jobs from the `start` record.
    pub num_jobs: usize,
    /// The schedule reconstructed from the `step` records.
    pub schedule: Schedule,
    /// Per-job release times from `release` records.
    pub releases: Vec<Option<Time>>,
    /// Per-job completion times from `complete` records.
    pub completions: Vec<Option<Time>>,
}

impl Replay {
    /// Replay a parsed event sequence.
    pub fn from_events(events: &[TraceEvent]) -> Result<Self, ReplayError> {
        let (m, num_jobs) = match events.first() {
            Some(&TraceEvent::Start { m, jobs }) => (m, jobs),
            _ => return Err(ReplayError::MissingStart),
        };
        let mut schedule = Schedule::new(m);
        let mut releases = vec![None; num_jobs];
        let mut completions = vec![None; num_jobs];
        let mut next_t: Time = 0;
        let mut finished: Option<Time> = None;

        let job_slot = |v: &mut Vec<Option<Time>>, job: JobId| -> Result<usize, ReplayError> {
            let i = job.index();
            if i >= v.len() {
                return Err(ReplayError::Inconsistent(format!(
                    "job {job} out of range (jobs = {})",
                    v.len()
                )));
            }
            Ok(i)
        };

        for ev in &events[1..] {
            match ev {
                TraceEvent::Start { .. } => {
                    return Err(ReplayError::Inconsistent("duplicate start record".into()));
                }
                TraceEvent::Release { t, job } => {
                    let i = job_slot(&mut releases, *job)?;
                    if releases[i].replace(*t).is_some() {
                        return Err(ReplayError::Inconsistent(format!("job {job} released twice")));
                    }
                }
                TraceEvent::Step { t, picks, .. } => {
                    if *t != next_t {
                        return Err(ReplayError::Inconsistent(format!(
                            "step t={t}, expected t={next_t}"
                        )));
                    }
                    if picks.len() > m {
                        return Err(ReplayError::Inconsistent(format!(
                            "step t={t} has {} picks on {m} processors",
                            picks.len()
                        )));
                    }
                    schedule.extend_step(picks);
                    next_t += 1;
                }
                TraceEvent::IdleGap { t0, steps } => {
                    if *t0 != next_t {
                        return Err(ReplayError::Inconsistent(format!(
                            "idle gap t0={t0}, expected t={next_t}"
                        )));
                    }
                    schedule.push_empty_steps(*steps);
                    next_t += steps;
                }
                TraceEvent::Complete { t, job } => {
                    let i = job_slot(&mut completions, *job)?;
                    if completions[i].replace(*t).is_some() {
                        return Err(ReplayError::Inconsistent(format!(
                            "job {job} completed twice"
                        )));
                    }
                }
                TraceEvent::Finish { horizon } => {
                    finished = Some(*horizon);
                }
            }
        }

        if let Some(h) = finished {
            if h != next_t {
                return Err(ReplayError::Inconsistent(format!(
                    "finish horizon {h} != {next_t} replayed steps"
                )));
            }
        }

        Ok(Replay { m, num_jobs, schedule, releases, completions })
    }

    /// Parse and replay a JSONL trace in one step.
    // Deliberately shadows `FromStr::from_str`: callers always want the
    // concrete `ReplayError`, and `"…".parse::<Replay>()` reads worse.
    #[allow(clippy::should_implement_trait)]
    pub fn from_str(trace: &str) -> Result<Self, ReplayError> {
        Replay::from_events(&parse(trace)?)
    }

    /// Per-job flows `C_i - r_i` as recorded by the trace's `release` /
    /// `complete` events (`None` for jobs missing either record).
    pub fn flows(&self) -> Vec<Option<Time>> {
        self.completions
            .iter()
            .zip(&self.releases)
            .map(|(c, r)| Some(c.as_ref()? - r.as_ref()?))
            .collect()
    }

    /// Maximum recorded flow (`None` when no job has both records).
    pub fn max_flow(&self) -> Option<Time> {
        self.flows().into_iter().flatten().max()
    }

    /// Render the reconstructed schedule as an ASCII Gantt chart through
    /// [`gantt::render`]; the instance supplies job structure for labels.
    pub fn gantt(&self, instance: &Instance, opts: &GanttOptions) -> String {
        gantt::render(instance, &self.schedule, opts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use crate::instance::JobSpec;
    use crate::probe::JsonlTrace;
    use crate::scheduler::{Clairvoyance, OnlineScheduler, Selection, SimView};
    use flowtree_dag::builder::{chain, star};

    struct Greedy;

    impl OnlineScheduler for Greedy {
        fn clairvoyance(&self) -> Clairvoyance {
            Clairvoyance::NonClairvoyant
        }
        fn select(&mut self, _t: Time, view: &SimView<'_>, sel: &mut Selection) {
            for &job in view.alive() {
                for &v in view.ready(job) {
                    if !sel.push(job, NodeId(v)) {
                        return;
                    }
                }
            }
        }
    }

    fn traced_run(inst: &Instance, m: usize) -> (String, crate::engine::RunReport) {
        let mut trace = JsonlTrace::new(Vec::new());
        let report = Engine::new(m).with_probe(&mut trace).run(inst, &mut Greedy).unwrap();
        let bytes = trace.finish().unwrap();
        (String::from_utf8(bytes).unwrap(), report)
    }

    fn two_job_instance() -> Instance {
        Instance::new(vec![
            JobSpec { graph: chain(3), release: 0 },
            JobSpec { graph: star(4), release: 1 },
        ])
    }

    #[test]
    fn replay_reconstructs_schedule_exactly() {
        let inst = two_job_instance();
        let (trace, report) = traced_run(&inst, 2);
        let replay = Replay::from_str(&trace).unwrap();
        assert_eq!(replay.m, 2);
        assert_eq!(replay.num_jobs, 2);
        assert_eq!(replay.schedule, report.schedule);
        replay.schedule.verify(&inst).unwrap();
    }

    #[test]
    fn replay_flows_match_flow_stats() {
        let inst = two_job_instance();
        let (trace, report) = traced_run(&inst, 2);
        let replay = Replay::from_str(&trace).unwrap();
        let flows: Vec<Time> = replay.flows().into_iter().map(Option::unwrap).collect();
        assert_eq!(flows, report.stats.flows);
        assert_eq!(replay.max_flow(), Some(report.stats.max_flow));
    }

    #[test]
    fn replay_gantt_matches_direct_render() {
        let inst = two_job_instance();
        let (trace, report) = traced_run(&inst, 2);
        let replay = Replay::from_str(&trace).unwrap();
        let opts = GanttOptions::default();
        assert_eq!(replay.gantt(&inst, &opts), gantt::render(&inst, &report.schedule, &opts));
    }

    #[test]
    fn every_trace_line_is_valid_json() {
        let inst = two_job_instance();
        let (trace, _) = traced_run(&inst, 3);
        for line in trace.lines() {
            serde_json::from_str::<Value>(line).unwrap();
        }
        assert!(trace.lines().next().unwrap().contains("\"ev\":\"start\""));
        assert!(trace.lines().last().unwrap().contains("\"ev\":\"finish\""));
    }

    #[test]
    fn compact_idle_trace_replays_identically() {
        // A sparse instance: the gap between the chain(2) finishing and the
        // star(4) arriving is fast-forwarded.
        let inst = Instance::new(vec![
            JobSpec { graph: chain(2), release: 0 },
            JobSpec { graph: star(4), release: 40 },
        ]);
        let mut compact = JsonlTrace::new(Vec::new()).compact_idle(true);
        let report = Engine::new(2).with_probe(&mut compact).run(&inst, &mut Greedy).unwrap();
        let compact_text = String::from_utf8(compact.finish().unwrap()).unwrap();
        assert!(compact_text.contains("\"ev\":\"idle\""));
        // Far fewer lines than the stepwise form, same replay result.
        let (default_text, _) = traced_run(&inst, 2);
        assert!(compact_text.lines().count() < default_text.lines().count());
        let a = Replay::from_str(&compact_text).unwrap();
        let b = Replay::from_str(&default_text).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.schedule, report.schedule);
        assert_eq!(a.max_flow(), Some(report.stats.max_flow));
    }

    #[test]
    fn misplaced_idle_gap_is_rejected() {
        let bad = "{\"ev\":\"start\",\"m\":1,\"jobs\":1}\n{\"ev\":\"idle\",\"t0\":3,\"steps\":5}";
        assert!(matches!(Replay::from_str(bad), Err(ReplayError::Inconsistent(_))));
        let missing = "{\"ev\":\"start\",\"m\":1,\"jobs\":1}\n{\"ev\":\"idle\",\"t0\":0}";
        assert!(matches!(Replay::from_str(missing), Err(ReplayError::Malformed { .. })));
    }

    #[test]
    fn malformed_traces_are_rejected() {
        assert_eq!(Replay::from_str(""), Err(ReplayError::MissingStart));
        assert!(matches!(
            Replay::from_str("{\"ev\":\"step\"}"),
            Err(ReplayError::Malformed { .. })
        ));
        assert!(matches!(
            Replay::from_str("not json"),
            Err(ReplayError::Malformed { line: 1, .. })
        ));
        // Out-of-order steps.
        let bad = "{\"ev\":\"start\",\"m\":1,\"jobs\":1}\n{\"ev\":\"step\",\"t\":3,\"picks\":[],\"idle\":1,\"ready\":0}";
        assert!(matches!(Replay::from_str(bad), Err(ReplayError::Inconsistent(_))));
    }
}
