//! Speed augmentation — the relaxed analysis model this paper deliberately
//! avoids, implemented so experiments can *show* what it hides.
//!
//! An `s`-speed processor completes `s` unit subjobs per time step, possibly
//! in sequence (so a chain shortens by a factor of `s` too). Prior work
//! ([4] in the paper) proves FIFO is `(1+ε)`-speed O(1)-competitive for
//! maximum flow; the paper's Section 4 shows that at speed 1 FIFO is
//! Ω(log m) — augmentation "assumes away the existence of the hard
//! instances where the optimal schedule is tightly packed".
//!
//! For unit subjobs and integer `s`, an `s`-speed schedule is exactly a
//! unit-speed schedule on a time axis refined `s`-fold: releases move to
//! `s · r_i`, the scheduler runs on micro-steps, and a job completing at
//! micro-step `C` has macro flow `ceil((C - s·r_i)/s)`. [`run_with_speed`]
//! implements that reduction on top of the ordinary [`Engine`].

use crate::engine::{Engine, EngineError};
use crate::instance::{Instance, JobSpec};
use crate::metrics::FlowStats;
use crate::scheduler::OnlineScheduler;
use flowtree_dag::Time;

/// Result of a speed-augmented run.
#[derive(Debug, Clone)]
pub struct SpeedRun {
    /// The micro-step schedule (against the release-scaled instance).
    pub micro_schedule: crate::schedule::Schedule,
    /// The release-scaled instance the schedule is feasible for.
    pub scaled_instance: Instance,
    /// Per-job flows measured in *macro* (original) time units.
    pub flows: Vec<Time>,
    /// Maximum macro flow.
    pub max_flow: Time,
}

/// Run `scheduler` with `s`-speed processors on `instance` (`s >= 1`).
///
/// Only time-scale-invariant schedulers (FIFO and the other non-parametric
/// policies) give meaningful results: the scheduler sees micro-time.
pub fn run_with_speed(
    instance: &Instance,
    m: usize,
    s: u64,
    scheduler: &mut dyn OnlineScheduler,
    max_horizon: Option<Time>,
) -> Result<SpeedRun, EngineError> {
    assert!(s >= 1, "speed must be at least 1");
    let scaled = Instance::new(
        instance
            .jobs()
            .iter()
            .map(|j| JobSpec { graph: j.graph.clone(), release: j.release * s })
            .collect(),
    );
    let mut engine = Engine::new(m);
    if let Some(h) = max_horizon {
        engine = engine.with_max_horizon(h);
    }
    let micro = engine.run(&scaled, scheduler)?.schedule;
    debug_assert_eq!(micro.verify(&scaled), Ok(()));

    let completions = micro.completion_times(&scaled);
    let mut flows = Vec::with_capacity(instance.num_jobs());
    for (id, spec) in instance.iter() {
        let c = completions[id.index()].expect("complete schedule");
        let micro_flow = c - spec.release * s;
        flows.push(micro_flow.div_ceil(s));
    }
    let max_flow = flows.iter().copied().max().unwrap_or(0);
    Ok(SpeedRun {
        micro_schedule: micro,
        scaled_instance: scaled,
        flows,
        max_flow,
    })
}

impl SpeedRun {
    /// Micro-level statistics (utilization etc.) of the underlying run.
    pub fn micro_stats(&self) -> FlowStats {
        crate::metrics::flow_stats(&self.scaled_instance, &self.micro_schedule)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::{Clairvoyance, Selection, SimView};
    use flowtree_dag::builder::{chain, star};
    use flowtree_dag::NodeId;

    /// Local greedy FIFO-ish scheduler for tests (core's FIFO lives
    /// downstream of sim, so tests here use a minimal stand-in).
    struct Greedy;
    impl OnlineScheduler for Greedy {
        fn clairvoyance(&self) -> Clairvoyance {
            Clairvoyance::NonClairvoyant
        }
        fn select(&mut self, _t: Time, view: &SimView<'_>, sel: &mut Selection) {
            for &job in view.alive() {
                for &v in view.ready(job) {
                    if !sel.push(job, NodeId(v)) {
                        return;
                    }
                }
            }
        }
    }

    #[test]
    fn speed_one_equals_normal_run() {
        let inst = Instance::new(vec![
            JobSpec { graph: chain(5), release: 0 },
            JobSpec { graph: star(6), release: 2 },
        ]);
        let speed = run_with_speed(&inst, 2, 1, &mut Greedy, None).unwrap();
        let normal = Engine::new(2).run(&inst, &mut Greedy).unwrap();
        let stats = crate::metrics::flow_stats(&inst, &normal);
        assert_eq!(speed.flows, stats.flows);
        assert_eq!(speed.max_flow, stats.max_flow);
    }

    #[test]
    fn chain_speeds_up_linearly() {
        // A lone chain of 9 at speed 3 finishes in ceil(9/3) = 3 macro steps.
        let inst = Instance::single(chain(9));
        let r = run_with_speed(&inst, 1, 3, &mut Greedy, None).unwrap();
        assert_eq!(r.max_flow, 3);
    }

    #[test]
    fn speed_rounds_up_partial_steps() {
        // chain(4) at speed 3: 4 micro steps -> ceil(4/3) = 2.
        let inst = Instance::single(chain(4));
        let r = run_with_speed(&inst, 1, 3, &mut Greedy, None).unwrap();
        assert_eq!(r.max_flow, 2);
    }

    #[test]
    fn releases_respected_in_macro_time() {
        // Job released at 5 cannot have flow benefits from earlier idle
        // capacity: its first subjob completes at micro > 5s.
        let inst = Instance::new(vec![
            JobSpec { graph: chain(1), release: 0 },
            JobSpec { graph: chain(2), release: 5 },
        ]);
        let s = 2;
        let r = run_with_speed(&inst, 4, s, &mut Greedy, None).unwrap();
        assert_eq!(r.flows[1], 1); // 2 micro-steps = 1 macro step
        let completions = r.micro_schedule.completion_times(&r.scaled_instance);
        assert!(completions[1].unwrap() > 5 * s);
    }

    #[test]
    fn higher_speed_never_hurts_greedy() {
        let inst = Instance::new(vec![
            JobSpec { graph: star(9), release: 0 },
            JobSpec { graph: chain(6), release: 1 },
            JobSpec { graph: star(5), release: 3 },
        ]);
        let mut prev = u64::MAX;
        for s in 1..=4 {
            let r = run_with_speed(&inst, 2, s, &mut Greedy, None).unwrap();
            assert!(r.max_flow <= prev, "speed {s} regressed: {} > {prev}", r.max_flow);
            prev = r.max_flow;
        }
    }
}
