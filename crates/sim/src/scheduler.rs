//! The online scheduler interface.
//!
//! At each time `t` the [`Engine`](crate::engine::Engine) hands the scheduler
//! a read-only [`SimView`] and a [`Selection`] sink; the scheduler pushes up
//! to `m` ready subjobs to run during step `t+1`. Clairvoyance (Section 3 of
//! the paper) is modelled by what the view exposes:
//!
//! * **non-clairvoyant** schedulers may call only the ready-set accessors
//!   ([`SimView::ready`], [`SimView::alive`], ...) — a subjob is revealed
//!   when its predecessors complete;
//! * **clairvoyant** schedulers may additionally call [`SimView::graph`],
//!   which returns the full DAG of a *released* job (the paper's clairvoyant
//!   scheduler learns `G_i` at `r_i`, never earlier).
//!
//! A scheduler declares its class via [`OnlineScheduler::clairvoyance`]; the
//! view enforces the declaration at runtime by panicking if a scheduler that
//! declared [`Clairvoyance::NonClairvoyant`] asks for a graph.

use crate::instance::Instance;
use crate::state::SimState;
use flowtree_dag::{JobGraph, JobId, NodeId, Time};

/// What the scheduler is allowed to learn about a job at its release.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Clairvoyance {
    /// Learns the full DAG `G_i` at release time `r_i` (Section 5's setting).
    Clairvoyant,
    /// Learns a subjob only when it becomes ready (Section 6's setting).
    NonClairvoyant,
}

/// Read-only view of the simulation handed to the scheduler each step.
pub struct SimView<'a> {
    instance: &'a Instance,
    state: &'a SimState,
    m: usize,
    clairvoyance: Clairvoyance,
}

impl<'a> SimView<'a> {
    /// Assemble a view over explicit simulation state. The engine builds one
    /// per scheduler callback; reference engines and differential tests
    /// driving a [`SimState`](crate::state::SimState) by hand can too.
    pub fn new(
        instance: &'a Instance,
        state: &'a SimState,
        m: usize,
        clairvoyance: Clairvoyance,
    ) -> Self {
        SimView { instance, state, m, clairvoyance }
    }

    /// Number of processors.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Released, unfinished jobs in arrival (FIFO) order.
    pub fn alive(&self) -> &[JobId] {
        self.state.alive()
    }

    /// Ready subjobs of `job` (arbitrary order; pair with
    /// [`ready_seq`](Self::ready_seq) for became-ready order).
    pub fn ready(&self, job: JobId) -> &[u32] {
        self.state.ready(job)
    }

    /// Global became-ready stamp of a node (smaller = became ready earlier;
    /// unique across the simulation).
    pub fn ready_seq(&self, job: JobId, node: NodeId) -> u64 {
        self.state.ready_seq(job, node)
    }

    /// Is this specific subjob ready?
    pub fn is_ready(&self, job: JobId, node: NodeId) -> bool {
        self.state.is_ready(job, node)
    }

    /// Number of unfinished subjobs of `job`.
    pub fn unfinished(&self, job: JobId) -> u32 {
        self.state.unfinished(job)
    }

    /// Completion time of a subjob, if complete.
    pub fn completion(&self, job: JobId, node: NodeId) -> Option<Time> {
        self.state.completion(job, node)
    }

    /// Release time of a *released* job (FIFO needs arrival order, which is
    /// public information once the job has arrived).
    pub fn release(&self, job: JobId) -> Time {
        assert!(
            self.state.is_released(job),
            "release time of an unreleased job is not observable"
        );
        self.instance.release(job)
    }

    /// Total ready subjobs over all alive jobs.
    pub fn total_ready(&self) -> usize {
        self.state.total_ready()
    }

    /// Full DAG of a released job — clairvoyant schedulers only.
    ///
    /// # Panics
    /// If the scheduler declared itself non-clairvoyant, or the job has not
    /// been released yet (no scheduler may peek into the future).
    pub fn graph(&self, job: JobId) -> &'a JobGraph {
        assert!(
            self.clairvoyance == Clairvoyance::Clairvoyant,
            "non-clairvoyant scheduler attempted to read a job DAG"
        );
        assert!(
            self.state.is_released(job),
            "scheduler attempted to read the DAG of an unreleased job"
        );
        self.instance.graph(job)
    }
}

/// Sink for the subjobs the scheduler wants to run this step. The engine
/// validates every push (readiness, distinctness) and the total count.
#[derive(Debug)]
pub struct Selection {
    picks: Vec<(JobId, NodeId)>,
    capacity: usize,
}

impl Selection {
    /// An empty selection with room for `capacity` picks. The engine keeps
    /// one per run and [`clear`](Self::clear)s it each step, so the hot loop
    /// never allocates; external drivers can construct their own.
    pub fn new(capacity: usize) -> Self {
        Selection { picks: Vec::new(), capacity }
    }

    /// Drop all picks, keeping the allocation (capacity is unchanged).
    pub fn clear(&mut self) {
        self.picks.clear();
    }

    /// The picks pushed so far, in push order.
    pub fn picks(&self) -> &[(JobId, NodeId)] {
        &self.picks
    }

    /// Schedule `(job, node)` for the coming step. Returns `false` (and
    /// ignores the push) if capacity is already full.
    pub fn push(&mut self, job: JobId, node: NodeId) -> bool {
        if self.picks.len() >= self.capacity {
            return false;
        }
        self.picks.push((job, node));
        true
    }

    /// Processors still unassigned.
    pub fn remaining(&self) -> usize {
        self.capacity - self.picks.len()
    }

    /// Number of subjobs selected so far.
    pub fn len(&self) -> usize {
        self.picks.len()
    }

    /// Nothing selected yet?
    pub fn is_empty(&self) -> bool {
        self.picks.is_empty()
    }
}

/// An online scheduler: selects ready subjobs each step.
pub trait OnlineScheduler {
    /// Which information class the scheduler needs. The engine builds the
    /// [`SimView`] accordingly.
    fn clairvoyance(&self) -> Clairvoyance;

    /// Called once per job at its release time, before `select` at that time.
    /// `view.graph(job)` is available here for clairvoyant schedulers.
    fn on_arrival(&mut self, _t: Time, _job: JobId, _view: &SimView<'_>) {}

    /// Select up to `m` ready subjobs to run during step `t+1` by pushing
    /// into `sel`. The engine validates readiness and distinctness and will
    /// return an error on any violation.
    fn select(&mut self, t: Time, view: &SimView<'_>, sel: &mut Selection);

    /// Human-readable name used in experiment tables.
    fn name(&self) -> String {
        std::any::type_name::<Self>().to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::{Instance, JobSpec};
    use flowtree_dag::builder::chain;

    fn view_fixture(clair: Clairvoyance) -> (Instance, SimState) {
        let inst = Instance::new(vec![
            JobSpec { graph: chain(2), release: 0 },
            JobSpec { graph: chain(2), release: 10 },
        ]);
        let mut st = SimState::new(&inst);
        st.release_due(&inst, 0);
        let _ = clair;
        (inst, st)
    }

    #[test]
    fn clairvoyant_view_exposes_graph() {
        let (inst, st) = view_fixture(Clairvoyance::Clairvoyant);
        let v = SimView::new(&inst, &st, 4, Clairvoyance::Clairvoyant);
        assert_eq!(v.graph(JobId(0)).work(), 2);
        assert_eq!(v.m(), 4);
        assert_eq!(v.alive(), &[JobId(0)]);
        assert_eq!(v.release(JobId(0)), 0);
    }

    #[test]
    #[should_panic(expected = "non-clairvoyant")]
    fn non_clairvoyant_graph_access_panics() {
        let (inst, st) = view_fixture(Clairvoyance::NonClairvoyant);
        let v = SimView::new(&inst, &st, 4, Clairvoyance::NonClairvoyant);
        let _ = v.graph(JobId(0));
    }

    #[test]
    #[should_panic(expected = "unreleased")]
    fn future_job_graph_access_panics() {
        let (inst, st) = view_fixture(Clairvoyance::Clairvoyant);
        let v = SimView::new(&inst, &st, 4, Clairvoyance::Clairvoyant);
        let _ = v.graph(JobId(1)); // releases at t=10, we are at t=0
    }

    #[test]
    #[should_panic(expected = "unreleased")]
    fn future_release_time_not_observable() {
        let (inst, st) = view_fixture(Clairvoyance::Clairvoyant);
        let v = SimView::new(&inst, &st, 4, Clairvoyance::Clairvoyant);
        let _ = v.release(JobId(1));
    }

    #[test]
    fn selection_capacity_enforced() {
        let mut sel = Selection::new(2);
        assert!(sel.push(JobId(0), NodeId(0)));
        assert_eq!(sel.remaining(), 1);
        assert!(sel.push(JobId(0), NodeId(1)));
        assert!(!sel.push(JobId(0), NodeId(2)));
        assert_eq!(sel.len(), 2);
        assert_eq!(sel.remaining(), 0);
        assert_eq!(sel.picks(), &[(JobId(0), NodeId(0)), (JobId(0), NodeId(1))]);
        sel.clear();
        assert!(sel.is_empty());
        assert_eq!(sel.remaining(), 2); // capacity survives a clear
    }

    #[test]
    fn selection_empty_state() {
        let sel = Selection::new(3);
        assert!(sel.is_empty());
        assert_eq!(sel.remaining(), 3);
    }
}
