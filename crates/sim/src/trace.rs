//! Per-job timelines: a compact textual view of *when each job ran*.
//!
//! Complements the processor-centric Gantt chart ([`crate::gantt`]): one row
//! per job, one column per step, showing for each step whether the job was
//! unreleased, waiting (released, nothing running), running (with how many
//! processors), or done. This is the view that makes flow-time pathologies
//! (like FIFO's key-subjob stalls on the Section 4 adversary) visible at a
//! glance: long stretches of width-1 columns in an otherwise wide row.

use crate::instance::Instance;
use crate::schedule::Schedule;
use flowtree_dag::Time;

/// Symbols: `.` unreleased, `-` waiting, digit/`#` running with that many
/// subjobs (capped at 9), ` ` done.
pub fn job_timelines(instance: &Instance, schedule: &Schedule) -> Vec<String> {
    let horizon = schedule.horizon();
    let completions = schedule.completion_times(instance);
    let mut per_step: Vec<Vec<u32>> = vec![vec![0; horizon as usize + 1]; instance.num_jobs()];
    for (t, picks) in schedule.iter() {
        for &(j, _) in picks {
            per_step[j.index()][t as usize] += 1;
        }
    }
    instance
        .iter()
        .map(|(id, spec)| {
            let done = completions[id.index()].unwrap_or(Time::MAX);
            (1..=horizon)
                .map(|t| {
                    let k = per_step[id.index()][t as usize];
                    if k > 0 {
                        if k <= 9 {
                            char::from_digit(k, 10).unwrap()
                        } else {
                            '#'
                        }
                    } else if t > done {
                        ' '
                    } else if t <= spec.release {
                        '.'
                    } else {
                        '-'
                    }
                })
                .collect()
        })
        .collect()
}

/// Render the timelines with row labels and a terminal flow column.
pub fn render_timelines(instance: &Instance, schedule: &Schedule) -> String {
    let lines = job_timelines(instance, schedule);
    let completions = schedule.completion_times(instance);
    let mut out = String::new();
    out.push_str("           (. unreleased  - waiting  digit running  blank done)\n");
    for (id, spec) in instance.iter() {
        let flow = completions[id.index()].map(|c| c - spec.release).unwrap_or(0);
        out.push_str(&format!("J{:<4} |{}| flow {}\n", id.0, lines[id.index()], flow));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::JobSpec;
    use flowtree_dag::builder::{chain, star};
    use flowtree_dag::{JobId, NodeId};

    fn fixture() -> (Instance, Schedule) {
        let inst = Instance::new(vec![
            JobSpec { graph: chain(2), release: 0 },
            JobSpec { graph: star(2), release: 2 },
        ]);
        let mut s = Schedule::new(2);
        s.push_step(vec![(JobId(0), NodeId(0))]); // t=1
        s.push_step(vec![(JobId(0), NodeId(1))]); // t=2
        s.push_step(vec![(JobId(1), NodeId(0))]); // t=3
        s.push_step(vec![(JobId(1), NodeId(1)), (JobId(1), NodeId(2))]); // t=4
        (inst, s)
    }

    #[test]
    fn timeline_symbols() {
        let (inst, s) = fixture();
        let lines = job_timelines(&inst, &s);
        assert_eq!(lines[0], "11  "); // runs t=1,2 then done
        assert_eq!(lines[1], "..12"); // unreleased until 2, runs 3 and 4
    }

    #[test]
    fn waiting_shown_as_dash() {
        let inst = Instance::new(vec![
            JobSpec { graph: chain(1), release: 0 },
            JobSpec { graph: chain(1), release: 0 },
        ]);
        let mut s = Schedule::new(1);
        s.push_step(vec![(JobId(0), NodeId(0))]);
        s.push_step(vec![(JobId(1), NodeId(0))]);
        let lines = job_timelines(&inst, &s);
        assert_eq!(lines[1], "-1"); // waits a step while job 0 runs
    }

    #[test]
    fn render_includes_flows() {
        let (inst, s) = fixture();
        let text = render_timelines(&inst, &s);
        assert!(text.contains("J0"));
        assert!(text.contains("flow 2"));
        assert!(text.contains("| flow 2")); // J1: completes 4, released 2
    }

    #[test]
    fn wide_steps_capped_at_hash() {
        let inst = Instance::single(star(12));
        let mut s = Schedule::new(16);
        s.push_step(vec![(JobId(0), NodeId(0))]);
        s.push_step((1..=12).map(|i| (JobId(0), NodeId(i))).collect());
        let lines = job_timelines(&inst, &s);
        assert_eq!(lines[0], "1#");
    }
}
