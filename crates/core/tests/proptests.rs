//! Property tests for the paper's algorithms: the theorems' inequalities
//! must hold on randomized instances, not just hand-picked ones.

use flowtree_core::lpf::{lpf_levels, lpf_levels_restricted, RectangleTail};
use flowtree_core::{AlgoA, Fifo, GuessDoubleA, Lpf, McReplay, TieBreak};
use flowtree_dag::{DepthProfile, GraphBuilder, JobGraph, NodeId};
use flowtree_sim::metrics::flow_stats;
use flowtree_sim::{Engine, Instance, JobSpec};
use proptest::prelude::*;

fn arb_tree(max_n: usize) -> impl Strategy<Value = JobGraph> {
    (1..=max_n).prop_flat_map(|n| {
        proptest::collection::vec(0..usize::MAX, n.saturating_sub(1)).prop_map(move |cs| {
            let mut b = GraphBuilder::new(n);
            for (i, &c) in cs.iter().enumerate() {
                b.edge((c % (i + 1)) as u32, (i + 1) as u32);
            }
            b.build().unwrap()
        })
    })
}

/// Replay levels as a single-job schedule and verify feasibility.
fn assert_levels_feasible(g: &JobGraph, levels: &[Vec<u32>], p: usize) {
    let inst = Instance::single(g.clone());
    let mut s = flowtree_sim::Schedule::new(p);
    for level in levels {
        assert!(level.len() <= p);
        s.push_step(level.iter().map(|&v| (flowtree_dag::JobId(0), NodeId(v))).collect());
    }
    s.verify(&inst).unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Corollary 5.4 on random trees: LPF attains the closed form.
    #[test]
    fn lpf_attains_corollary_5_4(g in arb_tree(80), m in 1usize..12) {
        let levels = lpf_levels(&g, m);
        assert_levels_feasible(&g, &levels, m);
        prop_assert_eq!(
            levels.len() as u64,
            DepthProfile::new(&g).opt_single_job(m as u64)
        );
    }

    /// Lemma 5.3 on random trees: LPF[m/alpha] <= alpha * OPT[m].
    #[test]
    fn lpf_alpha_competitive(g in arb_tree(80), p in 1usize..6, alpha in 1usize..5) {
        let m = p * alpha;
        let opt = DepthProfile::new(&g).opt_single_job(m as u64);
        let flow = lpf_levels(&g, p).len() as u64;
        prop_assert!(flow <= alpha as u64 * opt, "flow {flow} > {alpha} * {opt}");
    }

    /// Lemma 5.2 / Figure 2 on random trees: the tail of LPF[m/alpha] is
    /// full-width except its last step.
    #[test]
    fn lpf_tail_is_rectangular(g in arb_tree(80), p in 1usize..6, alpha in 2usize..5) {
        let m = p * alpha;
        let opt = DepthProfile::new(&g).opt_single_job(m as u64);
        let levels = lpf_levels(&g, p);
        let shape = RectangleTail::measure(&levels, opt, p);
        prop_assert!(shape.is_rectangle(), "{shape:?}");
    }

    /// Lemma 5.5 on random tails and arbitrary grant sequences.
    #[test]
    fn mc_never_idles_granted_processors(
        g in arb_tree(60),
        p in 1usize..5,
        grants in proptest::collection::vec(0usize..5, 1..200),
    ) {
        if grants.iter().all(|&g| g == 0) {
            return Ok(()); // no processors ever granted: replay cannot progress
        }
        let alpha = 4;
        let opt = DepthProfile::new(&g).opt_single_job((p * alpha) as u64);
        let levels = lpf_levels(&g, p);
        if levels.len() <= opt as usize {
            return Ok(()); // no tail
        }
        let tail: Vec<Vec<u32>> = levels[opt as usize..].to_vec();
        let mut mc = McReplay::new(&g, tail);
        let mut gi = 0usize;
        let mut steps = 0usize;
        while !mc.is_done() {
            let m_t = grants[gi % grants.len()].min(p);
            gi += 1;
            let got = mc.next(m_t).len();
            prop_assert!(got == m_t || mc.is_done(), "idled {m_t}-{got}");
            steps += 1;
            prop_assert!(steps < 100_000);
        }
    }

    /// Restricted LPF equals full LPF on the remaining induced subgraph.
    #[test]
    fn restricted_lpf_equals_subgraph_lpf(g in arb_tree(40), p in 1usize..4, cut in 0u32..40) {
        // Build a descendant-closed remaining set: drop nodes with id < cut
        // only if their parents are also dropped... simplest valid
        // construction: remaining = all descendants of nodes >= cut union
        // nothing — instead take the executed set as an ancestor-closed
        // prefix: run LPF for `cut` steps and mark what ran.
        let levels = lpf_levels(&g, p);
        let steps = (cut as usize).min(levels.len());
        let mut remaining = vec![true; g.n()];
        for level in &levels[..steps] {
            for &v in level {
                remaining[v as usize] = false;
            }
        }
        if remaining.iter().all(|&r| !r) {
            return Ok(());
        }
        let rl = lpf_levels_restricted(&g, Some(&remaining), p);
        let (sub, old) = g.induced_subgraph(&remaining);
        let sl = lpf_levels(&sub, p);
        // Same number of steps and same level sizes (ids differ by the
        // relabelling; heights are preserved because the set is
        // descendant-closed).
        prop_assert_eq!(rl.len(), sl.len());
        for (a, b) in rl.iter().zip(&sl) {
            prop_assert_eq!(a.len(), b.len());
        }
        // And the relabelled nodes match level by level as sets.
        for (a, b) in rl.iter().zip(&sl) {
            let mut a = a.clone();
            let mut b: Vec<u32> = b.iter().map(|&v| old[v as usize]).collect();
            a.sort_unstable();
            b.sort_unstable();
            prop_assert_eq!(a, b);
        }
    }

    /// FIFO invariant on random instances: whenever fewer than m subjobs
    /// run, nothing was ready and skipped.
    #[test]
    fn fifo_schedules_everything_ready_or_fills_machine(
        trees in proptest::collection::vec((arb_tree(20), 0u64..8), 1..5),
        m in 1usize..5,
    ) {
        let inst = Instance::new(
            trees.into_iter().map(|(graph, release)| JobSpec { graph, release }).collect(),
        );
        let s = Engine::new(m).run(&inst, &mut Fifo::arbitrary()).unwrap();
        s.verify(&inst).unwrap();
        let mut st = flowtree_sim::SimState::new(&inst);
        for t in 0..s.horizon() {
            st.release_due(&inst, t);
            let picks = s.at(t + 1);
            if picks.len() < m {
                prop_assert_eq!(st.total_ready(), picks.len(), "idle with ready work at t={}", t);
            }
            for &(j, v) in picks {
                st.complete(&inst, j, v, t + 1);
            }
            st.prune_alive();
        }
    }

    /// Theorem 5.6's inequality on random semi-batched streams.
    #[test]
    fn algo_a_within_theorem_bound(
        trees in proptest::collection::vec(arb_tree(30), 2..6),
        half in 2u64..8,
    ) {
        let m = 8usize;
        let inst = Instance::new(
            trees
                .into_iter()
                .enumerate()
                .map(|(i, graph)| JobSpec { graph, release: i as u64 * half })
                .collect(),
        );
        let mut a = AlgoA::semi_batched(4, half);
        let s = Engine::new(m).with_max_horizon(1_000_000).run(&inst, &mut a).unwrap();
        s.verify(&inst).unwrap();
        let stats = flow_stats(&inst, &s);
        // The bound holds vs the *claimed* OPT estimate only when the
        // estimate is valid; vs the certified lower bound it holds with the
        // 129 constant whenever 2*half >= lb. Use the defensible check:
        let lb = flowtree_opt::bounds::combined_lower_bound(&inst, m as u64);
        let opt_est = (2 * half).max(lb);
        prop_assert!(stats.max_flow <= 129 * opt_est);
    }

    /// Guess-and-double completes and respects Theorem 5.7 vs lower bounds.
    #[test]
    fn guess_double_within_theorem_bound(
        trees in proptest::collection::vec((arb_tree(24), 0u64..12), 1..5),
    ) {
        let m = 8usize;
        let inst = Instance::new(
            trees.into_iter().map(|(graph, release)| JobSpec { graph, release }).collect(),
        );
        let mut gd = GuessDoubleA::paper();
        let s = Engine::new(m).with_max_horizon(10_000_000).run(&inst, &mut gd).unwrap();
        s.verify(&inst).unwrap();
        let stats = flow_stats(&inst, &s);
        let lb = flowtree_opt::bounds::combined_lower_bound(&inst, m as u64).max(1);
        prop_assert!(stats.max_flow <= 1548 * lb);
    }

    /// LPF multi-job scheduler dominates no one in general but always
    /// verifies and meets per-job spans.
    #[test]
    fn multi_job_lpf_feasible(
        trees in proptest::collection::vec((arb_tree(20), 0u64..6), 1..5),
        m in 1usize..5,
    ) {
        let inst = Instance::new(
            trees.into_iter().map(|(graph, release)| JobSpec { graph, release }).collect(),
        );
        let s = Engine::new(m).run(&inst, &mut Lpf::new()).unwrap();
        s.verify(&inst).unwrap();
        let stats = flow_stats(&inst, &s);
        for (id, spec) in inst.iter() {
            prop_assert!(stats.flows[id.index()] >= spec.graph.span());
        }
    }

    /// All FIFO tie-breaks produce the same *job-level* completion profile
    /// when every job is a chain (no intra-job choice exists).
    #[test]
    fn tiebreaks_agree_on_chains(
        lens in proptest::collection::vec(1usize..8, 1..5),
        m in 1usize..4,
    ) {
        let inst = Instance::new(
            lens.iter()
                .enumerate()
                .map(|(i, &l)| JobSpec {
                    graph: flowtree_dag::builder::chain(l),
                    release: i as u64,
                })
                .collect(),
        );
        let mut flows = Vec::new();
        for tie in [TieBreak::BecameReady, TieBreak::LastReady, TieBreak::HighestHeight] {
            let s = Engine::new(m).run(&inst, &mut Fifo::new(tie)).unwrap();
            flows.push(flow_stats(&inst, &s).flows);
        }
        prop_assert_eq!(&flows[0], &flows[1]);
        prop_assert_eq!(&flows[0], &flows[2]);
    }
}
