//! Differential testing: an independent, deliberately naive reference
//! implementation of FIFO[became-ready] is compared step-for-step against
//! the engine + `Fifo` pipeline. The reference shares *no code* with the
//! production path (no SimState, no ready queues — it rescans everything
//! each step), so agreement rules out whole classes of bookkeeping bugs.

use flowtree_core::{Fifo, TieBreak};
use flowtree_dag::{GraphBuilder, JobGraph, Time};
use flowtree_sim::{Engine, Instance, JobSpec};
use proptest::prelude::*;

/// Reference FIFO: returns per-(job, node) completion times.
///
/// Per step: walk jobs in arrival order; a node is ready if its job is
/// released, all its parents are complete, and it is not complete. Within a
/// job, nodes are taken in "became-ready order", reconstructed the naive
/// way: a ready node's priority is (time it became ready, the order its
/// last-finishing parent... ). For out-forests with the engine's child-push
/// order, became-ready order within a job equals ordering by
/// (ready_time, parent completion order, child-list position) — which for
/// the engine's SimState is: roots in id order at release, then children
/// appended in (parent completion step, parent position in that step's
/// processing order, child-list order). To stay truly independent we
/// reconstruct it as (ready_time, sequence number assigned when a node
/// first becomes ready, scanning parents in the order their completions
/// were recorded this step).
fn reference_fifo(instance: &Instance, m: usize) -> Vec<Vec<Time>> {
    let _n_jobs = instance.num_jobs();
    let mut complete: Vec<Vec<Time>> =
        instance.jobs().iter().map(|j| vec![0; j.graph.n()]).collect();
    // became-ready sequence per (job, node); usize::MAX = not yet ready.
    let mut seq: Vec<Vec<usize>> =
        instance.jobs().iter().map(|j| vec![usize::MAX; j.graph.n()]).collect();
    let mut next_seq = 0usize;
    let mut remaining: usize = instance.jobs().iter().map(|j| j.graph.n()).sum();
    let mut t: Time = 0;

    // Assign ready sequence numbers for anything that becomes ready at time
    // `t` (release or parents complete by t), scanning jobs and nodes in a
    // fixed order. The engine pushes roots in id order and children in
    // child-list order at the completing step; scanning nodes in id order
    // per completion wave reproduces that order for out-forests as long as
    // within one wave we order by (parent's completion step, parent id,
    // child list position). We emulate exactly that.
    let mark_ready = |t: Time,
                      instance: &Instance,
                      complete: &Vec<Vec<Time>>,
                      seq: &mut Vec<Vec<usize>>,
                      next_seq: &mut usize| {
        for (j, spec) in instance.jobs().iter().enumerate() {
            if spec.release != t {
                continue;
            }
            for v in spec.graph.nodes() {
                if spec.graph.in_degree(v) == 0 {
                    seq[j][v.index()] = *next_seq;
                    *next_seq += 1;
                }
            }
        }
        // Children enabled by completions at exactly time t: order by
        // (parent seq) then child-list order — matching SimState, which
        // processes the step's picks in selection order (selection order =
        // ready order = seq order).
        // Engine enabling order within a step: picks are applied in
        // selection order = jobs in arrival order, then by became-ready
        // stamp within a job; each pick enables its children in child-list
        // (ascending id) order. Key: (job, parent_seq, child id).
        let mut enabled: Vec<(usize, usize, u32)> = Vec::new(); // (job, parent_seq, child)
        for (j, spec) in instance.jobs().iter().enumerate() {
            for v in spec.graph.nodes() {
                if complete[j][v.index()] == t {
                    for &c in spec.graph.children(v) {
                        let all_done =
                            spec.graph.parents(flowtree_dag::NodeId(c)).iter().all(|&u| {
                                complete[j][u as usize] != 0 && complete[j][u as usize] <= t
                            });
                        if all_done && seq[j][c as usize] == usize::MAX {
                            enabled.push((j, seq[j][v.index()], c));
                        }
                    }
                }
            }
        }
        enabled.sort_unstable();
        for (j, _, c) in enabled {
            seq[j][c as usize] = *next_seq;
            *next_seq += 1;
        }
    };

    while remaining > 0 {
        mark_ready(t, instance, &complete, &mut seq, &mut next_seq);
        // FIFO selection: jobs in arrival order, ready nodes by seq.
        let mut capacity = m;
        let mut picks: Vec<(usize, u32)> = Vec::new();
        for (j, spec) in instance.jobs().iter().enumerate() {
            if spec.release > t || capacity == 0 {
                continue;
            }
            let mut ready: Vec<(usize, u32)> = spec
                .graph
                .nodes()
                .filter(|&v| complete[j][v.index()] == 0 && seq[j][v.index()] != usize::MAX)
                .map(|v| (seq[j][v.index()], v.0))
                .collect();
            ready.sort_unstable();
            for (_, v) in ready.into_iter().take(capacity) {
                picks.push((j, v));
                capacity -= 1;
            }
        }
        for (j, v) in picks {
            complete[j][v as usize] = t + 1;
            remaining -= 1;
        }
        t += 1;
        assert!(t < 1_000_000, "reference FIFO ran away");
    }
    complete
}

fn arb_tree(max_n: usize) -> impl Strategy<Value = JobGraph> {
    (1..=max_n).prop_flat_map(|n| {
        proptest::collection::vec(0..usize::MAX, n.saturating_sub(1)).prop_map(move |cs| {
            let mut b = GraphBuilder::new(n);
            for (i, &c) in cs.iter().enumerate() {
                b.edge((c % (i + 1)) as u32, (i + 1) as u32);
            }
            b.build().unwrap()
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn engine_fifo_matches_reference(
        trees in proptest::collection::vec((arb_tree(16), 0u64..8), 1..6),
        m in 1usize..5,
    ) {
        let inst = Instance::new(
            trees.into_iter().map(|(graph, release)| JobSpec { graph, release }).collect(),
        );
        let s = Engine::new(m)
            .run(&inst, &mut Fifo::new(TieBreak::BecameReady))
            .unwrap();
        s.verify(&inst).unwrap();
        let reference = reference_fifo(&inst, m);
        // Same completion time for every single subjob.
        for (id, spec) in inst.iter() {
            for v in spec.graph.nodes() {
                let mut got = 0;
                for (t, picks) in s.iter() {
                    if picks.contains(&(id, v)) {
                        got = t;
                    }
                }
                prop_assert_eq!(
                    got,
                    reference[id.index()][v.index()],
                    "mismatch at {}/{}", id, v
                );
            }
        }
    }
}

#[test]
fn reference_agrees_on_adversary_instances() {
    use flowtree_workloads::adversary;
    let m = 6;
    let out = adversary::duel(m, m, 5);
    let inst = adversary::materialize(&out);
    let s = Engine::new(m)
        .with_max_horizon(1_000_000)
        .run(&inst, &mut Fifo::new(TieBreak::BecameReady))
        .unwrap();
    let reference = reference_fifo(&inst, m);
    let stats = flowtree_sim::metrics::flow_stats(&inst, &s);
    for (id, spec) in inst.iter() {
        let ref_completion =
            spec.graph.nodes().map(|v| reference[id.index()][v.index()]).max().unwrap();
        assert_eq!(
            stats.flows[id.index()],
            ref_completion - spec.release,
            "job {id} flow mismatch"
        );
    }
}
