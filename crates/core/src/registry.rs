//! Name-indexed scheduler registry.
//!
//! Every scheduler in the repository, constructible from a declarative
//! [`SchedulerSpec`] — so the CLI, the experiment matrix (E16), and the
//! benchmarks share one list instead of three hand-built ones. A spec is a
//! plain value: it can be parsed from a CLI name, compared, copied, and
//! turned into a live scheduler with [`build_scheduler`].

use crate::baselines::{LeastRemainingWorkFirst, RandomWorkConserving, RoundRobin};
use crate::{AlgoA, Fifo, GuessDoubleA, Lpf, TieBreak};
use flowtree_dag::Time;
use flowtree_sim::{HeadTailChecks, InvariantChecks, OnlineScheduler};

/// Default `algo-a` half-batch length used when a spec is parsed without an
/// explicit parameter (the `FromStr` impl); matches the CLI `--half` default.
pub const DEFAULT_HALF: Time = 8;

/// Canonical CLI names, one per registry entry (order matches `--help`).
pub const SCHEDULER_NAMES: &[&str] = &[
    "fifo",
    "fifo-last",
    "fifo-random",
    "fifo-lpf",
    "fifo-mc",
    "lpf",
    "algo-a",
    "guess-double",
    "round-robin",
    "random-wc",
    "lrwf",
];

/// A declarative description of a scheduler configuration.
///
/// Unlike a `Box<dyn OnlineScheduler>`, a spec is `Copy + Eq`: lists of
/// specs can be stored in constants, compared in tests, and rebuilt fresh
/// for every run (schedulers are stateful, so each run needs a new one).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulerSpec {
    /// The FIFO family with a concrete intra-job tie-break.
    Fifo(TieBreak),
    /// Longest Path First (clairvoyant, Section 5.1).
    Lpf,
    /// Algorithm 𝒜 with the batching reduction (`alpha >= 3`, `half >= 1`).
    AlgoA {
        /// Processor-augmentation parameter α of Section 5.3.
        alpha: usize,
        /// Half-batch length of the Section 5.4 reduction.
        half: Time,
    },
    /// Guess-and-double wrapper with the paper's constants (Theorem 5.7).
    GuessDouble,
    /// Round-robin equipartition baseline.
    RoundRobin,
    /// Random work-conserving baseline with a fixed seed.
    RandomWc {
        /// RNG seed (fixed so runs are reproducible).
        seed: u64,
    },
    /// Least-remaining-work-first baseline.
    Lrwf,
}

impl SchedulerSpec {
    /// The canonical CLI name for this spec (parameters are not encoded).
    pub fn name(&self) -> &'static str {
        match self {
            SchedulerSpec::Fifo(TieBreak::BecameReady) => "fifo",
            SchedulerSpec::Fifo(TieBreak::LastReady) => "fifo-last",
            SchedulerSpec::Fifo(TieBreak::Random(_)) => "fifo-random",
            SchedulerSpec::Fifo(TieBreak::HighestHeight) => "fifo-lpf",
            SchedulerSpec::Fifo(TieBreak::MostChildren) => "fifo-mc",
            SchedulerSpec::Lpf => "lpf",
            SchedulerSpec::AlgoA { .. } => "algo-a",
            SchedulerSpec::GuessDouble => "guess-double",
            SchedulerSpec::RoundRobin => "round-robin",
            SchedulerSpec::RandomWc { .. } => "random-wc",
            SchedulerSpec::Lrwf => "lrwf",
        }
    }

    /// Parse a CLI name into a spec, overriding the `algo-a` half-batch
    /// parameter; the other entries ignore `half`. Parameterized entries get
    /// the same fixed defaults the CLI has always used (seed 1). Prefer
    /// `name.parse::<SchedulerSpec>()` when the default half is fine.
    pub fn from_name_with_half(name: &str, half: Time) -> Result<Self, String> {
        Ok(match name {
            "fifo" => SchedulerSpec::Fifo(TieBreak::BecameReady),
            "fifo-last" => SchedulerSpec::Fifo(TieBreak::LastReady),
            "fifo-random" => SchedulerSpec::Fifo(TieBreak::Random(1)),
            "fifo-lpf" => SchedulerSpec::Fifo(TieBreak::HighestHeight),
            "fifo-mc" => SchedulerSpec::Fifo(TieBreak::MostChildren),
            "lpf" => SchedulerSpec::Lpf,
            "algo-a" => SchedulerSpec::AlgoA { alpha: 4, half: half.max(1) },
            "guess-double" => SchedulerSpec::GuessDouble,
            "round-robin" => SchedulerSpec::RoundRobin,
            "random-wc" => SchedulerSpec::RandomWc { seed: 1 },
            "lrwf" => SchedulerSpec::Lrwf,
            other => {
                return Err(format!(
                    "unknown scheduler '{other}'; known: {}",
                    SCHEDULER_NAMES.join(", ")
                ))
            }
        })
    }

    /// Deprecated alias of [`SchedulerSpec::from_name_with_half`].
    #[deprecated(note = "use `name.parse::<SchedulerSpec>()` or \
                         `SchedulerSpec::from_name_with_half`")]
    pub fn parse(name: &str, half: Time) -> Result<Self, String> {
        Self::from_name_with_half(name, half)
    }

    /// Every registry entry, in [`SCHEDULER_NAMES`] order.
    pub fn all(half: Time) -> Vec<SchedulerSpec> {
        SCHEDULER_NAMES
            .iter()
            .map(|n| SchedulerSpec::from_name_with_half(n, half).expect("registry names parse"))
            .collect()
    }

    /// The canonical comparison set used by the E16 scheduler matrix:
    /// the three deterministic FIFO tie-breaks, LPF, guess-and-double 𝒜,
    /// and the three classical baselines.
    pub fn matrix() -> Vec<SchedulerSpec> {
        vec![
            SchedulerSpec::Fifo(TieBreak::BecameReady),
            SchedulerSpec::Fifo(TieBreak::HighestHeight),
            SchedulerSpec::Fifo(TieBreak::MostChildren),
            SchedulerSpec::Lpf,
            SchedulerSpec::GuessDouble,
            SchedulerSpec::RoundRobin,
            SchedulerSpec::RandomWc { seed: 7 },
            SchedulerSpec::Lrwf,
        ]
    }

    /// Build a fresh scheduler from this spec. The box is `Send`, so built
    /// schedulers can move into worker threads (sweeps, serve shards).
    pub fn build(&self) -> Box<dyn OnlineScheduler + Send> {
        build_scheduler(*self)
    }

    /// Which structural invariants this scheduler provably upholds, for an
    /// `InvariantMonitor` to enforce. The FIFO family and the classical
    /// baselines are work-conserving by construction (MC additionally by
    /// Lemma 5.5); LPF moreover produces the Lemma 5.2 rectangle tail on
    /// single-job runs (at augmentation α = 1, since the registry runs it
    /// unaugmented). Algorithm 𝒜 and its guess-and-double wrapper
    /// deliberately idle processors for their worst-case guarantees, so
    /// work conservation does *not* apply — instead they carry the
    /// Theorem 5.6 head/tail group check: no release group ever exceeds
    /// its `m/α` slice in one step, and (for 𝒜 run with its own fixed
    /// estimate) a tail group whose Lemma 5.2 rectangle ran short never
    /// schedules again. Guess-and-double restarts its inner 𝒜 with fresh
    /// groupings, so only the width cap is sound there (`half = 1` groups
    /// exactly the same-release jobs, which restarts keep together; the
    /// wrapper's inner α is the paper's 4).
    pub fn invariants(&self) -> InvariantChecks {
        match self {
            SchedulerSpec::Fifo(_)
            | SchedulerSpec::RoundRobin
            | SchedulerSpec::RandomWc { .. }
            | SchedulerSpec::Lrwf => InvariantChecks::WORK_CONSERVING,
            SchedulerSpec::Lpf => InvariantChecks {
                work_conserving: true,
                rectangle_tail_alpha: Some(1),
                head_tail: None,
            },
            SchedulerSpec::AlgoA { alpha, half } => InvariantChecks {
                work_conserving: false,
                rectangle_tail_alpha: None,
                head_tail: Some(HeadTailChecks { alpha: *alpha, half: *half, strict: true }),
            },
            SchedulerSpec::GuessDouble => InvariantChecks {
                work_conserving: false,
                rectangle_tail_alpha: None,
                head_tail: Some(HeadTailChecks { alpha: 4, half: 1, strict: false }),
            },
        }
    }
}

impl std::str::FromStr for SchedulerSpec {
    type Err = String;

    /// Parse a registry name. `algo-a` takes [`DEFAULT_HALF`] as its
    /// half-batch length; use [`SchedulerSpec::from_name_with_half`] to
    /// override it.
    fn from_str(s: &str) -> Result<Self, String> {
        Self::from_name_with_half(s, DEFAULT_HALF)
    }
}

impl std::fmt::Display for SchedulerSpec {
    /// The canonical CLI name (parameters are not encoded, matching
    /// [`SchedulerSpec::name`]).
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Build a fresh scheduler from `spec` (see [`SchedulerSpec::build`]).
pub fn build_scheduler(spec: SchedulerSpec) -> Box<dyn OnlineScheduler + Send> {
    match spec {
        SchedulerSpec::Fifo(tie) => Box::new(Fifo::new(tie)),
        SchedulerSpec::Lpf => Box::new(Lpf::new()),
        SchedulerSpec::AlgoA { alpha, half } => Box::new(AlgoA::with_batching(alpha, half)),
        SchedulerSpec::GuessDouble => Box::new(GuessDoubleA::paper()),
        SchedulerSpec::RoundRobin => Box::new(RoundRobin),
        SchedulerSpec::RandomWc { seed } => Box::new(RandomWorkConserving::new(seed)),
        SchedulerSpec::Lrwf => Box::new(LeastRemainingWorkFirst),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowtree_sim::{Engine, Instance};

    #[test]
    fn every_name_parses_and_roundtrips() {
        for &name in SCHEDULER_NAMES {
            let spec: SchedulerSpec = name.parse().unwrap_or_else(|e: String| panic!("{e}"));
            assert_eq!(spec.name(), name);
            // Display is the FromStr inverse (modulo parameters).
            assert_eq!(spec.to_string(), name);
        }
    }

    #[test]
    fn from_name_with_half_parameterizes_algo_a() {
        assert_eq!(
            SchedulerSpec::from_name_with_half("algo-a", 16),
            Ok(SchedulerSpec::AlgoA { alpha: 4, half: 16 })
        );
        // The FromStr path uses the documented default.
        assert_eq!(
            "algo-a".parse::<SchedulerSpec>(),
            Ok(SchedulerSpec::AlgoA { alpha: 4, half: DEFAULT_HALF })
        );
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_parse_shim_still_works() {
        assert_eq!(SchedulerSpec::parse("lpf", 1), Ok(SchedulerSpec::Lpf));
    }

    #[test]
    fn unknown_name_is_an_error() {
        assert!("sjf-magic".parse::<SchedulerSpec>().is_err());
        assert!("".parse::<SchedulerSpec>().is_err());
    }

    #[test]
    fn all_matches_name_list() {
        let all = SchedulerSpec::all(8);
        assert_eq!(all.len(), SCHEDULER_NAMES.len());
        for (spec, &name) in all.iter().zip(SCHEDULER_NAMES) {
            assert_eq!(spec.name(), name);
        }
    }

    #[test]
    fn every_spec_builds_and_runs() {
        let inst = Instance::single(flowtree_dag::builder::star(6));
        for spec in SchedulerSpec::all(4) {
            let mut s = spec.build();
            let report = Engine::new(8)
                .with_max_horizon(100_000)
                .run(&inst, s.as_mut())
                .unwrap_or_else(|e| panic!("{}: {e}", spec.name()));
            report.verify(&inst).unwrap();
        }
    }

    #[test]
    fn invariants_match_scheduler_construction() {
        for spec in SchedulerSpec::all(8) {
            let inv = spec.invariants();
            match spec.name() {
                "algo-a" | "guess-double" => {
                    assert!(!inv.work_conserving, "{} reserves capacity", spec.name());
                    let ht = inv.head_tail.unwrap_or_else(|| {
                        panic!("{} must carry the head/tail group check", spec.name())
                    });
                    // 𝒜 is checked against its own parameters, strictly;
                    // the guess-double wrapper regroups on every restart,
                    // so only the width cap (non-strict) is sound for it.
                    if spec.name() == "algo-a" {
                        assert_eq!((ht.alpha, ht.half, ht.strict), (4, 8, true));
                    } else {
                        assert_eq!((ht.alpha, ht.half, ht.strict), (4, 1, false));
                    }
                }
                _ => {
                    assert!(inv.work_conserving, "{} is work-conserving", spec.name());
                    assert!(inv.head_tail.is_none(), "{} has no group structure", spec.name());
                }
            }
            assert_eq!(inv.rectangle_tail_alpha.is_some(), spec.name() == "lpf");
        }
    }

    #[test]
    fn algo_a_and_guess_double_stay_clean_under_their_head_tail_checks() {
        use flowtree_sim::monitor::InvariantMonitor;
        use flowtree_sim::JobSpec;
        // A semi-batched stream with a comfortably valid estimate: the
        // strict Thm 5.6 structure must hold step for step.
        let half: flowtree_dag::Time = 8;
        let m = 8;
        let mut jobs = Vec::new();
        for i in 0..5u64 {
            jobs.push(JobSpec { graph: flowtree_dag::builder::star(7), release: i * half });
            jobs.push(JobSpec { graph: flowtree_dag::builder::chain(4), release: i * half });
        }
        let inst = Instance::new(jobs);
        for spec in [SchedulerSpec::AlgoA { alpha: 4, half }, SchedulerSpec::GuessDouble] {
            let mut mon = InvariantMonitor::new(&inst, spec.invariants());
            let mut s = spec.build();
            Engine::new(m)
                .with_max_horizon(1_000_000)
                .with_probe(&mut mon)
                .run(&inst, s.as_mut())
                .unwrap_or_else(|e| panic!("{}: {e}", spec.name()));
            assert!(
                mon.is_clean(),
                "{} breached its own structure: {:?}",
                spec.name(),
                mon.violations()
            );
        }
    }

    #[test]
    fn head_tail_monitor_flags_a_greedy_impostor() {
        use flowtree_sim::monitor::InvariantMonitor;
        // FIFO schedules far more than one m/alpha slice per group per
        // step, so running it under algo-a's checks must light up the
        // group-width rule — proving the monitor actually bites.
        let inst = Instance::single(flowtree_dag::builder::star(40));
        let spec = SchedulerSpec::AlgoA { alpha: 4, half: 8 };
        let mut mon = InvariantMonitor::new(&inst, spec.invariants());
        let mut s = SchedulerSpec::Fifo(TieBreak::BecameReady).build();
        Engine::new(8).with_probe(&mut mon).run(&inst, s.as_mut()).expect("fifo runs");
        assert!(!mon.is_clean());
        assert!(mon
            .violations()
            .iter()
            .any(|v| v.rule == flowtree_sim::InvariantRule::GroupWidth));
    }

    #[test]
    fn built_schedulers_and_monitor_stack_are_send() {
        // Compile-time guarantees that a whole monitored cell can move into
        // a worker thread (parallel sweeps, serve shards).
        fn assert_send<T: Send>() {}
        assert_send::<Box<dyn OnlineScheduler + Send>>();
        assert_send::<flowtree_sim::monitor::LowerBound>();
        assert_send::<flowtree_sim::monitor::InvariantMonitor>();
        assert_send::<flowtree_sim::RunHistograms>();
        assert_send::<flowtree_sim::Counters>();
        assert_send::<(
            flowtree_sim::monitor::LowerBound,
            flowtree_sim::monitor::InvariantMonitor,
            flowtree_sim::RunHistograms,
        )>();
    }

    #[test]
    fn matrix_is_the_canonical_eight() {
        let m = SchedulerSpec::matrix();
        assert_eq!(m.len(), 8);
        let names: Vec<_> = m.iter().map(|s| s.name()).collect();
        // All distinct (the matrix never lists a configuration twice).
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
    }
}
