//! Guess-and-double — removing the a-priori knowledge of OPT (Section 5.4).
//!
//! The paper's final algorithm maintains a working lower bound `AOPT` on the
//! optimal maximum flow, starting at 1. It runs the batched Algorithm 𝒜 with
//! block length `half = AOPT` (so the inner working OPT estimate `2·half`
//! covers the batched instance's true optimum, which is at most
//! `OPT + AOPT ≤ 2·AOPT` once `AOPT ≥ OPT`). Whenever some alive job's age
//! exceeds `β·AOPT/2`, the guess was too small: `AOPT` doubles and 𝒜 restarts
//! with every unfinished job's *unexecuted portion* re-enqueued as a fresh
//! arrival (deferred to the next block boundary). Theorem 5.7: the total
//! delay telescopes to a constant factor, giving 1548-competitiveness with
//! α = 4, β = 258.

use crate::algo_a::AlgoA;
use flowtree_dag::{JobId, Time};
use flowtree_sim::{Clairvoyance, OnlineScheduler, Selection, SimView};

/// The fully general clairvoyant out-forest scheduler (Theorem 5.7).
pub struct GuessDoubleA {
    alpha: usize,
    beta: u64,
    /// Current guess (a power of two).
    aopt: Time,
    inner: AlgoA,
    /// Number of restarts performed (diagnostics / tests).
    restarts: u32,
    /// Release time of each job *within the current incarnation*: the actual
    /// release for jobs arriving after the last restart, the restart time for
    /// re-enqueued jobs. The paper's restart "delays" unfinished jobs — their
    /// flow clock inside the restarted algorithm starts afresh, and the
    /// accumulated delay is accounted for by the telescoping-sum analysis of
    /// Section 5.4 (total delay ≤ (3/2)·β·2^k ≤ 3β·OPT).
    virtual_release: Vec<Time>,
}

impl GuessDoubleA {
    /// The paper's parameterization is `alpha = 4`, `beta = 258`.
    pub fn new(alpha: usize, beta: u64) -> Self {
        // beta must leave room for the batching delay: a re-enqueued job
        // waits up to AOPT for the next boundary, which already consumes
        // beta*AOPT/2 when beta <= 2 — no progress window would remain. The
        // paper's analysis uses beta = 258.
        assert!(beta >= 4, "beta must be at least 4 (batching delay is AOPT)");
        GuessDoubleA {
            alpha,
            beta,
            aopt: 1,
            inner: AlgoA::with_batching(alpha, 1),
            restarts: 0,
            virtual_release: Vec::new(),
        }
    }

    /// The paper's exact parameters (α = 4, β = 258).
    pub fn paper() -> Self {
        Self::new(4, 258)
    }

    /// Current guess `AOPT`.
    pub fn aopt(&self) -> Time {
        self.aopt
    }

    /// How many times the guess doubled.
    pub fn restarts(&self) -> u32 {
        self.restarts
    }

    /// Does any alive job's flow *within the current incarnation* exceed the
    /// violation threshold β·AOPT/2?
    fn violated(&self, t: Time, view: &SimView<'_>) -> bool {
        let threshold = self.beta * self.aopt / 2;
        view.alive()
            .iter()
            .any(|&j| t.saturating_sub(self.virtual_release[j.index()]) > threshold)
    }

    /// Double the guess and restart 𝒜 on the unexecuted remainders. The
    /// re-enqueued jobs' flow clocks reset to the restart time `t` (the
    /// paper's "release time of all unfinished jobs ... delayed").
    fn restart(&mut self, t: Time, view: &SimView<'_>) {
        self.aopt *= 2;
        self.restarts += 1;
        self.inner = AlgoA::with_batching(self.alpha, self.aopt);
        for &job in view.alive() {
            let g = view.graph(job);
            let remaining: Vec<bool> =
                g.nodes().map(|v| view.completion(job, v).is_none()).collect();
            debug_assert!(remaining.iter().any(|&r| r), "alive job with nothing left");
            self.inner.enqueue(job, Some(remaining));
            self.virtual_release[job.index()] = t;
        }
    }

    fn ensure_slot(&mut self, job: JobId) {
        if self.virtual_release.len() <= job.index() {
            self.virtual_release.resize(job.index() + 1, 0);
        }
    }
}

impl OnlineScheduler for GuessDoubleA {
    fn clairvoyance(&self) -> Clairvoyance {
        Clairvoyance::Clairvoyant
    }

    fn on_arrival(&mut self, t: Time, job: JobId, view: &SimView<'_>) {
        self.ensure_slot(job);
        self.virtual_release[job.index()] = t;
        self.inner.on_arrival(t, job, view);
    }

    fn select(&mut self, t: Time, view: &SimView<'_>, sel: &mut Selection) {
        // A single doubling suffices per violation event: the restarted
        // incarnation resets every alive job's flow clock to `t`.
        if self.violated(t, view) {
            self.restart(t, view);
        }
        self.inner.select(t, view, sel);
    }

    fn name(&self) -> String {
        format!("GuessDoubleA[alpha={},beta={}]", self.alpha, self.beta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowtree_dag::builder::{chain, complete_kary, star};
    use flowtree_dag::DepthProfile;
    use flowtree_sim::metrics::flow_stats;
    use flowtree_sim::{Engine, Instance, JobSpec};

    #[test]
    fn single_small_job_needs_no_restart_after_warmup() {
        let inst = Instance::single(chain(3));
        let mut sched = GuessDoubleA::paper();
        let s = Engine::new(4).with_max_horizon(200_000).run(&inst, &mut sched).unwrap();
        s.verify(&inst).unwrap();
        // beta * aopt / 2 = 129 with aopt = 1; a chain of 3 finishes long
        // before that, so the initial guess survives.
        assert_eq!(sched.restarts(), 0);
        assert_eq!(sched.aopt(), 1);
    }

    #[test]
    fn big_job_forces_doubling() {
        // OPT for this job on m=4 is ~17; the initial guess (threshold 129)
        // is too small once beta is small. Use beta = 4 to see doubling.
        let g = star(64);
        let inst = Instance::single(g.clone());
        let m = 4;
        let opt = DepthProfile::new(&g).opt_single_job(m as u64);
        let mut sched = GuessDoubleA::new(4, 4);
        let s = Engine::new(m).with_max_horizon(200_000).run(&inst, &mut sched).unwrap();
        s.verify(&inst).unwrap();
        assert!(sched.restarts() > 0, "tiny guess must double");
        // Final guess stays within a constant factor of OPT: on the first
        // guess with threshold >= achievable flow, doubling stops.
        assert!(sched.aopt() <= 8 * opt.max(1));
    }

    #[test]
    fn theorem_5_7_bound_on_streams() {
        // A stream with arbitrary (non-batched) releases; verify the 1548x
        // bound against the certified per-job lower bound (conservative).
        let mut jobs = Vec::new();
        for i in 0..10u64 {
            jobs.push(JobSpec { graph: complete_kary(2, 4), release: i * 3 + (i % 2) });
            jobs.push(JobSpec { graph: star(9), release: i * 3 + 1 });
        }
        let inst = Instance::new(jobs);
        let m = 8;
        let mut sched = GuessDoubleA::paper();
        let s = Engine::new(m).with_max_horizon(2_000_000).run(&inst, &mut sched).unwrap();
        s.verify(&inst).unwrap();
        let stats = flow_stats(&inst, &s);
        let lb = inst.per_job_lower_bound(m as u64).max(1);
        assert!(
            stats.max_flow <= 1548 * lb,
            "Theorem 5.7 violated: flow {} vs 1548 * {lb}",
            stats.max_flow
        );
    }

    #[test]
    fn restart_resumes_partially_executed_jobs() {
        // Force a restart mid-job with a small beta and check completeness
        // (verify() catches lost subjobs).
        let g = complete_kary(3, 4); // 40 nodes
        let inst = Instance::new(vec![
            JobSpec { graph: g, release: 0 },
            JobSpec { graph: chain(5), release: 2 },
        ]);
        let mut sched = GuessDoubleA::new(4, 4);
        let s = Engine::new(4).with_max_horizon(200_000).run(&inst, &mut sched).unwrap();
        s.verify(&inst).unwrap();
        assert!(sched.restarts() >= 1);
    }

    #[test]
    fn guesses_are_powers_of_two() {
        let g = star(200);
        let inst = Instance::single(g);
        let mut sched = GuessDoubleA::new(4, 4);
        let s = Engine::new(4).with_max_horizon(200_000).run(&inst, &mut sched).unwrap();
        s.verify(&inst).unwrap();
        assert!(sched.aopt().is_power_of_two());
    }

    #[test]
    fn name_reports_parameters() {
        assert_eq!(GuessDoubleA::paper().name(), "GuessDoubleA[alpha=4,beta=258]");
    }
}
