//! The Maximum-Children (MC) replay algorithm — Section 5.2 of the paper.
//!
//! MC receives a feasible single-job schedule `S` (in practice an LPF tail)
//! whose only idle step is its last, and re-executes its subjobs online
//! while the number of granted processors `m_t` fluctuates. At each step it
//! repeatedly takes, from the earliest level of `S` with unprocessed
//! subjobs, a subjob with the maximum number of children *in the next level
//! of `S`*. Lemma 5.5: MC never idles a granted processor before finishing
//! (provided `m_t <= width(S)` and the job is an out-forest).
//!
//! Intuition: by preferring high-fanout subjobs, MC keeps as many next-level
//! subjobs enabled as possible, so it can always "borrow" work from the next
//! level when granted more processors than the current level has left.

use flowtree_dag::JobGraph;

/// Replays a level schedule under fluctuating processor grants.
#[derive(Debug, Clone)]
pub struct McReplay {
    /// For each level, nodes sorted by (children-in-next-level) descending,
    /// stable by original in-level order.
    levels: Vec<Vec<u32>>,
    /// Earliest level that still has unprocessed nodes.
    front: usize,
    /// Per level, how many of its (sorted) nodes are already processed —
    /// NOT usable directly since we skip unready nodes; instead keep
    /// per-node processed flags and per-level remaining counts.
    processed: Vec<bool>,
    /// Step at which each node was processed (for same-step readiness
    /// checks); usize::MAX = unprocessed.
    processed_step: Vec<usize>,
    remaining_in_level: Vec<usize>,
    /// Parent of each node (u32::MAX for roots) — out-forest structure.
    parent: Vec<u32>,
    /// Total unprocessed nodes.
    remaining: usize,
    /// Current step counter (one per `next` call).
    step: usize,
}

impl McReplay {
    /// Build a replay over `levels` (a feasible level schedule of `graph`,
    /// e.g. an LPF tail — level `i` runs before level `i+1`). `graph` must
    /// be an out-forest. Nodes listed in `levels` are exactly the ones MC
    /// will run; nodes of `graph` absent from `levels` are treated as
    /// already executed.
    pub fn new(graph: &JobGraph, levels: Vec<Vec<u32>>) -> Self {
        let n = graph.n();
        let mut level_of = vec![usize::MAX; n];
        for (li, level) in levels.iter().enumerate() {
            for &v in level {
                assert!(level_of[v as usize] == usize::MAX, "node v{v} appears twice in levels");
                level_of[v as usize] = li;
            }
        }
        // children-in-next-level counts.
        let mut next_children = vec![0u32; n];
        let mut parent = vec![u32::MAX; n];
        for v in graph.nodes() {
            let ps = graph.parents(v);
            assert!(ps.len() <= 1, "MC replay requires an out-forest");
            if let Some(&p) = ps.first() {
                parent[v.index()] = p;
                let (lv, lp) = (level_of[v.index()], level_of[p as usize]);
                if lv != usize::MAX && lp != usize::MAX {
                    assert!(lp < lv, "levels violate precedence for v{}", v.0);
                    if lv == lp + 1 {
                        next_children[p as usize] += 1;
                    }
                }
            }
        }
        // Sort each level by next_children desc (stable). Keys are gathered
        // once per node into a reused scratch, so the comparator works on a
        // packed (key, node) pair instead of chasing `next_children` twice
        // per comparison.
        let mut sorted = levels;
        let mut keyed: Vec<(u32, u32)> = Vec::new();
        for level in &mut sorted {
            keyed.clear();
            keyed.extend(level.iter().map(|&v| (next_children[v as usize], v)));
            // Stable sort on the key alone preserves original in-level order
            // among equal-fanout nodes.
            keyed.sort_by_key(|&(k, _)| std::cmp::Reverse(k));
            for (slot, &(_, v)) in level.iter_mut().zip(&keyed) {
                *slot = v;
            }
        }
        let remaining_in_level: Vec<usize> = sorted.iter().map(Vec::len).collect();
        let remaining = remaining_in_level.iter().sum();
        // Nodes outside `levels` count as processed (in the infinite past).
        let processed: Vec<bool> = (0..n).map(|v| level_of[v] == usize::MAX).collect();
        let processed_step: Vec<usize> = (0..n)
            .map(|v| {
                if level_of[v] == usize::MAX {
                    0
                } else {
                    usize::MAX
                }
            })
            .collect();
        McReplay {
            levels: sorted,
            front: 0,
            processed,
            processed_step,
            remaining_in_level,
            parent,
            remaining,
            step: 0,
        }
    }

    /// Subjobs still to run.
    pub fn remaining(&self) -> usize {
        self.remaining
    }

    /// Has every subjob been run?
    pub fn is_done(&self) -> bool {
        self.remaining == 0
    }

    /// Run one step with `m_t` granted processors; returns the node ids MC
    /// schedules this step (possibly fewer than `m_t` only when the job is
    /// about to finish — Lemma 5.5).
    pub fn next(&mut self, m_t: usize) -> Vec<u32> {
        self.step += 1;
        let step = self.step;
        let mut picks: Vec<u32> = Vec::with_capacity(m_t.min(self.remaining));
        let mut li = self.front;
        while picks.len() < m_t && li < self.levels.len() {
            if self.remaining_in_level[li] == 0 {
                li += 1;
                continue;
            }
            // Scan the level's (priority-sorted) nodes; take ready ones.
            let mut advanced = false;
            // Iterate over a snapshot of indices to allow mutation.
            for idx in 0..self.levels[li].len() {
                if picks.len() >= m_t {
                    break;
                }
                let v = self.levels[li][idx];
                if self.processed[v as usize] {
                    continue;
                }
                let p = self.parent[v as usize];
                let ready = p == u32::MAX
                    || (self.processed[p as usize] && self.processed_step[p as usize] < step);
                if ready {
                    self.processed[v as usize] = true;
                    self.processed_step[v as usize] = step;
                    self.remaining_in_level[li] -= 1;
                    self.remaining -= 1;
                    picks.push(v);
                    advanced = true;
                }
            }
            if self.remaining_in_level[li] == 0 {
                li += 1;
            } else if !advanced || picks.len() < m_t {
                // Unready stragglers remain in this level (their parents ran
                // this very step) — nothing deeper can be ready either
                // (out-forest: a deeper node's parent is in this level or
                // later). Stop the step.
                break;
            }
        }
        // Advance the front past exhausted levels.
        while self.front < self.levels.len() && self.remaining_in_level[self.front] == 0 {
            self.front += 1;
        }
        picks
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lpf::lpf_levels;
    use flowtree_dag::builder::{caterpillar, chain, complete_kary, star};
    use flowtree_dag::{DepthProfile, GraphBuilder};

    /// Drive MC with a grant sequence; check feasibility of the produced
    /// order and Lemma 5.5 (full grants until done). Returns steps taken.
    fn drive(
        graph: &JobGraph,
        levels: Vec<Vec<u32>>,
        grants: &mut dyn FnMut(usize) -> usize,
    ) -> usize {
        let expected: usize = levels.iter().map(Vec::len).sum();
        let mut mc = McReplay::new(graph, levels);
        let mut done_step = vec![0usize; graph.n()];
        let mut steps = 0;
        let mut total = 0;
        while !mc.is_done() {
            steps += 1;
            let m_t = grants(steps);
            let picks = mc.next(m_t);
            assert!(
                picks.len() == m_t || mc.is_done(),
                "Lemma 5.5 violated at step {steps}: got {} of {m_t}, {} left",
                picks.len(),
                mc.remaining()
            );
            for &v in &picks {
                done_step[v as usize] = steps;
            }
            total += picks.len();
            assert!(steps < 10_000, "MC not terminating");
        }
        assert_eq!(total, expected);
        // Precedence: child strictly after parent (when both replayed).
        for v in graph.nodes() {
            for &c in graph.children(v) {
                if done_step[v.index()] > 0 && done_step[c as usize] > 0 {
                    assert!(done_step[v.index()] < done_step[c as usize]);
                }
            }
        }
        steps
    }

    #[test]
    fn replays_full_lpf_schedule_with_matching_grants() {
        // Granting exactly the original level widths reproduces the schedule
        // length (the full schedule's head has narrow steps, so constant
        // grants would violate Lemma 5.5's precondition — the width-matched
        // grant sequence is the legal one here).
        let g = complete_kary(2, 5);
        let p = 4;
        let levels = lpf_levels(&g, p);
        let widths: Vec<usize> = levels.iter().map(Vec::len).collect();
        let steps = drive(&g, levels.clone(), &mut |s| widths[s - 1]);
        assert_eq!(steps, levels.len(), "matching grants => same length");
    }

    #[test]
    fn fluctuating_grants_keep_processors_busy() {
        // Lemma 5.5 under adversarial-ish m_t: alternate 1 and p.
        let g = caterpillar(10, &[3, 0, 5, 2, 0, 0, 7, 1, 4, 2]);
        let p = 4;
        // LPF on p processors: full except last step once past the span —
        // MC's precondition. Use the whole schedule (head included) but
        // grants never exceed... head may have narrow steps; Lemma 5.5's
        // precondition is "only idle at the end". Use the tail only.
        let m = 16; // alpha = 4
        let opt = DepthProfile::new(&g).opt_single_job(m as u64);
        let levels = lpf_levels(&g, p);
        let tail: Vec<Vec<u32>> = levels[(opt as usize).min(levels.len())..].to_vec();
        if tail.is_empty() {
            return; // nothing to replay; fine for this shape
        }
        let mut flip = false;
        drive(&g, tail, &mut |_| {
            flip = !flip;
            if flip {
                1
            } else {
                p
            }
        });
    }

    #[test]
    fn zero_grant_steps_are_tolerated() {
        let g = star(6);
        let levels = lpf_levels(&g, 3);
        let mut mc = McReplay::new(&g, levels);
        assert!(mc.next(0).is_empty());
        while !mc.is_done() {
            mc.next(2);
        }
    }

    #[test]
    fn prefers_max_children_nodes() {
        // Level 0 = {a, b} where a has 2 children in level 1 and b has 0.
        // With m_t = 1, MC must pick a first.
        let mut bld = GraphBuilder::new(4);
        bld.edge(0, 2).edge(0, 3); // a = 0 with children 2, 3; b = 1 leaf
        let g = bld.build().unwrap();
        let levels = vec![vec![1, 0], vec![2, 3]]; // a listed second!
        let mut mc = McReplay::new(&g, levels);
        assert_eq!(mc.next(1), vec![0], "max-children node first");
        // Next step: level 0 remainder (b) then level 1 children.
        let picks = mc.next(3);
        assert_eq!(picks.len(), 3);
        assert_eq!(picks[0], 1);
    }

    #[test]
    fn borrows_from_next_level_when_granted_extra() {
        // chain-free forest: two stars side by side. Level widths 2 then 4.
        let g = flowtree_dag::builder::forest(&[star(2), star(2)]);
        let levels = lpf_levels(&g, 2);
        assert_eq!(levels.iter().map(Vec::len).collect::<Vec<_>>(), vec![2, 2, 2]);
        let mut mc = McReplay::new(&g, levels);
        // Grant 4 at once: both roots + nothing else (children unready same
        // step) -> only 2. This is the about-to-finish exemption? No — not
        // done. But Lemma 5.5's precondition says m_t <= width of S = 2.
        // With a legal grant of 2 every step, MC stays busy.
        for _ in 0..3 {
            assert_eq!(mc.next(2).len(), 2);
        }
        assert!(mc.is_done());
    }

    #[test]
    fn nodes_outside_levels_count_as_executed() {
        // chain(4): replay only the last two nodes.
        let g = chain(4);
        let levels = vec![vec![2], vec![3]];
        let mut mc = McReplay::new(&g, levels);
        assert_eq!(mc.remaining(), 2);
        assert_eq!(mc.next(1), vec![2]);
        assert_eq!(mc.next(1), vec![3]);
        assert!(mc.is_done());
    }

    #[test]
    fn lemma_5_5_on_lpf_tails_randomized() {
        // Systematic check over a family of shapes and grant patterns.
        let shapes: Vec<JobGraph> = vec![
            complete_kary(3, 4),
            caterpillar(12, &[1, 2, 3, 4, 5, 6, 5, 4, 3, 2, 1, 0]),
            flowtree_dag::builder::quicksort_tree(300, 1, 3, 1),
            flowtree_dag::builder::forest(&[star(7), chain(5), complete_kary(2, 4)]),
        ];
        for g in shapes {
            for alpha in [2usize, 4] {
                let p = 4;
                let m = alpha * p;
                let opt = DepthProfile::new(&g).opt_single_job(m as u64);
                let levels = lpf_levels(&g, p);
                if levels.len() <= opt as usize {
                    continue;
                }
                let tail = levels[opt as usize..].to_vec();
                let mut k = 0usize;
                drive(&g, tail, &mut |_| {
                    k += 1;
                    1 + (k * 7 + 3) % p // cycles through 1..=p
                });
            }
        }
    }

    #[test]
    #[should_panic(expected = "out-forest")]
    fn rejects_dags_with_joins() {
        let mut b = GraphBuilder::new(3);
        b.edge(0, 2).edge(1, 2);
        let g = b.build().unwrap();
        McReplay::new(&g, vec![vec![0, 1], vec![2]]);
    }

    #[test]
    #[should_panic(expected = "appears twice")]
    fn rejects_duplicate_nodes_in_levels() {
        let g = chain(2);
        McReplay::new(&g, vec![vec![0], vec![0, 1]]);
    }

    #[test]
    #[should_panic(expected = "violate precedence")]
    fn rejects_levels_violating_precedence() {
        let g = chain(2);
        McReplay::new(&g, vec![vec![1], vec![0]]);
    }
}
