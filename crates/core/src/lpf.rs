//! Longest Path First (LPF) — Section 5.1 of the paper.
//!
//! **Algorithm LPF:** at any time, assign ready subjobs to processors in
//! order of decreasing height (number of nodes on the longest path to a
//! leaf) until processors or ready subjobs run out.
//!
//! For a single out-forest job the paper proves (Lemma 5.3, Corollary 5.4)
//! that LPF on `m` processors is *optimal* for maximum flow, and on `m/α`
//! processors is α-competitive against the optimum on `m`. The materialized
//! LPF schedule ([`lpf_levels`]) is the building block of Algorithm 𝒜: its
//! first `OPT` steps are the **head**, the rest is the **tail**, and by
//! Lemma 5.2 the tail is a full `m/α`-wide rectangle except possibly its
//! last step ([`head_tail`], [`RectangleTail`]).
//!
//! This module also provides the multi-job [`Lpf`] online scheduler (FIFO
//! across jobs, LPF within a job) used as a strong clairvoyant baseline.

use crate::fifo::{Fifo, TieBreak};
use flowtree_dag::{JobGraph, JobId, Time};
use flowtree_sim::{Clairvoyance, OnlineScheduler, Selection, SimView};

/// Materialized single-job LPF schedule on `p` processors: `levels[t]` are
/// the node ids run during step `t + 1` (job released at 0).
///
/// ```
/// use flowtree_core::lpf::lpf_levels;
/// use flowtree_dag::{builder, DepthProfile};
///
/// let g = builder::complete_kary(2, 4); // 15 nodes, span 4
/// let levels = lpf_levels(&g, 2);
/// // Corollary 5.4: LPF attains the exact optimum.
/// assert_eq!(levels.len() as u64, DepthProfile::new(&g).opt_single_job(2));
/// ```
pub fn lpf_levels(g: &JobGraph, p: usize) -> Vec<Vec<u32>> {
    lpf_levels_restricted(g, None, p)
}

/// LPF schedule of the induced subgraph of `g` on the nodes with
/// `remaining[v] == true` (`None` = all nodes).
///
/// The remaining set must be **descendant-closed** (if `v` is remaining, so
/// are all its descendants) — this is exactly the shape of "not yet
/// executed" sets, and it means restricted heights equal full-graph heights.
/// Used by the guess-and-double wrapper, which restarts Algorithm 𝒜 on the
/// unexecuted portions of jobs.
pub fn lpf_levels_restricted(g: &JobGraph, remaining: Option<&[bool]>, p: usize) -> Vec<Vec<u32>> {
    let picks = lpf_levels_forest(&[(g, remaining)], p);
    picks
        .into_iter()
        .map(|level| level.into_iter().map(|(_, v)| v).collect())
        .collect()
}

/// LPF schedule of a *forest of jobs released together*: each entry of
/// `parts` is a graph plus an optional remaining mask (descendant-closed,
/// see [`lpf_levels_restricted`]). Returns levels of `(part index, node)`.
///
/// All parts are treated as one out-forest (the paper's "view all the jobs
/// arriving at the same time as being one job", Section 5.3).
pub fn lpf_levels_forest(parts: &[(&JobGraph, Option<&[bool]>)], p: usize) -> Vec<Vec<(u32, u32)>> {
    assert!(p >= 1, "need at least one processor");
    for (g, mask) in parts {
        if let Some(mask) = mask {
            assert_eq!(mask.len(), g.n(), "mask length mismatch");
            debug_assert!(descendant_closed(g, mask), "mask not descendant-closed");
        }
    }

    let included = |pi: usize, v: u32| -> bool { parts[pi].1.is_none_or(|m| m[v as usize]) };

    // Heights per part (restricted heights == full heights on a
    // descendant-closed set).
    let heights: Vec<Vec<u32>> = parts.iter().map(|(g, _)| g.heights()).collect();
    let max_h = heights.iter().flat_map(|h| h.iter().copied()).max().unwrap_or(0) as usize;

    // Buckets of ready nodes by height; cur scans downward. General DAGs
    // are supported: a node becomes ready when its *last* included parent
    // completes (indegree countdown), which degenerates to the single-parent
    // rule on out-forests.
    let mut buckets: Vec<Vec<(u32, u32)>> = vec![Vec::new(); max_h + 1];
    let mut indeg: Vec<Vec<u32>> = Vec::with_capacity(parts.len());
    let mut total_remaining = 0usize;
    for (pi, (g, _)) in parts.iter().enumerate() {
        let mut part_indeg = vec![0u32; g.n()];
        for v in 0..g.n() as u32 {
            if !included(pi, v) {
                continue;
            }
            total_remaining += 1;
            let unfinished_parents =
                g.parents(flowtree_dag::NodeId(v)).iter().filter(|&&u| included(pi, u)).count()
                    as u32;
            part_indeg[v as usize] = unfinished_parents;
            if unfinished_parents == 0 {
                buckets[heights[pi][v as usize] as usize].push((pi as u32, v));
            }
        }
        indeg.push(part_indeg);
    }

    let mut levels: Vec<Vec<(u32, u32)>> = Vec::new();
    let mut cur = max_h;
    while total_remaining > 0 {
        let mut step: Vec<(u32, u32)> = Vec::with_capacity(p);
        while step.len() < p {
            while cur > 0 && buckets[cur].is_empty() {
                cur -= 1;
            }
            if cur == 0 {
                break;
            }
            // Take from the tallest bucket, oldest-inserted first.
            let bucket = &mut buckets[cur];
            let take = (p - step.len()).min(bucket.len());
            step.extend(bucket.drain(..take));
        }
        debug_assert!(!step.is_empty(), "no ready node but work remains");
        total_remaining -= step.len();
        // Enable children only after the step is closed (same-step children
        // must not be picked).
        let mut newly_ready: Vec<(u32, u32)> = Vec::new();
        for &(pi, v) in &step {
            let g = parts[pi as usize].0;
            for &c in g.children(flowtree_dag::NodeId(v)) {
                if included(pi as usize, c) {
                    let d = &mut indeg[pi as usize][c as usize];
                    *d -= 1;
                    if *d == 0 {
                        newly_ready.push((pi, c));
                    }
                }
            }
        }
        for (pi, c) in newly_ready {
            let h = heights[pi as usize][c as usize] as usize;
            buckets[h].push((pi, c));
            if h > cur {
                cur = h;
            }
        }
        levels.push(step);
    }
    levels
}

/// Is `mask` descendant-closed in `g` (every child of a remaining node is
/// remaining)? Debug-checked by the restricted LPF variants.
pub fn descendant_closed(g: &JobGraph, mask: &[bool]) -> bool {
    g.nodes()
        .all(|v| !mask[v.index()] || g.children(v).iter().all(|&c| mask[c as usize]))
}

/// The head/tail split of a materialized LPF schedule (paper, Section 5.3):
/// the **head** is the first `opt` levels, the **tail** the rest.
pub fn head_tail(levels: &[Vec<u32>], opt: Time) -> (&[Vec<u32>], &[Vec<u32>]) {
    let cut = (opt as usize).min(levels.len());
    levels.split_at(cut)
}

/// Shape report for the tail of an LPF schedule — the paper's Figure 2:
/// after the head, the schedule is a `p`-wide rectangle except possibly the
/// final step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RectangleTail {
    /// Number of tail steps.
    pub len: usize,
    /// Steps (excluding the last) that are exactly `p` wide.
    pub full_steps: usize,
    /// Width of the final step (`<= p`).
    pub last_width: usize,
}

impl RectangleTail {
    /// Measure the tail (everything after `opt` levels) of an LPF schedule.
    pub fn measure(levels: &[Vec<u32>], opt: Time, p: usize) -> Self {
        let (_, tail) = head_tail(levels, opt);
        let len = tail.len();
        let full_steps = tail.iter().take(len.saturating_sub(1)).filter(|l| l.len() == p).count();
        RectangleTail { len, full_steps, last_width: tail.last().map_or(0, Vec::len) }
    }

    /// Is the tail a perfect rectangle except possibly the final step?
    /// (Lemma 5.2's consequence; requires `opt` to be a valid upper bound on
    /// the single-job OPT on the *full* machine.)
    pub fn is_rectangle(&self) -> bool {
        self.full_steps == self.len.saturating_sub(1)
    }
}

/// The maximum flow of a materialized level schedule (= number of levels,
/// since the job is released at 0).
pub fn levels_flow(levels: &[Vec<u32>]) -> Time {
    levels.len() as Time
}

/// Multi-job online LPF: FIFO across jobs (oldest first), longest-path-first
/// within a job. Clairvoyant (needs heights). A strong baseline: optimal for
/// one job, but *not* O(1)-competitive in general — Algorithm 𝒜 exists
/// precisely because naive FIFO composition is insufficient.
pub struct Lpf {
    inner: Fifo,
}

impl Lpf {
    /// Create the multi-job LPF scheduler.
    pub fn new() -> Self {
        Lpf { inner: Fifo::new(TieBreak::HighestHeight) }
    }
}

impl Default for Lpf {
    fn default() -> Self {
        Self::new()
    }
}

impl OnlineScheduler for Lpf {
    fn clairvoyance(&self) -> Clairvoyance {
        Clairvoyance::Clairvoyant
    }
    fn on_arrival(&mut self, t: Time, job: JobId, view: &SimView<'_>) {
        self.inner.on_arrival(t, job, view);
    }
    fn select(&mut self, t: Time, view: &SimView<'_>, sel: &mut Selection) {
        self.inner.select(t, view, sel);
    }
    fn name(&self) -> String {
        "LPF".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowtree_dag::builder::{caterpillar, chain, complete_kary, star};
    use flowtree_dag::DepthProfile;
    use flowtree_sim::{Engine, Instance};

    /// Replay materialized levels as a schedule to verify feasibility.
    fn verify_levels(g: &JobGraph, levels: &[Vec<u32>], p: usize) {
        let inst = Instance::single(g.clone());
        let mut s = flowtree_sim::Schedule::new(p);
        for level in levels {
            assert!(level.len() <= p, "level wider than p");
            s.push_step(level.iter().map(|&v| (JobId(0), flowtree_dag::NodeId(v))).collect());
        }
        s.verify(&inst).unwrap();
    }

    #[test]
    fn chain_runs_sequentially() {
        let g = chain(5);
        let levels = lpf_levels(&g, 4);
        assert_eq!(levels.len(), 5);
        assert!(levels.iter().all(|l| l.len() == 1));
        verify_levels(&g, &levels, 4);
    }

    #[test]
    fn star_is_work_limited() {
        let g = star(8);
        let levels = lpf_levels(&g, 4);
        // root; then 8 leaves in two waves of 4.
        assert_eq!(levels.len(), 3);
        assert_eq!(levels[0], vec![0]);
        assert_eq!(levels[1].len(), 4);
        assert_eq!(levels[2].len(), 4);
        verify_levels(&g, &levels, 4);
    }

    #[test]
    fn lpf_flow_matches_corollary_5_4_formula() {
        // Corollary 5.4: on m processors LPF is optimal, and
        // OPT = max_d (d + ceil(W(d)/m)).
        for g in [
            chain(9),
            star(13),
            complete_kary(2, 5),
            complete_kary(3, 4),
            caterpillar(6, &[4, 0, 3, 7, 0, 2]),
        ] {
            let p = DepthProfile::new(&g);
            for m in [1usize, 2, 3, 4, 7, 16] {
                let levels = lpf_levels(&g, m);
                verify_levels(&g, &levels, m);
                assert_eq!(
                    levels_flow(&levels),
                    p.opt_single_job(m as u64),
                    "LPF flow != formula for m={m}"
                );
            }
        }
    }

    #[test]
    fn lpf_prioritizes_height_over_breadth() {
        // Spine chain of 4 with 3 extra leaves at the root: with p=1, LPF
        // must run the whole spine before the leaves (heights 4,3,2,1 > 1).
        let g = caterpillar(4, &[3, 0, 0, 0]);
        let levels = lpf_levels(&g, 1);
        // Heights force the spine prefix 0,1,2 first; the remaining four
        // nodes (spine tail + legs) all have height 1 and may run in any
        // order.
        assert_eq!(levels[..3], vec![vec![0], vec![1], vec![2]][..]);
        assert_eq!(levels.len(), 7);
    }

    #[test]
    fn restricted_lpf_skips_executed_prefix() {
        let g = chain(4);
        // Nodes 0, 1 executed; remaining = {2, 3}.
        let remaining = vec![false, false, true, true];
        let levels = lpf_levels_restricted(&g, Some(&remaining), 2);
        assert_eq!(levels, vec![vec![2], vec![3]]);
    }

    #[test]
    fn restricted_lpf_multiple_entry_points() {
        // star(3): root executed, leaves remain -> all ready at once.
        let g = star(3);
        let remaining = vec![false, true, true, true];
        let levels = lpf_levels_restricted(&g, Some(&remaining), 2);
        assert_eq!(levels.len(), 2);
        assert_eq!(levels[0].len(), 2);
        assert_eq!(levels[1].len(), 1);
    }

    #[test]
    #[should_panic(expected = "descendant-closed")]
    #[cfg(debug_assertions)]
    fn non_descendant_closed_mask_panics() {
        let g = chain(3);
        // 0 remaining but child 1 excluded: not descendant-closed.
        let remaining = vec![true, false, true];
        lpf_levels_restricted(&g, Some(&remaining), 1);
    }

    #[test]
    fn general_dags_respect_joins() {
        // Diamond 0 -> {1,2} -> 3: node 3 must wait for *both* parents.
        let mut b = flowtree_dag::GraphBuilder::new(4);
        b.edge(0, 1).edge(0, 2).edge(1, 3).edge(2, 3);
        let g = b.build().unwrap();
        let levels = lpf_levels(&g, 2);
        verify_levels(&g, &levels, 2);
        assert_eq!(levels, vec![vec![0], vec![1, 2], vec![3]]);
    }

    #[test]
    fn sp_dag_lpf_is_feasible() {
        let g = flowtree_dag::sp::figure1_job();
        for p in 1..=4 {
            let levels = lpf_levels(&g, p);
            verify_levels(&g, &levels, p);
        }
    }

    #[test]
    fn forest_lpf_mixes_parts_by_height() {
        let a = chain(3); // heights 3,2,1
        let b = star(4); // heights 2,1,1,1,1
        let levels = lpf_levels_forest(&[(&a, None), (&b, None)], 2);
        // Step 1: chain head (h=3) and star root (h=2).
        assert_eq!(levels[0], vec![(0, 0), (1, 0)]);
        // Total work 8 on p=2 with enough parallelism: 4 steps.
        assert_eq!(levels.len(), 4);
        let total: usize = levels.iter().map(Vec::len).sum();
        assert_eq!(total, 8);
    }

    #[test]
    fn head_tail_split() {
        let g = star(8);
        let levels = lpf_levels(&g, 2);
        let (head, tail) = head_tail(&levels, 2);
        assert_eq!(head.len(), 2);
        assert_eq!(tail.len(), levels.len() - 2);
        // Split beyond the end: everything is head.
        let (head, tail) = head_tail(&levels, 100);
        assert_eq!(head.len(), levels.len());
        assert!(tail.is_empty());
    }

    #[test]
    fn figure2_tail_is_rectangle() {
        // Lemma 5.2 consequence: for an LPF schedule on p = m/alpha
        // processors, every level after single-machine-OPT time is full
        // width except the last. Use a random-ish caterpillar and check with
        // opt computed on the full machine m = alpha * p.
        let g = caterpillar(8, &[0, 6, 1, 9, 2, 0, 5, 3]);
        let (alpha, p) = (4usize, 3usize);
        let m = alpha * p;
        let opt = DepthProfile::new(&g).opt_single_job(m as u64);
        let levels = lpf_levels(&g, p);
        let shape = RectangleTail::measure(&levels, opt, p);
        assert!(
            shape.is_rectangle(),
            "tail not rectangular: {shape:?}, levels: {:?}",
            levels.iter().map(Vec::len).collect::<Vec<_>>()
        );
        // Tail length bound from Lemma 5.3: flow <= alpha * opt, so the tail
        // is at most (alpha - 1) * opt long.
        assert!(shape.len as u64 <= (alpha as u64 - 1) * opt);
    }

    #[test]
    fn lemma_5_2_ancestor_chains_at_idle_steps() {
        // Lemma 5.2, the statement itself (not just the rectangle
        // consequence): let t be any step of LPF[p] with an idle processor.
        // Then either every subjob of S(t) is a leaf (the job ends at t), or
        // for each non-leaf j in S(t) and each earlier step s, the ancestor
        // of j that is t - s hops up runs exactly at step s.
        for g in [
            caterpillar(9, &[3, 0, 5, 1, 0, 2, 4, 0, 1]),
            complete_kary(3, 4),
            flowtree_dag::builder::quicksort_tree(200, 1, 3, 1),
        ] {
            let p = 3;
            let levels = lpf_levels(&g, p);
            // when[v] = 1-based step of v.
            let mut when = vec![0usize; g.n()];
            for (i, level) in levels.iter().enumerate() {
                for &v in level {
                    when[v as usize] = i + 1;
                }
            }
            let parent_of =
                |v: u32| -> Option<u32> { g.parents(flowtree_dag::NodeId(v)).first().copied() };
            for (i, level) in levels.iter().enumerate() {
                let t = i + 1;
                if level.len() == p {
                    continue; // not idle
                }
                let all_leaves = level.iter().all(|&v| g.out_degree(flowtree_dag::NodeId(v)) == 0);
                if all_leaves {
                    assert_eq!(t, levels.len(), "all-leaf idle step must be last");
                    continue;
                }
                for &j in level {
                    if g.out_degree(flowtree_dag::NodeId(j)) == 0 {
                        continue;
                    }
                    // Walk ancestors: hop k up must run at step t - k.
                    let mut cur = j;
                    for s in (1..t).rev() {
                        let up = parent_of(cur)
                            .unwrap_or_else(|| panic!("non-leaf at idle step {t} lacks depth {t}"));
                        assert_eq!(
                            when[up as usize],
                            s,
                            "ancestor of v{j} at hop {} not at step {s}",
                            t - s
                        );
                        cur = up;
                    }
                }
            }
        }
    }

    #[test]
    fn multi_job_lpf_scheduler_runs() {
        let inst = Instance::new(vec![
            flowtree_sim::JobSpec { graph: complete_kary(2, 4), release: 0 },
            flowtree_sim::JobSpec { graph: chain(6), release: 2 },
        ]);
        let s = Engine::new(3).run(&inst, &mut Lpf::new()).unwrap();
        s.verify(&inst).unwrap();
        let stats = flowtree_sim::metrics::flow_stats(&inst, &s);
        // chain(6) arriving at 2 needs >= 6 flow; the tree needs >= 4.
        assert!(stats.max_flow >= 6);
    }

    #[test]
    fn single_job_lpf_scheduler_matches_materialized() {
        let g = complete_kary(2, 5);
        let inst = Instance::single(g.clone());
        let s = Engine::new(4).run(&inst, &mut Lpf::new()).unwrap();
        s.verify(&inst).unwrap();
        let stats = flowtree_sim::metrics::flow_stats(&inst, &s);
        assert_eq!(stats.max_flow, levels_flow(&lpf_levels(&g, 4)));
    }
}
