//! The FIFO family — Section 3's definition, Section 4's villain,
//! Section 6's hero.
//!
//! **FIFO** schedules, at each time `t`, an arbitrary set of ready subjobs
//! subject to: (1) if fewer than `m` subjobs are ready, all of them run;
//! (2) if a ready subjob is skipped, everything that runs belongs to jobs
//! that arrived no later. Equivalently: allocate processors to alive jobs in
//! arrival order, giving each job as many processors as it has ready
//! subjobs, until processors run out.
//!
//! The *last* job to receive processors may get fewer than its ready count —
//! FIFO must then pick which of its ready subjobs run. That intra-job choice
//! is the [`TieBreak`], and it is the crux of the paper: with an arbitrary
//! (adversarial) choice FIFO is Ω(log m)-competitive even on out-trees
//! (Theorem 4.2), while Section 5's Algorithm 𝒜 shows a careful intra-job
//! policy recovers O(1)-competitiveness for clairvoyant schedulers.

use flowtree_dag::{JobId, NodeId, Time};
use flowtree_sim::{Clairvoyance, OnlineScheduler, Selection, SimView};

/// Intra-job policy used when a job is granted fewer processors than it has
/// ready subjobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TieBreak {
    /// Run the subjobs that became ready earliest (by the engine's global
    /// became-ready stamps — a natural "arbitrary" order, and exactly the
    /// choice the Section 4 adversary exploits, because the adversary
    /// places each layer's key subjob last). Non-clairvoyant.
    BecameReady,
    /// Run the subjobs that became ready latest. Non-clairvoyant.
    LastReady,
    /// Uniformly random subset (seeded, deterministic). Non-clairvoyant.
    Random(u64),
    /// Longest-path-first: run the ready subjobs of greatest height.
    /// Clairvoyant (heights require the DAG). This is the intra-job policy
    /// of the multi-job LPF baseline.
    HighestHeight,
    /// Run the ready subjobs with the most children in the DAG, maximizing
    /// next-step parallelism. Clairvoyant.
    MostChildren,
}

impl TieBreak {
    fn clairvoyance(self) -> Clairvoyance {
        match self {
            TieBreak::BecameReady | TieBreak::LastReady | TieBreak::Random(_) => {
                Clairvoyance::NonClairvoyant
            }
            TieBreak::HighestHeight | TieBreak::MostChildren => Clairvoyance::Clairvoyant,
        }
    }

    fn label(self) -> &'static str {
        match self {
            TieBreak::BecameReady => "became-ready",
            TieBreak::LastReady => "last-ready",
            TieBreak::Random(_) => "random",
            TieBreak::HighestHeight => "highest-height",
            TieBreak::MostChildren => "most-children",
        }
    }
}

/// SplitMix64 — a tiny deterministic PRNG so the non-clairvoyant random
/// tie-break needs no external dependency.
#[derive(Debug, Clone)]
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform in `0..n` (n > 0) by rejection-free modulo (bias negligible
    /// for the small `n` used here, and determinism is what matters).
    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// The FIFO scheduler with a pluggable intra-job [`TieBreak`].
///
/// ```
/// use flowtree_core::Fifo;
/// use flowtree_dag::builder;
/// use flowtree_sim::{Engine, Instance};
///
/// let instance = Instance::single(builder::star(8));
/// let schedule = Engine::new(4).run(&instance, &mut Fifo::arbitrary()).unwrap();
/// schedule.verify(&instance).unwrap();
/// // Root first, then 8 leaves on 4 processors: 3 steps.
/// assert_eq!(schedule.horizon(), 3);
/// ```
pub struct Fifo {
    tie: TieBreak,
    /// Per-job node priorities for clairvoyant tie-breaks (heights or child
    /// counts), populated at arrival.
    priority: Vec<Option<Vec<u32>>>,
    rng: SplitMix64,
    /// Scratch buffer reused across steps (allocation-free steady state).
    scratch: Vec<u32>,
    /// Scratch of `(became-ready seq, node)` pairs for the seq-ordered
    /// tie-breaks: keys are looked up once per node instead of once per
    /// comparison, and the pairs sort without touching the view again.
    keyed: Vec<(u64, u32)>,
}

impl Fifo {
    /// FIFO with the given tie-break.
    pub fn new(tie: TieBreak) -> Self {
        let seed = match tie {
            TieBreak::Random(s) => s,
            _ => 0,
        };
        Fifo {
            tie,
            priority: Vec::new(),
            rng: SplitMix64(seed ^ 0xD1B54A32D192ED03),
            scratch: Vec::new(),
            keyed: Vec::new(),
        }
    }

    /// Plain FIFO with the became-ready ("arbitrary") tie-break.
    pub fn arbitrary() -> Self {
        Fifo::new(TieBreak::BecameReady)
    }

    fn ensure_slot(&mut self, job: JobId) {
        if self.priority.len() <= job.index() {
            self.priority.resize(job.index() + 1, None);
        }
    }

    /// Pick `k` of the job's ready nodes into `sel` according to the
    /// tie-break (`ready` is in arbitrary engine order).
    fn pick(
        &mut self,
        job: JobId,
        ready: &[u32],
        k: usize,
        view: &SimView<'_>,
        sel: &mut Selection,
    ) {
        debug_assert!(k <= ready.len());
        match self.tie {
            // Seq stamps are globally unique, so an unstable sort of
            // `(seq, node)` pairs yields exactly the order the old stable
            // sort-by-key did — and when `k < len`, `select_nth_unstable`
            // first isolates the k winners so only they get sorted.
            TieBreak::BecameReady => {
                if k == 0 {
                    return;
                }
                self.keyed.clear();
                self.keyed.extend(ready.iter().map(|&v| (view.ready_seq(job, NodeId(v)), v)));
                if k < self.keyed.len() {
                    self.keyed.select_nth_unstable(k - 1);
                }
                self.keyed[..k].sort_unstable();
                for i in 0..k {
                    let (_, v) = self.keyed[i];
                    sel.push(job, NodeId(v));
                }
            }
            TieBreak::LastReady => {
                if k == 0 {
                    return;
                }
                self.keyed.clear();
                self.keyed.extend(ready.iter().map(|&v| (view.ready_seq(job, NodeId(v)), v)));
                if k < self.keyed.len() {
                    self.keyed.select_nth_unstable_by(k - 1, |a, b| b.cmp(a));
                }
                self.keyed[..k].sort_unstable_by(|a, b| b.cmp(a));
                for i in 0..k {
                    let (_, v) = self.keyed[i];
                    sel.push(job, NodeId(v));
                }
            }
            TieBreak::Random(_) => {
                // Partial Fisher-Yates over a scratch copy.
                self.scratch.clear();
                self.scratch.extend_from_slice(ready);
                let n = self.scratch.len();
                for i in 0..k {
                    let j = i + self.rng.below(n - i);
                    self.scratch.swap(i, j);
                    sel.push(job, NodeId(self.scratch[i]));
                }
            }
            TieBreak::HighestHeight | TieBreak::MostChildren => {
                let prio = self.priority[job.index()]
                    .as_ref()
                    .expect("clairvoyant tie-break without arrival priorities");
                self.scratch.clear();
                self.scratch.extend_from_slice(ready);
                // Stable sort: priority desc, became-ready order among ties.
                self.scratch.sort_by(|&a, &b| prio[b as usize].cmp(&prio[a as usize]));
                for &v in &self.scratch[..k] {
                    sel.push(job, NodeId(v));
                }
            }
        }
    }
}

impl OnlineScheduler for Fifo {
    fn clairvoyance(&self) -> Clairvoyance {
        self.tie.clairvoyance()
    }

    fn on_arrival(&mut self, _t: Time, job: JobId, view: &SimView<'_>) {
        if self.tie.clairvoyance() == Clairvoyance::Clairvoyant {
            self.ensure_slot(job);
            let g = view.graph(job);
            self.priority[job.index()] = Some(match self.tie {
                TieBreak::HighestHeight => g.heights(),
                TieBreak::MostChildren => g.nodes().map(|v| g.out_degree(v) as u32).collect(),
                _ => unreachable!(),
            });
        }
    }

    fn select(&mut self, _t: Time, view: &SimView<'_>, sel: &mut Selection) {
        // `alive()` is in arrival order — exactly FIFO's job priority.
        for i in 0..view.alive().len() {
            let job = view.alive()[i];
            let rem = sel.remaining();
            if rem == 0 {
                return;
            }
            let ready = view.ready(job);
            // The seq-ordered tie-breaks process picks in became-ready
            // order even when the whole ready set fits: the engine applies
            // completions in pick order, which determines the became-ready
            // stamps of the *children* — so the order matters beyond the
            // subset choice. Other tie-breaks only sort when subsetting.
            // `ready` borrows the view's state, not `self`, so it feeds
            // `pick` directly — `pick` copies into the scratch buffer, and
            // the per-job-per-step `to_vec()` clone this used to do is gone.
            match self.tie {
                TieBreak::BecameReady | TieBreak::LastReady => {
                    let k = rem.min(ready.len());
                    self.pick(job, ready, k, view, sel);
                }
                _ if ready.len() <= rem => {
                    for &v in ready {
                        sel.push(job, NodeId(v));
                    }
                }
                _ => {
                    self.pick(job, ready, rem, view, sel);
                }
            }
        }
    }

    fn name(&self) -> String {
        format!("FIFO[{}]", self.tie.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowtree_dag::builder::{caterpillar, chain, star};
    use flowtree_sim::metrics::flow_stats;
    use flowtree_sim::{Engine, Instance, JobSpec};

    fn run(inst: &Instance, m: usize, tie: TieBreak) -> flowtree_sim::Schedule {
        let s = Engine::new(m).run(inst, &mut Fifo::new(tie)).unwrap();
        s.verify(inst).unwrap();
        s.schedule
    }

    #[test]
    fn older_job_gets_priority() {
        // Two stars released together; ids order them. With m=3, job 0's
        // root+? ... simpler: chain(1) jobs: all fit. Use wide jobs: star(5)
        // at t=0, star(5) at t=1; m=3. Job 0 must never be starved by job 1.
        let inst = Instance::new(vec![
            JobSpec { graph: star(5), release: 0 },
            JobSpec { graph: star(5), release: 1 },
        ]);
        let s = run(&inst, 3, TieBreak::BecameReady);
        let stats = flow_stats(&inst, &s);
        // Job 0: root at 1, leaves at 2,2,2 + 3,3 -> completes at 3.
        assert_eq!(stats.flows[0], 3);
        // Work conservation: at t=2 job0 has 5 ready, fills all 3 procs.
        assert_eq!(s.load(2), 3);
    }

    #[test]
    fn work_conserving_when_enough_ready() {
        let inst = Instance::new(vec![
            JobSpec { graph: star(10), release: 0 },
            JobSpec { graph: star(10), release: 0 },
        ]);
        let s = run(&inst, 4, TieBreak::BecameReady);
        // Steps 2..: 20 leaves + 1 root among 4 procs; never idle while
        // ready work remains.
        let stats = flow_stats(&inst, &s);
        assert_eq!(stats.makespan, 6); // step 1 runs 2 roots, then 20 leaves / 4 = 5 full steps
        assert_eq!(s.load(1), 2);
        for t in 2..=6 {
            assert_eq!(s.load(t), 4, "t={t}");
        }
    }

    #[test]
    fn became_ready_takes_prefix() {
        // star(4), m=3: step 2 has leaves [1,2,3,4] ready, picks first 3.
        let inst = Instance::single(star(4));
        let s = run(&inst, 3, TieBreak::BecameReady);
        let picked: Vec<u32> = s.at(2).iter().map(|&(_, v)| v.0).collect();
        assert_eq!(picked, vec![1, 2, 3]);
        assert_eq!(s.at(3)[0].1 .0, 4);
    }

    #[test]
    fn last_ready_takes_suffix() {
        let inst = Instance::single(star(4));
        let s = run(&inst, 3, TieBreak::LastReady);
        let mut picked: Vec<u32> = s.at(2).iter().map(|&(_, v)| v.0).collect();
        picked.sort_unstable();
        assert_eq!(picked, vec![2, 3, 4]);
        assert_eq!(s.at(3)[0].1 .0, 1);
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let inst = Instance::single(star(12));
        let a = run(&inst, 5, TieBreak::Random(7));
        let b = run(&inst, 5, TieBreak::Random(7));
        let c = run(&inst, 5, TieBreak::Random(8));
        assert_eq!(a, b);
        // Different seed almost surely differs in pick order.
        assert!(a != c || a.horizon() == c.horizon());
    }

    #[test]
    fn highest_height_prefers_spine() {
        // Caterpillar: spine 0-1-2-3 plus 3 legs on the root. m=1: after
        // running the root, ready = {spine 1 (h=3), legs (h=1)}.
        let g = caterpillar(4, &[3, 0, 0, 0]);
        let inst = Instance::single(g);
        let s = run(&inst, 1, TieBreak::HighestHeight);
        let order: Vec<u32> = (1..=3).map(|t| s.at(t)[0].1 .0).collect();
        // The spine prefix has strictly decreasing heights 4, 3, 2 and must
        // run first; after that everything ready has height 1 (ties).
        assert_eq!(order, vec![0, 1, 2], "spine first under LPF tie-break");
    }

    #[test]
    fn most_children_prefers_fertile_nodes() {
        // Root -> {a, b}; a has 3 children, b has none. m=1 at step 2 must
        // pick a (2 ready: a=1?, need ids): caterpillar won't do; build
        // directly.
        let mut b = flowtree_dag::GraphBuilder::new(6);
        b.edge(0, 1).edge(0, 2).edge(1, 3).edge(1, 4).edge(1, 5);
        let g = b.build().unwrap();
        let inst = Instance::single(g);
        let s = run(&inst, 1, TieBreak::MostChildren);
        assert_eq!(s.at(2)[0].1 .0, 1, "node with 3 children first");
    }

    #[test]
    fn fifo_constraint_holds() {
        // Whenever a ready subjob is skipped at t, every scheduled subjob
        // belongs to a job with release <= that subjob's job's release.
        let inst = Instance::new(vec![
            JobSpec { graph: caterpillar(5, &[2, 2, 2, 2, 2]), release: 0 },
            JobSpec { graph: star(9), release: 1 },
            JobSpec { graph: chain(7), release: 2 },
        ]);
        let m = 3;
        let s = run(&inst, m, TieBreak::BecameReady);
        // Replay and check the FIFO property step by step.
        let mut st = flowtree_sim::SimState::new(&inst);
        for t in 0..s.horizon() {
            st.release_due(&inst, t);
            let picks = s.at(t + 1);
            if picks.len() < m {
                // Constraint (1): all ready subjobs scheduled.
                assert_eq!(st.total_ready(), picks.len(), "t={t}");
            } else {
                // Constraint (2): scheduled jobs arrived no later than any
                // skipped ready subjob's job.
                let max_sched = picks.iter().map(|&(j, _)| inst.release(j)).max().unwrap();
                for &job in st.alive() {
                    let scheduled: Vec<_> =
                        picks.iter().filter(|&&(j, _)| j == job).map(|&(_, v)| v.0).collect();
                    let skipped = st.ready(job).len() - scheduled.len();
                    if skipped > 0 {
                        assert!(
                            max_sched <= inst.release(job),
                            "t={t}: skipped ready subjob of {job} while a later job ran"
                        );
                    }
                }
            }
            for &(j, v) in picks {
                st.complete(&inst, j, v, t + 1);
            }
            st.prune_alive();
        }
    }

    #[test]
    fn names() {
        assert_eq!(Fifo::arbitrary().name(), "FIFO[became-ready]");
        assert_eq!(Fifo::new(TieBreak::HighestHeight).name(), "FIFO[highest-height]");
        assert_eq!(Fifo::new(TieBreak::Random(3)).name(), "FIFO[random]");
    }

    #[test]
    fn splitmix_below_in_range() {
        let mut r = SplitMix64(42);
        for n in 1..50usize {
            for _ in 0..20 {
                assert!(r.below(n) < n);
            }
        }
    }
}
