//! Classical comparator schedulers.
//!
//! These are not from the paper's Section 5 toolbox; they are the baselines a
//! practitioner would reach for, used in the experiment harness to put the
//! paper's algorithms in context:
//!
//! * [`RoundRobin`] — equipartition ("EQUI"): split the `m` processors as
//!   evenly as possible among alive jobs each step;
//! * [`RandomWorkConserving`] — any-work-conserving strawman: run `m`
//!   uniformly random ready subjobs (it has the span-reduction property the
//!   paper discusses, and nothing else);
//! * [`LeastRemainingWorkFirst`] — an SJF-flavoured clairvoyant policy.

use flowtree_dag::{JobId, NodeId, Time};
use flowtree_sim::{Clairvoyance, OnlineScheduler, Selection, SimView};

/// Equipartition: each alive job gets `floor(m / k)` processors (the first
/// `m mod k` jobs in arrival order get one extra); leftovers (a job with
/// fewer ready subjobs than its share) are re-granted to later jobs greedily.
pub struct RoundRobin;

impl OnlineScheduler for RoundRobin {
    fn clairvoyance(&self) -> Clairvoyance {
        Clairvoyance::NonClairvoyant
    }

    fn select(&mut self, _t: Time, view: &SimView<'_>, sel: &mut Selection) {
        let alive = view.alive();
        let k = alive.len();
        if k == 0 {
            return;
        }
        let m = view.m();
        let (share, extra) = (m / k, m % k);
        for (i, &job) in alive.iter().enumerate() {
            let quota = share + usize::from(i < extra);
            for &v in view.ready(job).iter().take(quota) {
                if !sel.push(job, NodeId(v)) {
                    return;
                }
            }
        }
        // Second pass: hand unused capacity to jobs with surplus ready work,
        // skipping exactly what each job's first-pass quota covered (a job
        // beyond the `extra` cutoff took only `share`, so skipping a uniform
        // `share + 1` would strand its `share`-th ready subjob and leave a
        // processor idle — breaking work conservation).
        for (i, &job) in alive.iter().enumerate() {
            if sel.remaining() == 0 {
                return;
            }
            let taken = share + usize::from(i < extra);
            for &v in view.ready(job).iter().skip(taken) {
                if !sel.push(job, NodeId(v)) {
                    return;
                }
            }
        }
    }

    fn name(&self) -> String {
        "RoundRobin".into()
    }
}

/// Work-conserving scheduler that runs a uniformly random set of ready
/// subjobs (seeded, deterministic).
pub struct RandomWorkConserving {
    state: u64,
}

impl RandomWorkConserving {
    /// Seeded constructor.
    pub fn new(seed: u64) -> Self {
        RandomWorkConserving { state: seed ^ 0x2545F4914F6CDD1D }
    }

    fn next(&mut self) -> u64 {
        // xorshift64*
        self.state ^= self.state >> 12;
        self.state ^= self.state << 25;
        self.state ^= self.state >> 27;
        self.state.wrapping_mul(0x2545F4914F6CDD1D)
    }
}

impl OnlineScheduler for RandomWorkConserving {
    fn clairvoyance(&self) -> Clairvoyance {
        Clairvoyance::NonClairvoyant
    }

    fn select(&mut self, _t: Time, view: &SimView<'_>, sel: &mut Selection) {
        // Gather the global ready pool, then sample without replacement.
        let mut pool: Vec<(JobId, u32)> = Vec::with_capacity(view.total_ready());
        for &job in view.alive() {
            for &v in view.ready(job) {
                pool.push((job, v));
            }
        }
        let m = view.m().min(pool.len());
        for i in 0..m {
            let j = i + (self.next() % (pool.len() - i) as u64) as usize;
            pool.swap(i, j);
            let (job, v) = pool[i];
            sel.push(job, NodeId(v));
        }
    }

    fn name(&self) -> String {
        "RandomWC".into()
    }
}

/// Clairvoyant "shortest job first" flavour: order alive jobs by remaining
/// work ascending (FIFO to break ties), then fill like FIFO with the
/// became-ready tie-break. Known to be terrible for *maximum* flow (it
/// starves big jobs) — included as a cautionary baseline.
pub struct LeastRemainingWorkFirst;

impl OnlineScheduler for LeastRemainingWorkFirst {
    fn clairvoyance(&self) -> Clairvoyance {
        Clairvoyance::Clairvoyant
    }

    fn select(&mut self, _t: Time, view: &SimView<'_>, sel: &mut Selection) {
        let mut order: Vec<JobId> = view.alive().to_vec();
        order.sort_by_key(|&j| view.unfinished(j)); // stable: FIFO tie-break
        for &job in &order {
            for &v in view.ready(job) {
                if !sel.push(job, NodeId(v)) {
                    return;
                }
            }
        }
    }

    fn name(&self) -> String {
        "LRWF".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowtree_dag::builder::{chain, star};
    use flowtree_sim::metrics::flow_stats;
    use flowtree_sim::{Engine, Instance, JobSpec};

    fn wide_pair() -> Instance {
        Instance::new(vec![
            JobSpec { graph: star(8), release: 0 },
            JobSpec { graph: star(8), release: 0 },
        ])
    }

    #[test]
    fn round_robin_splits_evenly() {
        let inst = wide_pair();
        let s = Engine::new(4).run(&inst, &mut RoundRobin).unwrap();
        s.verify(&inst).unwrap();
        // Step 2: both jobs have 8 ready leaves; each gets 2 processors.
        let step2 = s.at(2);
        let a = step2.iter().filter(|&&(j, _)| j == JobId(0)).count();
        let b = step2.iter().filter(|&&(j, _)| j == JobId(1)).count();
        assert_eq!((a, b), (2, 2));
    }

    #[test]
    fn round_robin_redistributes_surplus() {
        // Job 0 is a chain (1 ready subjob); job 1 a wide star. Extra
        // processors flow to the star.
        let inst = Instance::new(vec![
            JobSpec { graph: chain(6), release: 0 },
            JobSpec { graph: star(12), release: 0 },
        ]);
        let s = Engine::new(6).run(&inst, &mut RoundRobin).unwrap();
        s.verify(&inst).unwrap();
        // Step 2: chain has 1 ready, star has 12 leaves; load must be 6.
        assert_eq!(s.load(2), 6);
    }

    #[test]
    fn round_robin_is_work_conserving_past_the_extra_cutoff() {
        // k=2 alive jobs on m=6: share=3, extra=0. Job 0 offers 1 ready
        // subjob, job 1 offers 5 — equipartition gives job 1 three, and the
        // re-grant pass must pick up its remaining two (a uniform
        // `skip(share + 1)` would strand ready[3] and run only 5 of 6).
        let inst = Instance::new(vec![
            JobSpec { graph: chain(3), release: 0 },
            JobSpec { graph: star(5), release: 0 },
        ]);
        let s = Engine::new(6).run(&inst, &mut RoundRobin).unwrap();
        s.verify(&inst).unwrap();
        // Step 2 (t=1): chain has 1 ready, star has 5 leaves ready.
        assert_eq!(s.load(2), 6);
    }

    #[test]
    fn round_robin_single_job_gets_everything() {
        let inst = Instance::single(star(9));
        let s = Engine::new(4).run(&inst, &mut RoundRobin).unwrap();
        s.verify(&inst).unwrap();
        assert_eq!(s.load(2), 4);
    }

    #[test]
    fn random_wc_is_work_conserving_and_seeded() {
        let inst = wide_pair();
        let a = Engine::new(4).run(&inst, &mut RandomWorkConserving::new(1)).unwrap();
        a.verify(&inst).unwrap();
        let b = Engine::new(4).run(&inst, &mut RandomWorkConserving::new(1)).unwrap();
        assert_eq!(a, b);
        // Work conservation: roots first (2), then 16 leaves over 4 full
        // steps => makespan 5 regardless of randomness.
        let stats = flow_stats(&inst, &a);
        assert_eq!(stats.makespan, 5);
    }

    #[test]
    fn lrwf_starves_the_large_job() {
        // A stream of small jobs keeps the big chain waiting under LRWF.
        let mut jobs = vec![JobSpec { graph: star(8), release: 0 }];
        for t in 0..6 {
            jobs.push(JobSpec { graph: chain(2), release: t });
        }
        let inst = Instance::new(jobs);
        let s = Engine::new(2).run(&inst, &mut LeastRemainingWorkFirst).unwrap();
        s.verify(&inst).unwrap();
        let lrwf = flow_stats(&inst, &s);
        let s2 = Engine::new(2).run(&inst, &mut crate::fifo::Fifo::arbitrary()).unwrap();
        let fifo = flow_stats(&inst, &s2);
        // The star's flow under LRWF is at least as bad as under FIFO.
        assert!(lrwf.flows[0] >= fifo.flows[0]);
    }

    #[test]
    fn all_baselines_complete_and_verify() {
        let inst = Instance::new(vec![
            JobSpec { graph: star(5), release: 0 },
            JobSpec { graph: chain(4), release: 1 },
            JobSpec { graph: star(3), release: 3 },
        ]);
        let mut schedulers: Vec<Box<dyn OnlineScheduler>> = vec![
            Box::new(RoundRobin),
            Box::new(RandomWorkConserving::new(9)),
            Box::new(LeastRemainingWorkFirst),
        ];
        for s in schedulers.iter_mut() {
            let sched = Engine::new(3).run(&inst, s.as_mut()).unwrap();
            sched.verify(&inst).unwrap();
        }
    }
}
