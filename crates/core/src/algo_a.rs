//! Algorithm 𝒜 — the O(1)-competitive clairvoyant out-forest scheduler of
//! Section 5.3, with the Section 5.4 batching reduction built in.
//!
//! 𝒜 is parameterized by α (an integer ≥ 3 dividing `m`; the paper picks
//! α = 4) and by a block length `half` (the paper's OPT/2, so the algorithm's
//! working estimate of the optimal maximum flow is `2·half`). Jobs arriving
//! at the same block boundary are treated as one **group** (one out-forest
//! job). For each group 𝒜 precomputes `S = LPF(group, m/α)` and then:
//!
//! * **blocks 1–2 (the head)**: the group replays `S` verbatim on a dedicated
//!   slice of `m/α` processors — the newest group on the first slice, the
//!   second-newest on the second;
//! * **blocks 3+ (the tail)**: the group joins the FIFO pool: older groups
//!   first, each granted `min(remaining processors, m/α)` and scheduled by
//!   the Most-Children replay ([`McReplay`]) of the unprocessed part of `S`.
//!
//! By Lemma 5.2 the unprocessed part after `2·half ≥ span` steps is a full
//! `m/α`-wide rectangle (except its last step), which is exactly MC's
//! precondition; Lemma 5.5 then guarantees the FIFO pool never wastes a
//! granted processor, and Theorem 5.6 gives 𝒜's flow ≤ (β/2)·OPT with
//! β = 258 whenever `2·half ≥ OPT`.
//!
//! With [`AlgoA::with_batching`], arrivals at arbitrary times are deferred to
//! the next block boundary (the Section 5.4 reduction, costing a factor ≤ 2).

use crate::lpf::lpf_levels_forest;
use crate::mc::McReplay;
use flowtree_dag::{JobGraph, JobId, NodeId, Time};
use flowtree_sim::{Clairvoyance, OnlineScheduler, Selection, SimView};

/// A pending (not yet grouped) job: its id plus the subset of nodes still to
/// execute (`None` = all of them; `Some` masks are used by guess-and-double
/// restarts).
#[derive(Debug, Clone)]
pub(crate) struct PendingJob {
    pub job: JobId,
    pub remaining: Option<Vec<bool>>,
}

/// One group of jobs released (or deferred to) the same block boundary.
struct Group {
    /// Block boundary at which the group started executing.
    start: Time,
    /// Union node -> (job, original node).
    origin: Vec<(JobId, u32)>,
    /// The union out-forest (over remaining nodes only).
    union: JobGraph,
    /// `S` = LPF(union, m/α): levels of union-node ids.
    levels: Vec<Vec<u32>>,
    /// Tail replay, created when the group leaves the head phase.
    mc: Option<McReplay>,
}

impl Group {
    fn is_done(&self, age: Time) -> bool {
        match &self.mc {
            Some(mc) => mc.is_done(),
            None => age as usize >= self.levels.len(),
        }
    }
}

/// Algorithm 𝒜 (see module docs).
pub struct AlgoA {
    alpha: usize,
    half: Time,
    batching: bool,
    pending: Vec<PendingJob>,
    groups: Vec<Group>,
    /// Total subjobs scheduled (for diagnostics).
    scheduled: u64,
}

impl AlgoA {
    /// 𝒜 for semi-batched instances (every release an integer multiple of
    /// `half`); panics at arrival otherwise. The paper's Section 5.3 setting
    /// with OPT = `2·half`.
    pub fn semi_batched(alpha: usize, half: Time) -> Self {
        Self::build(alpha, half, false)
    }

    /// 𝒜 with the Section 5.4 batching reduction: arrivals at arbitrary
    /// times are deferred to the next multiple of `half`.
    pub fn with_batching(alpha: usize, half: Time) -> Self {
        Self::build(alpha, half, true)
    }

    fn build(alpha: usize, half: Time, batching: bool) -> Self {
        assert!(alpha >= 3, "the schedule layout needs alpha > 2 (paper 5.3)");
        assert!(half >= 1, "block length must be positive");
        AlgoA {
            alpha,
            half,
            batching,
            pending: Vec::new(),
            groups: Vec::new(),
            scheduled: 0,
        }
    }

    /// Block length (the paper's OPT/2).
    pub fn half(&self) -> Time {
        self.half
    }

    /// Inject a job (used on guess-and-double restarts): schedules only the
    /// nodes with `remaining[v] == true` from the next boundary on.
    pub(crate) fn enqueue(&mut self, job: JobId, remaining: Option<Vec<bool>>) {
        self.pending.push(PendingJob { job, remaining });
    }

    /// Width of one processor slice.
    fn slice(&self, m: usize) -> usize {
        assert!(
            m.is_multiple_of(self.alpha) && m >= self.alpha,
            "alpha = {} must divide m = {m}",
            self.alpha
        );
        m / self.alpha
    }

    /// Form a group from all pending jobs at boundary `t`.
    fn form_group(&mut self, t: Time, view: &SimView<'_>) {
        if self.pending.is_empty() {
            return;
        }
        let p = self.slice(view.m());
        let pending = std::mem::take(&mut self.pending);

        // Build the union of (remaining portions of) member graphs.
        let mut parts: Vec<JobGraph> = Vec::with_capacity(pending.len());
        let mut part_origin: Vec<Vec<(JobId, u32)>> = Vec::with_capacity(pending.len());
        for pj in &pending {
            let g = view.graph(pj.job);
            match &pj.remaining {
                None => {
                    parts.push(g.clone());
                    part_origin.push((0..g.n() as u32).map(|v| (pj.job, v)).collect());
                }
                Some(mask) => {
                    debug_assert!(
                        crate::lpf::descendant_closed(g, mask),
                        "remaining set must be descendant-closed"
                    );
                    let (sub, old) = g.induced_subgraph(mask);
                    part_origin.push(old.iter().map(|&v| (pj.job, v)).collect());
                    parts.push(sub);
                }
            }
        }
        let refs: Vec<&JobGraph> = parts.iter().collect();
        let (union, offsets) = JobGraph::disjoint_union(&refs);
        let mut origin = vec![(JobId(0), 0u32); union.n()];
        for (pi, po) in part_origin.iter().enumerate() {
            for (local, &orig) in po.iter().enumerate() {
                origin[offsets[pi] as usize + local] = orig;
            }
        }

        // S = LPF(union, m/alpha). (Computed via the forest entry point so a
        // future optimization could skip the materialized union.)
        let levels_pairs = lpf_levels_forest(&[(&union, None)], p);
        let levels: Vec<Vec<u32>> = levels_pairs
            .into_iter()
            .map(|l| l.into_iter().map(|(_, v)| v).collect())
            .collect();

        self.groups.push(Group { start: t, origin, union, levels, mc: None });
    }
}

impl OnlineScheduler for AlgoA {
    fn clairvoyance(&self) -> Clairvoyance {
        Clairvoyance::Clairvoyant
    }

    fn on_arrival(&mut self, t: Time, job: JobId, _view: &SimView<'_>) {
        if !self.batching {
            assert!(
                t.is_multiple_of(self.half),
                "semi-batched AlgoA requires releases at multiples of {} (got {t})",
                self.half
            );
        }
        self.enqueue(job, None);
    }

    fn select(&mut self, t: Time, view: &SimView<'_>, sel: &mut Selection) {
        let p = self.slice(view.m());
        let opt = 2 * self.half; // the algorithm's working OPT estimate

        if t.is_multiple_of(self.half) {
            // Transition groups whose head phase ends now (age == opt) to
            // MC-replay mode over the unprocessed part of S.
            for g in &mut self.groups {
                let age = t - g.start;
                if age >= opt && g.mc.is_none() {
                    let executed = (age as usize).min(g.levels.len());
                    let tail: Vec<Vec<u32>> = g.levels[executed..].to_vec();
                    // When the working estimate is valid (2·half >= the
                    // group's true OPT on the full machine), Lemma 5.2
                    // makes this tail a full-width rectangle and Lemma 5.5
                    // applies. Under guess-and-double the estimate may
                    // still be too small; MC stays *feasible* on a ragged
                    // tail (it only loses the never-idle guarantee), and
                    // the resulting slow progress is what triggers the next
                    // doubling. So no rectangularity assertion here — the
                    // property is validated where it is guaranteed (E2/E7).
                    g.mc = Some(McReplay::new(&g.union, tail));
                }
            }
            // New group from everything pending.
            self.form_group(t, view);
        }

        // Phase 1 & 2: young groups (age < opt) replay S verbatim on their
        // dedicated m/alpha slice.
        for g in &mut self.groups {
            let age = t - g.start;
            if age < opt {
                if let Some(level) = g.levels.get(age as usize) {
                    debug_assert!(level.len() <= p);
                    for &v in level {
                        let (job, orig) = g.origin[v as usize];
                        let ok = sel.push(job, NodeId(orig));
                        debug_assert!(ok, "young slices exceeded capacity");
                        self.scheduled += 1;
                    }
                }
            }
        }

        // Phase 3: older groups in FIFO order via MC, each granted at most
        // m/alpha of whatever capacity remains.
        for g in &mut self.groups {
            let age = t - g.start;
            if age < opt {
                continue;
            }
            let mc = g.mc.as_mut().expect("old group must have an MC replay");
            if mc.is_done() {
                continue;
            }
            let m_t = sel.remaining().min(p);
            if m_t == 0 {
                break;
            }
            for v in mc.next(m_t) {
                let (job, orig) = g.origin[v as usize];
                let ok = sel.push(job, NodeId(orig));
                debug_assert!(ok);
                self.scheduled += 1;
            }
        }

        // Garbage-collect finished groups.
        self.groups.retain(|g| !g.is_done(t + 1 - g.start));
    }

    fn name(&self) -> String {
        format!(
            "AlgoA[alpha={},half={}{}]",
            self.alpha,
            self.half,
            if self.batching { ",batched" } else { "" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowtree_dag::builder::{caterpillar, chain, complete_kary, star};
    use flowtree_dag::DepthProfile;
    use flowtree_sim::metrics::flow_stats;
    use flowtree_sim::{Engine, Instance, JobSpec};

    /// Known-OPT helper: single-release-group instances have
    /// OPT = formula of Corollary 5.4 applied to the union.
    fn union_opt(inst: &Instance, m: u64) -> u64 {
        let graphs: Vec<&JobGraph> = inst.jobs().iter().map(|j| &j.graph).collect();
        let (u, _) = JobGraph::disjoint_union(&graphs);
        DepthProfile::new(&u).opt_single_job(m)
    }

    #[test]
    fn single_job_completes_feasibly() {
        let g = complete_kary(2, 5);
        let inst = Instance::single(g);
        let m = 8;
        let opt = union_opt(&inst, m as u64);
        let half = opt.div_ceil(2);
        let s = Engine::new(m).run(&inst, &mut AlgoA::semi_batched(4, half)).unwrap();
        s.verify(&inst).unwrap();
        let stats = flow_stats(&inst, &s);
        // Theorem 5.6 bound (beta/2 = 129), hugely loose in practice; the
        // realistic sanity bound is alpha * opt for a lone job (Lemma 5.3)
        // plus the block quantization.
        assert!(stats.max_flow <= 129 * opt.max(1));
        assert!(stats.max_flow <= 4 * opt + 2 * half);
    }

    #[test]
    fn semi_batched_stream_is_feasible_and_bounded() {
        // Groups of jobs arriving every `half`; OPT known to be <= 2*half by
        // construction (each group's union OPT <= 8, set half = 8).
        let half: Time = 8;
        let m = 8;
        let mut jobs = Vec::new();
        for i in 0..6u64 {
            jobs.push(JobSpec { graph: star(7), release: i * half });
            jobs.push(JobSpec { graph: chain(4), release: i * half });
        }
        let inst = Instance::new(jobs);
        let s = Engine::new(m).run(&inst, &mut AlgoA::semi_batched(4, half)).unwrap();
        s.verify(&inst).unwrap();
        let stats = flow_stats(&inst, &s);
        assert!(
            stats.max_flow <= 129 * 2 * half,
            "Theorem 5.6 bound violated: {}",
            stats.max_flow
        );
    }

    #[test]
    #[should_panic(expected = "semi-batched AlgoA requires releases")]
    fn semi_batched_rejects_off_boundary_arrivals() {
        let inst = Instance::new(vec![
            JobSpec { graph: chain(2), release: 0 },
            JobSpec { graph: chain(2), release: 3 },
        ]);
        let _ = Engine::new(4).run(&inst, &mut AlgoA::semi_batched(4, 8));
    }

    #[test]
    fn batching_mode_defers_and_completes() {
        let half: Time = 4;
        let inst = Instance::new(vec![
            JobSpec { graph: star(5), release: 0 },
            JobSpec { graph: chain(3), release: 1 },
            JobSpec { graph: star(4), release: 6 },
            JobSpec { graph: chain(2), release: 7 },
        ]);
        let m = 8;
        let s = Engine::new(m).run(&inst, &mut AlgoA::with_batching(4, half)).unwrap();
        s.verify(&inst).unwrap();
        // Jobs arriving at 1 are deferred to 4: nothing of job 1 may run in
        // steps 2..=4.
        for t in 2..=4 {
            assert!(
                s.at(t).iter().all(|&(j, _)| j != flowtree_dag::JobId(1)),
                "deferred job ran early at step {t}"
            );
        }
        let stats = flow_stats(&inst, &s);
        assert!(stats.max_flow <= 129 * 2 * half);
    }

    #[test]
    fn head_runs_lpf_schedule_verbatim() {
        // One job; its first levels must match LPF(g, m/alpha) exactly.
        let g = caterpillar(6, &[2, 3, 0, 4, 1, 0]);
        let inst = Instance::single(g.clone());
        let (m, alpha) = (8, 4);
        let half = 16; // comfortably >= span so the whole job is head
        let s = Engine::new(m).run(&inst, &mut AlgoA::semi_batched(alpha, half)).unwrap();
        s.verify(&inst).unwrap();
        let levels = crate::lpf::lpf_levels(&g, m / alpha);
        for (i, level) in levels.iter().enumerate() {
            let mut got: Vec<u32> = s.at(i as Time + 1).iter().map(|&(_, v)| v.0).collect();
            let mut want = level.clone();
            got.sort_unstable();
            want.sort_unstable();
            assert_eq!(got, want, "step {}", i + 1);
        }
    }

    #[test]
    fn old_groups_share_leftover_processors_fifo() {
        // Three heavy groups stack up; once old, the earliest gets MC grants
        // first. We check global feasibility + that everything finishes
        // within the theorem bound.
        let half: Time = 2;
        let m = 12;
        let mut jobs = Vec::new();
        for i in 0..5u64 {
            // Each group: work 3 * m * half (heavy — the system overloads,
            // which stresses the FIFO tail pool).
            jobs.push(JobSpec { graph: star((3 * m * half as usize) - 1), release: i * half });
        }
        let inst = Instance::new(jobs);
        let s = Engine::new(m).run(&inst, &mut AlgoA::semi_batched(4, half)).unwrap();
        s.verify(&inst).unwrap();
    }

    #[test]
    fn enqueue_with_mask_schedules_only_remaining() {
        // Simulate a guess-double handoff: chain(4) with prefix executed.
        let g = chain(4);
        let inst = Instance::new(vec![
            JobSpec { graph: g.clone(), release: 0 },
            // A dummy job so the engine has work for the masked test to
            // coexist with (keeps instance auto-horizon sane).
            JobSpec { graph: chain(1), release: 0 },
        ]);
        // Drive manually: AlgoA must not run nodes 0,1 of job 0.
        struct Hybrid {
            inner: AlgoA,
            primed: bool,
        }
        impl OnlineScheduler for Hybrid {
            fn clairvoyance(&self) -> Clairvoyance {
                Clairvoyance::Clairvoyant
            }
            fn on_arrival(&mut self, _t: Time, job: JobId, _v: &SimView<'_>) {
                if job == JobId(1) {
                    self.inner.enqueue(job, None);
                }
                // Job 0 handled manually below.
            }
            fn select(&mut self, t: Time, view: &SimView<'_>, sel: &mut Selection) {
                if !self.primed {
                    // Execute nodes 0,1 of job 0 "by hand" in the first two
                    // steps, then hand the rest to AlgoA.
                    if t == 0 {
                        sel.push(JobId(0), NodeId(0));
                        return;
                    }
                    if t == 1 {
                        sel.push(JobId(0), NodeId(1));
                        self.inner.enqueue(JobId(0), Some(vec![false, false, true, true]));
                        self.primed = true;
                        return;
                    }
                }
                self.inner.select(t, view, sel);
            }
        }
        let mut h = Hybrid { inner: AlgoA::with_batching(4, 2), primed: false };
        let s = Engine::new(8).run(&inst, &mut h).unwrap();
        s.verify(&inst).unwrap();
        // Nodes 2,3 must run at t >= 3 (next boundary after priming is 2).
        let c = s.completion_times(&inst);
        assert!(c[0].unwrap() >= 4);
    }

    #[test]
    fn adversarial_fifo_instance_is_handled_well() {
        // The Section 4 shape (layers with key subjobs) released in a
        // stream; AlgoA must stay within its constant bound. (The full
        // adaptive adversary lives in flowtree-workloads; this is the static
        // skeleton.)
        let m = 8usize;
        let sizes: Vec<usize> = (0..m).map(|i| 1 + (i * 3) % (m + 1)).collect();
        let (g, _) = flowtree_dag::builder::keyed_layers(&sizes);
        let half = DepthProfile::new(&g).opt_single_job(m as u64).div_ceil(2).max(1);
        let mut jobs = Vec::new();
        for i in 0..4u64 {
            jobs.push(JobSpec { graph: g.clone(), release: i * half });
        }
        let inst = Instance::new(jobs);
        let s = Engine::new(m).run(&inst, &mut AlgoA::semi_batched(4, half)).unwrap();
        s.verify(&inst).unwrap();
        let stats = flow_stats(&inst, &s);
        assert!(stats.max_flow <= 129 * 2 * half);
    }

    #[test]
    fn name_reports_parameters() {
        assert_eq!(AlgoA::semi_batched(4, 7).name(), "AlgoA[alpha=4,half=7]");
        assert_eq!(AlgoA::with_batching(8, 3).name(), "AlgoA[alpha=8,half=3,batched]");
    }

    #[test]
    #[should_panic(expected = "alpha > 2")]
    fn alpha_two_rejected() {
        AlgoA::semi_batched(2, 4);
    }
}
