//! # flowtree-core — the SPAA 2024 schedulers
//!
//! This crate implements every scheduling algorithm of *Scheduling Out-Trees
//! Online to Optimize Maximum Flow* (SPAA 2024):
//!
//! * [`fifo`] — the FIFO family (Section 3's definition): allocate processors
//!   to alive jobs in arrival order; a pluggable [`fifo::TieBreak`] decides
//!   *which* ready subjobs run when a job gets fewer processors than it has
//!   ready subjobs — the intra-job decision the paper shows can cost
//!   Ω(log m).
//! * [`lpf`] — Longest Path First (Section 5.1): the clairvoyant single-job
//!   policy that is optimal on `m` processors and α-competitive on `m/α`,
//!   plus the head/tail decomposition of Figure 2.
//! * [`mc`] — the Most-Children replay (Section 5.2): re-executes a given
//!   feasible schedule under fluctuating processor counts without idling a
//!   granted processor (Lemma 5.5).
//! * [`algo_a`] — Algorithm 𝒜 (Section 5.3): the O(1)-competitive
//!   super-clairvoyant algorithm for semi-batched out-forest instances,
//!   with the Section 5.4 batching reduction built in.
//! * [`guess_double`] — the Section 5.4 guess-and-double wrapper removing
//!   the a-priori knowledge of OPT (the fully general 1548-competitive
//!   clairvoyant algorithm of Theorem 5.7).
//! * [`baselines`] — classical comparators: Graham list scheduling,
//!   round-robin equipartition, random work-conserving.
//! * [`registry`] — a declarative [`SchedulerSpec`] covering every entry
//!   above, shared by the CLI, the E16 matrix, and the benchmarks.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod algo_a;
pub mod baselines;
pub mod fifo;
pub mod guess_double;
pub mod lpf;
pub mod mc;
pub mod registry;

pub use algo_a::AlgoA;
pub use fifo::{Fifo, TieBreak};
pub use guess_double::GuessDoubleA;
pub use lpf::Lpf;
pub use mc::McReplay;
pub use registry::{build_scheduler, SchedulerSpec, DEFAULT_HALF, SCHEDULER_NAMES};
