//! Property tests for the Section 6 proof ledger: the paper's inequalities
//! must hold on *randomly constructed* certified batched instances, not just
//! the curated families of E14.
//!
//! Construction with a certified OPT upper bound: each batch is a random
//! out-forest with span <= P/2 and work <= m·P/2, so the batch alone is
//! schedulable in P/2 + P/2 = P steps (Corollary 5.4 bound: span + work/m),
//! and scheduling each batch inside its own window `[iP, (i+1)P]` gives a
//! feasible schedule with max flow <= P. Hence OPT <= P and `Section6::new`
//! with `opt = P` is a valid (conservative) instantiation of the analysis.

use flowtree_analysis::section6::Section6;
use flowtree_core::{Fifo, TieBreak};
use flowtree_dag::{GraphBuilder, JobGraph, Time};
use flowtree_sim::{Engine, Instance, JobSpec};
use proptest::prelude::*;

/// Random out-tree with at most `max_n` nodes and span at most `max_span`.
fn bounded_tree(max_n: usize, max_span: usize, picks: &[usize]) -> JobGraph {
    let n = max_n.max(1);
    let mut b = GraphBuilder::new(n);
    let mut depth = vec![1usize; n];
    for v in 1..n {
        // Attach to an earlier node whose depth leaves room.
        let mut parent = picks[v - 1] % v;
        if depth[parent] >= max_span {
            // Fall back to the shallowest node.
            parent = (0..v).min_by_key(|&u| depth[u]).unwrap();
        }
        depth[v] = depth[parent] + 1;
        b.edge(parent as u32, v as u32);
    }
    b.build().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn section6_invariants_on_random_certified_batches(
        m in 2usize..7,
        period_half in 3u64..8,
        batches in 2usize..5,
        picks in proptest::collection::vec(0usize..10_000, 300),
        tie in 0usize..3,
    ) {
        let p: Time = 2 * period_half; // OPT upper bound P (even)
        // Per batch: span <= P/2 and work <= m*P/2.
        let max_span = period_half as usize;
        let max_work = (m as u64 * period_half) as usize;
        let mut jobs = Vec::new();
        let mut cursor = 0usize;
        for b in 0..batches {
            let mut budget = max_work;
            // A couple of jobs per batch within the budget.
            for _ in 0..2 {
                if budget == 0 {
                    break;
                }
                let n = 1 + picks[cursor % picks.len()] % budget.min(12);
                cursor += 1;
                let slice = &picks[cursor % (picks.len() - 20)..];
                let g = bounded_tree(n, max_span, slice);
                cursor += n;
                budget -= g.n();
                jobs.push(JobSpec { graph: g, release: b as Time * p });
            }
        }
        let inst = Instance::new(jobs);
        // Sanity of the certification argument.
        prop_assert!(inst.max_span() <= period_half);
        prop_assert!(inst.is_batched(p));

        let tie = [TieBreak::BecameReady, TieBreak::LastReady, TieBreak::Random(7)][tie];
        let s = Engine::new(m)
            .with_max_horizon(1_000_000)
            .run(&inst, &mut Fifo::new(tie))
            .unwrap();
        s.verify(&inst).unwrap();

        let sec = Section6::new(&inst, &s, m, p);
        prop_assert!(sec.check_prop_6_2().is_ok());
        prop_assert!(sec.check_lemma_6_4().is_ok());
        prop_assert!(sec.check_lemma_6_5().is_ok());
        prop_assert!(sec.max_batch_flow() <= sec.theorem_6_1_bound());
    }
}
