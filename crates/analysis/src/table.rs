//! Column-aligned markdown tables with CSV export.

/// A simple table: header plus string rows, rendered as aligned markdown.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    /// Table caption (rendered above the table).
    pub title: String,
    columns: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with the given caption and column names.
    pub fn new(title: impl Into<String>, columns: &[&str]) -> Self {
        Table {
            title: title.into(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the column count).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.columns.len(), "row width mismatch in table '{}'", self.title);
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// No data rows yet?
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Column names.
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// Borrow a cell (row, column) as a string.
    pub fn cell(&self, row: usize, col: usize) -> &str {
        &self.rows[row][col]
    }

    /// Parse a column as f64 (panics on non-numeric cells) — used by tests
    /// asserting monotonicity/bounds on results.
    pub fn column_f64(&self, col: usize) -> Vec<f64> {
        self.rows
            .iter()
            .map(|r| {
                r[col]
                    .parse::<f64>()
                    .unwrap_or_else(|_| panic!("non-numeric cell '{}'", r[col]))
            })
            .collect()
    }

    /// Render as aligned GitHub-flavoured markdown.
    pub fn to_markdown(&self) -> String {
        let mut width: Vec<usize> = self.columns.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                width[i] = width[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("**{}**\n\n", self.title));
        let render_row = |cells: &[String]| -> String {
            let mut line = String::from("|");
            for (i, c) in cells.iter().enumerate() {
                line.push_str(&format!(" {:<w$} |", c, w = width[i]));
            }
            line.push('\n');
            line
        };
        out.push_str(&render_row(&self.columns));
        out.push('|');
        for w in &width {
            out.push_str(&format!("{:-<w$}|", "", w = w + 2));
        }
        out.push('\n');
        for row in &self.rows {
            out.push_str(&render_row(row));
        }
        out
    }

    /// Render as CSV (RFC-4180-ish; cells containing commas/quotes are
    /// quoted).
    pub fn to_csv(&self) -> String {
        fn esc(s: &str) -> String {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        }
        let mut out = String::new();
        out.push_str(&self.columns.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// Format a float with 3 significant decimals for table cells.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("demo", &["m", "ratio"]);
        t.row(vec!["8".into(), "1.5".into()]);
        t.row(vec!["16".into(), "2.25".into()]);
        t
    }

    #[test]
    fn markdown_is_aligned() {
        let md = sample().to_markdown();
        assert!(md.contains("**demo**"));
        assert!(md.contains("| m  | ratio |"));
        assert!(md.contains("| 8  | 1.5   |"));
        assert!(md.contains("|----|-------|"));
    }

    #[test]
    fn csv_export() {
        let csv = sample().to_csv();
        assert_eq!(csv, "m,ratio\n8,1.5\n16,2.25\n");
    }

    #[test]
    fn csv_escapes() {
        let mut t = Table::new("x", &["a"]);
        t.row(vec!["hi, \"there\"".into()]);
        assert_eq!(t.to_csv(), "a\n\"hi, \"\"there\"\"\"\n");
    }

    #[test]
    fn column_parse() {
        assert_eq!(sample().column_f64(1), vec![1.5, 2.25]);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn width_mismatch_panics() {
        Table::new("t", &["a", "b"]).row(vec!["1".into()]);
    }

    #[test]
    fn accessors() {
        let t = sample();
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        assert_eq!(t.cell(1, 0), "16");
        assert_eq!(t.columns()[1], "ratio");
        assert_eq!(f3(1.23456), "1.235");
    }
}
