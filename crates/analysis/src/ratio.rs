//! Run-and-measure helpers shared by the experiments.

use flowtree_dag::Time;
use flowtree_sim::metrics::FlowStats;
use flowtree_sim::{Engine, Instance, OnlineScheduler};

/// Outcome of running one scheduler on one instance.
#[derive(Debug, Clone)]
pub struct Run {
    /// Scheduler display name.
    pub scheduler: String,
    /// Flow statistics of the (verified) schedule.
    pub stats: FlowStats,
    /// The reference optimum (exact when the instance is certified,
    /// otherwise the best lower bound — flagged by `reference_exact`).
    pub reference: Time,
    /// Whether `reference` is the exact OPT.
    pub reference_exact: bool,
}

impl Run {
    /// Max-flow competitive ratio against the reference (an upper bound on
    /// the true ratio when the reference is a lower bound).
    pub fn ratio(&self) -> f64 {
        self.stats.max_flow as f64 / self.reference.max(1) as f64
    }
}

/// Run `scheduler` on `instance`, verify the schedule, and report the ratio
/// against `reference`.
pub fn measure(
    instance: &Instance,
    m: usize,
    scheduler: &mut dyn OnlineScheduler,
    reference: Time,
    reference_exact: bool,
) -> Run {
    let name = scheduler.name();
    let report = Engine::new(m)
        .with_max_horizon(horizon_for(instance))
        .run(instance, scheduler)
        .unwrap_or_else(|e| panic!("{name} failed: {e}"));
    report
        .verify(instance)
        .unwrap_or_else(|e| panic!("{name} produced an infeasible schedule: {e}"));
    Run {
        scheduler: name,
        stats: report.stats,
        reference,
        reference_exact,
    }
}

/// Generous horizon: guess-and-double restarts can stretch schedules far
/// beyond the work-conserving bound.
fn horizon_for(instance: &Instance) -> Time {
    instance.last_release() + 2000 * (instance.total_work() + instance.max_span() + 64)
}

/// Measure with the best certified lower bound as reference.
pub fn measure_vs_lower_bound(
    instance: &Instance,
    m: usize,
    scheduler: &mut dyn OnlineScheduler,
) -> Run {
    let lb = flowtree_opt::bounds::combined_lower_bound(instance, m as u64);
    measure(instance, m, scheduler, lb, false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowtree_core::Fifo;
    use flowtree_dag::builder::star;
    use flowtree_sim::JobSpec;

    #[test]
    fn measure_reports_ratio() {
        let inst = Instance::new(vec![JobSpec { graph: star(8), release: 0 }]);
        let run = measure(&inst, 4, &mut Fifo::arbitrary(), 3, true);
        assert_eq!(run.stats.max_flow, 3);
        assert_eq!(run.ratio(), 1.0);
        assert!(run.reference_exact);
        assert_eq!(run.scheduler, "FIFO[became-ready]");
    }

    #[test]
    fn measure_vs_lower_bound_uses_combined_bound() {
        let inst = Instance::new(vec![
            JobSpec { graph: star(8), release: 0 },
            JobSpec { graph: star(8), release: 0 },
        ]);
        let run = measure_vs_lower_bound(&inst, 3, &mut Fifo::arbitrary());
        assert_eq!(run.reference, 6); // ceil(18/3)
        assert!(!run.reference_exact);
        assert!(run.ratio() >= 1.0);
    }
}
