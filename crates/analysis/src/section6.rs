//! The Section 6 proof machinery, executable.
//!
//! The paper's FIFO upper bound (Theorem 6.1) rests on an intricate
//! induction over batched instances. Following the paper ("we may assume
//! only one job arrives at iOPT, by taking a union of DAGs if necessary"),
//! all jobs sharing a release boundary form one **batch-job**; for batch
//! `k` the analysis tracks
//!
//! * `w_k(t)` — remaining work of the batch at time `t`;
//! * `S_k` — the FIFO schedule restricted to batches released at or before
//!   `r_k`;
//! * `z_k(t)` — the number of *idle* steps of `S_k` in `(r_k, t]` (a step is
//!   idle when `S_k` runs fewer than `m` subjobs), with `z_k(t) = ∞` once
//!   the batch is complete;
//! * `τ` — the smallest power of two `>= 2·m·OPT`, `log τ` its exponent.
//!
//! This module computes all of them from a recorded schedule and checks the
//! paper's statements *empirically* on any batched run:
//!
//! * **Proposition 6.2**: `z_k(t) <= OPT` while the batch is alive;
//! * **Lemma 6.4**: `w_k(t) <= (OPT − z_k(t))·m`;
//! * **Lemma 6.5 (1)**: at `t = i·OPT`, batches `0 .. i − log τ − 1` are
//!   complete;
//! * **Lemma 6.5 (12)/(13)**: for windows of batches `j .. j+ℓ` with
//!   `j = i − log τ` and `0 <= ℓ <= log τ − 1`,
//!   `Σ w_k(t)/m <= ℓ·OPT + min_k z_k(t)` and
//!   `Σ w_k(t)/m <= Σ_{k=1..ℓ+1} (1 − 2^{-k})·OPT`.
//!
//! A failed check would falsify the paper's analysis (or reveal an
//! implementation bug); the E14 experiment reports the measured slack in
//! each inequality, showing *how much* room the induction has on hard vs
//! easy batched families.

use flowtree_dag::Time;
use flowtree_sim::{Instance, Schedule};

/// All Section 6 quantities for one (instance, schedule, OPT) triple, at
/// batch granularity.
#[derive(Debug, Clone)]
pub struct Section6 {
    m: usize,
    /// The batched period = the OPT value used by the analysis (any upper
    /// bound on the true optimum keeps every check conservative).
    pub opt: Time,
    /// `τ`: smallest power of two with `τ >= 2·m·OPT`.
    pub tau: u64,
    /// Release time of batch `k` (`k·OPT`; empty batches have work 0).
    releases: Vec<Time>,
    /// Completion time of batch `k` (its release if empty).
    completions: Vec<Time>,
    /// Total work of batch `k`.
    works: Vec<u64>,
    /// `done_by[k][t]` = subjobs of batch `k` completed by time `t`.
    done_by: Vec<Vec<u64>>,
    /// `idle[k][t]` = idle steps of `S_k` in `(r_k, t]`.
    idle: Vec<Vec<u64>>,
    horizon: Time,
}

impl Section6 {
    /// Compute the ledger. `opt` must be the batched period (the analysis'
    /// OPT); the instance must be batched with that period.
    pub fn new(instance: &Instance, schedule: &Schedule, m: usize, opt: Time) -> Self {
        assert!(opt >= 1 && m >= 1);
        assert!(instance.is_batched(opt), "Section 6 requires releases at multiples of OPT");
        let horizon = schedule.horizon();
        let num_batches = (instance.last_release() / opt + 1) as usize;
        let batch_of =
            |job: flowtree_dag::JobId| -> usize { (instance.release(job) / opt) as usize };

        let releases: Vec<Time> = (0..num_batches).map(|k| k as Time * opt).collect();
        let mut works = vec![0u64; num_batches];
        for (id, spec) in instance.iter() {
            works[batch_of(id)] += spec.graph.work();
        }

        // Per-batch completed-by-t prefix counts.
        let mut done_by = vec![vec![0u64; horizon as usize + 1]; num_batches];
        for t in 1..=horizon {
            for &(j, _) in schedule.at(t) {
                done_by[batch_of(j)][t as usize] += 1;
            }
        }
        for row in done_by.iter_mut() {
            for t in 1..=horizon as usize {
                row[t] += row[t - 1];
            }
        }
        // Batch completions (release for empty batches).
        let completions: Vec<Time> = (0..num_batches)
            .map(|k| {
                if works[k] == 0 {
                    return releases[k];
                }
                (1..=horizon)
                    .find(|&t| done_by[k][t as usize] == works[k])
                    .expect("complete schedule")
            })
            .collect();

        // idle[k][t]: S_k = batches 0..=k. Per step, load within batches
        // <= k; nested, so compute per-step per-batch loads then prefix.
        let mut idle = vec![vec![0u64; horizon as usize + 1]; num_batches];
        let mut step_batch_load = vec![0u64; num_batches];
        let mut cum = vec![0u64; num_batches];
        for t in 1..=horizon {
            step_batch_load.iter_mut().for_each(|x| *x = 0);
            for &(j, _) in schedule.at(t) {
                step_batch_load[batch_of(j)] += 1;
            }
            let mut load_le = 0u64;
            for k in 0..num_batches {
                load_le += step_batch_load[k];
                if t > releases[k] && load_le < m as u64 {
                    cum[k] += 1;
                }
                idle[k][t as usize] = cum[k];
            }
        }

        let tau = {
            let target = 2 * m as u64 * opt;
            let mut tau = 1u64;
            while tau < target {
                tau *= 2;
            }
            tau
        };

        Section6 {
            m,
            opt,
            tau,
            releases,
            completions,
            works,
            done_by,
            idle,
            horizon,
        }
    }

    /// `log2 τ`.
    pub fn log_tau(&self) -> u32 {
        self.tau.trailing_zeros()
    }

    /// Number of batches.
    pub fn num_batches(&self) -> usize {
        self.releases.len()
    }

    /// Remaining work `w_k(t)` of batch `k`.
    pub fn w(&self, k: usize, t: Time) -> u64 {
        let t = (t.min(self.horizon)) as usize;
        self.works[k] - self.done_by[k][t]
    }

    /// Idle-step count `z_k(t)` (`u64::MAX` codes the paper's ∞ for
    /// `t > C_k`).
    pub fn z(&self, k: usize, t: Time) -> u64 {
        if t > self.completions[k] {
            return u64::MAX;
        }
        self.idle[k][t.min(self.horizon) as usize]
    }

    /// Completion time of batch `k`.
    pub fn completion(&self, k: usize) -> Time {
        self.completions[k]
    }

    /// Check Proposition 6.2's consequence: `z_k(t) <= OPT` while alive.
    /// Returns the worst observed `z_k(t)`.
    pub fn check_prop_6_2(&self) -> Result<u64, String> {
        let mut worst = 0;
        for k in 0..self.num_batches() {
            for t in self.releases[k]..=self.completions[k] {
                let z = self.z(k, t);
                if z > self.opt {
                    return Err(format!(
                        "Prop 6.2 violated: z_{k}({t}) = {z} > OPT = {}",
                        self.opt
                    ));
                }
                worst = worst.max(z);
            }
        }
        Ok(worst)
    }

    /// Check Lemma 6.4: `w_k(t) <= (OPT − z_k(t))·m`. Returns the minimum
    /// observed slack `(OPT − z_k(t))·m − w_k(t)`.
    pub fn check_lemma_6_4(&self) -> Result<u64, String> {
        let mut slack = u64::MAX;
        for k in 0..self.num_batches() {
            for t in self.releases[k]..=self.completions[k] {
                let z = self.z(k, t);
                let bound = (self.opt.saturating_sub(z)) * self.m as u64;
                let w = self.w(k, t);
                if w > bound {
                    return Err(format!(
                        "Lemma 6.4 violated: w_{k}({t}) = {w} > (OPT − z)·m = {bound}"
                    ));
                }
                slack = slack.min(bound - w);
            }
        }
        Ok(slack)
    }

    /// Check Lemma 6.5 at every boundary `t = i·OPT` (including boundaries
    /// past the last release, until the schedule drains). Returns the max
    /// number of simultaneously alive batches observed at boundaries.
    pub fn check_lemma_6_5(&self) -> Result<usize, String> {
        let log_tau = self.log_tau() as usize;
        let mut max_alive = 0usize;
        let last_boundary = (self.horizon / self.opt + 1) as usize;
        for i in 0..=last_boundary {
            let t = i as Time * self.opt;
            // (1): batches with index < i - log τ are complete by t.
            for k in 0..self.num_batches().min(i.saturating_sub(log_tau)) {
                if self.completions[k] > t {
                    return Err(format!(
                        "Lemma 6.5(1) violated at t={t}: batch {k} alive but \
                         k < i − log τ = {}",
                        i - log_tau
                    ));
                }
            }
            // Alive batches released strictly before t (diagnostics).
            let alive = (0..self.num_batches())
                .filter(|&k| self.releases[k] < t && self.completions[k] > t)
                .count();
            max_alive = max_alive.max(alive);

            // Windows j..j+ℓ, j = i − log τ (clamped at 0), ℓ <= log τ − 1.
            // The windows only cover batches released strictly before t, so
            // there is nothing to check at the first boundary.
            if i == 0 {
                continue;
            }
            let j = i.saturating_sub(log_tau);
            for l in 0..log_tau {
                // Window of batch indices j..=j+l, but only those < i (the
                // lemma's windows never include batch i itself) and < B.
                let hi = (j + l).min(i - 1);
                if hi < j {
                    continue;
                }
                let window: Vec<usize> =
                    (j..=hi.min(self.num_batches().saturating_sub(1))).collect();
                if window.is_empty() {
                    continue;
                }
                let sum_w: u64 = window.iter().map(|&k| self.w(k, t)).sum();
                let min_z: u64 = window.iter().map(|&k| self.z(k, t)).min().unwrap();
                // (12): Σw/m <= ℓ·OPT + min z (trivially true when min z = ∞,
                // i.e. the whole window is complete).
                if min_z != u64::MAX {
                    let rhs12 = (l as u64) * self.opt + min_z;
                    if sum_w > rhs12 * self.m as u64 {
                        return Err(format!(
                            "Lemma 6.5(12) violated at t={t}, j={j}, ℓ={l}: \
                             Σw = {sum_w} > m·(ℓ·OPT + min z) = {}",
                            rhs12 * self.m as u64
                        ));
                    }
                }
                // (13): Σw/m <= Σ_{k=1..ℓ+1}(1 − 2^{-k})·OPT, compared in
                // integers scaled by 2^{ℓ+1}.
                let pow: u128 = 1u128 << (l + 1).min(63);
                let rhs13_scaled: u128 =
                    (1..=(l as u32 + 1)).map(|k| (pow - (pow >> k)) * self.opt as u128).sum();
                let lhs_scaled = sum_w as u128 * pow;
                if lhs_scaled > rhs13_scaled * self.m as u128 {
                    return Err(format!(
                        "Lemma 6.5(13) violated at t={t}, j={j}, ℓ={l}: Σw = {sum_w}"
                    ));
                }
            }
        }
        Ok(max_alive)
    }

    /// The flow bound Theorem 6.1 derives for batch-jobs: every batch
    /// completes within `(log τ + 1)·OPT` of its release.
    pub fn theorem_6_1_bound(&self) -> Time {
        (self.log_tau() as u64 + 1) * self.opt
    }

    /// Worst batch flow (completion − release), to compare against
    /// [`theorem_6_1_bound`](Self::theorem_6_1_bound).
    pub fn max_batch_flow(&self) -> Time {
        (0..self.num_batches())
            .map(|k| self.completions[k] - self.releases[k])
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowtree_core::{Fifo, TieBreak};
    use flowtree_sim::Engine;
    use flowtree_workloads::{adversary, batched};

    fn fifo_run(instance: &Instance, m: usize) -> Schedule {
        let s = Engine::new(m)
            .with_max_horizon(10_000_000)
            .run(instance, &mut Fifo::new(TieBreak::BecameReady))
            .unwrap();
        s.verify(instance).unwrap();
        s.schedule
    }

    #[test]
    fn tau_is_correct() {
        let p = batched::packed_chains(4, 4, 2, 2, &mut flowtree_workloads::rng(1));
        let s = fifo_run(&p.instance, 4);
        let sec = Section6::new(&p.instance, &s, 4, p.opt);
        assert_eq!(sec.tau, 32); // 2*4*4 = 32, already a power of two
        assert_eq!(sec.log_tau(), 5);
        assert_eq!(sec.num_batches(), 2);
    }

    #[test]
    fn invariants_hold_on_packed_batches() {
        for seed in 0..4u64 {
            let m = 6;
            let p = batched::packed_chains(m, 6, 3, 4, &mut flowtree_workloads::rng(seed));
            let s = fifo_run(&p.instance, m);
            let sec = Section6::new(&p.instance, &s, m, p.opt);
            let worst_z = sec.check_prop_6_2().unwrap();
            assert!(worst_z <= p.opt);
            sec.check_lemma_6_4().unwrap();
            let max_alive = sec.check_lemma_6_5().unwrap();
            assert!(max_alive as u32 <= sec.log_tau());
            assert!(sec.max_batch_flow() <= sec.theorem_6_1_bound());
        }
    }

    #[test]
    fn invariants_hold_on_the_adversary() {
        // The adversary family is batched with period m+1 >= its OPT.
        let m = 8;
        let out = adversary::duel(m, m, 12);
        let inst = adversary::materialize(&out);
        let s = fifo_run(&inst, m);
        let sec = Section6::new(&inst, &s, m, (m + 1) as u64);
        sec.check_prop_6_2().unwrap();
        sec.check_lemma_6_4().unwrap();
        sec.check_lemma_6_5().unwrap();
        assert!(sec.max_batch_flow() <= sec.theorem_6_1_bound());
    }

    #[test]
    fn invariants_hold_under_other_tiebreaks() {
        // Theorem 6.1 is for *any* FIFO; check a couple of tie-breaks.
        let m = 6;
        let p = batched::packed_caterpillars(m, 6, 3, 3, &mut flowtree_workloads::rng(9));
        for tie in [TieBreak::LastReady, TieBreak::Random(5)] {
            let s = Engine::new(m)
                .with_max_horizon(10_000_000)
                .run(&p.instance, &mut Fifo::new(tie))
                .unwrap();
            let sec = Section6::new(&p.instance, &s, m, p.opt);
            sec.check_prop_6_2().unwrap();
            sec.check_lemma_6_4().unwrap();
            sec.check_lemma_6_5().unwrap();
        }
    }

    #[test]
    fn w_and_z_accessors() {
        let p = batched::packed_chains(3, 3, 2, 2, &mut flowtree_workloads::rng(2));
        let s = fifo_run(&p.instance, 3);
        let sec = Section6::new(&p.instance, &s, 3, p.opt);
        // w at release = full batch work; w after horizon = 0.
        for k in 0..sec.num_batches() {
            assert_eq!(sec.w(k, k as u64 * p.opt), 3 * p.opt); // m*T per batch
            assert_eq!(sec.w(k, s.horizon() + 5), 0);
        }
        // z is infinity-coded past completion.
        assert_eq!(sec.z(0, s.horizon() + 10), u64::MAX);
    }

    #[test]
    #[should_panic(expected = "multiples of OPT")]
    fn rejects_unbatched_instances() {
        let inst = Instance::new(vec![
            flowtree_sim::JobSpec { graph: flowtree_dag::builder::chain(2), release: 0 },
            flowtree_sim::JobSpec { graph: flowtree_dag::builder::chain(2), release: 3 },
        ]);
        let s = fifo_run(&inst, 2);
        Section6::new(&inst, &s, 2, 2);
    }
}
