//! # flowtree-analysis — the experiment harness
//!
//! Reproduces every figure and theorem of the paper as a measurable
//! experiment (the paper is pure theory, so "reproduction" means empirical
//! validation of each claim's *shape*: who wins, by what factor, where the
//! curves bend). The experiment index lives in `DESIGN.md`; each experiment
//! `E1`–`E17` is a module under [`experiments`] producing a [`Report`] of
//! markdown tables and ASCII figures.
//!
//! Infrastructure:
//!
//! * [`table`] — simple column-aligned markdown tables + CSV export;
//! * [`plot`] — ASCII scatter/line plots for ratio-vs-m style series;
//! * [`sweep`] — parallel parameter sweeps over scoped threads with
//!   crossbeam channels (no shared mutable state);
//! * [`ratio`] — run-scheduler-measure-ratio helpers used by most
//!   experiments;
//! * [`summary`] — one-run observability reports ([`RunSummary`]): counters,
//!   certified bounds and ratio, invariant verdicts, and histogram summaries
//!   from the `flowtree-sim` monitor/histogram probe stack.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod plot;
pub mod ratio;
pub mod report;
pub mod section6;
pub mod summary;
pub mod sweep;
pub mod table;

pub use report::Report;
pub use summary::{summarize, summary_from_parts, RunSummary};
pub use table::Table;

/// Effort level for experiments: `Quick` keeps every experiment under a few
/// seconds (used by tests and CI), `Full` uses the paper-scale parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Effort {
    /// Small parameters; seconds.
    Quick,
    /// Paper-scale parameters; minutes.
    Full,
}

impl Effort {
    /// Pick `q` under Quick and `f` under Full.
    pub fn pick<T>(self, q: T, f: T) -> T {
        match self {
            Effort::Quick => q,
            Effort::Full => f,
        }
    }
}
