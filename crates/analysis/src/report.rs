//! Experiment reports: tables + ASCII figures + notes, rendered to markdown.

use crate::table::Table;

/// The output of one experiment.
#[derive(Debug, Clone)]
pub struct Report {
    /// Experiment id, e.g. "E3".
    pub id: &'static str,
    /// What the experiment validates, e.g. "Theorem 4.2".
    pub title: String,
    /// Result tables.
    pub tables: Vec<Table>,
    /// (caption, ascii art) figures.
    pub figures: Vec<(String, String)>,
    /// Free-form observations comparing measured results to the paper.
    pub notes: Vec<String>,
}

impl Report {
    /// New empty report.
    pub fn new(id: &'static str, title: impl Into<String>) -> Self {
        Report {
            id,
            title: title.into(),
            tables: Vec::new(),
            figures: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Append a table.
    pub fn table(&mut self, t: Table) -> &mut Self {
        self.tables.push(t);
        self
    }

    /// Append an ASCII figure.
    pub fn figure(&mut self, caption: impl Into<String>, art: impl Into<String>) -> &mut Self {
        self.figures.push((caption.into(), art.into()));
        self
    }

    /// Append a note.
    pub fn note(&mut self, n: impl Into<String>) -> &mut Self {
        self.notes.push(n.into());
        self
    }

    /// Render the whole report as markdown.
    pub fn render(&self) -> String {
        let mut out = format!("## {} — {}\n\n", self.id, self.title);
        for t in &self.tables {
            out.push_str(&t.to_markdown());
            out.push('\n');
        }
        for (caption, art) in &self.figures {
            out.push_str(&format!("*{caption}*\n\n```text\n{art}```\n\n"));
        }
        for n in &self.notes {
            out.push_str(&format!("> {n}\n"));
        }
        out.push('\n');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_contains_everything() {
        let mut r = Report::new("E0", "smoke");
        let mut t = Table::new("tab", &["a"]);
        t.row(vec!["1".into()]);
        r.table(t);
        r.figure("fig", "***\n");
        r.note("observation");
        let md = r.render();
        assert!(md.contains("## E0 — smoke"));
        assert!(md.contains("**tab**"));
        assert!(md.contains("*fig*"));
        assert!(md.contains("```text\n***\n```"));
        assert!(md.contains("> observation"));
    }

    #[test]
    fn empty_report_renders_header_only() {
        let r = Report::new("E9", "t");
        assert!(r.render().starts_with("## E9 — t"));
    }
}
