//! Parallel parameter sweeps.
//!
//! Experiments map a config list through an expensive measurement. The
//! fan-out follows the data-race-free idiom of the project's HPC guides:
//! scoped worker threads pulling indices from a crossbeam channel, results
//! returned over another channel, no shared mutable state anywhere.

use crossbeam::channel;

/// Map `f` over `inputs` in parallel (order-preserving output). Uses up to
/// `threads` workers (0 = available parallelism).
pub fn parallel_map<I, O, F>(inputs: Vec<I>, threads: usize, f: F) -> Vec<O>
where
    I: Sync,
    O: Send,
    F: Fn(&I) -> O + Sync,
{
    parallel_map_progress(inputs, threads, f, |_, _| {})
}

/// [`parallel_map`] with a progress callback: `progress(done, total)` runs
/// on the coordinating thread after each result lands (so `done` is
/// monotone, ending at `total`). Long sweeps report liveness through it
/// without the workers sharing any state.
pub fn parallel_map_progress<I, O, F, P>(
    inputs: Vec<I>,
    threads: usize,
    f: F,
    mut progress: P,
) -> Vec<O>
where
    I: Sync,
    O: Send,
    F: Fn(&I) -> O + Sync,
    P: FnMut(usize, usize),
{
    let n = inputs.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = if threads == 0 {
        std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1)
    } else {
        threads
    }
    .min(n);

    if threads <= 1 {
        return inputs
            .iter()
            .enumerate()
            .map(|(i, x)| {
                let o = f(x);
                progress(i + 1, n);
                o
            })
            .collect();
    }

    let (task_tx, task_rx) = channel::unbounded::<usize>();
    let (out_tx, out_rx) = channel::unbounded::<(usize, O)>();
    for i in 0..n {
        task_tx.send(i).expect("queue open");
    }
    drop(task_tx);

    let inputs_ref = &inputs;
    let f_ref = &f;
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let task_rx = task_rx.clone();
            let out_tx = out_tx.clone();
            scope.spawn(move || {
                while let Ok(i) = task_rx.recv() {
                    let o = f_ref(&inputs_ref[i]);
                    if out_tx.send((i, o)).is_err() {
                        return;
                    }
                }
            });
        }
        drop(out_tx);
        let mut slots: Vec<Option<O>> = (0..n).map(|_| None).collect();
        let mut done = 0;
        while let Ok((i, o)) = out_rx.recv() {
            slots[i] = Some(o);
            done += 1;
            progress(done, n);
        }
        slots.into_iter().map(|s| s.expect("worker delivered every slot")).collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn preserves_order() {
        let out = parallel_map((0..100).collect(), 4, |&x: &i32| x * x);
        assert_eq!(out, (0..100).map(|x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input() {
        let out: Vec<i32> = parallel_map(Vec::<i32>::new(), 4, |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn single_thread_path() {
        let out = parallel_map(vec![1, 2, 3], 1, |&x: &i32| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn auto_thread_count() {
        let out = parallel_map((0..16).collect(), 0, |&x: &i32| -x);
        assert_eq!(out.len(), 16);
    }

    #[test]
    fn progress_is_monotone_and_complete() {
        let mut seen = Vec::new();
        let out = parallel_map_progress(
            (0..32).collect(),
            4,
            |&x: &i32| x,
            |done, total| {
                assert_eq!(total, 32);
                seen.push(done);
            },
        );
        assert_eq!(out, (0..32).collect::<Vec<_>>());
        assert_eq!(seen, (1..=32).collect::<Vec<_>>());
    }

    #[test]
    fn progress_fires_on_single_thread_path() {
        let mut seen = Vec::new();
        parallel_map_progress(
            vec![5, 6],
            1,
            |&x: &i32| x,
            |done, total| {
                seen.push((done, total));
            },
        );
        assert_eq!(seen, vec![(1, 2), (2, 2)]);
    }

    #[test]
    fn actually_runs_concurrently_enough() {
        // All tasks get executed exactly once.
        let counter = AtomicUsize::new(0);
        let _ =
            parallel_map((0..64).collect(), 8, |_: &i32| counter.fetch_add(1, Ordering::Relaxed));
        assert_eq!(counter.load(Ordering::Relaxed), 64);
    }
}
