//! Minimal ASCII plots for experiment reports.

/// Scatter/line plot of one or more series over a shared x-axis, rendered
/// into a fixed-size character grid with axis labels.
pub struct AsciiPlot {
    title: String,
    width: usize,
    height: usize,
    series: Vec<(char, Vec<(f64, f64)>)>,
    log_x: bool,
}

impl AsciiPlot {
    /// New plot of the given grid size (sensible: 60 x 16).
    pub fn new(title: impl Into<String>, width: usize, height: usize) -> Self {
        AsciiPlot {
            title: title.into(),
            width: width.max(10),
            height: height.max(4),
            series: Vec::new(),
            log_x: false,
        }
    }

    /// Use a log2 x-axis (for m sweeps).
    pub fn log_x(mut self) -> Self {
        self.log_x = true;
        self
    }

    /// Add a series plotted with the given marker character.
    pub fn series(mut self, marker: char, points: Vec<(f64, f64)>) -> Self {
        self.series.push((marker, points));
        self
    }

    /// Render to a string.
    pub fn render(&self) -> String {
        let xform = |x: f64| if self.log_x { x.log2() } else { x };
        let pts: Vec<(f64, f64)> = self
            .series
            .iter()
            .flat_map(|(_, p)| p.iter().map(|&(x, y)| (xform(x), y)))
            .collect();
        if pts.is_empty() {
            return format!("{}\n(no data)\n", self.title);
        }
        let (mut x0, mut x1) = (f64::INFINITY, f64::NEG_INFINITY);
        let (mut y0, mut y1) = (f64::INFINITY, f64::NEG_INFINITY);
        for &(x, y) in &pts {
            x0 = x0.min(x);
            x1 = x1.max(x);
            y0 = y0.min(y);
            y1 = y1.max(y);
        }
        if (x1 - x0).abs() < 1e-12 {
            x1 = x0 + 1.0;
        }
        if (y1 - y0).abs() < 1e-12 {
            y1 = y0 + 1.0;
        }
        let mut grid = vec![vec![' '; self.width]; self.height];
        for (marker, series) in &self.series {
            for &(x, y) in series {
                let (x, y) = (xform(x), y);
                let col = ((x - x0) / (x1 - x0) * (self.width - 1) as f64).round() as usize;
                let row = ((y - y0) / (y1 - y0) * (self.height - 1) as f64).round() as usize;
                let r = self.height - 1 - row;
                grid[r][col.min(self.width - 1)] = *marker;
            }
        }
        let mut out = format!("{}\n", self.title);
        for (i, row) in grid.iter().enumerate() {
            let label = if i == 0 {
                format!("{y1:>8.2} |")
            } else if i == self.height - 1 {
                format!("{y0:>8.2} |")
            } else {
                "         |".to_string()
            };
            out.push_str(&label);
            out.push_str(&row.iter().collect::<String>());
            out.push('\n');
        }
        out.push_str(&format!(
            "         +{}\n          {:<8.2}{:>w$.2}{}\n",
            "-".repeat(self.width),
            if self.log_x { x0.exp2() } else { x0 },
            if self.log_x { x1.exp2() } else { x1 },
            if self.log_x { "  (log2 x)" } else { "" },
            w = self.width.saturating_sub(8),
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_points_within_grid() {
        let p = AsciiPlot::new("t", 40, 10)
            .series('x', vec![(1.0, 1.0), (2.0, 2.0), (3.0, 3.0)])
            .render();
        assert!(p.starts_with("t\n"));
        assert_eq!(p.matches('x').count(), 3);
        // Max y label on the top row.
        assert!(p.contains("3.00 |"));
        assert!(p.contains("1.00 |"));
    }

    #[test]
    fn empty_plot() {
        let p = AsciiPlot::new("e", 40, 10).render();
        assert!(p.contains("(no data)"));
    }

    #[test]
    fn multiple_series_markers() {
        let p = AsciiPlot::new("two", 30, 8)
            .series('a', vec![(0.0, 0.0)])
            .series('b', vec![(1.0, 1.0)])
            .render();
        assert!(p.contains('a'));
        assert!(p.contains('b'));
    }

    #[test]
    fn log_axis_marks() {
        let p = AsciiPlot::new("lg", 30, 8)
            .log_x()
            .series('*', vec![(8.0, 1.0), (1024.0, 2.0)])
            .render();
        assert!(p.contains("(log2 x)"));
        assert!(p.contains("8.00"));
    }

    #[test]
    fn constant_series_does_not_divide_by_zero() {
        let p = AsciiPlot::new("c", 30, 8).series('#', vec![(1.0, 5.0), (2.0, 5.0)]).render();
        assert_eq!(p.matches('#').count(), 2);
    }
}
