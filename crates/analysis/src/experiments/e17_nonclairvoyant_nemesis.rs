//! E17 — Extension: **every deterministic non-clairvoyant tie-break has its
//! own nemesis** (the Section 7 discussion, made concrete).
//!
//! The Section 4 adversary is *adaptive*: it nominates each layer's key
//! subjob as whichever node FIFO happened to leave behind. At the moment a
//! layer is revealed its nodes are indistinguishable to any non-clairvoyant
//! scheduler — so the sublayer-level co-simulation (and its Ω(log m) ratio)
//! is identical for *every* non-clairvoyant FIFO tie-break. Freezing the
//! instance breaks the symmetry: the key's position in the layer encodes
//! which tie-break the instance targets.
//!
//! This experiment materializes the same duel twice — keys placed last
//! (targeting `became-ready`) and first (targeting `last-ready`) — and
//! replays both instances under both tie-breaks plus the clairvoyant
//! height tie-break. The shape to reproduce: a diagonal of large ratios
//! (each tie-break suffers on its own nemesis), small ratios off-diagonal,
//! and the clairvoyant column flat at ≈ 1 — which is exactly why the paper
//! says the FIFO lower bound does not straightforwardly extend to a lower
//! bound for *clairvoyant* algorithms, and why Algorithm 𝒜 must exist.

use crate::ratio::measure;
use crate::{table::f3, Effort, Report, Table};
use flowtree_core::{Fifo, TieBreak};
use flowtree_workloads::adversary::{duel, materialize_with, KeyPlacement};

/// Run E17.
pub fn run(effort: Effort) -> Report {
    let mut report = Report::new(
        "E17",
        "Extension: per-tie-break nemesis instances from the adaptive adversary",
    );
    let ms: &[usize] = effort.pick(&[16, 32], &[16, 32, 64]);
    let jobs = effort.pick(24, 60);
    let mut table = Table::new(
        "FIFO ratio (vs OPT ≤ m+1) on frozen adversary instances by key placement",
        &[
            "m",
            "keys last → became-ready",
            "keys last → last-ready",
            "keys first → became-ready",
            "keys first → last-ready",
            "either → highest-height",
        ],
    );
    for &m in ms {
        let out = duel(m, m, jobs);
        let last = materialize_with(&out, KeyPlacement::Last);
        let first = materialize_with(&out, KeyPlacement::First);
        let opt = out.opt_upper;
        let r = |inst, tie| measure(inst, m, &mut Fifo::new(tie), opt, true).ratio();
        table.row(vec![
            m.to_string(),
            f3(r(&last, TieBreak::BecameReady)),
            f3(r(&last, TieBreak::LastReady)),
            f3(r(&first, TieBreak::BecameReady)),
            f3(r(&first, TieBreak::LastReady)),
            f3(r(&last, TieBreak::HighestHeight)),
        ]);
    }
    report.table(table);
    report.note(
        "The diagonal (a tie-break on its own nemesis) reproduces the \
         adaptive co-simulation's growing ratio exactly; the off-diagonal \
         entries are near 1. Since the adaptive adversary beats every \
         non-clairvoyant tie-break symmetrically, no intra-job rule that \
         ignores the DAG can escape Ω(log m) — only clairvoyance \
         (highest-height, Algorithm 𝒜) does.",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagonal_dominates_off_diagonal() {
        let r = run(Effort::Quick);
        let t = &r.tables[0];
        for row in 0..t.len() {
            let diag_became: f64 = t.cell(row, 1).parse().unwrap();
            let off_last: f64 = t.cell(row, 2).parse().unwrap();
            let off_became: f64 = t.cell(row, 3).parse().unwrap();
            let diag_last: f64 = t.cell(row, 4).parse().unwrap();
            let clair: f64 = t.cell(row, 5).parse().unwrap();
            assert!(diag_became > 2.0 && diag_last > 2.0, "diagonal too small");
            assert!(off_last < diag_last && off_became < diag_became);
            assert!(clair <= 1.5, "clairvoyant tie-break should be near 1");
        }
        // Symmetry: the two diagonals are equal (same sublayer dynamics).
        let a: f64 = t.cell(0, 1).parse().unwrap();
        let b: f64 = t.cell(0, 4).parse().unwrap();
        assert!((a - b).abs() < 1e-9, "diagonals differ: {a} vs {b}");
    }
}
