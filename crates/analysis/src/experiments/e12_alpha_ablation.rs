//! E12 — Ablation: **the α knob in Algorithm 𝒜**.
//!
//! The analysis picks α = 4 (and β = 258) to make Theorem 5.6's excess-work
//! inequality close; nothing says 4 is empirically best. This ablation runs
//! 𝒜 with α ∈ {3, 4, 6, 8} on the same packed batched instances (m chosen
//! divisible by all α values) and reports ratio and machine utilization.
//! Expected shape: small α gives heads more processors (shorter tails,
//! lower flow) until the 2·m/α head reservation starves the FIFO tail pool;
//! large α wastes head bandwidth. A shallow sweet spot appears in between.

use crate::ratio::measure;
use crate::{table::f3, Effort, Report, Table};
use flowtree_core::AlgoA;
use flowtree_workloads::batched::packed_chains;

/// Run E12.
pub fn run(effort: Effort) -> Report {
    let mut report = Report::new("E12", "Ablation: Algorithm 𝒜's α on packed batches");
    let m = 24usize; // divisible by 3, 4, 6, 8
    let batches = effort.pick(5, 12);
    let t_opt = effort.pick(12u64, 24); // even
    let k = 6;
    let mut table = Table::new(
        format!("𝒜 with varying α, m = {m}, OPT = {t_opt} (certified)"),
        &["α", "max flow", "ratio", "mean flow", "utilization"],
    );
    for alpha in [3usize, 4, 6, 8] {
        let p = packed_chains(m, t_opt, k, batches, &mut flowtree_workloads::rng(5));
        let run = measure(&p.instance, m, &mut AlgoA::semi_batched(alpha, t_opt / 2), p.opt, true);
        table.row(vec![
            alpha.to_string(),
            run.stats.max_flow.to_string(),
            f3(run.ratio()),
            f3(run.stats.mean_flow),
            f3(run.stats.utilization),
        ]);
    }
    report.table(table);
    report.note(
        "All α values stay far below the 129 guarantee; the head \
         reservation (2m/α processors) is the dominant term on packed \
         instances, so smaller α tends to win empirically even though the \
         proof needs α = 4 for its excess-work arithmetic.",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_alphas_bounded_and_comparable() {
        let r = run(Effort::Quick);
        let t = &r.tables[0];
        assert_eq!(t.len(), 4);
        let ratios = t.column_f64(2);
        for ratio in &ratios {
            assert!(*ratio >= 1.0 - 1e-9 && *ratio <= 129.0);
        }
        // The spread across alphas is bounded (no alpha catastrophically
        // worse than another on these instances).
        let lo = ratios.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = ratios.iter().cloned().fold(0.0, f64::max);
        assert!(hi <= 4.0 * lo, "alpha spread too wide: {ratios:?}");
    }
}
