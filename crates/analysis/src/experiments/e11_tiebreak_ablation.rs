//! E11 — Ablation: **FIFO's intra-job tie-break is the whole story** on the
//! adversary family.
//!
//! The paper's diagnosis of the Section 4 lower bound is that FIFO "can make
//! mistakes in intra-job scheduling". This ablation replays the *same
//! materialized adversary instances* through FIFO with different tie-breaks:
//! the adversarial became-ready order, its reverse, random, and the
//! clairvoyant height/children-based orders. The shape to reproduce: the
//! became-ready order (which the adversary tuned itself against) is the bad
//! one; informed tie-breaks collapse the ratio back toward a constant.

use crate::ratio::measure;
use crate::{table::f3, Effort, Report, Table};
use flowtree_core::{Fifo, TieBreak};
use flowtree_workloads::adversary;

/// Run E11.
pub fn run(effort: Effort) -> Report {
    let mut report =
        Report::new("E11", "Ablation: FIFO intra-job tie-breaks on the adversary family");
    let ms: &[usize] = effort.pick(&[8, 16, 32], &[8, 16, 32, 64, 128]);
    let jobs = effort.pick(24, 60);
    let mut table = Table::new(
        "FIFO max-flow ratio (vs OPT ≤ m+1) by tie-break",
        &["m", "became-ready*", "last-ready", "random", "highest-height", "most-children"],
    );
    for &m in ms {
        let out = adversary::duel(m, m, jobs);
        let inst = adversary::materialize(&out);
        let ties = [
            TieBreak::BecameReady,
            TieBreak::LastReady,
            TieBreak::Random(m as u64),
            TieBreak::HighestHeight,
            TieBreak::MostChildren,
        ];
        let mut cells = vec![m.to_string()];
        for tie in ties {
            let run = measure(&inst, m, &mut Fifo::new(tie), out.opt_upper, true);
            cells.push(f3(run.ratio()));
        }
        table.row(cells);
    }
    report.table(table);
    report.note(
        "* became-ready is the order the adaptive adversary optimized \
         against (keys become ready last); it reproduces the co-simulation's \
         growing ratio. The same instances are easy for most other \
         tie-breaks — intra-job choice, not job priority, is what FIFO gets \
         wrong. (Note the adversary adapts only to became-ready; a matching \
         adversary exists for each fixed non-clairvoyant tie-break.)",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn became_ready_is_the_bad_tiebreak() {
        let r = run(Effort::Quick);
        let t = &r.tables[0];
        let last = t.len() - 1;
        let bad: f64 = t.cell(last, 1).parse().unwrap();
        // The adversarially-targeted tie-break is at least as bad as any
        // informed one at the largest m, and strictly worse than
        // most-children.
        for col in 2..=5 {
            let other: f64 = t.cell(last, col).parse().unwrap();
            assert!(bad >= other - 1e-9, "became-ready ({bad}) not the worst (col {col}: {other})");
        }
        let mc: f64 = t.cell(last, 5).parse().unwrap();
        assert!(bad > mc, "adversary should separate became-ready from most-children");
    }
}
