//! E16 — Extension: **the practical shoot-out**.
//!
//! Every scheduler in the repository on every scenario preset: max flow
//! (the paper's objective), mean flow (the ℓ₁ counterpart the paper
//! contrasts it with), and ratio against the certified lower bound. This is
//! the table a practitioner would consult — and it shows the paper's
//! qualitative story end-to-end: FIFO variants are excellent on benign
//! mixes, Algorithm 𝒜's guarantees cost little, and max-flow (fairness) and
//! mean-flow (throughput-ish) objectives pull in different directions for
//! SJF-like policies.

use crate::{table::f3, Effort, Report, Table};
use flowtree_core::SchedulerSpec;
use flowtree_sim::Engine;
use flowtree_workloads::mix::Scenario;

/// Run E16.
pub fn run(effort: Effort) -> Report {
    let mut report = Report::new("E16", "Extension: all schedulers × all scenarios");
    let m = 8usize;
    let jobs = effort.pick(16, 60);

    for scenario in Scenario::presets(jobs) {
        let inst = scenario.instantiate(&mut flowtree_workloads::rng(42));
        let lb = flowtree_opt::bounds::combined_lower_bound(&inst, m as u64).max(1);
        let mut table = Table::new(
            format!(
                "scenario '{}' — {} jobs, work {}, lower bound {lb} (m = {m})",
                scenario.name,
                inst.num_jobs(),
                inst.total_work(),
            ),
            &["scheduler", "max flow", "ratio ≤", "mean flow", "utilization"],
        );
        for spec in SchedulerSpec::matrix() {
            let mut sched = spec.build();
            let report = Engine::new(m)
                .with_max_horizon(100_000_000)
                .run(&inst, sched.as_mut())
                .unwrap_or_else(|e| panic!("{}: {e}", sched.name()));
            report.verify(&inst).unwrap();
            let stats = &report.stats;
            table.row(vec![
                sched.name(),
                stats.max_flow.to_string(),
                f3(stats.max_flow as f64 / lb as f64),
                f3(stats.mean_flow),
                f3(stats.utilization),
            ]);
        }
        report.table(table);
    }
    report.note(
        "Work-conserving FIFO variants track the lower bound closely on all \
         presets (these are not adversarial instances); the guess-and-double \
         𝒜 pays a modest constant for its worst-case guarantee; LRWF \
         sometimes wins on mean flow while losing on max flow — the fairness \
         trade-off that motivates the paper's ℓ∞ objective.",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_covers_all_scenarios_and_schedulers() {
        let r = run(Effort::Quick);
        assert_eq!(r.tables.len(), 3);
        for t in &r.tables {
            assert_eq!(t.len(), 8, "8 schedulers per scenario");
            for row in 0..t.len() {
                let ratio: f64 = t.cell(row, 2).parse().unwrap();
                assert!(ratio >= 1.0 - 1e-9, "ratio below a certified lower bound");
                let util: f64 = t.cell(row, 4).parse().unwrap();
                assert!((0.0..=1.0).contains(&util));
            }
        }
    }

    #[test]
    fn fifo_is_near_optimal_on_benign_mixes() {
        let r = run(Effort::Quick);
        for t in &r.tables {
            let fifo_ratio: f64 = t.cell(0, 2).parse().unwrap();
            assert!(
                fifo_ratio <= 3.0,
                "FIFO ratio {fifo_ratio} unexpectedly large on '{}'",
                t.title
            );
        }
    }
}
