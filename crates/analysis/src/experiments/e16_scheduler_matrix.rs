//! E16 — Extension: **the practical shoot-out**.
//!
//! Every scheduler in the repository on every scenario preset: max flow
//! (the paper's objective), mean flow (the ℓ₁ counterpart the paper
//! contrasts it with), and ratio against the certified lower bound. This is
//! the table a practitioner would consult — and it shows the paper's
//! qualitative story end-to-end: FIFO variants are excellent on benign
//! mixes, Algorithm 𝒜's guarantees cost little, and max-flow (fairness) and
//! mean-flow (throughput-ish) objectives pull in different directions for
//! SJF-like policies.

use crate::summary::summarize;
use crate::sweep::parallel_map_progress;
use crate::{table::f3, Effort, Report, Table};
use flowtree_core::SchedulerSpec;
use flowtree_workloads::mix::Scenario;

/// Run E16.
pub fn run(effort: Effort) -> Report {
    let mut report = Report::new("E16", "Extension: all schedulers × all scenarios");
    let m = 8usize;
    let jobs = effort.pick(16, 60);

    for scenario in Scenario::presets(jobs) {
        let inst = scenario.instantiate(&mut flowtree_workloads::rng(42));
        let lb = flowtree_opt::bounds::combined_lower_bound(&inst, m as u64).max(1);
        let mut table = Table::new(
            format!(
                "scenario '{}' — {} jobs, work {}, lower bound {lb} (m = {m})",
                scenario.name,
                inst.num_jobs(),
                inst.total_work(),
            ),
            &[
                "scheduler",
                "max flow",
                "ratio ≤",
                "mean flow",
                "utilization",
                "flow p99",
                "invariants",
            ],
        );
        // Each monitored cell (scheduler + LowerBound + InvariantMonitor +
        // RunHistograms) is Send, so the matrix fans out across worker
        // threads; parallel_map_progress preserves input order, so the
        // table is byte-identical to the sequential loop it replaced.
        let summaries = parallel_map_progress(
            SchedulerSpec::matrix(),
            0,
            |spec| {
                summarize(scenario.name, &inst, m, *spec)
                    .unwrap_or_else(|e| panic!("{}: {e}", spec.name()))
            },
            |_, _| {},
        );
        for s in summaries {
            table.row(vec![
                s.scheduler.clone(),
                s.max_flow.to_string(),
                f3(s.ratio),
                f3(s.mean_flow),
                f3(s.utilization),
                s.flow.p99.to_string(),
                if s.invariants_clean {
                    "clean".to_string()
                } else {
                    format!("{} violation(s)", s.total_violations)
                },
            ]);
        }
        report.table(table);
    }
    report.note(
        "Work-conserving FIFO variants track the lower bound closely on all \
         presets (these are not adversarial instances); the guess-and-double \
         𝒜 pays a modest constant for its worst-case guarantee; LRWF \
         sometimes wins on mean flow while losing on max flow — the fairness \
         trade-off that motivates the paper's ℓ∞ objective. The invariants \
         column is the per-scheduler monitor verdict (work conservation, and \
         the Lemma 5.2 rectangle tail for LPF).",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_covers_all_scenarios_and_schedulers() {
        let r = run(Effort::Quick);
        assert_eq!(r.tables.len(), 3);
        for t in &r.tables {
            assert_eq!(t.len(), 8, "8 schedulers per scenario");
            for row in 0..t.len() {
                let ratio: f64 = t.cell(row, 2).parse().unwrap();
                assert!(ratio >= 1.0 - 1e-9, "ratio below a certified lower bound");
                let util: f64 = t.cell(row, 4).parse().unwrap();
                assert!((0.0..=1.0).contains(&util));
                // Every matrix scheduler upholds its declared invariants on
                // the benign presets.
                assert_eq!(t.cell(row, 6), "clean", "row {row} of '{}'", t.title);
            }
        }
    }

    #[test]
    fn parallel_matrix_matches_sequential_summaries_exactly() {
        // The satellite's "output unchanged" check: the parallel fan-out
        // must reproduce the sequential summarize() cells verbatim.
        let r = run(Effort::Quick);
        let m = 8usize;
        let jobs = Effort::Quick.pick(16, 60);
        for (scenario, t) in Scenario::presets(jobs).iter().zip(&r.tables) {
            let inst = scenario.instantiate(&mut flowtree_workloads::rng(42));
            for (row, spec) in SchedulerSpec::matrix().into_iter().enumerate() {
                let s = summarize(scenario.name, &inst, m, spec).unwrap();
                assert_eq!(t.cell(row, 0), s.scheduler, "row order shifted");
                assert_eq!(t.cell(row, 1), s.max_flow.to_string());
                assert_eq!(t.cell(row, 2), f3(s.ratio));
                assert_eq!(t.cell(row, 3), f3(s.mean_flow));
            }
        }
    }

    #[test]
    fn fifo_is_near_optimal_on_benign_mixes() {
        let r = run(Effort::Quick);
        for t in &r.tables {
            let fifo_ratio: f64 = t.cell(0, 2).parse().unwrap();
            assert!(
                fifo_ratio <= 3.0,
                "FIFO ratio {fifo_ratio} unexpectedly large on '{}'",
                t.title
            );
        }
    }
}
