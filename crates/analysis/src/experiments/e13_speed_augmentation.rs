//! E13 — Extension: **speed augmentation hides the Section 4 hardness**.
//!
//! Prior work (reference [4] of the paper) shows FIFO is (1+ε)-speed
//! O(1)-competitive for maximum flow; the paper's whole point is to drop
//! that assumption and ask what happens at speed 1. This experiment makes
//! the contrast concrete: the very instances on which 1-speed FIFO's ratio
//! grows like log m are dispatched with ratio ≈ 1 once FIFO gets 2-speed
//! processors — "speed augmentation analysis assumes away the existence of
//! the hard instances where the optimal schedule is tightly packed".

use crate::sweep::parallel_map;
use crate::{table::f3, Effort, Report, Table};
use flowtree_core::{Fifo, TieBreak};
use flowtree_sim::speed::run_with_speed;
use flowtree_workloads::adversary;

/// Run E13.
pub fn run(effort: Effort) -> Report {
    let mut report =
        Report::new("E13", "Extension: speed-augmented FIFO on the Section 4 adversary");
    let ms: Vec<usize> = effort.pick(vec![8, 16, 32], vec![8, 16, 32, 64]);
    let jobs = effort.pick(20, 40);

    let rows = parallel_map(ms.clone(), 0, |&m| {
        let out = adversary::duel(m, m, jobs);
        let inst = adversary::materialize(&out);
        let mut ratios = Vec::new();
        for s in [1u64, 2, 3] {
            let r = run_with_speed(
                &inst,
                m,
                s,
                &mut Fifo::new(TieBreak::BecameReady),
                Some(100_000_000),
            )
            .expect("FIFO completes");
            ratios.push(r.max_flow as f64 / out.opt_upper as f64);
        }
        (m, ratios)
    });

    let mut table = Table::new(
        format!("FIFO ratio vs OPT ≤ m+1 at processor speeds s (adversary, {jobs} jobs)"),
        &["m", "s = 1", "s = 2", "s = 3"],
    );
    for (m, ratios) in &rows {
        table.row(vec![m.to_string(), f3(ratios[0]), f3(ratios[1]), f3(ratios[2])]);
    }
    report.table(table);
    report.note(
        "At s = 1 the ratio grows with m (Theorem 4.2); at s ≥ 2 it is \
         pinned near 1 on the same instances — the augmented analysis of \
         prior work [4] literally cannot see the hardness this paper \
         resolves, because a faster FIFO absorbs the adversary's key-subjob \
         stalls before they cascade.",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_speed_collapses_the_ratio() {
        let r = run(Effort::Quick);
        let t = &r.tables[0];
        assert!(t.len() >= 3);
        let s1 = t.column_f64(1);
        let s2 = t.column_f64(2);
        let s3 = t.column_f64(3);
        // s=1 grows with m.
        assert!(s1.last().unwrap() > s1.first().unwrap());
        for i in 0..t.len() {
            // Augmentation strictly helps and lands near-optimal.
            assert!(s2[i] < s1[i]);
            assert!(s2[i] <= 2.0, "2-speed ratio {} not collapsed", s2[i]);
            assert!(s3[i] <= s2[i] + 1e-9);
        }
    }
}
