//! E8 — **Theorem 5.6**: Algorithm 𝒜 is O(1)-competitive (129×) on
//! semi-batched out-forest instances — and beats FIFO where FIFO is bad.
//!
//! Two workload families, both with *certified* optima:
//!
//! 1. packed batched instances (OPT = T exactly) — the "fully packed" hard
//!    regime;
//! 2. the materialized Section 4 adversary (OPT ≤ m + 1) — FIFO's nemesis.
//!
//! For each, 𝒜 (α = 4) and FIFO run on the same instances; the shape to
//! reproduce is: 𝒜's ratio stays bounded by a constant across m while
//! FIFO's ratio grows on the adversary family.

use crate::ratio::measure;
use crate::{table::f3, Effort, Report, Table};
use flowtree_core::{AlgoA, Fifo};
use flowtree_workloads::adversary;
use flowtree_workloads::batched::packed_chains;

/// Run E8.
pub fn run(effort: Effort) -> Report {
    let mut report = Report::new("E8", "Theorem 5.6: Algorithm 𝒜 is O(1)-competitive");

    // Family 1: packed batched instances.
    let mut packed = Table::new(
        "packed batches (OPT = T certified): 𝒜 vs FIFO",
        &["m", "T", "batches", "A ratio", "FIFO ratio", "A ≤ 129"],
    );
    let ms: &[usize] = effort.pick(&[16, 32], &[16, 32, 64, 128]);
    for &m in ms {
        let t_opt = 2 * (m as u64) / 4; // even, so half = T/2 is integral
        let k = (m / 4).max(1);
        let batches = effort.pick(4, 8);
        let p = packed_chains(m, t_opt, k, batches, &mut flowtree_workloads::rng(m as u64));
        let a = measure(&p.instance, m, &mut AlgoA::semi_batched(4, t_opt / 2), p.opt, true);
        let f = measure(&p.instance, m, &mut Fifo::arbitrary(), p.opt, true);
        packed.row(vec![
            m.to_string(),
            t_opt.to_string(),
            batches.to_string(),
            f3(a.ratio()),
            f3(f.ratio()),
            (a.ratio() <= 129.0).to_string(),
        ]);
    }
    report.table(packed);

    // Family 2: the adversary family (batched with period m+1 = OPT bound).
    let mut adv = Table::new(
        "Section 4 adversary instances (OPT ≤ m+1 certified): 𝒜 vs FIFO",
        &["m", "jobs", "A ratio ≤", "FIFO ratio ≥", "A/FIFO advantage"],
    );
    let adv_ms: &[usize] = effort.pick(&[8, 16], &[8, 16, 32, 64]);
    for &m in adv_ms {
        let jobs = effort.pick(12, 40);
        let out = adversary::duel(m, m, jobs);
        let inst = adversary::materialize(&out);
        // 𝒜 with batching: the releases are multiples of m+1; half must
        // divide into them — use with_batching and half = (m+1), i.e. the
        // working OPT estimate 2(m+1) ≥ OPT.
        let a =
            measure(&inst, m, &mut AlgoA::with_batching(4, (m + 1) as u64), out.opt_upper, true);
        let fifo_ratio = out.ratio(); // from the co-simulation
        adv.row(vec![
            m.to_string(),
            jobs.to_string(),
            f3(a.ratio()),
            f3(fifo_ratio),
            f3(fifo_ratio / a.ratio()),
        ]);
    }
    report.table(adv);
    report.note(
        "𝒜's measured ratios are single-digit constants everywhere — far \
         below the 129 the analysis guarantees — and flat in m, while \
         FIFO's ratio on the adversary family keeps growing (E3). This is \
         the paper's headline separation.",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn algo_a_is_constant_competitive() {
        let r = run(Effort::Quick);
        let packed = &r.tables[0];
        for row in 0..packed.len() {
            let a: f64 = packed.cell(row, 3).parse().unwrap();
            assert!(a <= 129.0, "Theorem 5.6 bound violated: {a}");
            assert!(a >= 1.0);
        }
        let adv = &r.tables[1];
        let mut a_ratios = Vec::new();
        for row in 0..adv.len() {
            let a: f64 = adv.cell(row, 2).parse().unwrap();
            assert!(a <= 129.0);
            a_ratios.push(a);
        }
        // A's ratio stays flat-ish across m (within 3x of its minimum),
        // i.e. no logarithmic growth.
        let lo = a_ratios.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = a_ratios.iter().cloned().fold(0.0, f64::max);
        assert!(hi <= 3.0 * lo + 3.0, "A ratios not flat: {a_ratios:?}");
    }
}
