//! E10 — **Theorem 6.1**: FIFO is O(log max{OPT, m})-competitive on batched
//! instances (non-clairvoyantly, for arbitrary DAGs).
//!
//! Three batched families with certified optima:
//!
//! 1. packed chain batches (out-forests, OPT = T);
//! 2. packed batches of series-parallel jobs via the same tiling (general
//!    DAG flavour — chains are degenerate SP DAGs; we add genuine fork-join
//!    jobs padded into batches with OPT certified by the witness);
//! 3. the Section 4 adversary (the *worst known* batched family for FIFO).
//!
//! The shape to reproduce: FIFO's ratio stays below the `log₂ max(m, OPT)`
//! curve times a small constant on all of them, and the adversary family is
//! the one that tracks the curve.

use crate::ratio::measure;
use crate::sweep::parallel_map_progress;
use crate::{table::f3, Effort, Report, Table};
use flowtree_core::Fifo;
use flowtree_workloads::adversary;
use flowtree_workloads::batched::{packed_caterpillars, packed_chains};

/// Run E10.
pub fn run(effort: Effort) -> Report {
    let mut report = Report::new(
        "E10",
        "Theorem 6.1: FIFO on batched instances is O(log max{OPT, m})-competitive",
    );
    let ms: Vec<usize> = effort.pick(vec![8, 16, 32, 64], vec![8, 16, 32, 64, 128, 256]);

    let rows = parallel_map_progress(
        ms.clone(),
        0,
        |&m| {
            let t_opt = (m as u64).max(4);
            let batches = 6;
            let chains = packed_chains(
                m,
                t_opt,
                (m / 2).max(1),
                batches,
                &mut flowtree_workloads::rng(m as u64),
            );
            let cats = packed_caterpillars(
                m,
                t_opt,
                (m / 2).max(1),
                batches,
                &mut flowtree_workloads::rng(m as u64 + 1),
            );
            let rc = measure(&chains.instance, m, &mut Fifo::arbitrary(), chains.opt, true);
            let rk = measure(&cats.instance, m, &mut Fifo::arbitrary(), cats.opt, true);
            let adv = adversary::duel(m, m, 40);
            (m, t_opt, rc.ratio(), rk.ratio(), adv.ratio())
        },
        |done, total| eprintln!("E10: {done}/{total} machine sizes done"),
    );

    let mut table = Table::new(
        "FIFO ratio on batched families (OPT certified)",
        &[
            "m",
            "OPT=T",
            "packed chains",
            "packed caterpillars",
            "adversary",
            "log2 max(m,OPT)",
        ],
    );
    for (m, t, rc, rk, ra) in &rows {
        table.row(vec![
            m.to_string(),
            t.to_string(),
            f3(*rc),
            f3(*rk),
            f3(*ra),
            f3(((*m as f64).max(*t as f64)).log2()),
        ]);
    }
    report.table(table);
    report.note(
        "Random packed batches sit at small constant ratios; only the \
         adaptive adversary family tracks the logarithmic envelope — \
         consistent with Theorem 6.1's upper bound and the conjecture that \
         out-tree adversary instances are FIFO's worst case.",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_families_within_log_envelope() {
        let r = run(Effort::Quick);
        let t = &r.tables[0];
        for row in 0..t.len() {
            let envelope: f64 = t.cell(row, 5).parse::<f64>().unwrap() + 2.0;
            for col in 2..=4 {
                let ratio: f64 = t.cell(row, col).parse().unwrap();
                assert!(
                    ratio <= 2.0 * envelope,
                    "row {row} col {col}: ratio {ratio} above 2x log envelope"
                );
                assert!(ratio >= 1.0 - 1e-9);
            }
        }
        // The adversary column dominates the random families at the largest m.
        let last = t.len() - 1;
        let adv: f64 = t.cell(last, 4).parse().unwrap();
        let rnd: f64 = t.cell(last, 2).parse().unwrap();
        assert!(adv > rnd, "adversary should be FIFO's hardest batched family");
    }
}
