//! E9 — **Theorem 5.7**: guess-and-double removes the known-OPT assumption
//! at a constant-factor cost (1548× in the analysis; tiny in practice).
//!
//! Streams with arbitrary (non-batched) release times at several load
//! factors ρ; [`GuessDoubleA`] runs with no knowledge of OPT, and the
//! reported ratio uses the best certified lower bound (so it *over-states*
//! the true ratio). Also reported: how many doublings occurred and the
//! overhead versus a super-clairvoyant 𝒜 given the (certified) OPT bound.

use crate::ratio::measure_vs_lower_bound;
use crate::{table::f3, Effort, Report, Table};
use flowtree_core::GuessDoubleA;
use flowtree_sim::Engine;
use flowtree_workloads::arrivals::load_stream;
use flowtree_workloads::trees::random_recursive_tree;

/// Run E9.
pub fn run(effort: Effort) -> Report {
    let mut report =
        Report::new("E9", "Theorem 5.7: guess-and-double 𝒜 on arbitrary-release streams");
    let m = effort.pick(16usize, 64);
    let horizon = effort.pick(120u64, 600);
    let job_n = 24usize;
    let mut table = Table::new(
        format!("GuessDouble[α=4, β=258] on load-ρ streams, m = {m}"),
        &[
            "ρ",
            "jobs",
            "lower bound",
            "max flow",
            "ratio ≤",
            "final AOPT",
            "restarts",
            "≤ 1548",
        ],
    );
    for rho in [0.5, 0.9, 1.2] {
        let mut rng = flowtree_workloads::rng((rho * 1000.0) as u64);
        let inst = load_stream(
            m,
            rho,
            horizon,
            job_n as f64,
            |r| random_recursive_tree(job_n, r),
            &mut rng,
        );
        let mut sched = GuessDoubleA::paper();
        let run = measure_vs_lower_bound(&inst, m, &mut sched);
        table.row(vec![
            format!("{rho:.1}"),
            inst.num_jobs().to_string(),
            run.reference.to_string(),
            run.stats.max_flow.to_string(),
            f3(run.ratio()),
            sched.aopt().to_string(),
            sched.restarts().to_string(),
            (run.ratio() <= 1548.0).to_string(),
        ]);
    }
    report.table(table);

    // Overhead of not knowing OPT: same instance, guess-double vs a 𝒜 told
    // a good block size up front.
    let mut rng = flowtree_workloads::rng(77);
    let inst =
        load_stream(m, 0.9, horizon, job_n as f64, |r| random_recursive_tree(job_n, r), &mut rng);
    let lb = flowtree_opt::bounds::combined_lower_bound(&inst, m as u64).max(1);
    let mut gd = GuessDoubleA::paper();
    let gd_flow = {
        let s = Engine::new(m).with_max_horizon(10_000_000).run(&inst, &mut gd).unwrap();
        s.verify(&inst).unwrap();
        s.stats.max_flow
    };
    let informed_flow = {
        let mut a = flowtree_core::AlgoA::with_batching(4, lb);
        let s = Engine::new(m).with_max_horizon(10_000_000).run(&inst, &mut a).unwrap();
        s.verify(&inst).unwrap();
        s.stats.max_flow
    };
    let mut t2 = Table::new(
        "price of guessing: same ρ=0.9 stream",
        &["scheduler", "max flow", "vs lower bound"],
    );
    t2.row(vec![
        "GuessDoubleA (no OPT knowledge)".into(),
        gd_flow.to_string(),
        f3(gd_flow as f64 / lb as f64),
    ]);
    t2.row(vec![
        format!("AlgoA[half = LB = {lb}] (informed)"),
        informed_flow.to_string(),
        f3(informed_flow as f64 / lb as f64),
    ]);
    report.table(t2);
    report.note(
        "Measured ratios are two orders of magnitude below the 1548 the \
         analysis guarantees; guessing costs at most a small constant over \
         the informed run (the doubling sequence converges in O(log OPT) \
         restarts and then stays put).",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn theorem_bound_and_sane_restarts() {
        let r = run(Effort::Quick);
        let t = &r.tables[0];
        for row in 0..t.len() {
            assert_eq!(t.cell(row, 7), "true");
            let restarts: f64 = t.cell(row, 6).parse().unwrap();
            assert!(restarts <= 30.0, "runaway doubling");
            let aopt: f64 = t.cell(row, 5).parse().unwrap();
            assert!(aopt.log2().fract().abs() < 1e-9, "AOPT not a power of 2");
        }
        // Guessing within 20x of informed on the comparison table (very
        // loose; typical is < 3x).
        let t2 = &r.tables[1];
        let gd: f64 = t2.cell(0, 2).parse().unwrap();
        let informed: f64 = t2.cell(1, 2).parse().unwrap();
        assert!(gd <= 20.0 * informed.max(1.0));
    }
}
