//! E3 — **Theorem 4.2**: FIFO is Ω(log m)-competitive on out-trees.
//!
//! Sweeps the machine size `m` and runs the adaptive adversary co-simulation
//! ([`flowtree_workloads::adversary::duel`]) until steady state. Reports the
//! measured ratio (FIFO's max flow over the certified OPT ≤ m + 1) against
//! the paper's predicted threshold `lg m − lg lg m`. The shape to reproduce:
//! the ratio grows logarithmically in m and sits at or above the predicted
//! curve's order.

use crate::plot::AsciiPlot;
use crate::sweep::parallel_map;
use crate::{table::f3, Effort, Report, Table};
use flowtree_workloads::adversary::{duel, predicted_ratio};

/// Run E3.
pub fn run(effort: Effort) -> Report {
    let mut report = Report::new("E3", "Theorem 4.2: FIFO's Ω(log m) lower bound");
    let ms: Vec<usize> = match effort {
        Effort::Quick => vec![8, 16, 32, 64, 128],
        Effort::Full => vec![8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096],
    };
    // The backlog needs enough releases to reach steady state; the required
    // count grows (slowly) with m, so scale it: ~40 releases per doubling.
    let jobs_for = |m: usize| effort.pick(60, 40 * (m as f64).log2() as usize);

    let rows = parallel_map(ms.clone(), 0, |&m| {
        let out = duel(m, m, jobs_for(m));
        (m, out.max_flow, out.opt_upper, out.ratio())
    });

    let mut table = Table::new(
        "FIFO vs the adaptive adversary (layers = m, releases scaled with m)".to_string(),
        &["m", "FIFO max flow", "OPT ≤", "ratio ≥", "lg m − lg lg m"],
    );
    let mut pts_measured = Vec::new();
    let mut pts_predicted = Vec::new();
    for (m, flow, opt, ratio) in &rows {
        table.row(vec![
            m.to_string(),
            flow.to_string(),
            opt.to_string(),
            f3(*ratio),
            f3(predicted_ratio(*m)),
        ]);
        pts_measured.push((*m as f64, *ratio));
        pts_predicted.push((*m as f64, predicted_ratio(*m)));
    }
    report.table(table);
    report.figure(
        "measured ratio (x) vs predicted lg m − lg lg m (o)",
        AsciiPlot::new("competitive ratio vs m", 64, 14)
            .log_x()
            .series('x', pts_measured)
            .series('o', pts_predicted)
            .render(),
    );
    report.note(
        "The measured ratio is a *lower* bound on FIFO's competitive ratio \
         (OPT ≤ m+1 is certified by the witness schedule). It grows \
         logarithmically in m, matching Theorem 4.2's Ω(log m); absolute \
         values sit above the lg m − lg lg m threshold because the theorem's \
         constant is not tight.",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_grows_and_dominates_prediction_order() {
        let r = run(Effort::Quick);
        let t = &r.tables[0];
        let ratios = t.column_f64(3);
        let predicted = t.column_f64(4);
        // Strictly increasing ratios across the m sweep.
        for w in ratios.windows(2) {
            assert!(w[1] > w[0], "ratio did not grow: {w:?}");
        }
        // At every m, measured >= predicted / 2 (constant-factor slack).
        for (r, p) in ratios.iter().zip(&predicted) {
            assert!(r >= &(p / 2.0), "measured {r} far below predicted {p}");
        }
        // And for the largest m the ratio is genuinely super-3.
        assert!(*ratios.last().unwrap() > 3.0);
    }
}
