//! E7 — **Lemma 5.5**: the Most-Children replay never idles a granted
//! processor before finishing its schedule.
//!
//! For each tree shape, the LPF[m/α] tail (MC's legal input: full-width
//! except the last step) is replayed under several adversarial grant
//! patterns `m_t ∈ [0, m/α]`; the experiment reports the fraction of steps
//! where MC used every granted processor — which must be 1.0 for all but
//! the final step.

use crate::{table::f3, Effort, Report, Table};
use flowtree_core::lpf::lpf_levels;
use flowtree_core::McReplay;
use flowtree_dag::DepthProfile;
use flowtree_workloads::trees::shape_catalogue;

/// A named grant-pattern generator: step index -> grant in `1..=p`.
type GrantPattern = (&'static str, Box<dyn FnMut(usize) -> usize>);

/// Grant patterns (name, generator from step index to grant in `1..=p`).
fn patterns(p: usize) -> Vec<GrantPattern> {
    vec![
        ("constant p", Box::new(move |_| p)),
        ("alternate 1/p", Box::new(move |s| if s % 2 == 0 { 1 } else { p })),
        ("sawtooth", Box::new(move |s| 1 + (s % p))),
        ("pseudo-random", Box::new(move |s| 1 + (s.wrapping_mul(2654435761) >> 7) % p)),
    ]
}

/// Run E7.
pub fn run(effort: Effort) -> Report {
    let mut report = Report::new("E7", "Lemma 5.5: MC keeps every granted processor busy");
    let (m, alpha) = (effort.pick(32usize, 128), 4usize);
    let p = m / alpha;
    let n = effort.pick(800, 8000);
    let mut table = Table::new(
        format!("MC replay of LPF[{p}] tails under fluctuating grants (m = {m})"),
        &["shape", "grants", "tail work", "steps", "full steps", "busy fraction"],
    );
    let mut rng = flowtree_workloads::rng(99);
    for (name, g) in shape_catalogue(n, &mut rng) {
        let opt = DepthProfile::new(&g).opt_single_job(m as u64);
        let levels = lpf_levels(&g, p);
        if levels.len() <= opt as usize {
            continue; // no tail: job fits in its head
        }
        let tail: Vec<Vec<u32>> = levels[opt as usize..].to_vec();
        let work: usize = tail.iter().map(Vec::len).sum();
        for (pat_name, mut grant) in patterns(p) {
            let mut mc = McReplay::new(&g, tail.clone());
            let mut steps = 0usize;
            let mut full = 0usize;
            while !mc.is_done() {
                steps += 1;
                let m_t = grant(steps);
                let got = mc.next(m_t).len();
                if got == m_t || mc.is_done() {
                    full += 1;
                }
                assert!(steps < 10 * work + 10, "MC stalled");
            }
            table.row(vec![
                name.to_string(),
                pat_name.to_string(),
                work.to_string(),
                steps.to_string(),
                full.to_string(),
                f3(full as f64 / steps as f64),
            ]);
        }
    }
    report.table(table);
    report.note(
        "Busy fraction is 1.000 everywhere: whatever the grant sequence, MC \
         consumes exactly m_t subjobs per step until the tail is exhausted — \
         the property that lets Algorithm 𝒜's FIFO pool treat tails as \
         liquid work.",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn busy_fraction_is_one() {
        let r = run(Effort::Quick);
        let t = &r.tables[0];
        assert!(t.len() >= 8, "expected several shape/pattern rows");
        for row in 0..t.len() {
            let frac: f64 = t.cell(row, 5).parse().unwrap();
            assert!((frac - 1.0).abs() < 1e-9, "row {row} busy fraction {frac}");
        }
    }
}
