//! E5 — **Lemma 5.1 / Corollary 5.4**: LPF is optimal for a single
//! out-forest job, and OPT equals the closed form `max_d (d + ceil(W(d)/m))`.
//!
//! Three-way agreement is checked per (shape, m): the LPF schedule's flow,
//! the Corollary 5.4 formula, and — on miniatures — the exact
//! branch-and-bound optimum.

use crate::{Effort, Report, Table};
use flowtree_core::lpf::lpf_levels;
use flowtree_dag::DepthProfile;
use flowtree_sim::Instance;
use flowtree_workloads::trees::shape_catalogue;

/// Run E5.
pub fn run(effort: Effort) -> Report {
    let mut report =
        Report::new("E5", "Corollary 5.4: LPF flow = max_d (d + ⌈W(d)/m⌉) = exact OPT");

    // Part A: formula vs LPF at scale.
    let n = effort.pick(500, 20_000);
    let mut rng = flowtree_workloads::rng(7);
    let mut big = Table::new(
        format!("LPF vs formula, trees with ~{n} nodes"),
        &["shape", "work", "span", "m", "LPF flow", "formula", "agree"],
    );
    for (name, g) in shape_catalogue(n, &mut rng) {
        for m in [2usize, 4, 16, 64] {
            let flow = lpf_levels(&g, m).len() as u64;
            let formula = DepthProfile::new(&g).opt_single_job(m as u64);
            big.row(vec![
                name.to_string(),
                g.work().to_string(),
                g.span().to_string(),
                m.to_string(),
                flow.to_string(),
                formula.to_string(),
                (flow == formula).to_string(),
            ]);
        }
    }
    report.table(big);

    // Part B: formula vs exhaustive search on miniatures.
    let mut rng = flowtree_workloads::rng(8);
    let mut small = Table::new(
        "formula vs exact branch-and-bound (miniature trees)",
        &["nodes", "m", "formula", "exact", "agree"],
    );
    let minis = effort.pick(12, 40);
    for i in 0..minis {
        let g = flowtree_workloads::trees::random_recursive_tree(4 + i % 12, &mut rng);
        for m in 1..=3usize {
            let formula = DepthProfile::new(&g).opt_single_job(m as u64);
            let exact = flowtree_opt::exact_max_flow(&Instance::single(g.clone()), m, 24)
                .expect("miniature fits");
            small.row(vec![
                g.n().to_string(),
                m.to_string(),
                formula.to_string(),
                exact.to_string(),
                (formula == exact).to_string(),
            ]);
        }
    }
    report.table(small);
    report.note(
        "Perfect three-way agreement: the LPF schedule attains the Lemma 5.1 \
         lower bound on every instance (Corollary 5.4), and exhaustive search \
         confirms no schedule does better.",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_rows_agree() {
        let r = run(Effort::Quick);
        for t in &r.tables {
            let agree_col = t.columns().len() - 1;
            for row in 0..t.len() {
                assert_eq!(t.cell(row, agree_col), "true", "row {row} of '{}'", t.title);
            }
        }
    }
}
