//! One module per experiment; see DESIGN.md for the per-experiment index.
//!
//! | id | paper artifact | module |
//! |----|----------------|--------|
//! | E1 | Figure 1 (packings) | [`e01_figure1`] |
//! | E2 | Figure 2 (LPF head/tail shape) | [`e02_figure2`] |
//! | E3 | Theorem 4.2 (FIFO lower bound) | [`e03_fifo_lower_bound`] |
//! | E4 | Lemma 4.1 (U(t) dynamics) | [`e04_sublayer_dynamics`] |
//! | E5 | Corollary 5.4 (LPF optimality) | [`e05_lpf_optimality`] |
//! | E6 | Lemma 5.3 (α-competitiveness) | [`e06_alpha_competitive`] |
//! | E7 | Lemma 5.5 (MC busyness) | [`e07_mc_busy`] |
//! | E8 | Theorem 5.6 (Algorithm 𝒜, semi-batched) | [`e08_algo_a`] |
//! | E9 | Theorem 5.7 (guess-and-double) | [`e09_guess_double`] |
//! | E10 | Theorem 6.1 (FIFO batched upper bound) | [`e10_fifo_batched`] |
//! | E11 | Ablation: FIFO intra-job tie-breaks | [`e11_tiebreak_ablation`] |
//! | E12 | Ablation: α/β choices in 𝒜 | [`e12_alpha_ablation`] |
//! | E13 | Extension: speed augmentation (context of [4]) | [`e13_speed_augmentation`] |
//! | E14 | Extension: Section 6 invariants measured live | [`e14_section6_invariants`] |
//! | E15 | Extension: LPF suboptimality witnesses on DAGs | [`e15_dag_lpf_gap`] |
//! | E16 | Extension: scheduler × scenario matrix | [`e16_scheduler_matrix`] |
//! | E17 | Extension: per-tie-break nemesis instances | [`e17_nonclairvoyant_nemesis`] |

pub mod e01_figure1;
pub mod e02_figure2;
pub mod e03_fifo_lower_bound;
pub mod e04_sublayer_dynamics;
pub mod e05_lpf_optimality;
pub mod e06_alpha_competitive;
pub mod e07_mc_busy;
pub mod e08_algo_a;
pub mod e09_guess_double;
pub mod e10_fifo_batched;
pub mod e11_tiebreak_ablation;
pub mod e12_alpha_ablation;
pub mod e13_speed_augmentation;
pub mod e14_section6_invariants;
pub mod e15_dag_lpf_gap;
pub mod e16_scheduler_matrix;
pub mod e17_nonclairvoyant_nemesis;

use crate::{Effort, Report};

/// All experiment ids in order.
pub const ALL: [&str; 17] = [
    "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12", "e13", "e14", "e15",
    "e16", "e17",
];

/// Run an experiment by id ("e1".."e17"); `None` for unknown ids.
pub fn run(id: &str, effort: Effort) -> Option<Report> {
    Some(match id.to_ascii_lowercase().as_str() {
        "e1" => e01_figure1::run(effort),
        "e2" => e02_figure2::run(effort),
        "e3" => e03_fifo_lower_bound::run(effort),
        "e4" => e04_sublayer_dynamics::run(effort),
        "e5" => e05_lpf_optimality::run(effort),
        "e6" => e06_alpha_competitive::run(effort),
        "e7" => e07_mc_busy::run(effort),
        "e8" => e08_algo_a::run(effort),
        "e9" => e09_guess_double::run(effort),
        "e10" => e10_fifo_batched::run(effort),
        "e11" => e11_tiebreak_ablation::run(effort),
        "e12" => e12_alpha_ablation::run(effort),
        "e13" => e13_speed_augmentation::run(effort),
        "e14" => e14_section6_invariants::run(effort),
        "e15" => e15_dag_lpf_gap::run(effort),
        "e16" => e16_scheduler_matrix::run(effort),
        "e17" => e17_nonclairvoyant_nemesis::run(effort),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_id_is_none() {
        assert!(run("e99", Effort::Quick).is_none());
        assert!(run("", Effort::Quick).is_none());
    }

    #[test]
    fn ids_are_case_insensitive() {
        assert!(run("E1", Effort::Quick).is_some());
    }
}
