//! E15 — Extension: **no optimal intra-job heuristic for DAGs**.
//!
//! The paper's Section 1 take-away: "while longest path first is an optimal
//! heuristic for trees for intra-job scheduling, there is no such optimal
//! heuristic for DAGs. Therefore, shaping a DAG is significantly more
//! challenging." This experiment makes that concrete:
//!
//! 1. a **deterministic 6-node witness** where LPF is strictly suboptimal
//!    on m = 2 (impossible for out-forests by Corollary 5.4, E5);
//! 2. a **random search** over general DAGs counting how often LPF loses to
//!    the exact optimum;
//! 3. the same search over **series-parallel** jobs — where, notably, no
//!    witness appears at these sizes, an empirical data point for the
//!    paper's open question "is there an O(1)-competitive clairvoyant
//!    algorithm for series-parallel DAGs?".

use crate::{table::f3, Effort, Report, Table};
use flowtree_core::lpf::lpf_levels;
use flowtree_dag::{GraphBuilder, JobGraph};
use flowtree_sim::Instance;
use flowtree_workloads::spdags::random_sp_expr;
use rand::Rng as _;

/// The hand-verified witness: a 6-node DAG where LPF needs 4 steps on two
/// processors but the optimum is 3 (found by exhaustive search; kept as a
/// deterministic regression case).
pub fn witness_dag() -> JobGraph {
    let mut b = GraphBuilder::new(6);
    b.edge(0, 3).edge(0, 5).edge(1, 5).edge(2, 3).edge(2, 4).edge(2, 5);
    b.build().expect("witness is a DAG")
}

/// Random DAG on `n` nodes with forward edges of density ~30%.
fn random_dag(n: usize, rng: &mut flowtree_workloads::Rng) -> JobGraph {
    let mut b = GraphBuilder::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            if rng.gen_range(0..100) < 30 {
                b.edge(u as u32, v as u32);
            }
        }
    }
    b.build().expect("forward edges are acyclic")
}

struct SearchStats {
    tested: usize,
    worse: usize,
    worst_ratio: f64,
    mean_gap: f64,
}

fn search(
    m: usize,
    samples: usize,
    mut gen: impl FnMut(&mut flowtree_workloads::Rng) -> JobGraph,
    rng: &mut flowtree_workloads::Rng,
) -> SearchStats {
    let mut tested = 0;
    let mut worse = 0;
    let mut worst_ratio: f64 = 1.0;
    let mut gap_sum = 0.0;
    for _ in 0..samples {
        let g = gen(rng);
        if g.n() > 18 {
            continue;
        }
        let inst = Instance::single(g.clone());
        let Some(opt) = flowtree_opt::exact_max_flow(&inst, m, 20) else {
            continue;
        };
        let lpf = lpf_levels(&g, m).len() as u64;
        assert!(lpf >= opt, "LPF beat the exact optimum?!");
        tested += 1;
        let ratio = lpf as f64 / opt as f64;
        gap_sum += ratio - 1.0;
        if lpf > opt {
            worse += 1;
            worst_ratio = worst_ratio.max(ratio);
        }
    }
    SearchStats {
        tested,
        worse,
        worst_ratio,
        mean_gap: gap_sum / tested.max(1) as f64,
    }
}

/// Run E15.
pub fn run(effort: Effort) -> Report {
    let mut report =
        Report::new("E15", "Extension: LPF is optimal for trees, not for DAGs (witness search)");

    // Part 1: the deterministic witness.
    let w = witness_dag();
    let w_opt = flowtree_opt::exact_max_flow(&Instance::single(w.clone()), 2, 20).unwrap();
    let w_lpf = lpf_levels(&w, 2).len() as u64;
    report.figure(
        format!(
            "deterministic witness on m = 2: LPF flow {w_lpf} > OPT {w_opt}. \
             All three sources have height 2, so height priority cannot see \
             that source 2 gates every leaf (children 3, 4, 5) while 1 gates \
             only leaf 5; LPF's tie order runs 0 and 1 first and strands 2. \
             The optimum opens with 0 and 2."
        ),
        flowtree_dag::render::depth_sketch(&w),
    );

    // Part 2+3: random searches.
    let samples = effort.pick(1200usize, 4000);
    let mut table = Table::new(
        "random jobs: how often does LPF lose to the exact optimum?",
        &["family", "m", "tested", "LPF > OPT", "worst LPF/OPT", "mean gap"],
    );
    for m in [2usize, 3] {
        let mut rng = flowtree_workloads::rng(77 + m as u64);
        let s = search(m, samples, |r| random_dag(6 + r.gen_range(0..6), r), &mut rng);
        table.row(vec![
            "general DAG".into(),
            m.to_string(),
            s.tested.to_string(),
            s.worse.to_string(),
            f3(s.worst_ratio),
            f3(s.mean_gap),
        ]);
        let mut rng = flowtree_workloads::rng(99 + m as u64);
        let s = search(m, samples, |r| random_sp_expr(14, r).lower(), &mut rng);
        table.row(vec![
            "series-parallel".into(),
            m.to_string(),
            s.tested.to_string(),
            s.worse.to_string(),
            f3(s.worst_ratio),
            f3(s.mean_gap),
        ]);
    }
    report.table(table);
    report.note(
        "General DAGs defeat LPF at a steady rate (the paper's 'no optimal \
         heuristic for DAGs'), while no series-parallel witness appears at \
         these sizes — an empirical hint for the Section 7 open question \
         about SP DAGs, where join nodes are always sinks of their parallel \
         block and height ties behave more like trees.",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_witness_defeats_lpf() {
        let w = witness_dag();
        let opt = flowtree_opt::exact_max_flow(&Instance::single(w.clone()), 2, 20).unwrap();
        let lpf = lpf_levels(&w, 2).len() as u64;
        assert_eq!(opt, 3);
        assert_eq!(lpf, 4);
    }

    #[test]
    fn search_finds_general_dag_witnesses() {
        let r = run(Effort::Quick);
        let t = &r.tables[0];
        assert_eq!(t.len(), 4);
        // General-DAG rows have witnesses; ratios are valid.
        let mut general_worse = 0.0;
        for row in 0..t.len() {
            let worst: f64 = t.cell(row, 4).parse().unwrap();
            assert!(worst >= 1.0);
            if t.cell(row, 0) == "general DAG" {
                general_worse += t.cell(row, 3).parse::<f64>().unwrap();
            }
        }
        assert!(general_worse > 0.0, "no general-DAG witness found");
        assert!(!r.figures.is_empty());
    }
}
