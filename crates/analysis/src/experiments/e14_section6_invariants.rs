//! E14 — Extension: **the Section 6 induction, measured**.
//!
//! Theorem 6.1's proof tracks remaining work `w_i(t)` against idle-step
//! counts `z_i(t)` through Lemmas 6.4/6.5. This experiment computes those
//! exact quantities on real FIFO runs over batched instances (packed
//! batches and the Section 4 adversary) and reports:
//!
//! * the worst `z_i(t)` (Proposition 6.2 caps it at OPT);
//! * the minimum slack in Lemma 6.4's inequality `w <= (OPT − z)·m`;
//! * the maximum number of simultaneously alive batch-jobs vs the `log τ`
//!   cap of Lemma 6.5;
//! * the measured maximum batch flow vs Theorem 6.1's `(log τ + 1)·OPT`
//!   bound.
//!
//! Every inequality must hold — a violation would falsify the paper's
//! analysis or expose an implementation bug; the interesting measurement is
//! *how much slack* each one has on hard vs easy batched families.

use crate::section6::Section6;
use crate::{table::f3, Effort, Report, Table};
use flowtree_core::{Fifo, TieBreak};
use flowtree_sim::Engine;
use flowtree_workloads::{adversary, batched};

/// Run E14.
pub fn run(effort: Effort) -> Report {
    let mut report = Report::new("E14", "Extension: Section 6 invariants on live FIFO runs");
    let mut table = Table::new(
        "Prop 6.2 / Lemma 6.4 / Lemma 6.5 ledger (FIFO, batched instances)",
        &[
            "family",
            "m",
            "OPT",
            "log τ",
            "worst z/OPT",
            "min 6.4 slack",
            "max alive",
            "max flow",
            "thm 6.1 bound",
        ],
    );

    let ms: &[usize] = effort.pick(&[6, 12], &[6, 12, 24, 48]);
    for &m in ms {
        // Packed chains, OPT = m.
        let t_opt = m as u64;
        let p = batched::packed_chains(m, t_opt, m / 2, 5, &mut flowtree_workloads::rng(m as u64));
        let s = Engine::new(m)
            .with_max_horizon(10_000_000)
            .run(&p.instance, &mut Fifo::new(TieBreak::BecameReady))
            .unwrap();
        s.verify(&p.instance).unwrap();
        push_row(&mut table, "packed", m, &p.instance, &s, p.opt);

        // Adversary, batched with period m+1 >= OPT.
        let out = adversary::duel(m, m, effort.pick(12, 30));
        let inst = adversary::materialize(&out);
        let s = Engine::new(m)
            .with_max_horizon(100_000_000)
            .run(&inst, &mut Fifo::new(TieBreak::BecameReady))
            .unwrap();
        s.verify(&inst).unwrap();
        push_row(&mut table, "adversary", m, &inst, &s, (m + 1) as u64);
    }
    report.table(table);
    report.note(
        "All inequalities of the Section 6 analysis hold on every run. The \
         adversary family drives `max alive` and `worst z/OPT` far closer \
         to their caps than random packed batches do — exactly the regime \
         where the induction's slack shrinks, matching the paper's remark \
         that these instances are the bottleneck for the upper bound.",
    );
    report
}

fn push_row(
    table: &mut Table,
    family: &str,
    m: usize,
    instance: &flowtree_sim::Instance,
    schedule: &flowtree_sim::Schedule,
    opt: u64,
) {
    let sec = Section6::new(instance, schedule, m, opt);
    let worst_z = sec.check_prop_6_2().expect("Prop 6.2");
    let slack = sec.check_lemma_6_4().expect("Lemma 6.4");
    let max_alive = sec.check_lemma_6_5().expect("Lemma 6.5");
    table.row(vec![
        family.to_string(),
        m.to_string(),
        opt.to_string(),
        sec.log_tau().to_string(),
        f3(worst_z as f64 / opt as f64),
        slack.to_string(),
        max_alive.to_string(),
        sec.max_batch_flow().to_string(),
        sec.theorem_6_1_bound().to_string(),
    ]);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ledger_holds_everywhere() {
        // The run itself asserts every lemma (push_row expects). Check the
        // reported numbers are internally consistent.
        let r = run(Effort::Quick);
        let t = &r.tables[0];
        assert!(t.len() >= 4);
        for row in 0..t.len() {
            let z_frac: f64 = t.cell(row, 4).parse().unwrap();
            assert!((0.0..=1.0).contains(&z_frac));
            let max_alive: f64 = t.cell(row, 6).parse().unwrap();
            let log_tau: f64 = t.cell(row, 3).parse().unwrap();
            assert!(max_alive <= log_tau);
            let flow: f64 = t.cell(row, 7).parse().unwrap();
            let bound: f64 = t.cell(row, 8).parse().unwrap();
            assert!(flow <= bound);
        }
        // Adversary rows have more alive jobs than packed rows at same m.
        let packed_alive: f64 = t.cell(0, 6).parse().unwrap();
        let adv_alive: f64 = t.cell(1, 6).parse().unwrap();
        assert!(adv_alive >= packed_alive);
    }
}
