//! E2 — **Figure 2**: the generic LPF schedule shape — an irregular *head*
//! (first OPT steps) followed by a *rectangular tail* of width m/α and
//! length at most (α − 1)·OPT.
//!
//! For each tree shape and machine size we compute OPT on the full machine
//! (Corollary 5.4), build the LPF schedule on m/α processors, and measure
//! the tail: every step but the last must be exactly m/α wide (Lemma 5.2's
//! consequence) and the tail length must respect Lemma 5.3's α·OPT total.

use crate::{table::f3, Effort, Report, Table};
use flowtree_core::lpf::{lpf_levels, RectangleTail};
use flowtree_dag::DepthProfile;
use flowtree_workloads::trees::shape_catalogue;

/// Run E2.
pub fn run(effort: Effort) -> Report {
    let mut report = Report::new(
        "E2",
        "Figure 2: LPF[m/α] = head (≤ OPT steps) + rectangular tail (≤ (α−1)·OPT)",
    );
    let alpha = 4usize;
    let ms: &[usize] = match effort {
        Effort::Quick => &[16, 64],
        Effort::Full => &[16, 64, 256],
    };
    let n = effort.pick(400, 4000);

    let mut table = Table::new(
        format!("LPF schedule shape, α = {alpha}"),
        &[
            "shape",
            "m",
            "OPT[m]",
            "total flow",
            "flow/OPT",
            "tail len",
            "tail bound",
            "rectangular",
        ],
    );
    let mut example: Option<String> = None;
    for m in ms {
        let mut rng = flowtree_workloads::rng(42);
        for (name, g) in shape_catalogue(n, &mut rng) {
            let p = m / alpha;
            let opt = DepthProfile::new(&g).opt_single_job(*m as u64);
            let levels = lpf_levels(&g, p);
            let shape = RectangleTail::measure(&levels, opt, p);
            let flow = levels.len() as u64;
            table.row(vec![
                name.to_string(),
                m.to_string(),
                opt.to_string(),
                flow.to_string(),
                f3(flow as f64 / opt as f64),
                shape.len.to_string(),
                ((alpha as u64 - 1) * opt).to_string(),
                shape.is_rectangle().to_string(),
            ]);
            if example.is_none() && shape.len > 2 {
                // Load profile: digits = per-step width; the head is ragged,
                // the tail constant at m/α.
                let profile: String = levels
                    .iter()
                    .map(|l| char::from_digit((l.len() % 36) as u32, 36).unwrap_or('#'))
                    .collect();
                example = Some(format!(
                    "{name} on m={m} (p={p}): per-step widths\n{profile}\n\
                     head = first {opt} steps, tail rectangle width {p}\n",
                ));
            }
        }
    }
    report.table(table);
    if let Some(art) = example {
        report.figure("example LPF width profile (head | rectangular tail)", art);
    }
    report.note(
        "Every tail is a full-width rectangle except its final step, and \
         total flow ≤ α·OPT — the structural properties Algorithm 𝒜's MC \
         phase relies on (Lemma 5.2, Lemma 5.3).",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_tails_rectangular_and_bounded() {
        let r = run(Effort::Quick);
        let t = &r.tables[0];
        assert!(t.len() >= 10);
        for row in 0..t.len() {
            assert_eq!(t.cell(row, 7), "true", "non-rectangular tail in row {row}");
            let tail: f64 = t.cell(row, 5).parse().unwrap();
            let bound: f64 = t.cell(row, 6).parse().unwrap();
            assert!(tail <= bound, "tail {tail} > bound {bound}");
            // Lemma 5.3: flow within alpha * OPT.
            let ratio: f64 = t.cell(row, 4).parse().unwrap();
            assert!(ratio <= 4.0 + 1e-9);
        }
    }
}
