//! E6 — **Lemma 5.3**: LPF on `m/α` processors is α-competitive against the
//! optimum on `m` processors.
//!
//! Sweeps α and tree shapes, reporting `flow(LPF[m/α]) / OPT[m]`; the ratio
//! must never exceed α, and the experiment shows where it is tight (wide
//! work-limited shapes) versus slack (span-limited shapes).

use crate::{table::f3, Effort, Report, Table};
use flowtree_core::lpf::lpf_levels;
use flowtree_dag::DepthProfile;
use flowtree_workloads::trees::shape_catalogue;

/// Run E6.
pub fn run(effort: Effort) -> Report {
    let mut report = Report::new("E6", "Lemma 5.3: LPF[m/α] is α-competitive vs OPT[m]");
    let m = effort.pick(64usize, 256);
    let n = effort.pick(600, 6000);
    let mut table = Table::new(
        format!("flow(LPF[m/α]) / OPT[m], m = {m}"),
        &["shape", "α", "OPT[m]", "LPF[m/α] flow", "ratio", "≤ α"],
    );
    let mut worst: f64 = 0.0;
    for alpha in [1usize, 2, 4, 8] {
        let mut rng = flowtree_workloads::rng(13);
        for (name, g) in shape_catalogue(n, &mut rng) {
            let opt = DepthProfile::new(&g).opt_single_job(m as u64);
            let flow = lpf_levels(&g, m / alpha).len() as u64;
            let ratio = flow as f64 / opt as f64;
            worst = worst.max(ratio);
            table.row(vec![
                name.to_string(),
                alpha.to_string(),
                opt.to_string(),
                flow.to_string(),
                f3(ratio),
                (ratio <= alpha as f64 + 1e-9).to_string(),
            ]);
        }
    }
    report.table(table);
    report.note(format!(
        "Worst observed ratio {:.3}; the α bound is tight only for \
         work-limited shapes (star-like), while span-limited shapes (chains) \
         are unaffected by losing processors.",
        worst
    ));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_never_exceeds_alpha() {
        let r = run(Effort::Quick);
        let t = &r.tables[0];
        for row in 0..t.len() {
            assert_eq!(t.cell(row, 5), "true", "Lemma 5.3 violated in row {row}");
        }
        // alpha = 1 rows are exactly optimal.
        for row in 0..t.len() {
            if t.cell(row, 1) == "1" {
                let ratio: f64 = t.cell(row, 4).parse().unwrap();
                assert!((ratio - 1.0).abs() < 1e-9);
            }
        }
        // The star rows at alpha = 8 should be close to tight (>= 4).
        let tight = (0..t.len()).any(|row| {
            t.cell(row, 0) == "star"
                && t.cell(row, 1) == "8"
                && t.cell(row, 4).parse::<f64>().unwrap() >= 4.0
        });
        assert!(tight, "expected near-tight ratio for star at alpha=8");
    }
}
