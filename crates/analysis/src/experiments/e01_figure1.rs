//! E1 — **Figure 1**: two qualitatively different packings of one job on
//! three processors.
//!
//! The paper's Figure 1 shows a single fork-join DAG packed two ways on
//! m = 3, illustrating that the scheduler's intra-job choices change the
//! "shape" of the piece it is packing. We reconstruct the job
//! ([`flowtree_dag::sp::figure1_job`]) and render the packings produced by
//! (a) breadth-greedy FIFO (became-ready order) and (b) LPF, as ASCII Gantt
//! charts, together with their flows and the certified single-job optimum.

use crate::{Effort, Report, Table};
use flowtree_core::{Fifo, Lpf, TieBreak};
use flowtree_dag::sp::figure1_job;
use flowtree_sim::gantt::{render, GanttOptions};
use flowtree_sim::{Engine, Instance, OnlineScheduler};

/// Run E1.
pub fn run(_effort: Effort) -> Report {
    let mut report = Report::new("E1", "Figure 1: two packings of one job on 3 processors");
    let g = figure1_job();
    let inst = Instance::single(g.clone());
    let m = 3;
    let opt = flowtree_opt::exact_max_flow(&inst, m, 64).expect("10-node job");

    let mut table = Table::new(
        "packings of the Figure 1 job (work=10, span=7) on m=3",
        &["schedule", "flow", "opt", "steps used"],
    );
    let opts = GanttOptions { label_nodes: true, ..Default::default() };

    let schedulers: Vec<(&str, Box<dyn OnlineScheduler>)> = vec![
        ("FIFO[became-ready]", Box::new(Fifo::new(TieBreak::BecameReady))),
        ("LPF", Box::new(Lpf::new())),
    ];
    for (label, mut sched) in schedulers {
        let s = Engine::new(m).run(&inst, sched.as_mut()).unwrap();
        s.verify(&inst).unwrap();
        table.row(vec![
            label.to_string(),
            s.stats.max_flow.to_string(),
            opt.to_string(),
            s.horizon().to_string(),
        ]);
        report
            .figure(format!("{label} packing (cells are subjob labels)"), render(&inst, &s, &opts));
    }
    report.table(table);
    report.note(format!(
        "The job is span-limited on m=3 (span 7 > ceil(10/3) = 4); OPT = {opt}. \
         Both packings are feasible — the figure illustrates that packing shape, \
         not just greedy fullness, is the scheduler's real degree of freedom."
    ));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_has_two_gantts_and_bounds() {
        let r = run(Effort::Quick);
        assert_eq!(r.figures.len(), 2);
        assert_eq!(r.tables.len(), 1);
        let t = &r.tables[0];
        assert_eq!(t.len(), 2);
        // Both schedules meet the exact optimum's lower bound.
        let flows = t.column_f64(1);
        let opts = t.column_f64(2);
        for (f, o) in flows.iter().zip(&opts) {
            assert!(f >= o);
        }
        // LPF is optimal on a single job (Lemma 5.3 with alpha = 1).
        assert_eq!(flows[1], opts[1]);
    }
}
