//! E4 — **Lemma 4.1**: the unfinished-sublayer potential `U(t)` strictly
//! increases at every release boundary while fewer than `lg m − lg lg m`
//! jobs are alive.
//!
//! Traces `U` and the alive-job count at each boundary `t = i(m+1)` of the
//! adversary run and reports the growth pattern plus where it saturates.

use crate::plot::AsciiPlot;
use crate::{Effort, Report, Table};
use flowtree_workloads::adversary::{duel, predicted_ratio};

/// Run E4.
pub fn run(effort: Effort) -> Report {
    let m = effort.pick(64, 256);
    let jobs = effort.pick(40, 100);
    let mut report = Report::new(
        "E4",
        format!("Lemma 4.1: U(t) grows while alive jobs < lg m − lg lg m (m = {m})"),
    );
    let out = duel(m, m, jobs);

    let mut table = Table::new(
        format!("U(t) at release boundaries, m = {m}, threshold ≈ {:.2}", predicted_ratio(m)),
        &["boundary i", "U(i(m+1))", "ΔU", "alive jobs"],
    );
    let sample_every = (out.unfinished_sublayers.len() / 24).max(1);
    let mut grew = 0usize;
    let mut shrank_while_release_phase = 0usize;
    let mut pts = Vec::new();
    for i in 1..out.unfinished_sublayers.len().min(jobs) {
        let (u_prev, u) = (out.unfinished_sublayers[i - 1], out.unfinished_sublayers[i]);
        if u > u_prev {
            grew += 1;
        } else if i < jobs {
            shrank_while_release_phase += 1;
        }
        if i % sample_every == 0 {
            table.row(vec![
                i.to_string(),
                u.to_string(),
                (u as i64 - u_prev as i64).to_string(),
                out.alive_jobs[i].to_string(),
            ]);
        }
        pts.push((i as f64, u as f64));
    }
    report.table(table);
    report.figure(
        "U(t) over release boundaries",
        AsciiPlot::new("unfinished sublayers", 64, 12).series('*', pts).render(),
    );
    report.note(format!(
        "U grew at {grew} of the first {} boundaries and never shrank during the \
         release phase ({} decreases) — the monotone growth Lemma 4.1 proves \
         below the lg m − lg lg m alive-job threshold, here sustained even \
         slightly above it.",
        jobs - 1,
        shrank_while_release_phase,
    ));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn potential_grows_during_release_phase() {
        let r = run(Effort::Quick);
        // The ΔU column of sampled rows is nonnegative during releases.
        let t = &r.tables[0];
        assert!(t.len() >= 10);
        for row in 0..t.len() {
            let du: f64 = t.cell(row, 2).parse().unwrap();
            assert!(du >= 0.0, "U shrank during the release phase (row {row})");
        }
        assert!(!r.figures.is_empty());
    }
}
