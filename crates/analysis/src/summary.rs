//! One-run observability reports: run a registry scheduler with the full
//! monitor/histogram probe stack attached and bundle everything the theory
//! says about the run into a serializable [`RunSummary`].
//!
//! The probe stack is a tuple `(LowerBound, InvariantMonitor, RunHistograms)`
//! — three probes, one `Engine::run`, zero dynamic dispatch. The summary
//! carries two lower bounds: the Lemma 5.1 per-job bound the live monitor
//! maintains, and the (at least as strong) combined bound from
//! `flowtree-opt` that also accounts for interval load across jobs; the
//! headline `ratio` is measured against the stronger one. For a single
//! out-forest released at 0 both coincide and are exact (Corollary 5.4), so
//! LPF reports ratio exactly 1.0.

use crate::table::f3;
use flowtree_core::SchedulerSpec;
use flowtree_sim::monitor::{InvariantMonitor, LowerBound};
use flowtree_sim::{Engine, Instance, LogHistogram, RunHistograms};

/// Compact histogram summary (count + quantile upper bounds + max).
#[derive(Debug, Clone, PartialEq)]
pub struct HistoSummary {
    /// Observations recorded.
    pub count: u64,
    /// Mean observation.
    pub mean: f64,
    /// Median upper bound (log-bucket resolution).
    pub p50: u64,
    /// 90th-percentile upper bound.
    pub p90: u64,
    /// 99th-percentile upper bound.
    pub p99: u64,
    /// Largest observation.
    pub max: u64,
}

serde::impl_serde_struct!(HistoSummary { count, mean, p50, p90, p99, max });

impl From<&LogHistogram> for HistoSummary {
    fn from(h: &LogHistogram) -> Self {
        HistoSummary {
            count: h.count(),
            mean: h.mean(),
            p50: h.p50(),
            p90: h.p90(),
            p99: h.p99(),
            max: h.max(),
        }
    }
}

/// One invariant breach, flattened for serialization.
#[derive(Debug, Clone, PartialEq)]
pub struct ViolationRecord {
    /// Step start time of the breach.
    pub t: u64,
    /// Rule name (`work-conserving` / `rectangle-tail`).
    pub rule: String,
    /// Human-readable specifics.
    pub detail: String,
}

serde::impl_serde_struct!(ViolationRecord { t, rule, detail });

/// Everything one observed run reports: counters, theory bounds, invariant
/// verdicts, and distribution summaries.
#[derive(Debug, Clone, PartialEq)]
pub struct RunSummary {
    /// Scenario (or instance) label.
    pub scenario: String,
    /// Registry scheduler name.
    pub scheduler: String,
    /// Machine size.
    pub m: usize,
    /// Jobs in the instance.
    pub jobs: usize,
    /// Steps simulated (schedule horizon).
    pub steps: u64,
    /// Subjobs dispatched (total work).
    pub dispatched: u64,
    /// Busy fraction of processor-slots.
    pub utilization: f64,
    /// Ready-pool high-water mark.
    pub max_ready_depth: usize,
    /// Maximum per-job flow (the paper's objective).
    pub max_flow: u64,
    /// Mean per-job flow.
    pub mean_flow: f64,
    /// Completion time of the last job.
    pub makespan: u64,
    /// Best certified lower bound on the optimal max flow (combined
    /// Lemma 5.1 + interval-load bound from `flowtree-opt`).
    pub lower_bound: u64,
    /// The Lemma 5.1 per-job bound alone (what the live monitor tracks).
    pub job_lower_bound: u64,
    /// `max_flow / lower_bound` — certified competitive-ratio bound.
    pub ratio: f64,
    /// Did the enabled invariant checks all pass?
    pub invariants_clean: bool,
    /// Total violations observed (may exceed `violations.len()`).
    pub total_violations: u64,
    /// Recorded invariant breaches (capped).
    pub violations: Vec<ViolationRecord>,
    /// Per-job flow distribution.
    pub flow: HistoSummary,
    /// Per-step ready-depth distribution.
    pub ready_depth: HistoSummary,
    /// Per-step scheduled-width distribution (utilization × m).
    pub scheduled: HistoSummary,
}

serde::impl_serde_struct!(RunSummary {
    scenario,
    scheduler,
    m,
    jobs,
    steps,
    dispatched,
    utilization,
    max_ready_depth,
    max_flow,
    mean_flow,
    makespan,
    lower_bound,
    job_lower_bound,
    ratio,
    invariants_clean,
    total_violations,
    violations,
    flow,
    ready_depth,
    scheduled,
});

impl RunSummary {
    /// Render as a small markdown report (the CLI `report` command's
    /// default output).
    pub fn to_markdown(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(s, "# Run report — {} on '{}'\n", self.scheduler, self.scenario);
        let _ = writeln!(s, "| metric | value |");
        let _ = writeln!(s, "| --- | --- |");
        let _ = writeln!(s, "| jobs | {} |", self.jobs);
        let _ = writeln!(s, "| m | {} |", self.m);
        let _ = writeln!(s, "| steps (horizon) | {} |", self.steps);
        let _ = writeln!(s, "| dispatched | {} |", self.dispatched);
        let _ = writeln!(s, "| utilization | {} |", f3(self.utilization));
        let _ = writeln!(s, "| max ready depth | {} |", self.max_ready_depth);
        let _ = writeln!(s, "| max flow | {} |", self.max_flow);
        let _ = writeln!(s, "| mean flow | {} |", f3(self.mean_flow));
        let _ = writeln!(s, "| makespan | {} |", self.makespan);
        let _ = writeln!(s, "| lower bound (certified) | {} |", self.lower_bound);
        let _ = writeln!(s, "| lower bound (Lemma 5.1) | {} |", self.job_lower_bound);
        let _ = writeln!(s, "| competitive ratio ≤ | {} |", f3(self.ratio));
        let _ = writeln!(
            s,
            "| invariants | {} |",
            if self.invariants_clean {
                "clean".to_string()
            } else {
                format!("{} violation(s)", self.total_violations)
            }
        );
        let _ = writeln!(s, "\n## Distributions (p50 / p90 / p99 / max)\n");
        let _ = writeln!(s, "| series | count | mean | p50 | p90 | p99 | max |");
        let _ = writeln!(s, "| --- | --- | --- | --- | --- | --- | --- |");
        for (name, h) in [
            ("job flow", &self.flow),
            ("ready depth", &self.ready_depth),
            ("scheduled/step", &self.scheduled),
        ] {
            let _ = writeln!(
                s,
                "| {name} | {} | {} | {} | {} | {} | {} |",
                h.count,
                f3(h.mean),
                h.p50,
                h.p90,
                h.p99,
                h.max
            );
        }
        if !self.violations.is_empty() {
            let _ = writeln!(s, "\n## Violations\n");
            for v in &self.violations {
                let _ = writeln!(s, "- t={}: {}: {}", v.t, v.rule, v.detail);
            }
            if self.total_violations > self.violations.len() as u64 {
                let _ = writeln!(
                    s,
                    "- … and {} more",
                    self.total_violations - self.violations.len() as u64
                );
            }
        }
        s
    }
}

/// Run `spec` on `instance` with the full monitor stack attached and
/// summarize. `scenario` is a label carried into the summary.
pub fn summarize(
    scenario: &str,
    instance: &Instance,
    m: usize,
    spec: SchedulerSpec,
) -> Result<RunSummary, String> {
    let mut sched = spec.build();
    let mut lb = LowerBound::new(instance);
    let mut inv = InvariantMonitor::new(instance, spec.invariants());
    let mut histos = RunHistograms::new();
    let report = Engine::new(m)
        .with_max_horizon(100_000_000)
        .with_probe((&mut lb, &mut inv, &mut histos))
        .run(instance, sched.as_mut())
        .map_err(|e| format!("{} on m={m}: {e}", spec.name()))?;
    report.verify(instance).map_err(|e| format!("infeasible schedule: {e}"))?;

    Ok(summary_from_parts(
        scenario,
        spec.name(),
        instance,
        m,
        &report,
        &lb,
        &inv,
        &histos,
    ))
}

/// Assemble a [`RunSummary`] from an already-completed run's pieces: the
/// [`RunReport`](flowtree_sim::RunReport) and the monitor/histogram stack
/// that observed it. Shared by [`summarize`] (batch `Engine::run`) and the
/// streaming serve path (a drained `Session` per shard), so both emit
/// byte-identical records for the same observed run.
#[allow(clippy::too_many_arguments)]
pub fn summary_from_parts(
    scenario: &str,
    scheduler: &str,
    instance: &Instance,
    m: usize,
    report: &flowtree_sim::RunReport,
    lb: &LowerBound,
    inv: &InvariantMonitor,
    histos: &RunHistograms,
) -> RunSummary {
    // On a completed run every job has released, so the tracker's running
    // max over released jobs *is* `max_job_lower_bound(instance, m)` — no
    // need to re-profile every graph at drain time (which dominated the
    // serve drain path). Only the interval-load bound still needs a pass.
    let interval = flowtree_opt::interval::interval_load_lower_bound(instance, m as u64);
    debug_assert_eq!(
        lb.lower_bound(),
        flowtree_opt::bounds::max_job_lower_bound(instance, m as u64),
        "LowerBound tracker must cover every job of a completed run"
    );
    let lower_bound = interval.max(lb.lower_bound()).max(1);
    let stats = &report.stats;
    RunSummary {
        scenario: scenario.to_string(),
        scheduler: scheduler.to_string(),
        m,
        jobs: instance.num_jobs(),
        steps: report.counters.steps,
        dispatched: report.counters.dispatched,
        utilization: stats.utilization,
        max_ready_depth: report.counters.max_ready_depth,
        max_flow: stats.max_flow,
        mean_flow: stats.mean_flow,
        makespan: stats.makespan,
        lower_bound,
        job_lower_bound: lb.lower_bound(),
        ratio: stats.max_flow as f64 / lower_bound as f64,
        invariants_clean: inv.is_clean(),
        total_violations: inv.total_violations(),
        violations: inv
            .violations()
            .iter()
            .map(|v| ViolationRecord { t: v.t, rule: v.rule.to_string(), detail: v.detail.clone() })
            .collect(),
        flow: (&histos.flow).into(),
        ready_depth: (&histos.ready_depth).into(),
        scheduled: (&histos.scheduled).into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowtree_dag::builder::complete_kary;

    #[test]
    fn lpf_on_single_out_tree_reports_ratio_exactly_one() {
        // Corollary 5.4 + Lemma 5.3: for a single out-tree released at 0,
        // the Lemma 5.1 bound is exact and LPF achieves it.
        let inst = Instance::single(complete_kary(2, 4));
        let spec = "lpf".parse::<SchedulerSpec>().unwrap();
        let s = summarize("single", &inst, 4, spec).unwrap();
        assert_eq!(s.max_flow, s.lower_bound);
        assert_eq!(s.lower_bound, s.job_lower_bound);
        assert_eq!(s.ratio, 1.0);
        assert!(s.invariants_clean, "{:?}", s.violations);
        assert_eq!(s.flow.count, 1);
        assert_eq!(s.flow.max, s.max_flow);
    }

    #[test]
    fn summary_serde_roundtrips() {
        let inst = Instance::single(complete_kary(2, 3));
        let spec = "fifo".parse::<SchedulerSpec>().unwrap();
        let s = summarize("single", &inst, 2, spec).unwrap();
        let json = serde_json::to_string_pretty(&s).unwrap();
        let back: RunSummary = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
        // Key fields present in the JSON by name.
        for key in ["\"ratio\"", "\"lower_bound\"", "\"violations\"", "\"p99\""] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }

    #[test]
    fn markdown_report_carries_the_headline_numbers() {
        let inst = Instance::single(complete_kary(2, 3));
        let spec = "lpf".parse::<SchedulerSpec>().unwrap();
        let s = summarize("single", &inst, 2, spec).unwrap();
        let md = s.to_markdown();
        assert!(md.contains("competitive ratio"));
        assert!(md.contains("| invariants | clean |"));
        assert!(md.contains("ready depth"));
    }

    #[test]
    fn algo_a_passes_its_own_head_tail_checks() {
        // algo-a now carries the strict Thm 5.6 group-structure checks; a
        // genuine AlgoA run with a valid estimate must come out clean.
        let inst = Instance::single(complete_kary(2, 3));
        let spec = SchedulerSpec::from_name_with_half("algo-a", 4).unwrap();
        let s = summarize("single", &inst, 8, spec).unwrap();
        assert!(s.invariants_clean, "{:?}", s.violations);
        assert!(s.ratio >= 1.0);
    }
}
