//! Property tests for the bounds/exact machinery: the certified chain
//! `every lower bound <= exact OPT <= every feasible schedule` must hold on
//! random miniatures, and the classical algorithms must agree with
//! exhaustive search.

use flowtree_dag::{classify, GraphBuilder, JobGraph};
use flowtree_opt::{bgj, bounds, exact, hu, interval, single};
use flowtree_sim::{Instance, JobSpec};
use proptest::prelude::*;

fn arb_tree(max_n: usize) -> impl Strategy<Value = JobGraph> {
    (1..=max_n).prop_flat_map(|n| {
        proptest::collection::vec(0..usize::MAX, n.saturating_sub(1)).prop_map(move |cs| {
            let mut b = GraphBuilder::new(n);
            for (i, &c) in cs.iter().enumerate() {
                b.edge((c % (i + 1)) as u32, (i + 1) as u32);
            }
            b.build().unwrap()
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn bounds_below_exact_opt(
        a in arb_tree(7),
        b in arb_tree(7),
        ra in 0u64..4,
        rb in 0u64..4,
        m in 1usize..4,
    ) {
        let inst = Instance::new(vec![
            JobSpec { graph: a, release: ra },
            JobSpec { graph: b, release: rb },
        ]);
        let opt = exact::exact_max_flow(&inst, m, 64).unwrap();
        prop_assert!(bounds::combined_lower_bound(&inst, m as u64) <= opt);
        prop_assert!(interval::interval_load_lower_bound(&inst, m as u64) <= opt);
        prop_assert!(bounds::max_job_lower_bound(&inst, m as u64) <= opt);
        // Monotone in m: more processors never hurt.
        if m > 1 {
            let opt_more = exact::exact_max_flow(&inst, m + 1, 64).unwrap();
            prop_assert!(opt_more <= opt);
        }
    }

    #[test]
    fn corollary_5_4_exact_on_random_minis(g in arb_tree(12), m in 1usize..4) {
        let inst = Instance::single(g.clone());
        let formula = single::single_job_opt(&g, m as u64);
        let exact = exact::exact_max_flow(&inst, m, 24).unwrap();
        prop_assert_eq!(formula, exact);
    }

    #[test]
    fn hu_equals_exact_on_random_in_trees(g in arb_tree(10), m in 1usize..4) {
        let it = classify::reverse(&g);
        let inst = Instance::single(it.clone());
        prop_assert_eq!(
            hu::hu_makespan(&it, m),
            exact::exact_max_flow(&inst, m, 24).unwrap()
        );
    }

    #[test]
    fn hu_duality_with_formula(g in arb_tree(60), m in 1usize..8) {
        let it = classify::reverse(&g);
        prop_assert_eq!(
            hu::hu_makespan(&it, m),
            single::single_job_opt(&g, m as u64)
        );
    }

    #[test]
    fn bgj_uniform_deadline_equals_hu(g in arb_tree(30), m in 1usize..5) {
        let it = classify::reverse(&g);
        let d = vec![0i64; it.n()];
        prop_assert_eq!(
            bgj::bgj_max_lateness(&it, &d, m),
            hu::hu_makespan(&it, m) as i64
        );
    }

    #[test]
    fn bgj_lateness_shift_invariance(g in arb_tree(20), m in 1usize..4, shift in -5i64..6) {
        // Adding `shift` to all deadlines subtracts `shift` from Lmax.
        let it = classify::reverse(&g);
        let d: Vec<i64> = (0..it.n()).map(|i| (i % 5) as i64).collect();
        let ds: Vec<i64> = d.iter().map(|&x| x + shift).collect();
        prop_assert_eq!(
            bgj::bgj_max_lateness(&it, &ds, m),
            bgj::bgj_max_lateness(&it, &d, m) - shift
        );
    }

    #[test]
    fn single_group_opt_matches_union(g1 in arb_tree(20), g2 in arb_tree(20), m in 1usize..6) {
        let inst = Instance::new(vec![
            JobSpec { graph: g1.clone(), release: 0 },
            JobSpec { graph: g2.clone(), release: 0 },
        ]);
        let (u, _) = JobGraph::disjoint_union(&[&g1, &g2]);
        prop_assert_eq!(
            single::single_group_opt(&inst, m as u64),
            single::single_job_opt(&u, m as u64)
        );
    }

    #[test]
    fn feasibility_is_monotone_in_f(g in arb_tree(8), m in 1usize..3) {
        let inst = Instance::single(g);
        let opt = exact::exact_max_flow(&inst, m, 24).unwrap();
        prop_assert_eq!(exact::feasible_max_flow(&inst, m, opt), Some(true));
        if opt > 1 {
            prop_assert_eq!(exact::feasible_max_flow(&inst, m, opt - 1), Some(false));
        }
        prop_assert_eq!(exact::feasible_max_flow(&inst, m, opt + 5), Some(true));
    }
}
