//! Certified lower bounds on the optimal maximum flow.
//!
//! A *lower bound* here is a value `L` such that every feasible schedule of
//! the instance on `m` processors has maximum flow `>= L`. Ratios reported
//! against lower bounds over-state (never under-state) the true competitive
//! ratio, so conclusions drawn from them are conservative.

use flowtree_dag::{DepthProfile, JobGraph};
use flowtree_sim::Instance;

/// Lemma 5.1 bound for one job on `m` processors:
/// `max_d (d + ceil(W(d)/m))`, which dominates both the span bound
/// (`d = D, W = 0`) and the work bound (`d = 0`).
pub fn job_lower_bound(g: &JobGraph, m: u64) -> u64 {
    DepthProfile::new(g).opt_single_job(m)
}

/// The best per-job bound over the whole instance: any schedule must give
/// each job at least its own single-job optimum of flow.
pub fn max_job_lower_bound(instance: &Instance, m: u64) -> u64 {
    instance.jobs().iter().map(|j| job_lower_bound(&j.graph, m)).max().unwrap_or(0)
}

/// The strongest bound this crate offers without exact search: the max of
/// the per-job Lemma 5.1 bound and the [`interval
/// load`](crate::interval::interval_load_lower_bound) bound.
pub fn combined_lower_bound(instance: &Instance, m: u64) -> u64 {
    max_job_lower_bound(instance, m).max(crate::interval::interval_load_lower_bound(instance, m))
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowtree_dag::builder::{chain, complete_kary, star};
    use flowtree_sim::JobSpec;

    #[test]
    fn job_bound_dominates_span_and_work() {
        for g in [chain(7), star(12), complete_kary(2, 4)] {
            for m in 1..=6u64 {
                let b = job_lower_bound(&g, m);
                assert!(b >= g.span());
                assert!(b >= g.work().div_ceil(m));
            }
        }
    }

    #[test]
    fn max_job_bound_picks_hardest_job() {
        let inst = Instance::new(vec![
            JobSpec { graph: chain(10), release: 0 },
            JobSpec { graph: star(3), release: 5 },
        ]);
        assert_eq!(max_job_lower_bound(&inst, 4), 10);
    }

    #[test]
    fn combined_bound_at_least_each_part() {
        let inst = Instance::new(vec![
            JobSpec { graph: star(20), release: 0 },
            JobSpec { graph: star(20), release: 0 },
            JobSpec { graph: star(20), release: 1 },
        ]);
        let m = 4;
        let c = combined_lower_bound(&inst, m);
        assert!(c >= max_job_lower_bound(&inst, m));
        assert!(c >= crate::interval::interval_load_lower_bound(&inst, m));
        // 63 units released by time 1; they must finish by 1 + F:
        // m(F + 1) >= 63 - (work released at 0 that can run at step 1)...
        // the interval bound gives F >= ceil(63/4) - 1 = 15.
        assert!(c >= 15);
    }
}
