//! Exact optimal maximum flow for small instances.
//!
//! Binary search over the objective value `F`, with a memoized depth-first
//! feasibility search deciding "can every job `i` finish by `r_i + F`?".
//! The searcher exploits two structural facts:
//!
//! * **Fullness dominance**: with unit subjobs and per-job deadlines, running
//!   *more* ready subjobs in a step never hurts (everything else can only
//!   shift earlier), so only selections of size `min(m, #ready)` are
//!   explored.
//! * **Pruning**: a state dies early if some job's remaining critical path
//!   cannot fit before its deadline, or if the remaining work with deadline
//!   `<= D` exceeds `m * (D - t)` for some deadline `D`.
//!
//! State space is exponential; the entry point refuses instances with more
//! than 64 total subjobs and is intended for validation of bounds and
//! algorithms on miniatures (the experiment harness uses constructed
//! known-OPT instances at scale instead).

use flowtree_sim::Instance;
use std::collections::HashSet;

/// Exact optimal maximum flow of `instance` on `m` processors, or `None` if
/// the instance has more than `max_nodes` (<= 64) subjobs in total.
pub fn exact_max_flow(instance: &Instance, m: usize, max_nodes: usize) -> Option<u64> {
    let total: usize = instance.jobs().iter().map(|j| j.graph.n()).sum();
    if total > max_nodes.min(64) {
        return None;
    }
    let searcher = Searcher::new(instance, m);
    // Binary search on F in [lb, ub].
    let mut lo = crate::bounds::combined_lower_bound(instance, m as u64).max(1);
    // Upper bound: serialize everything after the last release.
    let mut hi = instance.last_release() + total as u64;
    debug_assert!(searcher.feasible(hi));
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if searcher.feasible(mid) {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    Some(lo)
}

/// Decide whether max flow `f` is achievable for `instance` on `m`
/// processors (exact, exponential).
pub fn feasible_max_flow(instance: &Instance, m: usize, f: u64) -> Option<bool> {
    let total: usize = instance.jobs().iter().map(|j| j.graph.n()).sum();
    if total > 64 {
        return None;
    }
    Some(Searcher::new(instance, m).feasible(f))
}

struct Searcher<'a> {
    instance: &'a Instance,
    m: usize,
    /// Global index base per job.
    base: Vec<usize>,
    total: usize,
    /// Remaining height of each node (longest path to a leaf within its
    /// job): completing a node at time `t` forces its subtree to run until
    /// at least `t + height - 1`.
    heights: Vec<u32>,
}

impl<'a> Searcher<'a> {
    fn new(instance: &'a Instance, m: usize) -> Self {
        let mut base = Vec::with_capacity(instance.num_jobs());
        let mut total = 0usize;
        let mut heights = Vec::new();
        for spec in instance.jobs() {
            base.push(total);
            total += spec.graph.n();
            heights.extend(spec.graph.heights());
        }
        Searcher { instance, m, base, total, heights }
    }

    fn feasible(&self, f: u64) -> bool {
        let full = if self.total == 64 {
            u64::MAX
        } else {
            (1u64 << self.total) - 1
        };
        let mut failed: HashSet<(u64, u64)> = HashSet::new();
        self.dfs(0, 0, full, f, &mut failed)
    }

    /// DFS over (time, completed set).
    fn dfs(&self, t: u64, done: u64, full: u64, f: u64, failed: &mut HashSet<(u64, u64)>) -> bool {
        if done == full {
            return true;
        }
        if failed.contains(&(t, done)) {
            return false;
        }

        // Prunes + ready collection.
        let mut ready: Vec<usize> = Vec::new();
        let mut next_release: Option<u64> = None;
        // Work remaining per deadline (sorted by job since deadlines are
        // r_i + f, nondecreasing in i).
        let mut deadline_work: Vec<(u64, u64)> = Vec::new();
        for (id, spec) in self.instance.iter() {
            let b = self.base[id.index()];
            let deadline = spec.release + f;
            let mut remaining = 0u64;
            for v in spec.graph.nodes() {
                let g = b + v.index();
                if done >> g & 1 == 1 {
                    continue;
                }
                remaining += 1;
                // Critical-path prune: node v and its deepest chain must fit.
                // v completes at >= max(t, release) + 1, subtree needs
                // heights[g] steps total.
                let earliest_end = t.max(spec.release) + self.heights[g] as u64;
                if earliest_end > deadline {
                    failed.insert((t, done));
                    return false;
                }
                if spec.release <= t {
                    let preds_done =
                        spec.graph.parents(v).iter().all(|&u| done >> (b + u as usize) & 1 == 1);
                    if preds_done {
                        ready.push(g);
                    }
                }
            }
            if remaining > 0 {
                if spec.release > t {
                    next_release = Some(match next_release {
                        Some(r) => r.min(spec.release),
                        None => spec.release,
                    });
                }
                match deadline_work.last_mut() {
                    Some((d, w)) if *d == deadline => *w += remaining,
                    _ => deadline_work.push((deadline, remaining)),
                }
            }
        }
        // Deadline-load prune: work due by D must fit in (t, D].
        let mut cum = 0u64;
        deadline_work.sort_unstable();
        for &(d, w) in &deadline_work {
            cum += w;
            if cum > (d.saturating_sub(t)) * self.m as u64 {
                failed.insert((t, done));
                return false;
            }
        }

        if ready.is_empty() {
            // Jump to the next release (there must be one, else infeasible
            // state would have no pending work — contradiction with done !=
            // full and all jobs released implying some ready node exists).
            match next_release {
                Some(r) => {
                    if self.dfs(r, done, full, f, failed) {
                        return true;
                    }
                    failed.insert((t, done));
                    return false;
                }
                None => unreachable!("unfinished DAG with no ready node"),
            }
        }

        let k = self.m.min(ready.len());
        // Enumerate k-subsets of `ready` (fullness dominance).
        let mut chosen = vec![0usize; k];
        let ok = self.combos(&ready, k, 0, 0, &mut chosen, t, done, full, f, failed);
        if !ok {
            failed.insert((t, done));
        }
        ok
    }

    #[allow(clippy::too_many_arguments)]
    fn combos(
        &self,
        ready: &[usize],
        k: usize,
        start: usize,
        depth: usize,
        chosen: &mut [usize],
        t: u64,
        done: u64,
        full: u64,
        f: u64,
        failed: &mut HashSet<(u64, u64)>,
    ) -> bool {
        if depth == k {
            let mut nd = done;
            for &g in chosen.iter() {
                nd |= 1 << g;
            }
            return self.dfs(t + 1, nd, full, f, failed);
        }
        // Not enough elements left to fill the subset.
        if ready.len() - start < k - depth {
            return false;
        }
        for i in start..ready.len() {
            chosen[depth] = ready[i];
            if self.combos(ready, k, i + 1, depth + 1, chosen, t, done, full, f, failed) {
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowtree_dag::builder::{caterpillar, chain, star};
    use flowtree_dag::{DepthProfile, GraphBuilder, JobGraph};
    use flowtree_sim::JobSpec;

    #[test]
    fn single_chain_opt_is_length() {
        let inst = Instance::single(chain(5));
        assert_eq!(exact_max_flow(&inst, 3, 64), Some(5));
    }

    #[test]
    fn single_star_matches_formula() {
        let g = star(7);
        for m in 1..=4usize {
            let inst = Instance::single(g.clone());
            assert_eq!(
                exact_max_flow(&inst, m, 64),
                Some(DepthProfile::new(&g).opt_single_job(m as u64))
            );
        }
    }

    #[test]
    fn corollary_5_4_verified_on_shapes() {
        for g in [
            caterpillar(4, &[2, 0, 3, 1]),
            flowtree_dag::builder::complete_kary(2, 3),
            flowtree_dag::builder::forest(&[chain(3), star(4)]),
        ] {
            for m in 1..=3usize {
                let inst = Instance::single(g.clone());
                assert_eq!(
                    exact_max_flow(&inst, m, 64).unwrap(),
                    DepthProfile::new(&g).opt_single_job(m as u64),
                    "shape with work {} on m={m}",
                    g.work()
                );
            }
        }
    }

    #[test]
    fn staggered_releases_interleave() {
        // chain(3) at t=0 and chain(3) at t=1 on one processor: the optimal
        // alternates; each job's flow is at most 5 (OPT = 5).
        let inst = Instance::new(vec![
            JobSpec { graph: chain(3), release: 0 },
            JobSpec { graph: chain(3), release: 1 },
        ]);
        assert_eq!(exact_max_flow(&inst, 1, 64), Some(5));
        // With two processors: each chain runs unimpeded: flows 3 and 3.
        assert_eq!(exact_max_flow(&inst, 2, 64), Some(3));
    }

    #[test]
    fn general_dag_supported() {
        // The searcher is not restricted to out-forests: a diamond.
        let mut b = GraphBuilder::new(4);
        b.edge(0, 1).edge(0, 2).edge(1, 3).edge(2, 3);
        let g = b.build().unwrap();
        let inst = Instance::single(g);
        assert_eq!(exact_max_flow(&inst, 2, 64), Some(3));
        let inst2 = Instance::single({
            let mut b = GraphBuilder::new(4);
            b.edge(0, 1).edge(0, 2).edge(1, 3).edge(2, 3);
            b.build().unwrap()
        });
        assert_eq!(exact_max_flow(&inst2, 1, 64), Some(4));
    }

    #[test]
    fn refuses_large_instances() {
        let inst = Instance::single(star(100));
        assert_eq!(exact_max_flow(&inst, 4, 64), None);
        assert_eq!(exact_max_flow(&inst, 4, 200), None, "hard cap at 64");
    }

    #[test]
    fn feasibility_endpoint() {
        let inst = Instance::single(star(4));
        // OPT on m=2 is 3 (root + 2 waves).
        assert_eq!(feasible_max_flow(&inst, 2, 2), Some(false));
        assert_eq!(feasible_max_flow(&inst, 2, 3), Some(true));
    }

    #[test]
    fn overload_window_instance() {
        // Three star(5)s at consecutive releases on m=2: interval bound
        // predicts F >= ceil(18/2) - 2 = 7; exact must be >= that.
        let jobs: Vec<JobSpec> = (0..3).map(|i| JobSpec { graph: star(5), release: i }).collect();
        let inst = Instance::new(jobs);
        let opt = exact_max_flow(&inst, 2, 64).unwrap();
        let lb = crate::interval::interval_load_lower_bound(&inst, 2);
        assert!(opt >= lb);
        assert_eq!(opt, 8);
    }

    #[test]
    fn exact_respects_all_lower_bounds_property() {
        // A cross-validation sweep over miniatures.
        let shapes: Vec<JobGraph> = vec![chain(4), star(3), caterpillar(2, &[1, 2])];
        for (i, a) in shapes.iter().enumerate() {
            for b in &shapes[i..] {
                for (ra, rb) in [(0u64, 0u64), (0, 2), (1, 3)] {
                    let inst = Instance::new(vec![
                        JobSpec { graph: a.clone(), release: ra },
                        JobSpec { graph: b.clone(), release: rb },
                    ]);
                    for m in 1..=3usize {
                        let opt = exact_max_flow(&inst, m, 64).unwrap();
                        let lb = crate::bounds::combined_lower_bound(&inst, m as u64);
                        assert!(opt >= lb, "opt {opt} < lb {lb}");
                        // And OPT is at most the trivial serialization.
                        assert!(opt <= inst.last_release() + inst.total_work());
                    }
                }
            }
        }
    }
}
