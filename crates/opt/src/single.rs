//! Corollary 5.4 — the exact optimal maximum flow of a single out-forest
//! release group.
//!
//! For one out-forest job `J` released at time 0 on `m` processors,
//! `OPT = max_{d in [0, D]} (d + ceil(W(d)/m))`: the lower bound of
//! Lemma 5.1 is attained by the LPF schedule (Lemma 5.3 with α = 1). The
//! same holds for several jobs released *together* by treating their union
//! as one job (Section 5.3 does exactly this).

use flowtree_dag::{DepthProfile, JobGraph};
use flowtree_sim::Instance;

/// Exact OPT for a single out-forest (or any collection of graphs released
/// simultaneously, passed as one union graph).
pub fn single_job_opt(g: &JobGraph, m: u64) -> u64 {
    DepthProfile::new(g).opt_single_job(m)
}

/// Exact OPT for an instance in which *all jobs share one release time*
/// (the union is treated as a single out-forest job). Panics otherwise —
/// this formula is simply wrong for staggered releases; use
/// [`crate::exact::exact_max_flow`] or lower bounds there.
pub fn single_group_opt(instance: &Instance, m: u64) -> u64 {
    let r0 = instance.release(flowtree_dag::JobId(0));
    assert!(
        instance.jobs().iter().all(|j| j.release == r0),
        "single_group_opt requires a common release time"
    );
    // Union profile without materializing the union: depth profiles add.
    let mut counts: Vec<u64> = Vec::new();
    for spec in instance.jobs() {
        let p = DepthProfile::new(&spec.graph);
        let d = p.max_depth() as usize;
        if counts.len() < d {
            counts.resize(d, 0);
        }
        for depth in 1..=p.max_depth() {
            counts[(depth - 1) as usize] += p.nodes_at_depth(depth);
        }
    }
    let mut best = 0u64;
    let mut suffix = 0u64;
    // d runs from max depth down to 0; suffix = W(d).
    for d in (0..=counts.len()).rev() {
        best = best.max(d as u64 + suffix.div_ceil(m));
        if d > 0 {
            suffix += counts[d - 1];
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowtree_dag::builder::{caterpillar, chain, complete_kary, star};
    use flowtree_sim::JobSpec;

    #[test]
    fn matches_profile_for_one_job() {
        let g = complete_kary(2, 5);
        for m in 1..=8 {
            assert_eq!(single_job_opt(&g, m), DepthProfile::new(&g).opt_single_job(m));
        }
    }

    #[test]
    fn group_opt_equals_union_opt() {
        let parts = [chain(5), star(7), caterpillar(3, &[2, 0, 4])];
        let inst =
            Instance::new(parts.iter().map(|g| JobSpec { graph: g.clone(), release: 3 }).collect());
        let refs: Vec<&flowtree_dag::JobGraph> = parts.iter().collect();
        let (union, _) = flowtree_dag::JobGraph::disjoint_union(&refs);
        for m in 1..=6 {
            assert_eq!(single_group_opt(&inst, m), single_job_opt(&union, m));
        }
    }

    #[test]
    fn group_opt_matches_exact_search_small() {
        let inst = Instance::new(vec![
            JobSpec { graph: star(3), release: 0 },
            JobSpec { graph: chain(4), release: 0 },
        ]);
        for m in 1..=3usize {
            let formula = single_group_opt(&inst, m as u64);
            let exact = crate::exact::exact_max_flow(&inst, m, 40).unwrap();
            assert_eq!(formula, exact, "m={m}");
        }
    }

    #[test]
    #[should_panic(expected = "common release time")]
    fn staggered_releases_rejected() {
        let inst = Instance::new(vec![
            JobSpec { graph: chain(2), release: 0 },
            JobSpec { graph: chain(2), release: 1 },
        ]);
        single_group_opt(&inst, 2);
    }
}
