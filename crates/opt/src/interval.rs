//! The interval-load lower bound for multi-job instances.
//!
//! Fix a maximum flow target `F`. Every subjob of a job released at `r`
//! completes within `(r, r + F]`. So for any window of release times
//! `[s, e]`, the total work `W[s, e]` of jobs released in the window must be
//! executed inside `(s, e + F]` — an interval of `e - s + F` steps with
//! capacity `m` each:
//!
//! ```text
//! m * (e - s + F) >= W[s, e]   =>   F >= ceil(W[s, e] / m) - (e - s).
//! ```
//!
//! Maximizing over all windows (endpoints need only be release times) gives
//! a certified lower bound on the optimal maximum flow. This bound is what
//! makes the paper's "excess work" arguments (Theorem 5.6) tick, and it is
//! *tight* on the packed batched instances used in the experiments.

use flowtree_sim::Instance;

/// Compute the interval-load lower bound (0 if it is vacuous).
///
/// O(k^2) over the k distinct release times — instances in this repository
/// have at most a few thousand distinct releases.
pub fn interval_load_lower_bound(instance: &Instance, m: u64) -> u64 {
    assert!(m >= 1);
    // Aggregate work per distinct release time (jobs are sorted by release).
    let mut points: Vec<(u64, u64)> = Vec::new(); // (release, work at release)
    for spec in instance.jobs() {
        match points.last_mut() {
            Some((r, w)) if *r == spec.release => *w += spec.graph.work(),
            _ => points.push((spec.release, spec.graph.work())),
        }
    }
    // Prefix sums of work.
    let mut prefix = vec![0u64];
    for &(_, w) in &points {
        prefix.push(prefix.last().unwrap() + w);
    }

    let mut best = 0u64;
    for i in 0..points.len() {
        for j in i..points.len() {
            let (s, e) = (points[i].0, points[j].0);
            let work = prefix[j + 1] - prefix[i];
            let need = work.div_ceil(m); // steps needed at full capacity
            let window = e - s;
            if need > window {
                best = best.max(need - window);
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowtree_dag::builder::{chain, star};
    use flowtree_sim::JobSpec;

    #[test]
    fn single_job_matches_work_bound() {
        let inst = Instance::single(star(15));
        // Window [0,0]: F >= ceil(16/m).
        assert_eq!(interval_load_lower_bound(&inst, 4), 4);
        assert_eq!(interval_load_lower_bound(&inst, 16), 1);
    }

    #[test]
    fn burst_of_simultaneous_jobs_accumulates() {
        let jobs = (0..5).map(|_| JobSpec { graph: star(9), release: 0 }).collect();
        let inst = Instance::new(jobs);
        // 50 units at time 0 on m=5: F >= 10.
        assert_eq!(interval_load_lower_bound(&inst, 5), 10);
    }

    #[test]
    fn spread_arrivals_relax_the_bound() {
        // Same 50 units spread over releases 0, 10, 20, 30, 40 on m=5: each
        // batch fits in its own gap; only the single-batch window binds.
        let jobs = (0..5).map(|i| JobSpec { graph: star(9), release: i * 10 }).collect();
        let inst = Instance::new(jobs);
        assert_eq!(interval_load_lower_bound(&inst, 5), 2);
    }

    #[test]
    fn overload_across_windows_detected() {
        // Arrivals of 12 units each at t = 0, 1, 2 on m = 2: window [0,2]
        // holds 36 units => F >= 18 - 2 = 16; window [0,0] gives only 6.
        let jobs = (0..3).map(|i| JobSpec { graph: star(11), release: i }).collect();
        let inst = Instance::new(jobs);
        assert_eq!(interval_load_lower_bound(&inst, 2), 16);
    }

    #[test]
    fn light_load_gives_small_bound() {
        let inst = Instance::new(vec![
            JobSpec { graph: chain(2), release: 0 },
            JobSpec { graph: chain(2), release: 100 },
        ]);
        assert_eq!(interval_load_lower_bound(&inst, 4), 1);
    }

    #[test]
    fn bound_is_valid_against_exact_opt_small() {
        // Cross-check: interval bound <= exact OPT on a tiny instance.
        let inst = Instance::new(vec![
            JobSpec { graph: star(3), release: 0 },
            JobSpec { graph: star(3), release: 1 },
            JobSpec { graph: chain(3), release: 1 },
        ]);
        let m = 2;
        let lb = interval_load_lower_bound(&inst, m as u64);
        let opt = crate::exact::exact_max_flow(&inst, m, 40).expect("small instance");
        assert!(lb <= opt, "lb {lb} > opt {opt}");
    }
}
