//! The interval-load lower bound for multi-job instances.
//!
//! Fix a maximum flow target `F`. Every subjob of a job released at `r`
//! completes within `(r, r + F]`. So for any window of release times
//! `[s, e]`, the total work `W[s, e]` of jobs released in the window must be
//! executed inside `(s, e + F]` — an interval of `e - s + F` steps with
//! capacity `m` each:
//!
//! ```text
//! m * (e - s + F) >= W[s, e]   =>   F >= ceil(W[s, e] / m) - (e - s).
//! ```
//!
//! Maximizing over all windows (endpoints need only be release times) gives
//! a certified lower bound on the optimal maximum flow. This bound is what
//! makes the paper's "excess work" arguments (Theorem 5.6) tick, and it is
//! *tight* on the packed batched instances used in the experiments.

use flowtree_sim::Instance;

/// Compute the interval-load lower bound (0 if it is vacuous).
///
/// O(k·m) over the k distinct release times (O(k²) when `m >= k`, where the
/// direct window scan is the cheaper shape). The linear pass is exact: for a
/// window ending at release `e_j` with total work `W = P[j+1] - P[i]`,
///
/// ```text
/// ceil(W / m) - (e_j - s_i) = floor((T - P[i]) / m) + s_i - e_j,
/// T = P[j+1] + m - 1,
/// ```
///
/// and with `P[i] = q_i·m + b_i`, `T = Q·m + c`, the floor splits into
/// `Q - q_i - [b_i > c]`. Maximizing over window starts `i <= j` therefore
/// only needs, per residue class `b`, the running maximum of `s_i - q_i` —
/// a table of `m` entries updated once per point.
pub fn interval_load_lower_bound(instance: &Instance, m: u64) -> u64 {
    assert!(m >= 1);
    // Aggregate work per distinct release time (jobs are sorted by release).
    let mut points: Vec<(u64, u64)> = Vec::new(); // (release, work at release)
    for spec in instance.jobs() {
        match points.last_mut() {
            Some((r, w)) if *r == spec.release => *w += spec.graph.work(),
            _ => points.push((spec.release, spec.graph.work())),
        }
    }
    // Prefix sums of work.
    let mut prefix = vec![0u64];
    for &(_, w) in &points {
        prefix.push(prefix.last().unwrap() + w);
    }

    if points.len() as u64 <= m {
        return interval_load_windows(&points, &prefix, m);
    }

    let mi = m as i128;
    // g[b] = max over starts i with P[i] ≡ b (mod m) of (s_i - P[i] / m).
    let mut g = vec![i128::MIN; m as usize];
    let mut best: i128 = 0;
    for (j, &(release, _)) in points.iter().enumerate() {
        let p = prefix[j] as i128;
        let (q, b) = (p.div_euclid(mi), p.rem_euclid(mi) as usize);
        g[b] = g[b].max(release as i128 - q);

        let t = prefix[j + 1] as i128 + mi - 1;
        let (big_q, c) = (t.div_euclid(mi), t.rem_euclid(mi));
        let mut h = i128::MIN;
        for (bb, &gv) in g.iter().enumerate() {
            if gv != i128::MIN {
                h = h.max(gv - (bb as i128 > c) as i128);
            }
        }
        best = best.max(big_q + h - release as i128);
    }
    best as u64
}

/// Direct all-windows scan — the reference shape of the bound, used when the
/// residue table would be larger than the point set.
fn interval_load_windows(points: &[(u64, u64)], prefix: &[u64], m: u64) -> u64 {
    let mut best = 0u64;
    for i in 0..points.len() {
        for j in i..points.len() {
            let (s, e) = (points[i].0, points[j].0);
            let work = prefix[j + 1] - prefix[i];
            let need = work.div_ceil(m); // steps needed at full capacity
            let window = e - s;
            if need > window {
                best = best.max(need - window);
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowtree_dag::builder::{chain, star};
    use flowtree_sim::JobSpec;

    #[test]
    fn single_job_matches_work_bound() {
        let inst = Instance::single(star(15));
        // Window [0,0]: F >= ceil(16/m).
        assert_eq!(interval_load_lower_bound(&inst, 4), 4);
        assert_eq!(interval_load_lower_bound(&inst, 16), 1);
    }

    #[test]
    fn burst_of_simultaneous_jobs_accumulates() {
        let jobs = (0..5).map(|_| JobSpec { graph: star(9), release: 0 }).collect();
        let inst = Instance::new(jobs);
        // 50 units at time 0 on m=5: F >= 10.
        assert_eq!(interval_load_lower_bound(&inst, 5), 10);
    }

    #[test]
    fn spread_arrivals_relax_the_bound() {
        // Same 50 units spread over releases 0, 10, 20, 30, 40 on m=5: each
        // batch fits in its own gap; only the single-batch window binds.
        let jobs = (0..5).map(|i| JobSpec { graph: star(9), release: i * 10 }).collect();
        let inst = Instance::new(jobs);
        assert_eq!(interval_load_lower_bound(&inst, 5), 2);
    }

    #[test]
    fn overload_across_windows_detected() {
        // Arrivals of 12 units each at t = 0, 1, 2 on m = 2: window [0,2]
        // holds 36 units => F >= 18 - 2 = 16; window [0,0] gives only 6.
        let jobs = (0..3).map(|i| JobSpec { graph: star(11), release: i }).collect();
        let inst = Instance::new(jobs);
        assert_eq!(interval_load_lower_bound(&inst, 2), 16);
    }

    #[test]
    fn light_load_gives_small_bound() {
        let inst = Instance::new(vec![
            JobSpec { graph: chain(2), release: 0 },
            JobSpec { graph: chain(2), release: 100 },
        ]);
        assert_eq!(interval_load_lower_bound(&inst, 4), 1);
    }

    /// The residue-table pass must agree with the direct all-windows scan
    /// on point sets large enough to take the linear path.
    #[test]
    fn linear_pass_matches_window_scan() {
        // Deterministic pseudo-random releases/works (xorshift).
        let mut x = 0x9e3779b97f4a7c15u64;
        let mut rand = move |n: u64| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x % n
        };
        for m in [1u64, 2, 3, 5, 8, 13] {
            let mut release = 0u64;
            let jobs = (0..60)
                .map(|_| {
                    release += rand(4);
                    JobSpec { graph: star(rand(13) as usize + 1), release }
                })
                .collect();
            let inst = Instance::new(jobs);
            let fast = interval_load_lower_bound(&inst, m);
            let mut points: Vec<(u64, u64)> = Vec::new();
            for spec in inst.jobs() {
                match points.last_mut() {
                    Some((r, w)) if *r == spec.release => *w += spec.graph.work(),
                    _ => points.push((spec.release, spec.graph.work())),
                }
            }
            let mut prefix = vec![0u64];
            for &(_, w) in &points {
                prefix.push(prefix.last().unwrap() + w);
            }
            assert_eq!(fast, interval_load_windows(&points, &prefix, m), "m={m}");
        }
    }

    #[test]
    fn bound_is_valid_against_exact_opt_small() {
        // Cross-check: interval bound <= exact OPT on a tiny instance.
        let inst = Instance::new(vec![
            JobSpec { graph: star(3), release: 0 },
            JobSpec { graph: star(3), release: 1 },
            JobSpec { graph: chain(3), release: 1 },
        ]);
        let m = 2;
        let lb = interval_load_lower_bound(&inst, m as u64);
        let opt = crate::exact::exact_max_flow(&inst, m, 40).expect("small instance");
        assert!(lb <= opt, "lb {lb} > opt {opt}");
    }
}
