//! # flowtree-opt — optimal values, certified lower bounds, classical exact
//! algorithms
//!
//! Measuring a competitive ratio needs a reference value. This crate provides
//! the paper's own bounds plus exact machinery:
//!
//! * [`bounds`] — per-job lower bounds on the optimal maximum flow: span,
//!   work, and the depth-profile bound of **Lemma 5.1**
//!   (`OPT >= d + ceil(W(d)/m)`).
//! * [`single`] — **Corollary 5.4**: the exact optimal maximum flow of a
//!   single out-forest job, `OPT = max_d (d + ceil(W(d)/m))`.
//! * [`interval`] — a multi-job *interval load* lower bound: work released
//!   inside a window must fit between the window start and the last deadline.
//! * [`exact`] — exact optimal maximum flow for small instances by binary
//!   search over the objective plus memoized depth-first feasibility search.
//!   Used to validate every approximate bound and the optimality claims.
//! * [`hu`] — Hu's 1961 highest-level-first algorithm, optimal for unit-task
//!   in-forest makespan (the classical result the paper's related work
//!   builds on).
//! * [`bgj`] — Brucker–Garey–Johnson modified-deadline list scheduling,
//!   optimal for unit-task in-forests with deadlines (max lateness).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bgj;
pub mod bounds;
pub mod exact;
pub mod hu;
pub mod interval;
pub mod single;

pub use bounds::{combined_lower_bound, job_lower_bound};
pub use exact::exact_max_flow;
pub use single::single_group_opt;
