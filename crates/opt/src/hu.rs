//! Hu's algorithm (1961) — optimal makespan for unit-task **in-forests**.
//!
//! The classical result behind the paper's related-work discussion: for
//! in-trees/in-forests of unit tasks on `m` identical processors,
//! highest-level-first list scheduling minimizes makespan, where the *level*
//! of a task is the number of nodes on its path to the root (i.e. its height
//! in our out-tree vocabulary, after reversing edges).
//!
//! Duality check used in tests: reading a schedule backwards turns an
//! in-forest into an out-forest, so Hu's optimal makespan must equal the
//! Corollary 5.4 value of the reversed graph — the two classical results
//! validate each other.

use flowtree_dag::{classify, JobGraph, NodeId};

/// Run Hu's highest-level-first algorithm on an in-forest; returns the
/// schedule as levels of node ids (step `i` runs `levels[i]`).
///
/// Panics if `g` is not an in-forest.
pub fn hu_schedule(g: &JobGraph, m: usize) -> Vec<Vec<u32>> {
    assert!(m >= 1);
    assert!(classify::is_in_forest(g), "Hu's algorithm requires an in-forest");
    // Level of v = longest path from v to its root = our height... in an
    // in-forest each node has <= 1 child, so the path to the root is unique
    // and its length is the node's height in the DAG sense.
    let level = g.heights();

    // Bucket the *ready* tasks by level; initial ready = sources.
    let max_l = level.iter().copied().max().unwrap_or(1) as usize;
    let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); max_l + 1];
    let mut indeg: Vec<u32> = g.nodes().map(|v| g.in_degree(v) as u32).collect();
    for v in g.nodes() {
        if indeg[v.index()] == 0 {
            buckets[level[v.index()] as usize].push(v.0);
        }
    }
    let mut remaining = g.n();
    let mut schedule = Vec::new();
    let mut cur = max_l;
    while remaining > 0 {
        let mut step = Vec::with_capacity(m);
        let mut scan = cur;
        while step.len() < m && scan > 0 {
            while scan > 0 && buckets[scan].is_empty() {
                scan -= 1;
            }
            if scan == 0 {
                break;
            }
            let take = (m - step.len()).min(buckets[scan].len());
            let start = buckets[scan].len() - take;
            step.extend(buckets[scan].drain(start..));
        }
        debug_assert!(!step.is_empty());
        remaining -= step.len();
        let mut enabled = Vec::new();
        for &v in &step {
            for &c in g.children(NodeId(v)) {
                indeg[c as usize] -= 1;
                if indeg[c as usize] == 0 {
                    enabled.push(c);
                }
            }
        }
        for c in enabled {
            let l = level[c as usize] as usize;
            buckets[l].push(c);
            cur = cur.max(l);
        }
        schedule.push(step);
    }
    schedule
}

/// Optimal makespan of a unit-task in-forest on `m` processors.
pub fn hu_makespan(g: &JobGraph, m: usize) -> u64 {
    hu_schedule(g, m).len() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowtree_dag::builder::{chain, complete_kary, star};
    use flowtree_dag::classify::reverse;
    use flowtree_dag::DepthProfile;
    use flowtree_sim::Instance;

    fn verify(g: &JobGraph, levels: &[Vec<u32>], m: usize) {
        let inst = Instance::single(g.clone());
        let mut s = flowtree_sim::Schedule::new(m);
        for level in levels {
            s.push_step(level.iter().map(|&v| (flowtree_dag::JobId(0), NodeId(v))).collect());
        }
        s.verify(&inst).unwrap();
    }

    #[test]
    fn chain_is_sequential() {
        let g = chain(6); // a chain is both an in- and out-forest
        assert_eq!(hu_makespan(&g, 4), 6);
        verify(&g, &hu_schedule(&g, 4), 4);
    }

    #[test]
    fn reversed_star_is_a_join() {
        let g = reverse(&star(6)); // 6 leaves feeding one sink
        assert_eq!(hu_makespan(&g, 3), 3); // 2 waves of leaves + sink
        assert_eq!(hu_makespan(&g, 6), 2);
        verify(&g, &hu_schedule(&g, 3), 3);
    }

    #[test]
    fn duality_with_corollary_5_4() {
        // Hu's makespan on an in-forest == Cor 5.4 OPT of the reversed
        // out-forest, for a family of shapes and machine sizes.
        let shapes = [
            reverse(&complete_kary(2, 5)),
            reverse(&complete_kary(3, 4)),
            reverse(&flowtree_dag::builder::caterpillar(6, &[3, 1, 0, 2, 5, 1])),
            reverse(&flowtree_dag::builder::forest(&[star(5), chain(4)])),
        ];
        for g in &shapes {
            let out = reverse(g);
            let profile = DepthProfile::new(&out);
            for m in 1..=8usize {
                assert_eq!(
                    hu_makespan(g, m),
                    profile.opt_single_job(m as u64),
                    "duality failed for m={m}"
                );
                verify(g, &hu_schedule(g, m), m);
            }
        }
    }

    #[test]
    fn hu_matches_exact_on_miniatures() {
        let g = reverse(&flowtree_dag::builder::caterpillar(3, &[2, 1, 2]));
        for m in 1..=3usize {
            let inst = Instance::single(g.clone());
            assert_eq!(hu_makespan(&g, m), crate::exact::exact_max_flow(&inst, m, 64).unwrap());
        }
    }

    #[test]
    #[should_panic(expected = "in-forest")]
    fn rejects_out_trees_with_branching() {
        hu_schedule(&star(3), 2);
    }
}
