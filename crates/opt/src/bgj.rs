//! Brucker–Garey–Johnson (1977) — optimal max-lateness scheduling of
//! unit-task **in-forests with deadlines** on `m` identical processors.
//!
//! The second classical tree-scheduling result in the paper's related-work
//! lineage (alongside Hu's algorithm). Given a deadline `d(v)` per node,
//! BGJ first propagates **modified deadlines** from each root outward:
//!
//! ```text
//! d'(root) = d(root);     d'(v) = min(d(v), d'(succ(v)) - 1)
//! ```
//!
//! (a node must finish early enough for its unique successor chain), then
//! list-schedules ready nodes by earliest modified deadline. The resulting
//! schedule minimizes `Lmax = max_v (C_v - d(v))`.
//!
//! Here it serves as an independently-tested oracle for deadline-feasibility
//! questions on tree jobs, cross-validating the exact searcher.

use flowtree_dag::{classify, JobGraph, NodeId};

/// The BGJ schedule (levels of node ids) and its max lateness.
pub fn bgj_schedule(g: &JobGraph, deadlines: &[i64], m: usize) -> (Vec<Vec<u32>>, i64) {
    assert!(m >= 1);
    assert_eq!(deadlines.len(), g.n(), "one deadline per node");
    assert!(
        classify::is_in_forest(g),
        "BGJ requires an in-forest (each node at most one successor)"
    );

    // Modified deadlines, roots (sinks) first = reverse topological order.
    let mut dmod = deadlines.to_vec();
    for &v in g.topo_order().iter().rev() {
        if let Some(&succ) = g.children(NodeId(v)).first() {
            dmod[v as usize] = dmod[v as usize].min(dmod[succ as usize] - 1);
        }
    }

    // List-schedule by earliest modified deadline among ready nodes.
    let mut indeg: Vec<u32> = g.nodes().map(|v| g.in_degree(v) as u32).collect();
    let mut ready: Vec<u32> = g.nodes().filter(|&v| indeg[v.index()] == 0).map(|v| v.0).collect();
    let mut schedule: Vec<Vec<u32>> = Vec::new();
    let mut lmax = i64::MIN;
    let mut remaining = g.n();
    while remaining > 0 {
        // Earliest modified deadline first; take m.
        ready.sort_by_key(|&v| dmod[v as usize]);
        let take = m.min(ready.len());
        let step: Vec<u32> = ready.drain(..take).collect();
        remaining -= step.len();
        let t = schedule.len() as i64 + 1; // completion time of this step
        for &v in &step {
            lmax = lmax.max(t - deadlines[v as usize]);
            for &c in g.children(NodeId(v)) {
                indeg[c as usize] -= 1;
                if indeg[c as usize] == 0 {
                    ready.push(c);
                }
            }
        }
        schedule.push(step);
    }
    (schedule, lmax)
}

/// Optimal max lateness of a unit-task in-forest with per-node deadlines.
pub fn bgj_max_lateness(g: &JobGraph, deadlines: &[i64], m: usize) -> i64 {
    bgj_schedule(g, deadlines, m).1
}

/// Can the in-forest be scheduled so that every node meets its deadline?
pub fn bgj_feasible(g: &JobGraph, deadlines: &[i64], m: usize) -> bool {
    bgj_max_lateness(g, deadlines, m) <= 0
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowtree_dag::builder::{chain, complete_kary, star};
    use flowtree_dag::classify::reverse;

    /// Test-local exhaustive minimizer of Lmax (tiny inputs only): DFS over
    /// all maximal selections per step.
    fn brute_lmax(g: &JobGraph, deadlines: &[i64], m: usize) -> i64 {
        fn go(
            g: &JobGraph,
            deadlines: &[i64],
            m: usize,
            done: u32,
            t: i64,
            best: &mut i64,
            cur: i64,
        ) {
            if cur >= *best {
                return; // can't improve
            }
            if done.count_ones() as usize == g.n() {
                *best = cur;
                return;
            }
            let ready: Vec<u32> = g
                .nodes()
                .filter(|&v| {
                    done >> v.0 & 1 == 0 && g.parents(v).iter().all(|&u| done >> u & 1 == 1)
                })
                .map(|v| v.0)
                .collect();
            let k = m.min(ready.len());
            // Enumerate k-subsets.
            fn combos(ready: &[u32], k: usize, start: usize, acc: u32, out: &mut Vec<u32>) {
                if k == 0 {
                    out.push(acc);
                    return;
                }
                for i in start..ready.len() {
                    combos(ready, k - 1, i + 1, acc | (1 << ready[i]), out);
                }
            }
            let mut sets = Vec::new();
            combos(&ready, k, 0, 0, &mut sets);
            for set in sets {
                let mut worst = cur;
                for v in 0..g.n() as u32 {
                    if set >> v & 1 == 1 {
                        worst = worst.max(t + 1 - deadlines[v as usize]);
                    }
                }
                go(g, deadlines, m, done | set, t + 1, best, worst);
            }
        }
        let mut best = i64::MAX;
        go(g, deadlines, m, 0, 0, &mut best, i64::MIN);
        best
    }

    #[test]
    fn chain_with_tight_deadlines() {
        let g = chain(4); // also an in-forest
                          // Deadlines exactly at positions: lateness 0.
        assert_eq!(bgj_max_lateness(&g, &[1, 2, 3, 4], 2), 0);
        // Root (node 0) deadline 0 is impossible: lateness 1.
        assert_eq!(bgj_max_lateness(&g, &[0, 2, 3, 4], 2), 1);
        assert!(!bgj_feasible(&g, &[0, 2, 3, 4], 2));
    }

    #[test]
    fn modified_deadlines_pull_predecessors_earlier() {
        // reverse(star(2)): nodes 1 and 2 feed sink 0. Sink deadline 2 means
        // both leaves are effectively due at 1 (modified deadline), despite
        // their nominal deadline 10.
        let g = reverse(&star(2));
        let d = vec![2i64, 10, 10];
        // m=2: leaves at step 1, sink at step 2 -> lateness 0.
        assert_eq!(bgj_max_lateness(&g, &d, 2), 0);
        assert!(bgj_feasible(&g, &d, 2));
        // m=1: one leaf must slip to step 2, sink to step 3 -> lateness 1.
        assert_eq!(bgj_max_lateness(&g, &d, 1), 1);
        assert!(!bgj_feasible(&g, &d, 1));
    }

    #[test]
    fn against_brute_force_small() {
        let shapes = [
            reverse(&star(3)),
            reverse(&flowtree_dag::builder::caterpillar(3, &[1, 1, 0])),
            chain(5),
            reverse(&complete_kary(2, 3)),
        ];
        // A few deadline patterns per shape.
        for g in &shapes {
            let n = g.n();
            let patterns: Vec<Vec<i64>> = vec![
                (0..n).map(|i| (i as i64 % 3) + 2).collect(),
                (0..n).map(|i| (n - i) as i64).collect(),
                vec![3; n],
                (0..n).map(|i| i as i64 + 1).collect(),
            ];
            for d in patterns {
                for m in 1..=3usize {
                    assert_eq!(
                        bgj_max_lateness(g, &d, m),
                        brute_lmax(g, &d, m),
                        "shape n={n} deadlines {d:?} m={m}"
                    );
                }
            }
        }
    }

    #[test]
    fn uniform_deadlines_reduce_to_hu_makespan() {
        for g in [
            reverse(&complete_kary(2, 4)),
            reverse(&flowtree_dag::builder::caterpillar(5, &[2, 0, 1, 3, 0])),
        ] {
            for m in 1..=4usize {
                let d = vec![0i64; g.n()];
                // Lmax with all deadlines 0 == makespan.
                assert_eq!(bgj_max_lateness(&g, &d, m), crate::hu::hu_makespan(&g, m) as i64);
            }
        }
    }

    #[test]
    fn schedules_are_feasible() {
        let g = reverse(&complete_kary(3, 3));
        let d: Vec<i64> = (0..g.n()).map(|i| (i % 4) as i64 + 3).collect();
        let (levels, _) = bgj_schedule(&g, &d, 3);
        // Feasibility: precedence respected and every node exactly once.
        let mut when = vec![0usize; g.n()];
        let mut count = 0;
        for (i, level) in levels.iter().enumerate() {
            assert!(level.len() <= 3);
            for &v in level {
                when[v as usize] = i + 1;
                count += 1;
            }
        }
        assert_eq!(count, g.n());
        for (u, v) in g.edges() {
            assert!(when[u as usize] < when[v as usize]);
        }
    }

    #[test]
    #[should_panic(expected = "in-forest")]
    fn rejects_branching_out_trees() {
        bgj_schedule(&star(3), &[1, 1, 1, 1], 2);
    }
}
