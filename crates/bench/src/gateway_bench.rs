//! The gateway wire-path throughput matrix (`BENCH_gateway.json`).
//!
//! Every cell replays the same fixed-seed bursty arrival stream through a
//! real [`Gateway`] over loopback TCP: a [`ShardPool`] is launched, a
//! gateway binds `127.0.0.1:0`, and `clients` concurrent [`GatewayClient`]s
//! each stream a contiguous slice of the jobs with `submit_all`. The sweep
//! covers client count × batch size × wire codec × ack window — the four
//! knobs of the ingest hot path — and reports
//!
//! * **submitted_jobs_per_sec** — offered jobs over the *submit phase* wall
//!   (connect/handshake outside the clock), the wire-path headline, and
//! * **subjobs_per_sec** — dispatched work over the ingest→drain wall, the
//!   number the shared 25% regression gate compares (consistent with the
//!   serve and engine matrices).
//!
//! Jobs are deliberately small (16-subjob trees in bursts of 8), matching
//! the serve matrix: in this regime frame encode/decode, per-frame
//! allocation, and ack round-trips dominate simulation, which is exactly
//! what the wire-path optimizations target. The `json+w1` cell keeps the
//! legacy protocol shape (JSON codec, one ack round-trip per batch) next
//! to the pipelined binary cells so the committed baseline documents the
//! speedup and gates both paths.

use crate::{document, BenchOpts, SEED};
use flowtree_core::SchedulerSpec;
use flowtree_gateway::{ClientOptions, Gateway, GatewayClient, GatewayConfig, WireCodec};
use flowtree_serve::{OverloadPolicy, Routing, ServeConfig, ShardPool};
use flowtree_sim::{Instance, JobSpec};
use serde::Value;
use std::time::Instant;

/// A named bursty replay stream (same shape as the serve matrix).
struct GatewayWorkload {
    name: &'static str,
    /// Number of jobs (arrivals) in the stream.
    jobs: usize,
    /// Subjobs per job (random recursive out-trees of this size).
    job_size: usize,
    /// Jobs sharing one release tick.
    burst: usize,
    /// Release spacing between consecutive ticks.
    spread: u64,
}

/// The acceptance-measurement stream: 3072 small jobs arriving 8 per tick.
const GATEWAY_REPLAY: GatewayWorkload = GatewayWorkload {
    name: "gateway-replay",
    jobs: 3072,
    job_size: 16,
    burst: 8,
    spread: 2,
};

/// The `--quick` stream, also part of the full matrix under the same name
/// so the committed baseline contains cells CI can `--check` against.
const GATEWAY_MINI: GatewayWorkload = GatewayWorkload {
    name: "gateway-mini",
    jobs: 768,
    job_size: 16,
    burst: 8,
    spread: 2,
};

/// One wire-path shape to measure the stream through.
struct GatewayCell {
    workload: &'static GatewayWorkload,
    /// Concurrent clients, each replaying a contiguous slice of the jobs.
    clients: usize,
    /// Jobs per submit frame.
    batch: usize,
    /// Wire codec for the hot messages.
    codec: WireCodec,
    /// Ack window: submit frames in flight before the client must see an
    /// ack (1 = legacy stop-and-wait, one round-trip per frame).
    window: usize,
}

impl GatewayCell {
    const fn new(workload: &'static GatewayWorkload) -> Self {
        GatewayCell {
            workload,
            clients: 4,
            batch: 32,
            codec: WireCodec::Json,
            window: 1,
        }
    }

    /// The cell's identity string: wire shape baked into the workload name
    /// so the shared `(workload, scheduler, m, total_subjobs)` cell key
    /// distinguishes gateway configurations.
    fn name(&self) -> String {
        format!(
            "{}+c{}+b{}+{}+w{}",
            self.workload.name,
            self.clients,
            self.batch,
            self.codec.name(),
            self.window
        )
    }
}

/// Processors per shard in every gateway cell (matches the serve matrix).
const GATEWAY_M: usize = 8;

/// Shards behind the gateway in every cell.
const GATEWAY_SHARDS: usize = 4;

/// The pipelined ack window used by the optimized cells.
const PIPE_WINDOW: usize = 32;

/// The full sweep: the headline codec×window square on the 4-client
/// stream, a client-count sweep and a batch sweep on the optimized shape,
/// plus the mini cells CI compares.
fn full_cells() -> Vec<GatewayCell> {
    let mut cells = Vec::new();
    // Codec × window on the headline 4-client replay: `json+w1` is the
    // legacy wire shape, `bin+w32` the optimized one.
    for codec in [WireCodec::Json, WireCodec::Binary] {
        for window in [1usize, PIPE_WINDOW] {
            cells.push(GatewayCell { codec, window, ..GatewayCell::new(&GATEWAY_REPLAY) });
        }
    }
    // Client fan-in at the optimized shape.
    for clients in [1usize, 2, 8] {
        cells.push(GatewayCell {
            clients,
            codec: WireCodec::Binary,
            window: PIPE_WINDOW,
            ..GatewayCell::new(&GATEWAY_REPLAY)
        });
    }
    // Batch-size sweep at the optimized shape.
    for batch in [1usize, 8] {
        cells.push(GatewayCell {
            batch,
            codec: WireCodec::Binary,
            window: PIPE_WINDOW,
            ..GatewayCell::new(&GATEWAY_REPLAY)
        });
    }
    // Mini twins of the two headline shapes, for the CI `--quick --check`.
    cells.push(GatewayCell::new(&GATEWAY_MINI));
    cells.push(GatewayCell {
        codec: WireCodec::Binary,
        window: PIPE_WINDOW,
        ..GatewayCell::new(&GATEWAY_MINI)
    });
    cells
}

/// The `--quick` subset (CI smoke): the two mini twins — legacy JSON
/// stop-and-wait and pipelined binary — both present in the full matrix so
/// the committed baseline always has the cells CI `--check`s against.
fn quick_cells() -> Vec<GatewayCell> {
    vec![
        GatewayCell::new(&GATEWAY_MINI),
        GatewayCell {
            codec: WireCodec::Binary,
            window: PIPE_WINDOW,
            ..GatewayCell::new(&GATEWAY_MINI)
        },
    ]
}

/// The fixed-seed replay stream for `w` (same generator as the serve
/// matrix, so wire and in-process numbers describe the same jobs).
fn replay_instance(w: &GatewayWorkload) -> Instance {
    let mut rng = flowtree_workloads::rng(SEED);
    let jobs = (0..w.jobs)
        .map(|i| JobSpec {
            graph: flowtree_workloads::trees::random_recursive_tree(w.job_size, &mut rng),
            release: (i / w.burst) as u64 * w.spread,
        })
        .collect();
    Instance::new(jobs)
}

fn pool_config() -> Result<ServeConfig, String> {
    let spec = SchedulerSpec::from_name_with_half("fifo", 8).map_err(|e| e.to_string())?;
    ServeConfig::builder(spec, GATEWAY_M)
        .shards(GATEWAY_SHARDS)
        .scenario("bench-gateway")
        .queue_cap(1024)
        .policy(OverloadPolicy::Block)
        .routing(Routing::Hash)
        .max_horizon(1_000_000_000)
        .build()
        .map_err(|e| e.to_string())
}

/// One end-to-end run: launch pool + gateway, connect the clients (all
/// outside the clock), stream every slice concurrently, then drain.
/// Returns (submit-phase seconds, ingest→drain seconds, subjobs
/// dispatched).
fn timed_gateway(inst: &Instance, cell: &GatewayCell) -> Result<(f64, f64, u64), String> {
    let pool = ShardPool::launch(pool_config()?).map_err(|e| e.to_string())?;
    let gw = Gateway::launch("127.0.0.1:0", pool.handle(), GatewayConfig::default())
        .map_err(|e| format!("{}: gateway: {e}", cell.name()))?;
    let addr = gw.addr().to_string();

    // Contiguous slices: client c streams jobs [c*per, (c+1)*per) so the
    // union is exactly the replay and every job is offered once.
    let jobs = inst.jobs();
    let per = jobs.len().div_ceil(cell.clients);
    let opts = ClientOptions { codec: cell.codec, window: cell.window as u64 };
    // Connect + handshake outside the clock, like pool launch in the serve
    // matrix: the cell measures the streaming path, not dial latency.
    let mut clients: Vec<(GatewayClient, &[JobSpec])> = Vec::with_capacity(cell.clients);
    for (c, chunk) in jobs.chunks(per).enumerate() {
        let client = GatewayClient::connect_with(&addr, &format!("bench-{c}"), opts)
            .map_err(|e| format!("{}: connect: {e}", cell.name()))?;
        clients.push((client, chunk));
    }

    let start = Instant::now();
    let outcomes = std::thread::scope(|s| {
        let handles: Vec<_> = clients
            .iter_mut()
            .map(|(client, chunk)| {
                let batch = cell.batch;
                s.spawn(move || client.submit_all(chunk, batch))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect::<Vec<_>>()
    });
    let submit_secs = start.elapsed().as_secs_f64();
    let mut submitted = 0u64;
    for outcome in outcomes {
        let stats = outcome.map_err(|e| format!("{}: submit: {e}", cell.name()))?;
        submitted += stats.submitted;
    }
    if submitted != jobs.len() as u64 {
        return Err(format!("{}: submitted {submitted} of {} jobs", cell.name(), jobs.len()));
    }
    gw.shutdown();
    let results = pool.drain().map_err(|e| e.to_string())?;
    let total_secs = start.elapsed().as_secs_f64();
    let dispatched: u64 = results.iter().map(|r| r.report.counters.dispatched).sum();
    std::hint::black_box(&results);
    Ok((submit_secs, total_secs, dispatched))
}

/// Run the whole gateway matrix; returns the JSON document.
pub fn run_gateway_matrix(o: &BenchOpts) -> Result<Value, String> {
    let cells = if o.quick { quick_cells() } else { full_cells() };
    let mut entries: Vec<Value> = Vec::new();

    for cell in &cells {
        let inst = replay_instance(cell.workload);
        let total_work = inst.total_work();
        let arrivals = cell.workload.jobs as u64;
        // Correctness outside the timed region: the block policy loses
        // nothing, so every subjob of the replay must dispatch.
        let (_, _, dispatched) = timed_gateway(&inst, cell)?;
        if dispatched != total_work {
            return Err(format!("{}: gateway run lost work", cell.name()));
        }
        for _ in 0..o.warmup {
            timed_gateway(&inst, cell)?;
        }
        let mut submit_walls = Vec::with_capacity(o.reps);
        let mut total_walls = Vec::with_capacity(o.reps);
        let mut dispatched = 0;
        for _ in 0..o.reps {
            let (submit_secs, total_secs, d) = timed_gateway(&inst, cell)?;
            submit_walls.push(submit_secs);
            total_walls.push(total_secs);
            dispatched = d;
        }
        let best_submit = submit_walls.iter().copied().fold(f64::INFINITY, f64::min);
        let best_total = total_walls.iter().copied().fold(f64::INFINITY, f64::min);
        let submitted_jobs_per_sec = arrivals as f64 / best_submit;
        let subjobs_per_sec = dispatched as f64 / best_total;
        let name = cell.name();
        println!(
            "{:<34} fifo   m={:<3} {:>10.0} submitted-jobs/s {:>12.0} subjobs/s  (best of {}: {:.3} ms submit)",
            name,
            GATEWAY_M,
            submitted_jobs_per_sec,
            subjobs_per_sec,
            o.reps,
            best_submit * 1e3
        );
        entries.push(Value::Object(vec![
            ("workload".into(), Value::Str(name)),
            ("scheduler".into(), Value::Str("fifo".into())),
            ("m".into(), Value::UInt(GATEWAY_M as u64)),
            ("total_subjobs".into(), Value::UInt(total_work)),
            ("shards".into(), Value::UInt(GATEWAY_SHARDS as u64)),
            ("clients".into(), Value::UInt(cell.clients as u64)),
            ("batch".into(), Value::UInt(cell.batch as u64)),
            ("codec".into(), Value::Str(cell.codec.name().into())),
            ("window".into(), Value::UInt(cell.window as u64)),
            ("arrivals".into(), Value::UInt(arrivals)),
            ("repeats".into(), Value::UInt(o.reps as u64)),
            (
                "submit_wall_secs".into(),
                Value::Array(submit_walls.iter().map(|&s| Value::Float(s)).collect()),
            ),
            (
                "wall_secs".into(),
                Value::Array(total_walls.iter().map(|&s| Value::Float(s)).collect()),
            ),
            ("best_submit_secs".into(), Value::Float(best_submit)),
            ("best_secs".into(), Value::Float(best_total)),
            ("submitted_jobs_per_sec".into(), Value::Float(submitted_jobs_per_sec)),
            ("subjobs_per_sec".into(), Value::Float(subjobs_per_sec)),
        ]));
    }

    Ok(document(o.quick, entries))
}
