//! The batch-engine throughput matrix (`BENCH_engine.json`).
//!
//! Runs the simulation engine over fixed workloads (the dense 64-job ×
//! 256-subjob stream every experiment's cost is dominated by, plus a
//! sparse-arrival stream that exercises the idle-gap fast path) for a
//! matrix of schedulers × machine sizes, with warmup and repeat logic.
//! Each entry records every wall time observed; `subjobs_per_sec` uses the
//! *best* repeat (least interference).

use crate::{document, BenchOpts, SEED};
use flowtree_core::SchedulerSpec;
use flowtree_sim::{Engine, Instance, JobSpec};
use serde::Value;
use std::time::Instant;

/// One benchmark workload: a named instance generator.
struct Workload {
    name: &'static str,
    /// Number of jobs in the stream.
    jobs: usize,
    /// Subjobs per job (random recursive out-trees of this size).
    job_size: usize,
    /// Release spacing between consecutive jobs.
    spread: u64,
    /// Schedulers to run on this workload (registry names).
    schedulers: &'static [&'static str],
    /// Machine sizes.
    ms: &'static [usize],
}

/// The `--quick` workloads, also part of the full matrix under the same
/// names — so a committed full-run baseline contains cells a quick CI run
/// can compare against with `--check`. Sized so every cell runs for about a
/// millisecond: much smaller and a best-of-N wall time is dominated by
/// scheduler/OS noise, making the `--check` gate flaky.
const MINI_STREAM: Workload = Workload {
    name: "stream-mini",
    jobs: 96,
    job_size: 128,
    spread: 4,
    schedulers: &["fifo", "lpf"],
    ms: &[8, 64],
};

/// Sparse counterpart of [`MINI_STREAM`] (exercises the idle-gap fast path).
const MINI_SPARSE: Workload = Workload {
    name: "sparse-mini",
    jobs: 96,
    job_size: 128,
    spread: 1024,
    schedulers: &["fifo"],
    ms: &[8],
};

/// The full benchmark matrix. `stream` is the dense arrival stream used by
/// the acceptance measurement (64 × 256 at m = 256) and covers the whole
/// headline scheduler set — the greedy family plus the paper's §5.3
/// Algorithm 𝒜 and §5.4 guess-double, so their cost is tracked too; `sparse`
/// spaces releases far apart so most simulated steps are idle gaps; the mini
/// workloads are the `--quick` cells, included so the committed baseline
/// covers them.
const FULL: &[Workload] = &[
    Workload {
        name: "stream",
        jobs: 64,
        job_size: 256,
        spread: 8,
        schedulers: &["fifo", "fifo-last", "lpf", "lrwf", "algo-a", "guess-double"],
        ms: &[8, 64, 256],
    },
    Workload {
        name: "sparse",
        jobs: 64,
        job_size: 256,
        spread: 2048,
        schedulers: &["fifo"],
        ms: &[8, 256],
    },
    MINI_STREAM,
    MINI_SPARSE,
];

/// Reduced matrix for `--quick` (CI smoke): completes in well under a
/// second while still touching both workload shapes.
const QUICK: &[Workload] = &[MINI_STREAM, MINI_SPARSE];

fn stream_instance(w: &Workload) -> Instance {
    let mut rng = flowtree_workloads::rng(SEED);
    let jobs = (0..w.jobs)
        .map(|i| JobSpec {
            graph: flowtree_workloads::trees::random_recursive_tree(w.job_size, &mut rng),
            release: (i as u64) * w.spread,
        })
        .collect();
    Instance::new(jobs)
}

/// Time one engine run (fresh scheduler per run, as schedulers are
/// stateful). Returns wall seconds; the run is verified once outside the
/// timed region by the caller.
fn timed_run(inst: &Instance, m: usize, spec: SchedulerSpec) -> Result<f64, String> {
    let mut sched = spec.build();
    let start = Instant::now();
    let report = Engine::new(m)
        .with_max_horizon(1_000_000_000)
        .run(inst, sched.as_mut())
        .map_err(|e| format!("{} on m={m}: {e}", spec.name()))?;
    let secs = start.elapsed().as_secs_f64();
    std::hint::black_box(report.schedule.horizon());
    Ok(secs)
}

/// Run the whole engine matrix; returns the JSON document.
pub fn run_engine_matrix(o: &BenchOpts) -> Result<Value, String> {
    let workloads = if o.quick { QUICK } else { FULL };
    let mut entries: Vec<Value> = Vec::new();

    for w in workloads {
        let inst = stream_instance(w);
        let total_work = inst.total_work();
        for &name in w.schedulers {
            let spec = SchedulerSpec::from_name_with_half(name, 8)?;
            for &m in w.ms {
                // Correctness outside the timed region: one verified run.
                {
                    let mut sched = spec.build();
                    let report = Engine::new(m)
                        .with_max_horizon(1_000_000_000)
                        .run(&inst, sched.as_mut())
                        .map_err(|e| format!("{name} on m={m}: {e}"))?;
                    report.verify(&inst).map_err(|e| format!("{name} on m={m}: {e}"))?;
                }
                for _ in 0..o.warmup {
                    timed_run(&inst, m, spec)?;
                }
                let mut walls = Vec::with_capacity(o.reps);
                for _ in 0..o.reps {
                    walls.push(timed_run(&inst, m, spec)?);
                }
                let best = walls.iter().copied().fold(f64::INFINITY, f64::min);
                let subjobs_per_sec = total_work as f64 / best;
                println!(
                    "{:<8} {:<12} m={:<4} {:>12.0} subjobs/s  (best of {} reps: {:.3} ms)",
                    w.name,
                    name,
                    m,
                    subjobs_per_sec,
                    o.reps,
                    best * 1e3
                );
                entries.push(Value::Object(vec![
                    ("workload".into(), Value::Str(w.name.into())),
                    ("scheduler".into(), Value::Str(name.into())),
                    ("m".into(), Value::UInt(m as u64)),
                    ("total_subjobs".into(), Value::UInt(total_work)),
                    ("repeats".into(), Value::UInt(o.reps as u64)),
                    (
                        "wall_secs".into(),
                        Value::Array(walls.iter().map(|&s| Value::Float(s)).collect()),
                    ),
                    ("best_secs".into(), Value::Float(best)),
                    ("subjobs_per_sec".into(), Value::Float(subjobs_per_sec)),
                ]));
            }
        }
    }

    Ok(document(o.quick, entries))
}
