//! The serve-path throughput matrix (`BENCH_serve.json`).
//!
//! Every cell replays the same fixed-seed bursty arrival stream through a
//! real [`ShardPool`] — ingest through drain under the clock, launch
//! outside it — and reports
//! **arrivals/sec** (offered jobs over wall time, the ingest-path headline)
//! plus **subjobs/sec** (dispatched work over wall time, the number the
//! regression gate compares, consistent with the engine matrix). The sweep
//! covers shard counts × routing × overload policy × stealing, plus one
//! `per-event` cell that drives [`PoolHandle::offer`] one arrival at a time
//! so the unbatched ingest path stays perf-tracked next to the batched
//! [`run_source`](flowtree_serve::ShardPool::run_source) default.
//!
//! Jobs are deliberately small (16-subjob trees in bursts of 8): in this
//! regime ingest overhead — channel ops, watermark fan-out, router locking —
//! dominates simulation, which is exactly what the serve-path optimizations
//! target.

use crate::{document, BenchOpts, SEED};
use flowtree_core::SchedulerSpec;
use flowtree_serve::{
    scrape_metrics, serve_metrics, ArrivalSource, OverloadPolicy, ReplaySource, Routing,
    ServeConfig, ShardPool, StealConfig,
};
use flowtree_sim::{Instance, JobSpec};
use serde::Value;
use std::time::Instant;

/// A named bursty replay stream.
struct ServeWorkload {
    name: &'static str,
    /// Number of jobs (arrivals) in the stream.
    jobs: usize,
    /// Subjobs per job (random recursive out-trees of this size).
    job_size: usize,
    /// Jobs sharing one release tick.
    burst: usize,
    /// Release spacing between consecutive ticks.
    spread: u64,
}

/// The acceptance-measurement stream: 3072 small jobs arriving 8 per tick.
const SERVE_REPLAY: ServeWorkload = ServeWorkload {
    name: "serve-replay",
    jobs: 3072,
    job_size: 16,
    burst: 8,
    spread: 2,
};

/// The `--quick` stream, also part of the full matrix under the same name
/// so the committed baseline contains cells CI can `--check` against.
const SERVE_MINI: ServeWorkload = ServeWorkload {
    name: "serve-mini",
    jobs: 768,
    job_size: 16,
    burst: 8,
    spread: 2,
};

/// One pool shape to measure the stream through.
struct ServeCell {
    workload: &'static ServeWorkload,
    scheduler: &'static str,
    shards: usize,
    routing: Routing,
    policy: OverloadPolicy,
    /// Steal mode runs with a small queue so staging actually happens.
    steal: bool,
    /// Drive `offer()` per arrival instead of the batched source pump.
    per_event: bool,
    /// Serve the metrics endpoint for the whole timed region and take a
    /// real mid-run TCP scrape (the registry itself is always on; this
    /// measures the *exposition* overhead the ≤5% gate pins).
    telemetry: bool,
}

impl ServeCell {
    const fn new(workload: &'static ServeWorkload, shards: usize) -> Self {
        ServeCell {
            workload,
            scheduler: "fifo",
            shards,
            routing: Routing::Hash,
            policy: OverloadPolicy::Block,
            steal: false,
            per_event: false,
            telemetry: false,
        }
    }

    /// The cell's identity string: pool shape baked into the workload name
    /// so the shared `(workload, scheduler, m, total_subjobs)` cell key
    /// distinguishes serve configurations.
    fn name(&self) -> String {
        let mut name = format!(
            "{}+s{}+{}+{}",
            self.workload.name,
            self.shards,
            self.routing.name(),
            self.policy.name()
        );
        if self.steal {
            name.push_str("+steal");
        }
        if self.per_event {
            name.push_str("+per-event");
        }
        if self.telemetry {
            name.push_str("+telemetry");
        }
        name
    }
}

/// Processors per shard in every serve cell.
const SERVE_M: usize = 8;

/// The full sweep: shards × routing on the headline stream, plus overload
/// policies, stealing, a second scheduler, the per-event ingest mode, and
/// the mini cells CI compares.
fn full_cells() -> Vec<ServeCell> {
    let mut cells = Vec::new();
    for shards in [1usize, 2, 4] {
        for routing in [Routing::Hash, Routing::LeastLoaded] {
            cells.push(ServeCell { routing, ..ServeCell::new(&SERVE_REPLAY, shards) });
        }
    }
    for policy in [OverloadPolicy::DropNewest, OverloadPolicy::Redirect] {
        cells.push(ServeCell { policy, ..ServeCell::new(&SERVE_REPLAY, 2) });
    }
    cells.push(ServeCell { steal: true, ..ServeCell::new(&SERVE_REPLAY, 4) });
    cells.push(ServeCell { scheduler: "lpf", ..ServeCell::new(&SERVE_REPLAY, 4) });
    cells.push(ServeCell { per_event: true, ..ServeCell::new(&SERVE_REPLAY, 4) });
    cells.push(ServeCell { telemetry: true, ..ServeCell::new(&SERVE_REPLAY, 4) });
    cells.push(ServeCell::new(&SERVE_MINI, 1));
    cells.push(ServeCell::new(&SERVE_MINI, 4));
    cells
}

/// The `--quick` subset (CI smoke): mini stream on 1 and 4 shards, plus
/// the telemetry overhead-gate twins. The twins ride the bigger replay
/// stream even in `--quick`: on a millisecond-scale mini run a single
/// scrape render is a double-digit fraction of the whole run, so a mini
/// gate would measure clock granularity, not exposition overhead. Every
/// quick cell also appears in the full matrix, so the committed baseline
/// always has the cells CI `--check`s against.
fn quick_cells() -> Vec<ServeCell> {
    vec![
        ServeCell::new(&SERVE_MINI, 1),
        ServeCell::new(&SERVE_MINI, 4),
        ServeCell::new(&SERVE_REPLAY, 4),
        ServeCell { telemetry: true, ..ServeCell::new(&SERVE_REPLAY, 4) },
    ]
}

/// The fixed-seed replay stream for `w`.
fn replay_instance(w: &ServeWorkload) -> Instance {
    let mut rng = flowtree_workloads::rng(SEED);
    let jobs = (0..w.jobs)
        .map(|i| JobSpec {
            graph: flowtree_workloads::trees::random_recursive_tree(w.job_size, &mut rng),
            release: (i / w.burst) as u64 * w.spread,
        })
        .collect();
    Instance::new(jobs)
}

fn cell_config(cell: &ServeCell) -> Result<ServeConfig, String> {
    let spec = SchedulerSpec::from_name_with_half(cell.scheduler, 8)?;
    let mut builder = ServeConfig::builder(spec, SERVE_M)
        .shards(cell.shards)
        .scenario("bench")
        .queue_cap(if cell.steal { 8 } else { 1024 })
        .policy(cell.policy)
        .routing(cell.routing)
        .max_horizon(1_000_000_000);
    if cell.steal {
        builder = builder.steal(StealConfig::default());
    }
    builder.build().map_err(|e| e.to_string())
}

/// One end-to-end run: launch, ingest the whole replay, drain. Returns
/// (wall seconds, subjobs dispatched). Untimed callers use the dispatch
/// count for accounting checks.
///
/// The timed region covers ingest through drain; pool launch and, for
/// telemetry cells, endpoint startup stay outside the clock so the ≤5%
/// telemetry gate pins steady-state exposition cost, not one-time socket
/// and thread setup (which would swamp a millisecond run). Telemetry
/// cells keep the endpoint live for the whole timed region and take one
/// real TCP scrape *mid-run* — after ingest, while the shards are still
/// working through their queues — from the driver thread. Deliberately no
/// scraper thread: the listener parks in `accept` and the driver blocks
/// in `scrape_metrics`, so nothing wakes on a timer; on a single-core
/// host a 1 ms sleep-scrape loop measures hrtimer preemption of the
/// pool's threads (~12% here), not the exposition path.
fn timed_serve(inst: &Instance, cell: &ServeCell) -> Result<(f64, u64), String> {
    let cfg = cell_config(cell)?;
    let mut src = ReplaySource::from_instance(inst);
    let pool = ShardPool::launch(cfg).map_err(|e| e.to_string())?;
    let endpoint = if cell.telemetry {
        let server = serve_metrics("127.0.0.1:0", pool.handle()).map_err(|e| e.to_string())?;
        let addr = server.addr().to_string();
        // Barrier scrape: proves the listener thread is scheduled and
        // serving before the clock starts.
        scrape_metrics(&addr).map_err(|e| format!("{}: barrier scrape: {e}", cell.name()))?;
        Some((server, addr))
    } else {
        None
    };
    let start = Instant::now();
    if cell.per_event {
        while let Some(spec) = src.next_arrival() {
            pool.offer(spec).map_err(|e| e.to_string())?;
        }
    } else {
        pool.run_source(&mut src).map_err(|e| e.to_string())?;
    }
    if let Some((_, addr)) = &endpoint {
        // The mid-run scrape: ingest is done but the pool has not been
        // asked to drain — shards are still simulating queued work.
        let body =
            scrape_metrics(addr).map_err(|e| format!("{}: mid-run scrape: {e}", cell.name()))?;
        if !body.contains("flowtree_ingest_offered_total") {
            return Err(format!("{}: mid-run scrape returned no metrics", cell.name()));
        }
        std::hint::black_box(&body);
    }
    let results = pool.drain().map_err(|e| e.to_string())?;
    let secs = start.elapsed().as_secs_f64();
    drop(endpoint);
    let dispatched: u64 = results.iter().map(|r| r.report.counters.dispatched).sum();
    std::hint::black_box(&results);
    Ok((secs, dispatched))
}

/// Run the whole serve matrix; returns the JSON document.
pub fn run_serve_matrix(o: &BenchOpts) -> Result<Value, String> {
    let cells = if o.quick { quick_cells() } else { full_cells() };
    let mut entries: Vec<Value> = Vec::new();

    for cell in &cells {
        let inst = replay_instance(cell.workload);
        let total_work = inst.total_work();
        let arrivals = cell.workload.jobs as u64;
        // Correctness outside the timed region: every shard's report is
        // verified inside `drain`, and no-loss policies must dispatch every
        // subjob of the replay.
        let (_, dispatched) = timed_serve(&inst, cell)?;
        if cell.policy != OverloadPolicy::DropNewest {
            assert_eq!(dispatched, total_work, "{}: serve run lost work", cell.name());
        }
        for _ in 0..o.warmup {
            timed_serve(&inst, cell)?;
        }
        let mut walls = Vec::with_capacity(o.reps);
        let mut dispatched = 0;
        for _ in 0..o.reps {
            let (secs, d) = timed_serve(&inst, cell)?;
            walls.push(secs);
            dispatched = d;
        }
        let best = walls.iter().copied().fold(f64::INFINITY, f64::min);
        let arrivals_per_sec = arrivals as f64 / best;
        let subjobs_per_sec = dispatched as f64 / best;
        let name = cell.name();
        println!(
            "{:<38} {:<6} m={:<3} {:>10.0} arrivals/s {:>12.0} subjobs/s  (best of {}: {:.3} ms)",
            name,
            cell.scheduler,
            SERVE_M,
            arrivals_per_sec,
            subjobs_per_sec,
            o.reps,
            best * 1e3
        );
        entries.push(Value::Object(vec![
            ("workload".into(), Value::Str(name)),
            ("scheduler".into(), Value::Str(cell.scheduler.into())),
            ("m".into(), Value::UInt(SERVE_M as u64)),
            ("total_subjobs".into(), Value::UInt(total_work)),
            ("shards".into(), Value::UInt(cell.shards as u64)),
            ("routing".into(), Value::Str(cell.routing.name().into())),
            ("policy".into(), Value::Str(cell.policy.name().into())),
            ("steal".into(), Value::Bool(cell.steal)),
            ("per_event".into(), Value::Bool(cell.per_event)),
            ("telemetry".into(), Value::Bool(cell.telemetry)),
            ("arrivals".into(), Value::UInt(arrivals)),
            ("repeats".into(), Value::UInt(o.reps as u64)),
            (
                "wall_secs".into(),
                Value::Array(walls.iter().map(|&s| Value::Float(s)).collect()),
            ),
            ("best_secs".into(), Value::Float(best)),
            ("arrivals_per_sec".into(), Value::Float(arrivals_per_sec)),
            ("subjobs_per_sec".into(), Value::Float(subjobs_per_sec)),
        ]));
    }

    Ok(document(o.quick, entries))
}
