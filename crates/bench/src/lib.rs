//! # flowtree-bench — the committed-throughput benchmark harness
//!
//! Two baselines guard this workspace's performance, both produced here and
//! both committed at the repo root so successive PRs can diff them:
//!
//! * **`BENCH_engine.json`** — batch [`Engine`](flowtree_sim::Engine)
//!   throughput (subjobs/sec per workload × scheduler × m), produced by
//!   [`run_engine_matrix`].
//! * **`BENCH_serve.json`** — end-to-end serve-path throughput
//!   (arrivals/sec and subjobs/sec through a real
//!   [`ShardPool`](flowtree_serve::ShardPool), fixed-seed replay, sweeping
//!   shards × routing × policy), produced by [`run_serve_matrix`].
//! * **`BENCH_gateway.json`** — networked ingest throughput
//!   (submitted-jobs/sec through a loopback
//!   [`Gateway`](flowtree_gateway::Gateway), sweeping clients × batch ×
//!   codec × ack window), produced by [`run_gateway_matrix`].
//!
//! The CLI's `bench` subcommand is a thin argument parser over this crate;
//! `scripts/bench.sh` regenerates the baselines and `scripts/ci.sh` runs
//! the `--quick` subset under the [`check_regressions`] gate. The criterion
//! benches under `benches/` reuse the same workload shapes for profiling.
//!
//! All documents share the `flowtree-bench-v1` schema: a cell is
//! identified by `(workload, scheduler, m, total_subjobs)` — serve cells
//! encode their pool shape (`shards`/`routing`/`policy`/ingest mode) into
//! the workload name so the same gate logic compares them.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine_bench;
mod gateway_bench;
mod serve_bench;

pub use engine_bench::run_engine_matrix;
pub use gateway_bench::run_gateway_matrix;
pub use serve_bench::run_serve_matrix;

use serde::Value;

/// Knobs shared by both matrices (parsed by the CLI).
#[derive(Debug, Clone)]
pub struct BenchOpts {
    /// Run only the mini workloads (CI smoke).
    pub quick: bool,
    /// Timed repeats per cell; the *best* wall time wins (least
    /// interference).
    pub reps: usize,
    /// Untimed warmup runs per cell.
    pub warmup: usize,
}

/// Seed for every benchmark workload generator — fixed so trajectories
/// compare the same instances across PRs (matches the criterion bench's
/// stream).
pub const SEED: u64 = 11;

/// Best-effort short git revision for provenance (benches run from a
/// checkout; "unknown" outside one).
pub fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|out| out.status.success())
        .and_then(|out| String::from_utf8(out.stdout).ok())
        .map(|s| s.trim().to_string())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Wrap matrix entries into a `flowtree-bench-v1` document.
pub(crate) fn document(quick: bool, entries: Vec<Value>) -> Value {
    Value::Object(vec![
        ("schema".into(), Value::Str("flowtree-bench-v1".into())),
        ("git_rev".into(), Value::Str(git_rev())),
        ("quick".into(), Value::Bool(quick)),
        ("workload_seed".into(), Value::UInt(SEED)),
        ("entries".into(), Value::Array(entries)),
    ])
}

/// Identity of one bench cell — entries are comparable across runs iff all
/// four fields match (same instances via the fixed seed).
pub fn cell_key(e: &Value) -> Option<(String, String, u64, u64)> {
    Some((
        e.get("workload")?.as_str()?.to_string(),
        e.get("scheduler")?.as_str()?.to_string(),
        e.get("m")?.as_u64()?,
        e.get("total_subjobs")?.as_u64()?,
    ))
}

/// Regression tolerance: a cell fails when its throughput drops below this
/// fraction of the baseline's.
pub const CHECK_FLOOR: f64 = 0.75;

/// A parsed baseline: comparable cell identities with their throughputs.
pub type Baseline = Vec<((String, String, u64, u64), f64)>;

/// Load and validate the baseline trajectory at `path`. Failures here are
/// configuration errors, not measurement noise — the caller fails fast
/// instead of re-measuring.
pub fn load_baseline(path: &str) -> Result<Baseline, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read baseline {path}: {e}"))?;
    let base: Value = serde_json::from_str(&text).map_err(|e| format!("baseline {path}: {e}"))?;
    if base.get("schema").and_then(Value::as_str) != Some("flowtree-bench-v1") {
        return Err(format!("baseline {path}: not a flowtree-bench-v1 document"));
    }
    let base_entries = base
        .get("entries")
        .and_then(Value::as_array)
        .ok_or_else(|| format!("baseline {path}: missing entries array"))?;
    Ok(base_entries
        .iter()
        .filter_map(|e| Some((cell_key(e)?, e.get("subjobs_per_sec")?.as_f64()?)))
        .collect())
}

/// Compare `doc` against a loaded baseline; error (nonzero exit) when any
/// comparable cell's `subjobs_per_sec` regressed by more than 25%, or when
/// no cell is comparable at all.
pub fn check_regressions(doc: &Value, baseline: &Baseline, path: &str) -> Result<(), String> {
    let mut compared = 0usize;
    let mut regressions: Vec<String> = Vec::new();
    for e in doc.get("entries").and_then(Value::as_array).into_iter().flatten() {
        let (Some(key), Some(cur)) =
            (cell_key(e), e.get("subjobs_per_sec").and_then(Value::as_f64))
        else {
            continue;
        };
        let Some(&(_, base_rate)) = baseline.iter().find(|(k, _)| *k == key) else {
            continue;
        };
        compared += 1;
        if cur < CHECK_FLOOR * base_rate {
            regressions.push(format!(
                "  {}/{} m={}: {:.0} subjobs/s vs baseline {:.0} ({:.0}%)",
                key.0,
                key.1,
                key.2,
                cur,
                base_rate,
                100.0 * cur / base_rate
            ));
        }
    }
    if compared == 0 {
        return Err(format!(
            "bench check: no cell in this run matches the baseline {path} \
             (workload/scheduler/m/total_subjobs all must agree)"
        ));
    }
    if !regressions.is_empty() {
        return Err(format!(
            "bench check FAILED: {} of {compared} cells regressed >{:.0}% vs {path}:\n{}",
            regressions.len(),
            100.0 * (1.0 - CHECK_FLOOR),
            regressions.join("\n")
        ));
    }
    println!(
        "bench check: {compared} cells within {:.0}% of {path}",
        100.0 * (1.0 - CHECK_FLOOR)
    );
    Ok(())
}

/// Telemetry exposition overhead ceiling: a `+telemetry` serve cell fails
/// the gate when its throughput falls more than this fraction below its
/// matching plain cell *in the same run* (within-run comparison — machine
/// speed cancels out).
pub const TELEMETRY_OVERHEAD_CEILING: f64 = 0.05;

/// Gate every `+telemetry` serve cell against its plain twin from the same
/// document. Errors when a twin is missing or when scraping cost more than
/// [`TELEMETRY_OVERHEAD_CEILING`]; prints the measured overhead otherwise.
pub fn check_telemetry_overhead(doc: &Value) -> Result<(), String> {
    let entries: Vec<&Value> =
        doc.get("entries").and_then(Value::as_array).into_iter().flatten().collect();
    let rate = |e: &Value| e.get("subjobs_per_sec").and_then(Value::as_f64);
    let mut failures = Vec::new();
    let mut compared = 0usize;
    for e in &entries {
        let Some((name, scheduler, m, work)) = cell_key(e) else {
            continue;
        };
        let Some(plain_name) = name.strip_suffix("+telemetry") else {
            continue;
        };
        let twin = entries.iter().find(|t| {
            cell_key(t).as_ref() == Some(&(plain_name.to_string(), scheduler.clone(), m, work))
        });
        let (Some(tel_rate), Some(plain_rate)) = (rate(e), twin.and_then(|t| rate(t))) else {
            failures.push(format!("  {name}: no comparable plain cell in this run"));
            continue;
        };
        compared += 1;
        let overhead = 1.0 - tel_rate / plain_rate;
        if overhead > TELEMETRY_OVERHEAD_CEILING {
            failures.push(format!(
                "  {name}: {tel_rate:.0} vs {plain_rate:.0} subjobs/s \
                 ({:.1}% overhead > {:.0}% ceiling)",
                100.0 * overhead,
                100.0 * TELEMETRY_OVERHEAD_CEILING
            ));
        } else {
            println!(
                "telemetry overhead gate: {name} {:.1}% (ceiling {:.0}%)",
                100.0 * overhead.max(0.0),
                100.0 * TELEMETRY_OVERHEAD_CEILING
            );
        }
    }
    if !failures.is_empty() {
        return Err(format!("telemetry overhead gate FAILED:\n{}", failures.join("\n")));
    }
    if compared == 0 {
        return Err("telemetry overhead gate: no +telemetry cell in this run".to_string());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_opts() -> BenchOpts {
        BenchOpts { quick: true, reps: 1, warmup: 0 }
    }

    #[test]
    fn quick_engine_matrix_produces_valid_entries() {
        let doc = run_engine_matrix(&quick_opts()).unwrap();
        let entries = doc.get("entries").unwrap().as_array().unwrap();
        // 2 schedulers x 2 m's on stream + 1 x 1 on sparse.
        assert_eq!(entries.len(), 5);
        for e in entries {
            assert!(e.get("subjobs_per_sec").is_some());
            let walls = e.get("wall_secs").unwrap().as_array().unwrap();
            assert_eq!(walls.len(), 1);
        }
        // The whole document serializes and round-trips.
        let json = serde_json::to_string_pretty(&doc).unwrap();
        let back: Value = serde_json::from_str(&json).unwrap();
        assert_eq!(back.get("schema").unwrap().as_str(), Some("flowtree-bench-v1"));
    }

    #[test]
    fn quick_serve_matrix_produces_valid_entries() {
        let doc = run_serve_matrix(&quick_opts()).unwrap();
        let entries = doc.get("entries").unwrap().as_array().unwrap();
        assert!(!entries.is_empty());
        for e in entries {
            assert!(e.get("subjobs_per_sec").is_some());
            assert!(e.get("arrivals_per_sec").is_some());
            let name = e.get("workload").unwrap().as_str().unwrap();
            assert!(name.starts_with("serve-"), "{name}");
            assert!(e.get("shards").is_some());
            assert!(e.get("telemetry").is_some());
        }
        // The quick matrix carries a telemetry cell and its plain twin, so
        // the overhead gate is computable (though not asserted here — a
        // 1-rep debug-build run is far too noisy to pin 5% on).
        assert!(
            entries.iter().any(|e| e
                .get("workload")
                .unwrap()
                .as_str()
                .unwrap()
                .ends_with("+telemetry")),
            "quick matrix lost its +telemetry cell"
        );
        let json = serde_json::to_string_pretty(&doc).unwrap();
        let back: Value = serde_json::from_str(&json).unwrap();
        assert_eq!(back.get("schema").unwrap().as_str(), Some("flowtree-bench-v1"));
    }

    /// A two-entry serve document: a plain cell at `plain` subjobs/s and
    /// its `+telemetry` twin at `tel`.
    fn telemetry_doc(plain: f64, tel: f64) -> Value {
        let cell = |name: &str, rate: f64| {
            Value::Object(vec![
                ("workload".into(), Value::Str(name.into())),
                ("scheduler".into(), Value::Str("fifo".into())),
                ("m".into(), Value::UInt(8)),
                ("total_subjobs".into(), Value::UInt(4096)),
                ("subjobs_per_sec".into(), Value::Float(rate)),
            ])
        };
        Value::Object(vec![(
            "entries".into(),
            Value::Array(vec![
                cell("serve-mini+s4+hash+block", plain),
                cell("serve-mini+s4+hash+block+telemetry", tel),
            ]),
        )])
    }

    #[test]
    fn telemetry_gate_passes_under_the_ceiling_and_fails_over_it() {
        check_telemetry_overhead(&telemetry_doc(1000.0, 980.0)).unwrap();
        // Faster-than-plain (noise) is fine too.
        check_telemetry_overhead(&telemetry_doc(1000.0, 1010.0)).unwrap();
        let err = check_telemetry_overhead(&telemetry_doc(1000.0, 900.0)).unwrap_err();
        assert!(err.contains("overhead"), "{err}");

        // A telemetry cell without its twin is a configuration error…
        let mut orphan = telemetry_doc(1000.0, 980.0);
        if let Value::Object(fields) = &mut orphan {
            if let Some((_, Value::Array(entries))) =
                fields.iter_mut().find(|(k, _)| k == "entries")
            {
                entries.remove(0);
            }
        }
        assert!(check_telemetry_overhead(&orphan).unwrap_err().contains("no comparable"));
        // …and so is a document with no telemetry cell at all.
        let none = Value::Object(vec![("entries".into(), Value::Array(vec![]))]);
        assert!(check_telemetry_overhead(&none).unwrap_err().contains("no +telemetry"));
    }

    /// Build a one-entry bench document with the given throughput, shaped
    /// like matrix output.
    fn doc_with_rate(rate: f64) -> Value {
        Value::Object(vec![
            ("schema".into(), Value::Str("flowtree-bench-v1".into())),
            (
                "entries".into(),
                Value::Array(vec![Value::Object(vec![
                    ("workload".into(), Value::Str("stream-mini".into())),
                    ("scheduler".into(), Value::Str("fifo".into())),
                    ("m".into(), Value::UInt(8)),
                    ("total_subjobs".into(), Value::UInt(4096)),
                    ("subjobs_per_sec".into(), Value::Float(rate)),
                ])]),
            ),
        ])
    }

    #[test]
    fn check_passes_within_threshold_and_fails_past_it() {
        let dir = std::env::temp_dir();
        let path = dir.join("flowtree_bench_check_test.json");
        let path = path.to_str().unwrap();
        std::fs::write(path, serde_json::to_string(&doc_with_rate(1000.0)).unwrap()).unwrap();
        let baseline = load_baseline(path).unwrap();
        assert_eq!(baseline.len(), 1);

        // 80% of baseline: inside the 25% tolerance.
        check_regressions(&doc_with_rate(800.0), &baseline, path).unwrap();
        // 50% of baseline: a regression.
        let err = check_regressions(&doc_with_rate(500.0), &baseline, path).unwrap_err();
        assert!(err.contains("FAILED"), "{err}");
        assert!(err.contains("stream-mini"), "{err}");

        // A run with no comparable cells must also fail loudly.
        let mut other = doc_with_rate(1000.0);
        if let Value::Object(fields) = &mut other {
            fields.retain(|(k, _)| k.as_str() != "entries");
            fields.push(("entries".into(), Value::Array(vec![])));
        }
        assert!(check_regressions(&other, &baseline, path).unwrap_err().contains("no cell"));

        // An unreadable or schema-less baseline is a configuration error.
        assert!(load_baseline("/nonexistent/flowtree.json").is_err());

        std::fs::remove_file(path).ok();
    }
}
