//! Algorithm kernels: the building blocks of Algorithm 𝒜 and the bounds
//! machinery, benchmarked in isolation.
//!
//! * `lpf_levels` — the materialized LPF schedule (E2/E5/E6 kernel);
//! * `mc_replay` — the Most-Children replay over an LPF tail (E7 kernel);
//! * `depth_profile` — Corollary 5.4's closed form;
//! * `exact_opt` — the branch-and-bound solver on miniatures (E5 kernel).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use flowtree_core::lpf::lpf_levels;
use flowtree_core::McReplay;
use flowtree_dag::DepthProfile;
use flowtree_sim::Instance;
use std::hint::black_box;

fn bench_lpf(c: &mut Criterion) {
    let mut group = c.benchmark_group("lpf_levels");
    for &n in &[1_000usize, 10_000, 100_000] {
        let g =
            flowtree_workloads::trees::random_recursive_tree(n, &mut flowtree_workloads::rng(1));
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g| {
            b.iter(|| black_box(lpf_levels(black_box(g), 16)).len())
        });
    }
    group.finish();
}

fn bench_mc(c: &mut Criterion) {
    let g =
        flowtree_workloads::trees::random_recursive_tree(50_000, &mut flowtree_workloads::rng(2));
    let p = 16;
    let opt = DepthProfile::new(&g).opt_single_job(64);
    let levels = lpf_levels(&g, p);
    let tail: Vec<Vec<u32>> = levels[(opt as usize).min(levels.len())..].to_vec();
    let work: u64 = tail.iter().map(|l| l.len() as u64).sum();
    c.benchmark_group("mc_replay")
        .throughput(Throughput::Elements(work))
        .bench_function("sawtooth_grants", |b| {
            b.iter(|| {
                let mut mc = McReplay::new(&g, tail.clone());
                let mut step = 0usize;
                let mut total = 0usize;
                while !mc.is_done() {
                    step += 1;
                    total += mc.next(1 + step % p).len();
                }
                black_box(total)
            })
        });
}

fn bench_profile(c: &mut Criterion) {
    let g =
        flowtree_workloads::trees::random_recursive_tree(200_000, &mut flowtree_workloads::rng(3));
    c.benchmark_group("depth_profile")
        .throughput(Throughput::Elements(g.work()))
        .bench_function("corollary_5_4", |b| {
            b.iter(|| {
                let p = DepthProfile::new(black_box(&g));
                black_box(p.opt_single_job(64))
            })
        });
}

fn bench_exact(c: &mut Criterion) {
    let mut rng = flowtree_workloads::rng(4);
    let g = flowtree_workloads::trees::random_recursive_tree(14, &mut rng);
    let inst = Instance::single(g);
    c.bench_function("exact_opt_14_nodes_m3", |b| {
        b.iter(|| black_box(flowtree_opt::exact_max_flow(black_box(&inst), 3, 24)))
    });
}

criterion_group!(benches, bench_lpf, bench_mc, bench_profile, bench_exact);
criterion_main!(benches);
