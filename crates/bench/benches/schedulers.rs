//! Per-scheduler overhead: wall time to schedule the same mixed instance
//! end-to-end, per scheduler. FIFO's per-step cost is the baseline; the
//! clairvoyant policies pay for height computations (at arrival) and, for
//! Algorithm 𝒜, for materializing LPF schedules per group.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use flowtree_core::{SchedulerSpec, TieBreak};
use flowtree_sim::{Engine, Instance, JobSpec};
use std::hint::black_box;

fn instance() -> Instance {
    let mut rng = flowtree_workloads::rng(8);
    let mut jobs = Vec::new();
    for i in 0..48u64 {
        jobs.push(JobSpec {
            graph: flowtree_workloads::trees::random_recursive_tree(200, &mut rng),
            release: i * 4,
        });
    }
    Instance::new(jobs)
}

fn bench_schedulers(c: &mut Criterion) {
    let inst = instance();
    let m = 16;
    let mut group = c.benchmark_group("schedulers");
    group.throughput(Throughput::Elements(inst.total_work()));
    group.sample_size(20);

    let cases: Vec<(&str, SchedulerSpec)> = vec![
        ("fifo", SchedulerSpec::Fifo(TieBreak::BecameReady)),
        ("fifo_height", SchedulerSpec::Fifo(TieBreak::HighestHeight)),
        ("lpf", SchedulerSpec::Lpf),
        ("algo_a", SchedulerSpec::AlgoA { alpha: 4, half: 16 }),
        ("guess_double", SchedulerSpec::GuessDouble),
        ("round_robin", SchedulerSpec::RoundRobin),
        ("random_wc", SchedulerSpec::RandomWc { seed: 1 }),
        ("lrwf", SchedulerSpec::Lrwf),
    ];
    for (name, spec) in cases {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut sched = spec.build();
                let report = Engine::new(m)
                    .with_max_horizon(10_000_000)
                    .run(black_box(&inst), sched.as_mut())
                    .unwrap();
                black_box(report.horizon())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_schedulers);
criterion_main!(benches);
