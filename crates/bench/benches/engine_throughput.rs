//! Simulator throughput: subjobs scheduled per second by the online engine
//! under FIFO and LPF, across machine sizes. This is the substrate cost
//! every experiment pays; the hot loop is allocation-free per step.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use flowtree_core::{Fifo, Lpf, TieBreak};
use flowtree_sim::{Engine, Instance, JobSpec};
use std::hint::black_box;

fn stream_instance(n_jobs: usize, job_size: usize, spread: u64) -> Instance {
    let mut rng = flowtree_workloads::rng(11);
    let jobs = (0..n_jobs)
        .map(|i| JobSpec {
            graph: flowtree_workloads::trees::random_recursive_tree(job_size, &mut rng),
            release: (i as u64) * spread,
        })
        .collect();
    Instance::new(jobs)
}

fn bench_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine");
    for &m in &[8usize, 64, 256] {
        let inst = stream_instance(64, 256, 8);
        group.throughput(Throughput::Elements(inst.total_work()));
        group.bench_with_input(BenchmarkId::new("fifo", m), &m, |b, &m| {
            b.iter(|| {
                let s = Engine::new(m)
                    .run(black_box(&inst), &mut Fifo::new(TieBreak::BecameReady))
                    .unwrap();
                black_box(s.horizon())
            })
        });
        group.bench_with_input(BenchmarkId::new("lpf", m), &m, |b, &m| {
            b.iter(|| {
                let s = Engine::new(m).run(black_box(&inst), &mut Lpf::new()).unwrap();
                black_box(s.horizon())
            })
        });
    }
    group.finish();
}

fn bench_verifier(c: &mut Criterion) {
    let inst = stream_instance(64, 256, 8);
    let s = Engine::new(64).run(&inst, &mut Fifo::arbitrary()).unwrap();
    c.benchmark_group("verify")
        .throughput(Throughput::Elements(inst.total_work()))
        .bench_function("feasibility_check", |b| {
            b.iter(|| black_box(&s).verify(black_box(&inst)).unwrap())
        });
}

criterion_group!(benches, bench_engine, bench_verifier);
criterion_main!(benches);
