//! The Section 4 adversary at scale: co-simulation cost as a function of
//! the machine size (the E3/E4 kernel), plus the cost of materializing and
//! replaying the instance at node level.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use flowtree_core::Fifo;
use flowtree_sim::Engine;
use flowtree_workloads::adversary::{duel, materialize};
use std::hint::black_box;

fn bench_duel(c: &mut Criterion) {
    let mut group = c.benchmark_group("adversary_duel");
    group.sample_size(10);
    for &m in &[64usize, 256, 1024] {
        group.bench_with_input(BenchmarkId::from_parameter(m), &m, |b, &m| {
            b.iter(|| black_box(duel(black_box(m), m, 40)).max_flow)
        });
    }
    group.finish();
}

fn bench_materialize_and_replay(c: &mut Criterion) {
    let m = 32;
    let out = duel(m, m, 20);
    let mut group = c.benchmark_group("adversary_node_level");
    group.sample_size(10);
    group.bench_function("materialize_m32", |b| {
        b.iter(|| black_box(materialize(black_box(&out))).total_work())
    });
    let inst = materialize(&out);
    group.bench_function("fifo_replay_m32", |b| {
        b.iter(|| {
            let s = Engine::new(m)
                .with_max_horizon(10_000_000)
                .run(black_box(&inst), &mut Fifo::arbitrary())
                .unwrap();
            black_box(s.horizon())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_duel, bench_materialize_and_replay);
criterion_main!(benches);
