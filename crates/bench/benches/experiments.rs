//! One Criterion bench per experiment: times the full regeneration of each
//! table/figure of the reproduction (E1–E17) at quick effort. Besides the
//! timing, running this bench *is* running the reproduction — each
//! iteration regenerates the experiment's tables from scratch.

use criterion::{criterion_group, criterion_main, Criterion};
use flowtree_analysis::{experiments, Effort};
use std::hint::black_box;

fn bench_experiments(c: &mut Criterion) {
    let mut group = c.benchmark_group("experiments");
    group.sample_size(10);
    for id in experiments::ALL {
        // E3/E4 at quick effort still simulate a few hundred thousand
        // steps; keep the heavier ones in the group but with few samples.
        group.bench_function(id, |b| {
            b.iter(|| {
                let report =
                    experiments::run(black_box(id), Effort::Quick).expect("known experiment id");
                black_box(report.tables.len())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_experiments);
criterion_main!(benches);
