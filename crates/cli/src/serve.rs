//! `flowtree-repro serve` — run the sharded online simulation service.
//!
//! Arrivals stream from a generator (scenario blend at `--rate` expected
//! jobs per step) or a replayed trace (`--replay FILE`), are routed across
//! `--shards` engine shards under a bounded-queue overload policy, and each
//! drained shard reports a certified `RunSummary`. With `--store DIR` the
//! summaries append to the persistent results store (conventionally
//! `results/store/`) for `report --trend` to consume.
//!
//! ```text
//! flowtree-repro serve service --shards 2 --rate 0.5 --scheduler fifo -m 4
//! flowtree-repro serve analytics --shards 4 --policy redirect --store results/store
//! flowtree-repro serve replayed --replay trace.jsonl --scheduler lpf
//! ```

use crate::scenario::{parse_num, ScenarioOpts};
use flowtree_analysis::table::f3;
use flowtree_analysis::Table;
use flowtree_core::SchedulerSpec;
use flowtree_serve::{
    git_describe, run_id, ArrivalSource, GeneratorSource, OverloadPolicy, ReplaySource,
    ResultsStore, Routing, ServeConfig, ShardPool, ShardResult, StoreRecord,
};
use flowtree_workloads::mix::Scenario;

/// Subcommand-specific options on top of [`ScenarioOpts`].
struct ServeOpts {
    shards: usize,
    rate: f64,
    queue_cap: usize,
    policy: String,
    routing: String,
    replay: Option<String>,
    stats_every: u64,
    store: Option<String>,
    run: Option<String>,
    horizon: u64,
}

impl Default for ServeOpts {
    fn default() -> Self {
        ServeOpts {
            shards: 2,
            rate: 0.5,
            queue_cap: 64,
            policy: "block".to_string(),
            routing: "hash".to_string(),
            replay: None,
            stats_every: 8,
            store: None,
            run: None,
            horizon: 100_000_000,
        }
    }
}

/// Run `serve <scenario> [flags]`.
pub fn run(args: &[String]) -> Result<(), String> {
    let mut s = ServeOpts::default();
    let o = ScenarioOpts::parse_with(
        "serve",
        args,
        false,
        " [--shards N] [--rate R] [--queue-cap N] [--policy block|drop|redirect]\n\
         \u{20}        [--routing hash|least-loaded] [--replay FILE] [--stats-every N]\n\
         \u{20}        [--store DIR] [--run-id ID] [--horizon H]",
        &mut |flag, it| {
            match flag {
                "--shards" => s.shards = parse_num(it, "--shards")?,
                "--rate" => s.rate = parse_num(it, "--rate")?,
                "--queue-cap" => s.queue_cap = parse_num(it, "--queue-cap")?,
                "--stats-every" => s.stats_every = parse_num(it, "--stats-every")?,
                "--horizon" => s.horizon = parse_num(it, "--horizon")?,
                "--policy" => s.policy = it.next().ok_or("--policy needs a name")?.clone(),
                "--routing" => s.routing = it.next().ok_or("--routing needs a name")?.clone(),
                "--replay" => s.replay = Some(it.next().ok_or("--replay needs a path")?.clone()),
                "--store" => s.store = Some(it.next().ok_or("--store needs a directory")?.clone()),
                "--run-id" => s.run = Some(it.next().ok_or("--run-id needs an id")?.clone()),
                _ => return Ok(false),
            }
            Ok(true)
        },
    )?;
    let results = serve(&o, &s, &mut |line| println!("{line}"))?;
    print!("{}", summary_table(&o, &s, &results));
    if let Some(dir) = &s.store {
        let path = persist(&o, &s, &results, dir)?;
        eprintln!("appended {} record(s) to {path}", results.len());
    }
    Ok(())
}

/// Launch the pool, pump the source dry (emitting a stats line through
/// `heartbeat` every `--stats-every` arrivals), and drain.
fn serve(
    o: &ScenarioOpts,
    s: &ServeOpts,
    heartbeat: &mut dyn FnMut(&str),
) -> Result<Vec<ShardResult>, String> {
    if s.shards == 0 {
        return Err("--shards must be at least 1".into());
    }
    let spec = SchedulerSpec::parse(&o.scheduler, o.half)?;
    let mut cfg = ServeConfig::new(spec, o.m);
    cfg.shards = s.shards;
    cfg.scenario = o.scenario.clone();
    cfg.queue_cap = s.queue_cap;
    cfg.policy = OverloadPolicy::parse(&s.policy)?;
    cfg.routing = Routing::parse(&s.routing)?;
    cfg.max_horizon = s.horizon;

    let mut source: Box<dyn ArrivalSource> = match &s.replay {
        Some(path) => {
            let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
            Box::new(ReplaySource::from_json(&text).map_err(|e| format!("{path}: {e}"))?)
        }
        None => {
            let scenario = Scenario::presets(o.jobs)
                .into_iter()
                .find(|sc| sc.name == o.scenario)
                .ok_or_else(|| {
                format!(
                    "unknown scenario '{}'; known: {} (or use --replay FILE)",
                    o.scenario,
                    crate::scenario::scenario_names().join(", ")
                )
            })?;
            Box::new(GeneratorSource::new(&scenario, s.rate, o.jobs, o.seed))
        }
    };

    let mut pool = ShardPool::launch(cfg);
    pool.run_source_with(source.as_mut(), s.stats_every, &mut |snap| heartbeat(&snap.line()));
    let ingest = pool.ingest();
    heartbeat(&format!(
        "stream ended: offered={} delivered={} dropped={} redirected={} — draining {} shard(s)",
        ingest.offered, ingest.delivered, ingest.dropped, ingest.redirected, s.shards
    ));
    Ok(pool.drain())
}

/// Render the final per-shard summary table.
fn summary_table(o: &ScenarioOpts, s: &ServeOpts, results: &[ShardResult]) -> String {
    let mut table = Table::new(
        format!(
            "serve '{}' — {} on {} shard(s) × m = {}, policy {}",
            o.scenario, o.scheduler, s.shards, o.m, s.policy
        ),
        &[
            "shard",
            "jobs",
            "steps",
            "dispatched",
            "max flow",
            "ratio ≤",
            "flow p99",
            "invariants",
        ],
    );
    for r in results {
        let sm = &r.summary;
        table.row(vec![
            r.shard.to_string(),
            sm.jobs.to_string(),
            sm.steps.to_string(),
            sm.dispatched.to_string(),
            sm.max_flow.to_string(),
            f3(sm.ratio),
            sm.flow.p99.to_string(),
            if sm.invariants_clean {
                "clean".to_string()
            } else {
                format!("{} violation(s)", sm.total_violations)
            },
        ]);
    }
    table.to_markdown()
}

/// Append one store record per shard; returns the store directory.
fn persist(
    o: &ScenarioOpts,
    s: &ServeOpts,
    results: &[ShardResult],
    dir: &str,
) -> Result<String, String> {
    let store = ResultsStore::open(dir).map_err(|e| format!("open store {dir}: {e}"))?;
    let id = s.run.clone().unwrap_or_else(|| run_id(&o.scenario, &o.scheduler, o.m, o.seed));
    let git = git_describe();
    for r in results {
        let record = StoreRecord {
            run_id: id.clone(),
            git: git.clone(),
            shard: r.shard,
            shards: results.len(),
            summary: r.summary.clone(),
        };
        store.append(&record).map_err(|e| format!("append to {dir}: {e}"))?;
    }
    Ok(dir.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts(scenario: &str) -> ScenarioOpts {
        ScenarioOpts {
            scenario: scenario.into(),
            scheduler: "fifo".into(),
            m: 2,
            jobs: 10,
            seed: 3,
            ..ScenarioOpts::default()
        }
    }

    #[test]
    fn serve_drains_one_summary_per_shard_with_heartbeats() {
        let mut s = ServeOpts { shards: 2, stats_every: 4, ..ServeOpts::default() };
        s.rate = 1.0;
        let mut lines = Vec::new();
        let results = serve(&opts("service"), &s, &mut |l| lines.push(l.to_string())).unwrap();
        assert_eq!(results.len(), 2);
        assert_eq!(results.iter().map(|r| r.summary.jobs).sum::<usize>(), 10);
        assert!(lines.iter().any(|l| l.contains("admitted=")), "{lines:?}");
        assert!(lines.last().unwrap().contains("draining"));
        let table = summary_table(&opts("service"), &s, &results);
        assert!(table.contains("| shard |"), "{table}");
    }

    #[test]
    fn serve_persists_parseable_store_records() {
        let dir = std::env::temp_dir().join(format!("flowtree-serve-cli-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let s = ServeOpts { shards: 2, rate: 1.0, ..ServeOpts::default() };
        let o = opts("service");
        let results = serve(&o, &s, &mut |_| {}).unwrap();
        persist(&o, &s, &results, dir.to_str().unwrap()).unwrap();
        let records = flowtree_serve::load_records(&dir).unwrap();
        assert_eq!(records.len(), 2, "one record per shard");
        assert!(records.iter().all(|r| r.summary.scenario == "service"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn unknown_scenario_and_policy_error_cleanly() {
        let s = ServeOpts::default();
        assert!(serve(&opts("nope"), &s, &mut |_| {}).is_err());
        let bad = ServeOpts { policy: "yolo".into(), ..ServeOpts::default() };
        assert!(serve(&opts("service"), &bad, &mut |_| {}).is_err());
        let zero = ServeOpts { shards: 0, ..ServeOpts::default() };
        let err = serve(&opts("service"), &zero, &mut |_| {}).unwrap_err();
        assert!(err.contains("--shards"), "{err}");
    }
}
