//! `flowtree-repro serve` — run the sharded online simulation service.
//!
//! Arrivals stream from a generator (scenario blend at `--rate` expected
//! jobs per step) or a replayed trace (`--replay FILE`), are routed across
//! `--shards` engine shards under a bounded-queue overload policy, and each
//! drained shard reports a certified `RunSummary`. The control plane is
//! exposed too: `--swap-at T:SPEC` hot-swaps every shard's scheduler at
//! event time `T`, and `--steal` turns on work stealing between shards
//! (full-queue arrivals stage router-side and migrate to idle shards).
//! With `--store DIR` the summaries append to the persistent results store
//! (conventionally `results/store/`) for `report --trend` to consume.
//!
//! ```text
//! flowtree-repro serve service --shards 2 --rate 0.5 --scheduler fifo -m 4
//! flowtree-repro serve analytics --shards 4 --policy redirect --store results/store
//! flowtree-repro serve replayed --replay trace.jsonl --scheduler lpf
//! flowtree-repro serve service --shards 2 --swap-at 40:lpf --steal --queue-cap 4
//! ```

use crate::scenario::{parse_num, ScenarioOpts};
use flowtree_analysis::table::f3;
use flowtree_analysis::Table;
use flowtree_core::SchedulerSpec;
use flowtree_dag::Time;
use flowtree_serve::{
    git_describe, run_id, serve_metrics, write_flight_jsonl, ArrivalSource, GeneratorSource,
    IngestStats, OverloadPolicy, PoolHandle, ReplaySource, ResultsStore, Routing, ServeConfig,
    ShardMetrics, ShardPool, ShardResult, StealConfig, StoreRecord,
};
use flowtree_workloads::mix::Scenario;

/// Subcommand-specific options on top of [`ScenarioOpts`]. Shared with the
/// `gateway` verb, which serves the same pool over a socket.
pub(crate) struct ServeOpts {
    pub(crate) shards: usize,
    pub(crate) rate: f64,
    pub(crate) queue_cap: usize,
    pub(crate) policy: String,
    pub(crate) routing: String,
    pub(crate) replay: Option<String>,
    pub(crate) stats_every: u64,
    pub(crate) store: Option<String>,
    pub(crate) run: Option<String>,
    pub(crate) horizon: u64,
    pub(crate) swap_at: Vec<String>,
    pub(crate) steal: bool,
    pub(crate) steal_watermarks: Option<String>,
    pub(crate) ingest_batch: usize,
    pub(crate) watermark_stride: Time,
    pub(crate) metrics_addr: Option<String>,
    pub(crate) flight: Option<String>,
}

impl Default for ServeOpts {
    fn default() -> Self {
        ServeOpts {
            shards: 2,
            rate: 0.5,
            queue_cap: 64,
            policy: "block".to_string(),
            routing: "hash".to_string(),
            replay: None,
            stats_every: 8,
            store: None,
            run: None,
            horizon: 100_000_000,
            swap_at: Vec::new(),
            steal: false,
            steal_watermarks: None,
            ingest_batch: 32,
            watermark_stride: 0,
            metrics_addr: None,
            flight: None,
        }
    }
}

/// Usage text for the flag set [`serve_flag`] understands (shared by the
/// `serve` and `gateway` verbs).
pub(crate) const SERVE_FLAG_USAGE: &str =
    " [--shards N] [--rate R] [--queue-cap N] [--policy block|drop|redirect]\n\
     \u{20}        [--routing hash|least-loaded] [--replay FILE] [--stats-every N]\n\
     \u{20}        [--store DIR] [--run-id ID] [--horizon H] [--swap-at T:SPEC]\n\
     \u{20}        [--steal] [--steal-watermarks LOW:HIGH] [--ingest-batch N]\n\
     \u{20}        [--watermark-stride T] [--metrics-addr HOST:PORT] [--flight FILE]";

/// Parse one serve-family flag into `s`; returns whether it was consumed.
pub(crate) fn serve_flag(
    s: &mut ServeOpts,
    flag: &str,
    it: &mut std::slice::Iter<'_, String>,
) -> Result<bool, String> {
    match flag {
        "--shards" => s.shards = parse_num(it, "--shards")?,
        "--rate" => s.rate = parse_num(it, "--rate")?,
        "--queue-cap" => s.queue_cap = parse_num(it, "--queue-cap")?,
        "--stats-every" => s.stats_every = parse_num(it, "--stats-every")?,
        "--horizon" => s.horizon = parse_num(it, "--horizon")?,
        "--policy" => s.policy = it.next().ok_or("--policy needs a name")?.clone(),
        "--routing" => s.routing = it.next().ok_or("--routing needs a name")?.clone(),
        "--replay" => s.replay = Some(it.next().ok_or("--replay needs a path")?.clone()),
        "--store" => s.store = Some(it.next().ok_or("--store needs a directory")?.clone()),
        "--run-id" => s.run = Some(it.next().ok_or("--run-id needs an id")?.clone()),
        "--swap-at" => s.swap_at.push(it.next().ok_or("--swap-at needs T:SPEC")?.clone()),
        "--steal" => s.steal = true,
        "--steal-watermarks" => {
            s.steal = true;
            s.steal_watermarks =
                Some(it.next().ok_or("--steal-watermarks needs LOW:HIGH")?.clone());
        }
        "--ingest-batch" => s.ingest_batch = parse_num(it, "--ingest-batch")?,
        "--watermark-stride" => s.watermark_stride = parse_num(it, "--watermark-stride")?,
        "--metrics-addr" => {
            s.metrics_addr = Some(it.next().ok_or("--metrics-addr needs HOST:PORT")?.clone())
        }
        "--flight" => s.flight = Some(it.next().ok_or("--flight needs a path")?.clone()),
        _ => return Ok(false),
    }
    Ok(true)
}

/// Run `serve <scenario> [flags]`.
pub fn run(args: &[String]) -> Result<(), String> {
    let mut s = ServeOpts::default();
    let o = ScenarioOpts::parse_with("serve", args, false, SERVE_FLAG_USAGE, &mut |flag, it| {
        serve_flag(&mut s, flag, it)
    })?;
    let (results, ingest, handle) = serve(&o, &s, &mut |line| println!("{line}"))?;
    finish(&o, &s, &results, &ingest, &handle)
}

/// The epilogue every pool-owning verb shares: summary table, ledger line,
/// store records, flight dump.
pub(crate) fn finish(
    o: &ScenarioOpts,
    s: &ServeOpts,
    results: &[ShardResult],
    ingest: &IngestStats,
    handle: &PoolHandle,
) -> Result<(), String> {
    print!("{}", summary_table(o, s, results, &handle.metrics().telemetry));
    println!("{}", accounting_line(ingest));
    if let Some(dir) = &s.store {
        let path = persist(o, s, results, dir)?;
        eprintln!("appended {} record(s) to {path}", results.len());
    }
    if let Some(path) = flight_path(o, s) {
        let n = dump_flight(&path, handle)?;
        eprintln!("recorded {n} flight event(s) to {}", path.display());
    }
    Ok(())
}

/// Where the flight-recorder JSONL lands: `--flight FILE` wins; otherwise
/// a run-scoped file beside the store records; nowhere if neither is set.
pub(crate) fn flight_path(o: &ScenarioOpts, s: &ServeOpts) -> Option<std::path::PathBuf> {
    if let Some(path) = &s.flight {
        return Some(path.into());
    }
    s.store.as_ref().map(|dir| {
        let id = s.run.clone().unwrap_or_else(|| run_id(&o.scenario, &o.scheduler, o.m, o.seed));
        std::path::Path::new(dir).join(format!("flight-{id}.jsonl"))
    })
}

/// Dump the pool's merged flight ring to `path`; returns the event count.
pub(crate) fn dump_flight(path: &std::path::Path, handle: &PoolHandle) -> Result<usize, String> {
    let events = handle.flight();
    write_flight_jsonl(path, &events).map_err(|e| format!("write {}: {e}", path.display()))?;
    Ok(events.len())
}

/// Parse one `--swap-at T:SPEC` directive against the run's `--half`.
fn parse_swap(arg: &str, half: Time) -> Result<(Time, SchedulerSpec), String> {
    let (t, name) = arg
        .split_once(':')
        .ok_or_else(|| format!("--swap-at wants T:SPEC (e.g. 100:lpf), got '{arg}'"))?;
    let at: Time = t.parse().map_err(|_| format!("--swap-at time '{t}' is not an integer"))?;
    let spec = SchedulerSpec::from_name_with_half(name, half)?;
    Ok((at, spec))
}

/// Parse `--steal-watermarks LOW:HIGH`.
fn parse_watermarks(arg: &str) -> Result<StealConfig, String> {
    let (lo, hi) = arg
        .split_once(':')
        .ok_or_else(|| format!("--steal-watermarks wants LOW:HIGH (e.g. 2:8), got '{arg}'"))?;
    let low_watermark = lo
        .parse()
        .map_err(|_| format!("steal low watermark '{lo}' is not an integer"))?;
    let high_watermark = hi
        .parse()
        .map_err(|_| format!("steal high watermark '{hi}' is not an integer"))?;
    Ok(StealConfig { low_watermark, high_watermark })
}

/// The post-drain ingest ledger; ends in `(balanced)` exactly when every
/// offered arrival is accounted for and stolen jobs net to zero.
pub(crate) fn accounting_line(ingest: &IngestStats) -> String {
    let balanced = ingest.delivered + ingest.dropped == ingest.offered
        && ingest.stolen_in == ingest.stolen_out;
    format!(
        "ingest: offered={} delivered={} dropped={} redirected={} reordered={} \
         stolen_in={} stolen_out={} wm_skipped={} {}",
        ingest.offered,
        ingest.delivered,
        ingest.dropped,
        ingest.redirected,
        ingest.reordered,
        ingest.stolen_in,
        ingest.stolen_out,
        ingest.wm_skipped,
        if balanced {
            "(balanced)"
        } else {
            "(IMBALANCED)"
        },
    )
}

/// Launch the pool, queue any hot-swaps, pump the source dry (emitting a
/// stats line through `heartbeat` every `--stats-every` arrivals), and
/// drain. Heartbeats carry the live p99 arrival→completion latency and the
/// worst per-shard max_flow/LB ratio from the telemetry registry. If a
/// shard worker panics during drain, the flight recorder is dumped anyway
/// (the rings outlive the workers) before the error propagates.
fn serve(
    o: &ScenarioOpts,
    s: &ServeOpts,
    heartbeat: &mut dyn FnMut(&str),
) -> Result<(Vec<ShardResult>, IngestStats, PoolHandle), String> {
    let (cfg, swaps) = build_config(o, s)?;
    let mut source = build_source(o, &s.replay, s.rate)?;
    let pool = ShardPool::launch(cfg)?;
    let handle = pool.handle();
    let server = match &s.metrics_addr {
        Some(addr) => {
            let srv = serve_metrics(addr, handle.clone())
                .map_err(|e| format!("metrics endpoint {addr}: {e}"))?;
            heartbeat(&format!("metrics endpoint listening on http://{}/metrics", srv.addr()));
            Some(srv)
        }
        None => None,
    };
    // Queue swaps before any arrival: per-shard FIFO ordering makes a
    // `--swap-at 0:SPEC` take effect before the first admission.
    for &(at, swap_spec) in &swaps {
        handle.swap(None, at, swap_spec)?;
    }
    {
        let beat_handle = handle.clone();
        pool.run_source_with(source.as_mut(), s.stats_every, &mut |snap| {
            heartbeat(&format!("{} {}", snap.line(), latency_suffix(&beat_handle)))
        })?;
    }
    let ingest = pool.ingest();
    heartbeat(&format!(
        "stream ended: offered={} delivered={} dropped={} redirected={} staged={} — \
         draining {} shard(s)",
        ingest.offered,
        ingest.delivered,
        ingest.dropped,
        ingest.redirected,
        pool.snapshot().in_flight(),
        s.shards
    ));
    let drained = pool.drain();
    if let Some(srv) = server {
        srv.shutdown();
    }
    let results = match drained {
        Ok(r) => r,
        Err(e) => {
            // Crashed workers can't report results, but the flight rings
            // survive — persist the post-mortem trail before bailing out.
            if let Some(path) = flight_path(o, s) {
                if let Ok(n) = dump_flight(&path, &handle) {
                    heartbeat(&format!(
                        "recorded {n} flight event(s) to {} before aborting",
                        path.display()
                    ));
                }
            }
            return Err(e.to_string());
        }
    };
    Ok((results, handle.ingest(), handle))
}

/// Turn the parsed CLI options into a validated [`ServeConfig`] plus the
/// `--swap-at` directives (to queue before any arrival).
pub(crate) fn build_config(
    o: &ScenarioOpts,
    s: &ServeOpts,
) -> Result<(ServeConfig, Vec<(Time, SchedulerSpec)>), String> {
    if s.shards == 0 {
        return Err("--shards must be at least 1".into());
    }
    let spec = SchedulerSpec::from_name_with_half(&o.scheduler, o.half)?;
    let swaps: Vec<(Time, SchedulerSpec)> =
        s.swap_at.iter().map(|a| parse_swap(a, o.half)).collect::<Result<_, _>>()?;
    let mut builder = ServeConfig::builder(spec, o.m)
        .shards(s.shards)
        .scenario(o.scenario.clone())
        .queue_cap(s.queue_cap)
        .policy(s.policy.parse::<OverloadPolicy>()?)
        .routing(s.routing.parse::<Routing>()?)
        .max_horizon(s.horizon)
        .ingest_batch(s.ingest_batch)
        .watermark_stride(s.watermark_stride);
    if s.steal {
        let marks = match &s.steal_watermarks {
            Some(arg) => parse_watermarks(arg)?,
            None => StealConfig::default(),
        };
        builder = builder.steal(marks);
    }
    Ok((builder.build()?, swaps))
}

/// The arrival stream: a replayed trace when `replay` is set, otherwise
/// the named scenario sampled at `rate` expected jobs per step.
pub(crate) fn build_source(
    o: &ScenarioOpts,
    replay: &Option<String>,
    rate: f64,
) -> Result<Box<dyn ArrivalSource>, String> {
    Ok(match replay {
        Some(path) => {
            let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
            Box::new(ReplaySource::from_json(&text).map_err(|e| format!("{path}: {e}"))?)
        }
        None => {
            let scenario = Scenario::presets(o.jobs)
                .into_iter()
                .find(|sc| sc.name == o.scenario)
                .ok_or_else(|| {
                format!(
                    "unknown scenario '{}'; known: {} (or use --replay FILE)",
                    o.scenario,
                    crate::scenario::scenario_names().join(", ")
                )
            })?;
            Box::new(GeneratorSource::new(&scenario, rate, o.jobs, o.seed))
        }
    })
}

/// The telemetry tail of a heartbeat line: merged p99 arrival→completion
/// latency and the worst per-shard live max_flow/LB ratio.
fn latency_suffix(handle: &PoolHandle) -> String {
    let m = handle.metrics();
    let ratio = match m.ratio() {
        Some(r) => format!("{r:.3}"),
        None => "-".to_string(),
    };
    format!("lat_p99={}µs ratio≤{ratio}", m.arrival_to_complete().p99())
}

/// Render the final per-shard summary table, including the telemetry
/// registry's wall-clock p99 arrival→completion latency and live ratio.
pub(crate) fn summary_table(
    o: &ScenarioOpts,
    s: &ServeOpts,
    results: &[ShardResult],
    telemetry: &[ShardMetrics],
) -> String {
    let mut table = Table::new(
        format!(
            "serve '{}' — {} on {} shard(s) × m = {}, policy {}{}",
            o.scenario,
            o.scheduler,
            s.shards,
            o.m,
            s.policy,
            if s.steal { ", stealing" } else { "" }
        ),
        &[
            "shard",
            "jobs",
            "steps",
            "dispatched",
            "max flow",
            "ratio ≤",
            "flow p99",
            "lat p99 µs",
            "live ratio",
            "swaps",
            "invariants",
        ],
    );
    for r in results {
        let sm = &r.summary;
        let tel = telemetry.iter().find(|t| t.shard == r.shard);
        table.row(vec![
            r.shard.to_string(),
            sm.jobs.to_string(),
            sm.steps.to_string(),
            sm.dispatched.to_string(),
            sm.max_flow.to_string(),
            f3(sm.ratio),
            sm.flow.p99.to_string(),
            match tel {
                Some(t) => t.arrival_to_complete.p99().to_string(),
                None => "-".to_string(),
            },
            match tel.and_then(|t| t.ratio()) {
                Some(ratio) => f3(ratio),
                None => "-".to_string(),
            },
            if r.swaps.is_empty() {
                "-".to_string()
            } else {
                r.swaps.iter().map(|e| e.to_string()).collect::<Vec<_>>().join(" ")
            },
            if sm.invariants_clean {
                "clean".to_string()
            } else {
                format!("{} violation(s)", sm.total_violations)
            },
        ]);
    }
    table.to_markdown()
}

/// Append one store record per shard; returns the store directory.
pub(crate) fn persist(
    o: &ScenarioOpts,
    s: &ServeOpts,
    results: &[ShardResult],
    dir: &str,
) -> Result<String, String> {
    let store = ResultsStore::open(dir).map_err(|e| format!("open store {dir}: {e}"))?;
    let id = s.run.clone().unwrap_or_else(|| run_id(&o.scenario, &o.scheduler, o.m, o.seed));
    let git = git_describe();
    for r in results {
        let record = StoreRecord {
            run_id: id.clone(),
            git: git.clone(),
            shard: r.shard,
            shards: results.len(),
            summary: r.summary.clone(),
            swaps: r.swaps.clone(),
        };
        store.append(&record).map_err(|e| format!("append to {dir}: {e}"))?;
    }
    Ok(dir.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts(scenario: &str) -> ScenarioOpts {
        ScenarioOpts {
            scenario: scenario.into(),
            scheduler: "fifo".into(),
            m: 2,
            jobs: 10,
            seed: 3,
            ..ScenarioOpts::default()
        }
    }

    #[test]
    fn serve_drains_one_summary_per_shard_with_heartbeats() {
        let mut s = ServeOpts { shards: 2, stats_every: 4, ..ServeOpts::default() };
        s.rate = 1.0;
        let mut lines = Vec::new();
        let (results, ingest, handle) =
            serve(&opts("service"), &s, &mut |l| lines.push(l.to_string())).unwrap();
        assert_eq!(results.len(), 2);
        assert_eq!(results.iter().map(|r| r.summary.jobs).sum::<usize>(), 10);
        assert!(lines.iter().any(|l| l.contains("admitted=")), "{lines:?}");
        assert!(lines.iter().any(|l| l.contains("lat_p99=")), "{lines:?}");
        assert!(lines.last().unwrap().contains("draining"));
        let table = summary_table(&opts("service"), &s, &results, &handle.metrics().telemetry);
        assert!(table.contains("| shard |"), "{table}");
        assert!(table.contains("| swaps |"), "{table}");
        assert!(table.contains("lat p99 µs"), "{table}");
        assert!(table.contains("live ratio"), "{table}");
        let ledger = accounting_line(&ingest);
        assert!(ledger.ends_with("(balanced)"), "{ledger}");
    }

    #[test]
    fn serve_persists_parseable_store_records() {
        let dir = std::env::temp_dir().join(format!("flowtree-serve-cli-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let s = ServeOpts { shards: 2, rate: 1.0, ..ServeOpts::default() };
        let o = opts("service");
        let (results, _, _) = serve(&o, &s, &mut |_| {}).unwrap();
        persist(&o, &s, &results, dir.to_str().unwrap()).unwrap();
        let records = flowtree_serve::load_records(&dir).unwrap();
        assert_eq!(records.len(), 2, "one record per shard");
        assert!(records.iter().all(|r| r.summary.scenario == "service"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn swap_at_relabels_every_shard_and_persists_the_event() {
        let dir = std::env::temp_dir().join(format!("flowtree-swap-cli-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let s = ServeOpts {
            shards: 2,
            rate: 1.0,
            swap_at: vec!["0:lpf".to_string()],
            ..ServeOpts::default()
        };
        let o = opts("service");
        let (results, ingest, _) = serve(&o, &s, &mut |_| {}).unwrap();
        for r in &results {
            assert_eq!(r.summary.scheduler, "lpf");
            assert_eq!(r.swaps.len(), 1);
            assert_eq!(
                (r.swaps[0].from.as_str(), r.swaps[0].to.as_str(), r.swaps[0].t),
                ("fifo", "lpf", 0)
            );
        }
        assert!(accounting_line(&ingest).ends_with("(balanced)"));
        persist(&o, &s, &results, dir.to_str().unwrap()).unwrap();
        let records = flowtree_serve::load_records(&dir).unwrap();
        assert!(records.iter().all(|r| r.swaps.len() == 1), "swap events persisted");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stealing_serve_balances_the_ledger() {
        let s = ServeOpts {
            shards: 2,
            rate: 1.0,
            queue_cap: 2,
            steal: true,
            steal_watermarks: Some("0:2".to_string()),
            ..ServeOpts::default()
        };
        let o = ScenarioOpts { jobs: 40, ..opts("service") };
        let (results, ingest, _) = serve(&o, &s, &mut |_| {}).unwrap();
        assert_eq!(results.iter().map(|r| r.summary.jobs).sum::<usize>() as u64, ingest.offered);
        assert_eq!(ingest.stolen_in, ingest.stolen_out);
        assert!(accounting_line(&ingest).ends_with("(balanced)"), "{ingest:?}");
    }

    #[test]
    fn metrics_endpoint_serves_and_flight_dump_roundtrips() {
        let dir = std::env::temp_dir().join(format!("flowtree-flight-cli-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let flight_file = dir.join("flight.jsonl");
        let s = ServeOpts {
            shards: 2,
            rate: 1.0,
            metrics_addr: Some("127.0.0.1:0".to_string()),
            flight: Some(flight_file.to_str().unwrap().to_string()),
            swap_at: vec!["0:lpf".to_string()],
            ..ServeOpts::default()
        };
        let o = opts("service");
        let mut lines: Vec<String> = Vec::new();
        let mut body: Option<String> = None;
        // Scrape from inside a heartbeat: the endpoint lives exactly as
        // long as the pool, so mid-run is the only window.
        let (results, _, handle) = serve(&o, &s, &mut |l| {
            if body.is_none() {
                if let Some(announce) =
                    lines.iter().find(|l| l.contains("metrics endpoint listening"))
                {
                    let addr = announce
                        .rsplit("http://")
                        .next()
                        .unwrap()
                        .trim_end_matches("/metrics")
                        .to_string();
                    body = Some(flowtree_serve::scrape_metrics(&addr).expect("scrape mid-run"));
                }
            }
            lines.push(l.to_string());
        })
        .unwrap();
        let body = body.expect("a heartbeat fired after the endpoint came up");
        assert!(body.contains("flowtree_ingest_offered_total"), "{body}");
        assert!(body.contains("flowtree_latency_us"), "{body}");

        let path = flight_path(&o, &s).expect("--flight set");
        let n = dump_flight(&path, &handle).unwrap();
        let events = flowtree_serve::load_flight_jsonl(&path).unwrap();
        assert_eq!(events.len(), n);
        let swaps = events.iter().filter(|e| e.kind == flowtree_serve::FlightKind::Swap).count();
        assert_eq!(swaps, results.iter().map(|r| r.swaps.len()).sum::<usize>());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn flight_path_defaults_beside_the_store() {
        let o = opts("service");
        let none = ServeOpts::default();
        assert!(flight_path(&o, &none).is_none());
        let stored = ServeOpts { store: Some("results/store".into()), ..ServeOpts::default() };
        let p = flight_path(&o, &stored).expect("store implies a flight file");
        assert!(p.starts_with("results/store"), "{p:?}");
        assert!(p.file_name().unwrap().to_str().unwrap().starts_with("flight-"), "{p:?}");
        let explicit = ServeOpts {
            store: Some("results/store".into()),
            flight: Some("/tmp/f.jsonl".into()),
            ..ServeOpts::default()
        };
        assert_eq!(flight_path(&o, &explicit).unwrap(), std::path::PathBuf::from("/tmp/f.jsonl"));
    }

    #[test]
    fn swap_and_watermark_args_parse_strictly() {
        assert!(parse_swap("100:lpf", 8).is_ok());
        assert!(parse_swap("lpf", 8).is_err());
        assert!(parse_swap("x:lpf", 8).is_err());
        assert!(parse_swap("5:not-a-scheduler", 8).is_err());
        assert_eq!(
            parse_watermarks("2:8"),
            Ok(StealConfig { low_watermark: 2, high_watermark: 8 })
        );
        assert!(parse_watermarks("8").is_err());
        assert!(parse_watermarks("a:b").is_err());
    }

    #[test]
    fn unknown_scenario_and_policy_error_cleanly() {
        let s = ServeOpts::default();
        assert!(serve(&opts("nope"), &s, &mut |_| {}).is_err());
        let bad = ServeOpts { policy: "yolo".into(), ..ServeOpts::default() };
        assert!(serve(&opts("service"), &bad, &mut |_| {}).is_err());
        let zero = ServeOpts { shards: 0, ..ServeOpts::default() };
        let err = serve(&opts("service"), &zero, &mut |_| {}).unwrap_err();
        assert!(err.contains("--shards"), "{err}");
        let marks = ServeOpts {
            steal: true,
            steal_watermarks: Some("8:2".to_string()),
            ..ServeOpts::default()
        };
        let err = serve(&opts("service"), &marks, &mut |_| {}).unwrap_err();
        assert!(err.contains("watermark"), "{err}");
    }
}
