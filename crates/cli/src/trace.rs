//! `flowtree-repro trace` / `flowtree-repro stats` — run a scheduler on a
//! scenario preset and stream a JSONL event trace (or print the aggregate
//! counters the probe subsystem collects). Option parsing and instance
//! construction are shared with `report` via [`crate::scenario`].

use crate::scenario::ScenarioOpts;
use flowtree_core::SchedulerSpec;
use flowtree_sim::{Engine, Instance, JsonlTrace, RunReport};
use std::io::Write;

/// Run one engine simulation for `o`, optionally traced, and verify it.
pub fn run_engine(
    o: &ScenarioOpts,
    instance: &Instance,
    trace: Option<&mut JsonlTrace<Vec<u8>>>,
) -> Result<RunReport, String> {
    let mut sched = SchedulerSpec::from_name_with_half(&o.scheduler, o.half)?.build();
    let mut engine = Engine::new(o.m).with_max_horizon(100_000_000);
    let report = match trace {
        Some(t) => engine.with_probe(t).run(instance, sched.as_mut()),
        None => engine.run(instance, sched.as_mut()),
    }
    .map_err(|e| format!("simulation failed: {e}"))?;
    report.verify(instance).map_err(|e| format!("infeasible schedule: {e}"))?;
    Ok(report)
}

/// Run `trace <scenario>`: emit the JSONL event stream of one run to stdout
/// (or `-o FILE`). `--compact-idle` folds fast-forwarded idle gaps into
/// single `idle` records.
pub fn run_trace(args: &[String]) -> Result<(), String> {
    let mut compact = false;
    let o = ScenarioOpts::parse_with("trace", args, true, " [--compact-idle]", &mut |flag, _| {
        Ok(flag == "--compact-idle" && {
            compact = true;
            true
        })
    })?;
    let instance = o.build_instance()?;
    let (jsonl, _report) = trace_run(&o, &instance, compact)?;
    match &o.out {
        Some(path) => {
            std::fs::write(path, &jsonl).map_err(|e| format!("write {path}: {e}"))?;
            eprintln!("wrote {} trace lines to {path}", jsonl.lines().count());
        }
        None => {
            std::io::stdout()
                .write_all(jsonl.as_bytes())
                .map_err(|e| format!("write stdout: {e}"))?;
        }
    }
    Ok(())
}

/// Run one traced simulation, returning the JSONL text and the report.
fn trace_run(
    o: &ScenarioOpts,
    instance: &Instance,
    compact: bool,
) -> Result<(String, RunReport), String> {
    let mut trace = JsonlTrace::new(Vec::new()).compact_idle(compact);
    let report = run_engine(o, instance, Some(&mut trace))?;
    let buf = trace.finish().map_err(|e| format!("trace error: {e}"))?;
    let jsonl = String::from_utf8(buf).expect("trace emits UTF-8");
    Ok((jsonl, report))
}

/// Run `stats <scenario>`: print the aggregate counters of one run.
pub fn run_stats(args: &[String]) -> Result<(), String> {
    let o = ScenarioOpts::parse("stats", args, false)?;
    let instance = o.build_instance()?;
    let report = run_engine(&o, &instance, None)?;
    let c = &report.counters;
    println!("scenario        : {}", o.scenario);
    println!("scheduler       : {}", o.scheduler);
    println!("jobs            : {}", instance.num_jobs());
    println!("m               : {}", o.m);
    println!("steps (horizon) : {}", c.steps);
    println!("dispatched      : {}", c.dispatched);
    println!("idle slots      : {}", c.idle_slots);
    println!("idle steps      : {}", c.idle_steps);
    println!("max ready depth : {}", c.max_ready_depth);
    println!("utilization     : {:.3}", c.utilization());
    println!("max flow        : {}", report.stats.max_flow);
    println!("mean flow       : {:.2}", report.stats.mean_flow);
    println!("makespan        : {}", report.stats.makespan);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::scenario_names;
    use flowtree_sim::Replay;

    fn opts(scenario: &str) -> ScenarioOpts {
        ScenarioOpts {
            scenario: scenario.to_string(),
            m: 4,
            jobs: 8,
            ..ScenarioOpts::default()
        }
    }

    /// Acceptance check: on every scenario preset, the emitted JSONL replays
    /// to exactly the schedule's per-job flows — in both idle-gap modes.
    #[test]
    fn traced_flows_match_flow_stats_on_all_presets() {
        for name in scenario_names() {
            for compact in [false, true] {
                let o = opts(name);
                let instance = o.build_instance().unwrap();
                let (jsonl, report) = trace_run(&o, &instance, compact).unwrap();
                let replay = Replay::from_str(&jsonl).unwrap_or_else(|e| panic!("{name}: {e}"));
                let flows: Vec<_> = replay.flows().into_iter().map(Option::unwrap).collect();
                assert_eq!(flows, report.stats.flows, "scenario '{name}'");
                assert_eq!(replay.schedule, report.schedule, "scenario '{name}'");
            }
        }
    }

    #[test]
    fn stats_args_reject_output_flag() {
        let args = vec!["service".to_string(), "-o".to_string(), "x".to_string()];
        assert!(ScenarioOpts::parse("stats", &args, false).is_err());
    }

    #[test]
    fn trace_accepts_compact_idle_flag() {
        let args: Vec<String> =
            ["service", "--compact-idle"].iter().map(|s| s.to_string()).collect();
        let mut compact = false;
        ScenarioOpts::parse_with("trace", &args, true, "", &mut |flag, _| {
            Ok(flag == "--compact-idle" && {
                compact = true;
                true
            })
        })
        .unwrap();
        assert!(compact);
    }
}
