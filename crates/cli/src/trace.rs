//! `flowtree-repro trace` / `flowtree-repro stats` — run a scheduler on a
//! scenario preset and stream a JSONL event trace (or print the aggregate
//! counters the probe subsystem collects).

use flowtree_core::{SchedulerSpec, SCHEDULER_NAMES};
use flowtree_sim::{Engine, Instance, JsonlTrace, RunReport};
use flowtree_workloads::mix::Scenario;
use std::io::Write;

/// Options shared by `trace` and `stats`.
struct Opts {
    scenario: String,
    scheduler: String,
    m: usize,
    jobs: usize,
    seed: u64,
    half: u64,
    out: Option<String>,
}

fn parse_opts(cmd: &str, args: &[String], allow_out: bool) -> Result<Opts, String> {
    let mut o = Opts {
        scenario: String::new(),
        scheduler: "fifo".to_string(),
        m: 8,
        jobs: 16,
        seed: 42,
        half: 8,
        out: None,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "-m" => o.m = it.next().and_then(|v| v.parse().ok()).ok_or("-m needs a number")?,
            "--jobs" => {
                o.jobs = it.next().and_then(|v| v.parse().ok()).ok_or("--jobs needs a number")?
            }
            "--seed" => {
                o.seed = it.next().and_then(|v| v.parse().ok()).ok_or("--seed needs a number")?
            }
            "--half" => {
                o.half = it.next().and_then(|v| v.parse().ok()).ok_or("--half needs a number")?
            }
            "--scheduler" => o.scheduler = it.next().ok_or("--scheduler needs a name")?.clone(),
            "-o" if allow_out => o.out = Some(it.next().ok_or("-o needs a path")?.clone()),
            v if !v.starts_with('-') && o.scenario.is_empty() => o.scenario = v.to_string(),
            other => return Err(format!("unknown {cmd} option '{other}'")),
        }
    }
    if o.scenario.is_empty() {
        let out = if allow_out { " [-o FILE]" } else { "" };
        return Err(format!(
            "usage: flowtree-repro {cmd} <scenario> [--scheduler S] [-m M] [--jobs N] \
             [--seed S] [--half H]{out}\n\
             scenarios: {}\n\
             schedulers: {}",
            scenario_names().join(", "),
            SCHEDULER_NAMES.join(", ")
        ));
    }
    Ok(o)
}

fn scenario_names() -> Vec<&'static str> {
    Scenario::presets(1).iter().map(|s| s.name).collect()
}

fn build_instance(o: &Opts) -> Result<Instance, String> {
    let scenario = Scenario::presets(o.jobs)
        .into_iter()
        .find(|s| s.name == o.scenario)
        .ok_or_else(|| {
            format!("unknown scenario '{}'; known: {}", o.scenario, scenario_names().join(", "))
        })?;
    Ok(scenario.instantiate(&mut flowtree_workloads::rng(o.seed)))
}

fn run_engine(
    o: &Opts,
    instance: &Instance,
    trace: Option<&mut JsonlTrace<Vec<u8>>>,
) -> Result<RunReport, String> {
    let mut sched = SchedulerSpec::parse(&o.scheduler, o.half)?.build();
    let mut engine = Engine::new(o.m).with_max_horizon(100_000_000);
    let report = match trace {
        Some(t) => engine.with_probe(t).run(instance, sched.as_mut()),
        None => engine.run(instance, sched.as_mut()),
    }
    .map_err(|e| format!("simulation failed: {e}"))?;
    report.verify(instance).map_err(|e| format!("infeasible schedule: {e}"))?;
    Ok(report)
}

/// Run `trace <scenario>`: emit the JSONL event stream of one run to stdout
/// (or `-o FILE`).
pub fn run_trace(args: &[String]) -> Result<(), String> {
    let o = parse_opts("trace", args, true)?;
    let instance = build_instance(&o)?;
    let (jsonl, _report) = trace_run(&o, &instance)?;
    match &o.out {
        Some(path) => {
            std::fs::write(path, &jsonl).map_err(|e| format!("write {path}: {e}"))?;
            eprintln!("wrote {} trace lines to {path}", jsonl.lines().count());
        }
        None => {
            std::io::stdout()
                .write_all(jsonl.as_bytes())
                .map_err(|e| format!("write stdout: {e}"))?;
        }
    }
    Ok(())
}

/// Run one traced simulation, returning the JSONL text and the report.
fn trace_run(o: &Opts, instance: &Instance) -> Result<(String, RunReport), String> {
    let mut trace = JsonlTrace::new(Vec::new());
    let report = run_engine(o, instance, Some(&mut trace))?;
    let buf = trace.finish().map_err(|e| format!("trace error: {e}"))?;
    let jsonl = String::from_utf8(buf).expect("trace emits UTF-8");
    Ok((jsonl, report))
}

/// Run `stats <scenario>`: print the aggregate counters of one run.
pub fn run_stats(args: &[String]) -> Result<(), String> {
    let o = parse_opts("stats", args, false)?;
    let instance = build_instance(&o)?;
    let report = run_engine(&o, &instance, None)?;
    let c = &report.counters;
    println!("scenario        : {}", o.scenario);
    println!("scheduler       : {}", o.scheduler);
    println!("jobs            : {}", instance.num_jobs());
    println!("m               : {}", o.m);
    println!("steps (horizon) : {}", c.steps);
    println!("dispatched      : {}", c.dispatched);
    println!("idle slots      : {}", c.idle_slots);
    println!("idle steps      : {}", c.idle_steps);
    println!("max ready depth : {}", c.max_ready_depth);
    println!("utilization     : {:.3}", c.utilization());
    println!("max flow        : {}", report.stats.max_flow);
    println!("mean flow       : {:.2}", report.stats.mean_flow);
    println!("makespan        : {}", report.stats.makespan);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowtree_sim::Replay;

    fn opts(scenario: &str) -> Opts {
        Opts {
            scenario: scenario.to_string(),
            scheduler: "fifo".to_string(),
            m: 4,
            jobs: 8,
            seed: 42,
            half: 8,
            out: None,
        }
    }

    /// Acceptance check: on every scenario preset, the emitted JSONL replays
    /// to exactly the schedule's per-job flows.
    #[test]
    fn traced_flows_match_flow_stats_on_all_presets() {
        for name in scenario_names() {
            let o = opts(name);
            let instance = build_instance(&o).unwrap();
            let (jsonl, report) = trace_run(&o, &instance).unwrap();
            let replay = Replay::from_str(&jsonl).unwrap_or_else(|e| panic!("{name}: {e}"));
            let flows: Vec<_> = replay.flows().into_iter().map(Option::unwrap).collect();
            assert_eq!(flows, report.stats.flows, "scenario '{name}'");
            assert_eq!(replay.schedule, report.schedule, "scenario '{name}'");
        }
    }

    #[test]
    fn unknown_scenario_is_an_error() {
        assert!(build_instance(&opts("nope")).is_err());
    }

    #[test]
    fn stats_args_reject_output_flag() {
        let args = vec!["service".to_string(), "-o".to_string(), "x".to_string()];
        assert!(parse_opts("stats", &args, false).is_err());
    }
}
